/**
 * @file
 * A small expert system — the kind of knowledge-crunching workload KCM
 * was built for (DLM, its closest competitor in Table 4, was marketed
 * "for embedded expert systems").
 *
 * An animal-identification rule base runs on the simulated machine;
 * the example also shows how backtracking statistics expose the
 * machine's behaviour on rule-heavy knowledge bases.
 */

#include <cstdio>

#include "kcm/kcm.hh"

namespace
{

const char *knowledgeBase = R"PL(
% --- observed facts about three specimens ---
has_hair(zeta).        eats_meat(zeta).
has_tawny_colour(zeta). has_black_stripes(zeta).

has_feathers(pip).     flies_well(pip).
lays_eggs(pip).

has_hair(bruno).       eats_meat(bruno).
has_tawny_colour(bruno). has_dark_spots(bruno).

% --- intermediate rules ---
mammal(X) :- has_hair(X).
bird(X) :- has_feathers(X).
bird(X) :- lays_eggs(X), flies_well(X).
carnivore(X) :- mammal(X), eats_meat(X).

% --- identification rules ---
animal(X, tiger) :-
    carnivore(X), has_tawny_colour(X), has_black_stripes(X).
animal(X, cheetah) :-
    carnivore(X), has_tawny_colour(X), has_dark_spots(X).
animal(X, albatross) :- bird(X), flies_well(X).
animal(X, penguin) :- bird(X), \+ flies_well(X).
)PL";

} // namespace

int
main()
{
    kcm::KcmOptions options;
    options.maxSolutions = 10;
    kcm::KcmSystem system(options);
    system.consult(knowledgeBase);

    printf("=== identification ===\n");
    for (const auto &solution :
         system.query("animal(Specimen, Species)").solutions) {
        printf("  %s\n", solution.toString().c_str());
    }

    printf("\n=== who are the carnivores? ===\n");
    for (const auto &solution : system.query("carnivore(X)").solutions)
        printf("  %s\n", solution.toString().c_str());

    // A failing consultation: the knowledge base cannot identify pip
    // as a tiger.
    auto no = system.query("animal(pip, tiger)");
    printf("\nanimal(pip, tiger) => %s\n", no.success ? "yes" : "no");

    // Machine-level view of the last run: rule-heavy knowledge bases
    // exercise the backtracking hardware.
    kcm::Machine &machine = system.machine();
    printf("\n=== machine statistics of the last query ===\n");
    printf("  cycles:                %llu\n",
           (unsigned long long)machine.cycles());
    printf("  choice points created: %llu\n",
           (unsigned long long)machine.choicePointsCreated.value());
    printf("  avoided (shallow):     %llu\n",
           (unsigned long long)machine.choicePointsAvoided.value());
    printf("  deep fails:            %llu\n",
           (unsigned long long)machine.deepFails.value());
    printf("  data cache hit ratio:  %.2f%%\n",
           machine.mem().dataCache().hitRatio() * 100);
    return 0;
}
