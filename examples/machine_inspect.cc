/**
 * @file
 * A look under the hood: compile a predicate and disassemble the KCM
 * code the compiler produced — switch_on_term indexing, the
 * try/retry/trust chain, the neck instruction where a delayed choice
 * point would materialize, and the unify_list cells of a static list.
 */

#include <cstdio>

#include "isa/disasm.hh"
#include "kcm/kcm.hh"

int
main()
{
    kcm::KcmSystem system;
    system.consult(R"PL(
        part([], _, [], []).
        part([X|L], Y, [X|L1], L2) :- X =< Y, part(L, Y, L1, L2).
        part([X|L], Y, L1, [X|L2]) :- X > Y, part(L, Y, L1, L2).
    )PL");
    kcm::CodeImage image = system.compileOnly("part([3,1,4], 2, A, B)");

    const kcm::PredicateInfo *info =
        image.find({kcm::internAtom("part"), 4});

    printf("KCM code of part/4 (%zu instructions, %zu words):\n\n",
           info->instructions, info->words);
    printf("%s\n",
           kcm::disasmRange(image.words, info->entry - image.base,
                            info->entry - image.base + info->words)
               .c_str());

    printf("query code (list built with a unify_list chain):\n\n");
    printf("%s",
           kcm::disasmRange(image.words, image.queryEntry - image.base,
                            image.words.size())
               .c_str());

    // Run it and show what the guard-based clause selection did.
    auto result = system.query("part([3,1,4], 2, A, B)");
    printf("\nresult: %s\n", result.solutions[0].toString().c_str());
    kcm::Machine &machine = system.machine();
    printf("choice points created: %llu (every partition step decided "
           "by its guard)\n",
           (unsigned long long)machine.choicePointsCreated.value());
    return 0;
}
