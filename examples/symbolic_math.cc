/**
 * @file
 * Symbolic differentiation on KCM — the workload behind four of the
 * fourteen PLM benchmarks (times10, divide10, log10, ops8).
 *
 * Shows structure-heavy unification: the derivative rules take large
 * expression trees apart with get_structure/unify_* instructions and
 * rebuild the result on the global stack.
 */

#include <cstdio>
#include <string>

#include "kcm/kcm.hh"

namespace
{

const char *derivRules = R"PL(
d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- !, d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V + U*DV) :- !, d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V - U*DV)/(V*V)) :- !, d(U, X, DU), d(V, X, DV).
d(pow(U,N), X, DU*N*pow(U,N1)) :- !, integer(N), N1 is N-1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !, d(U, X, DU).
d(log(U), X, DU/U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
)PL";

void
differentiate(kcm::KcmSystem &system, const std::string &expression)
{
    auto result = system.query("d(" + expression + ", x, D)");
    if (!result.success) {
        printf("  d/dx %-28s => (no derivative)\n", expression.c_str());
        return;
    }
    printf("  d/dx %-28s => %s   [%llu inferences, %.2f us]\n",
           expression.c_str(),
           result.solutions[0].toString().c_str() + 4, // strip "D = "
           (unsigned long long)result.inferences,
           result.seconds * 1e6);
}

} // namespace

int
main()
{
    kcm::KcmSystem system;
    system.consult(derivRules);

    printf("symbolic differentiation on the simulated KCM:\n\n");
    differentiate(system, "x");
    differentiate(system, "3*x + 5");
    differentiate(system, "x*x");
    differentiate(system, "pow(x,3) + 2*pow(x,2)");
    differentiate(system, "log(x*x)");
    differentiate(system, "exp(x)/x");
    differentiate(system, "(x+1)*(x+2)*(x+3)");

    // The ops8 benchmark expression from the PLM suite.
    printf("\nthe ops8 benchmark expression:\n");
    differentiate(system, "(x+1) * ((pow(x,2)+2) * (pow(x,3)+3))");
    return 0;
}
