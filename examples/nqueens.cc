/**
 * @file
 * N-queens on KCM: a search-heavy workload contrasting the two
 * backtracking regimes the machine supports — shallow (delayed choice
 * points, §3.1.5) against the standard WAM.
 */

#include <cstdio>
#include <string>

#include "kcm/kcm.hh"

namespace
{

const char *queensProgram = R"PL(
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    selectq(Q, Unplaced, Rest),
    \+ attack(Q, Safe),
    place(Rest, [Q|Safe], Qs).
attack(X, Xs) :- attack(X, 1, Xs).
attack(X, N, [Y|_]) :- X =:= Y + N.
attack(X, N, [Y|_]) :- X =:= Y - N.
attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
selectq(X, [X|T], T).
selectq(X, [H|T], [H|R]) :- selectq(X, T, R).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
)PL";

void
board(const std::string &solution_text, int n)
{
    // solution text looks like "Qs = [4,2,7,3,6,8,5,1]".
    printf("  %s\n", solution_text.c_str());
    std::string digits;
    for (char c : solution_text) {
        if (isdigit(static_cast<unsigned char>(c)))
            digits += c;
    }
    if (int(digits.size()) != n)
        return; // multi-digit columns: skip the picture
    for (int row = 0; row < n; ++row) {
        printf("    ");
        int queen_col = digits[row] - '1';
        for (int col = 0; col < n; ++col)
            printf("%c ", col == queen_col ? 'Q' : '.');
        printf("\n");
    }
}

} // namespace

int
main()
{
    for (int n : {6, 8}) {
        kcm::KcmSystem system;
        system.consult(queensProgram);
        auto result =
            system.query("queens(" + std::to_string(n) + ", Qs)");
        printf("%d-queens first solution (%llu inferences, %.2f ms "
               "simulated):\n",
               n, (unsigned long long)result.inferences,
               result.seconds * 1e3);
        board(result.solutions[0].toString(), n);
    }

    // Shallow backtracking ablation on the same search.
    printf("\nbacktracking regime comparison on 8-queens:\n");
    for (bool shallow : {true, false}) {
        kcm::KcmOptions options;
        options.machine.shallowBacktracking = shallow;
        kcm::KcmSystem system(options);
        system.consult(queensProgram);
        auto result = system.query("queens(8, Qs)");
        kcm::Machine &machine = system.machine();
        printf("  %-22s %9llu cycles, %6llu choice points, "
               "%6llu shallow fails\n",
               shallow ? "KCM (delayed CPs):" : "standard WAM:",
               (unsigned long long)result.cycles,
               (unsigned long long)machine.choicePointsCreated.value(),
               (unsigned long long)machine.shallowFails.value());
    }
    return 0;
}
