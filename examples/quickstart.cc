/**
 * @file
 * Quickstart: embed the KCM system, consult a program, run queries,
 * and read the machine's measurements.
 *
 * Build tree: build/examples/example_quickstart
 */

#include <cstdio>

#include "kcm/kcm.hh"

int
main()
{
    // A KCM installation: host-side compiler plus the simulated
    // back-end processor (Fig. 1 of the paper).
    kcm::KcmSystem system;

    // Consult a program, exactly as Prolog source text.
    system.consult(R"PL(
        append([], L, L).
        append([H|T], L, [H|R]) :- append(T, L, R).

        member(X, [X|_]).
        member(X, [_|T]) :- member(X, T).
    )PL");

    // Run a query; the first solution is collected by default.
    kcm::QueryResult result = system.query("append([1,2], [3,4], X)");
    printf("append([1,2], [3,4], X)  =>  %s\n",
           result.solutions[0].toString().c_str());

    // Every run is measured in KCM cycles (80 ns each).
    printf("  %llu inferences in %llu cycles = %.3f us simulated "
           "(%.0f Klips)\n",
           (unsigned long long)result.inferences,
           (unsigned long long)result.cycles, result.seconds * 1e6,
           result.klips);

    // Enumerate multiple solutions by raising maxSolutions.
    kcm::KcmOptions options;
    options.maxSolutions = 16;
    kcm::KcmSystem enumerator(options);
    enumerator.consult("color(red). color(green). color(blue).");
    for (const auto &solution : enumerator.query("color(C)").solutions)
        printf("color: %s\n", solution.toString().c_str());

    // Failure is a normal outcome, not an error.
    kcm::QueryResult no = system.query("member(5, [1,2,3])");
    printf("member(5, [1,2,3]) => %s\n", no.success ? "true" : "false");

    return 0;
}
