/**
 * @file
 * A route planner over a rail network — a knowledge-base search
 * application using the bundled standard library, with cost-bounded
 * route enumeration and the machine's GC keeping the global stack
 * small during the failure-driven search.
 */

#include <cstdio>

#include "kcm/kcm.hh"

namespace
{

const char *network = R"PL(
% rail(From, To, Minutes)
rail(munich, augsburg, 32).   rail(augsburg, ulm, 40).
rail(ulm, stuttgart, 55).     rail(stuttgart, karlsruhe, 35).
rail(munich, nuremberg, 65).  rail(nuremberg, wuerzburg, 55).
rail(wuerzburg, frankfurt, 70). rail(karlsruhe, frankfurt, 60).
rail(ulm, friedrichshafen, 70). rail(augsburg, nuremberg, 60).
rail(stuttgart, frankfurt, 80).

% Edges are bidirectional.
link(A, B, T) :- rail(A, B, T).
link(A, B, T) :- rail(B, A, T).

% route(From, To, Path, Minutes): simple paths only.
route(From, To, Path, T) :- route_(From, To, [From], P, 0, T),
                            reverse(P, Path).
route_(To, To, Acc, Acc, T, T).
route_(From, To, Acc, Path, T0, T) :-
    link(From, Next, Step),
    \+ member(Next, Acc),
    T1 is T0 + Step,
    route_(Next, To, [Next|Acc], Path, T1, T).

% best_under(From, To, Limit, Path, T): any route within the limit.
best_under(From, To, Limit, Path, T) :-
    route(From, To, Path, T), T =< Limit.
)PL";

} // namespace

int
main()
{
    kcm::KcmOptions options;
    options.maxSolutions = 32;

    kcm::KcmSystem system(options);
    system.consultStandardLibrary();
    system.consult(network);

    printf("all simple routes munich -> frankfurt:\n");
    auto all = system.query("route(munich, frankfurt, P, T)");
    for (const auto &solution : all.solutions)
        printf("  %s\n", solution.toString().c_str());

    printf("\nroutes within 220 minutes:\n");
    auto bounded =
        system.query("best_under(munich, frankfurt, 220, P, T)");
    for (const auto &solution : bounded.solutions)
        printf("  %s\n", solution.toString().c_str());

    // Backtracking search is naturally space-frugal on a WAM: every
    // deep fail resets the global stack to the choice point's saved H,
    // so dead path structure is reclaimed without any GC.
    kcm::Machine &machine = system.machine();
    printf("\nsearch ran %llu inferences in %.2f ms simulated\n"
           "choice points created: %llu, deep fails: %llu, "
           "heap left live: %u words\n",
           (unsigned long long)bounded.inferences,
           bounded.seconds * 1e3,
           (unsigned long long)machine.choicePointsCreated.value(),
           (unsigned long long)machine.deepFails.value(),
           machine.heapWords());
    return 0;
}
