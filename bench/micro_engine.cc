/**
 * @file
 * Microbenchmarks (google-benchmark) of the specialized units the
 * paper proposes to evaluate individually in §5: dereferencing, trail
 * checks, unification dispatch, and choice point save/restore — plus
 * the host-side speed of the simulator and compiler themselves.
 */

#include <benchmark/benchmark.h>

#include "bench_support/plm_suite.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/** Build a system with a consulted program, ready to run queries. */
QueryResult
runOn(const char *program, const std::string &goal)
{
    KcmSystem system;
    if (*program)
        system.consult(program);
    return system.query(goal);
}

void
BM_DerefChain(benchmark::State &state)
{
    // Long reference chains: X1 = X2, X2 = X3, ... then touch X1.
    std::string goal;
    int n = int(state.range(0));
    for (int i = 0; i < n; ++i)
        goal += "X" + std::to_string(i) + " = X" + std::to_string(i + 1) +
                ", ";
    goal += "X" + std::to_string(n) + " = end, atom(X0)";
    for (auto _ : state) {
        auto result = runOn("", goal);
        benchmark::DoNotOptimize(result.success);
    }
}
BENCHMARK(BM_DerefChain)->Arg(4)->Arg(16)->Arg(64);

void
BM_UnifyGroundLists(benchmark::State &state)
{
    std::string list = "[";
    for (int i = 0; i < state.range(0); ++i)
        list += (i ? "," : "") + std::to_string(i);
    list += "]";
    std::string goal = list + " = " + list;
    for (auto _ : state) {
        auto result = runOn("", goal);
        benchmark::DoNotOptimize(result.success);
    }
}
BENCHMARK(BM_UnifyGroundLists)->Arg(8)->Arg(64);

void
BM_ChoicePointChurn(benchmark::State &state)
{
    const char *program =
        "p(1). p(2). p(3). p(4). p(5). p(6). p(7). p(8).\n"
        "churn(0).\n"
        "churn(N) :- p(_), M is N - 1, churn(M).\n";
    for (auto _ : state) {
        auto result =
            runOn(program, "churn(" + std::to_string(state.range(0)) + ")");
        benchmark::DoNotOptimize(result.success);
    }
}
BENCHMARK(BM_ChoicePointChurn)->Arg(64);

void
BM_CompileNrev(benchmark::State &state)
{
    const PlmBenchmark &bench = plmBenchmark("nrev1");
    for (auto _ : state) {
        KcmSystem system;
        system.consult(bench.program);
        CodeImage image = system.compileOnly(bench.queryPure);
        benchmark::DoNotOptimize(image.words.size());
    }
}
BENCHMARK(BM_CompileNrev);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    // Host-side speed: simulated cycles per wall second on nrev(30).
    const PlmBenchmark &bench = plmBenchmark("nrev1");
    KcmSystem system;
    system.consult(bench.pureProgram());
    CodeImage image = system.compileOnly(bench.queryPure);
    uint64_t simulated = 0;
    for (auto _ : state) {
        Machine machine;
        machine.load(image);
        machine.run();
        simulated += machine.cycles();
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput);

} // namespace

BENCHMARK_MAIN();
