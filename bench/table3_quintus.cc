/**
 * @file
 * Reproduces Table 3: comparison with QUINTUS 2.0 on a SUN3/280
 * (§4.2). The I/O predicates are removed from the programs to measure
 * pure inferencing, as the paper did.
 *
 * The QUINTUS columns are the paper's published timings (a closed
 * commercial system measured on 1988 hardware). As a live software
 * comparison point this harness also runs our baseline reference
 * interpreter (a portable, non-WAM Prolog in C++) and reports its
 * wall-clock time on this host.
 *
 * Usage: table3_quintus [--jobs N] [--timeout SECONDS]
 *   N benchmark Machines execute concurrently (default: the host's
 *   hardware concurrency; 1 reproduces the serial harness exactly).
 *   --timeout arms a per-benchmark wall-clock watchdog; a benchmark
 *   that traps or times out is reported as failed (exit code 2)
 *   while the rest of the table completes. The baseline interpreter
 *   timings stay serial — they are wall-clock measurements and
 *   mutual contention would corrupt them. A BENCH_table3.json report
 *   is written afterwards.
 */

#include <chrono>
#include <cstdio>

#include "base/logging.hh"

#include "baseline/interp.hh"
#include "bench_support/harness.hh"
#include "bench_support/json_report.hh"
#include "bench_support/paper_data.hh"

using namespace kcm;

int
main(int argc, char **argv)
try {
    setLoggingEnabled(false);
    unsigned jobs = benchJobsFromArgs(argc, argv);
    double watchdog = benchWatchdogFromArgs(argc, argv);

    std::vector<std::string> names;
    for (const auto &paper : paperTable3())
        names.push_back(paper.program);

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<BenchRun> runs =
        runPlmBenchmarks(names, /*pure=*/true, {}, jobs, watchdog);
    double wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    TablePrinter table({"Program", "Inf", "QUINTUS ms", "Q Klips",
                        "KCM ms", "KCM Klips", "Q/KCM", "Q/KCM(paper)",
                        "interp ms(host)"});

    double sum_ratio = 0;
    int ratio_rows = 0;
    int failures = 0;

    size_t i = 0;
    for (const auto &paper : paperTable3()) {
        const PlmBenchmark &bench = plmBenchmark(paper.program);
        const BenchRun &run = runs[i++];

        if (!run.success || run.ms <= 0) {
            ++failures;
            table.addRow({paper.program, "-",
                          paper.quintusMs ? cellFixed(*paper.quintusMs, 3)
                                          : "-",
                          "-", "FAILED", "-", "-", "-", "-"});
            continue;
        }

        // Baseline interpreter wall-clock (best of 4 runs on a quiet
        // system, as in the paper's measurement protocol).
        baseline::Interpreter interp;
        interp.consult(bench.pureProgram());
        double best_seconds = 1e30;
        for (int j = 0; j < 4; ++j) {
            auto r = interp.query(bench.queryPure);
            best_seconds = std::min(best_seconds, r.seconds);
        }

        std::string q_ms = "-";
        std::string q_klips = "-";
        std::string ratio = "-";
        std::string ratio_paper = "-";
        if (paper.quintusMs) {
            q_ms = cellFixed(*paper.quintusMs, 3);
            q_klips = cellInt(uint64_t(*paper.quintusKlips));
            double r = *paper.quintusMs / run.ms;
            ratio = cellRatio(r);
            ratio_paper = cellRatio(*paper.quintusMs / paper.kcmMsPaper);
            sum_ratio += r;
            ++ratio_rows;
        }

        table.addRow({paper.program, cellInt(run.inferences), q_ms,
                      q_klips, cellFixed(run.ms, 3),
                      cellInt(uint64_t(run.klips + 0.5)), ratio,
                      ratio_paper, cellFixed(best_seconds * 1e3, 3)});
    }

    table.addRow({"average", "", "", "", "", "",
                  ratio_rows ? cellRatio(sum_ratio / ratio_rows) : "-",
                  cellRatio(7.85), ""});

    printf("Table 3: Comparison with QUINTUS/SUN "
           "(paper: KCM almost 8x faster on average, ratios 5.1-10.2; "
           "lowest on deterministic programs, highest with "
           "backtracking)\n\n%s\n",
           table.render().c_str());

    for (const BenchRun &run : runs) {
        if (!run.failure.empty())
            printf("FAILED %s: %s\n", run.name.c_str(),
                   run.failure.c_str());
    }

    writeBenchJson("BENCH_table3.json", "table3", runs, jobs, wall_seconds);
    return failures ? benchTrapExitCode : 0;
} catch (const std::exception &err) {
    printf("FATAL: %s\n", err.what());
    return benchTrapExitCode;
}
