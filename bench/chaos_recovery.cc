/**
 * @file
 * Chaos harness: the supervised query service under fault injection.
 *
 * Runs a mixed workload (hundreds of queries, several worker threads)
 * through the service::Supervisor while every query carries a
 * deterministic FaultPlan from one of the three fault families —
 * page-fault arming, zone tightening, word corruption — plus a
 * fault-free control family. Every query is checked against the
 * baseline interpreter (the differential-testing oracle, run
 * fault-free): it must either
 *
 *   (a) complete with answers bit-identical to the oracle's (the
 *       fault missed, or recovery masked it), or
 *   (b) fail cleanly with a classified FailureReport.
 *
 * Anything else — a hang (caught by per-query deadlines), a crash, or
 * a silently wrong answer — fails the harness. The workload's answers
 * are ground integers computed through arithmetic chains, so injected
 * corruption either traps during execution or is dead; it cannot leak
 * into an exported answer unseen.
 *
 * Modes:
 *   (default)      chaos sweep; writes BENCH_chaos.json
 *   --overhead     checkpoint + recovery overhead vs interval (the
 *                  EXPERIMENTS.md table); asserts that checkpointing
 *                  never changes the simulated metrics
 *
 * Options: --queries N (per family, default 200), --workers N
 * (default 4), --json PATH.
 *
 * Exit codes: 0 = every query matched or failed classified;
 * 1 = divergence from the oracle (or determinism violation);
 * 2 = harness error.
 */

#include <pthread.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "baseline/interp.hh"
#include "bench_support/json_report.hh"
#include "kcm/kcm.hh"
#include "mem/zone_check.hh"
#include "service/supervisor.hh"

using namespace kcm;

namespace
{

const char *chaosProgram = R"PROLOG(
sumto(0, 0).
sumto(N, S) :- N > 0, M is N - 1, sumto(M, T), S is T + N.

mklist(0, []).
mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).

app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).

rev([], []).
rev([H|T], R) :- rev(T, RT), app(RT, [H], R).

suml([], A, A).
suml([H|T], A, S) :- B is A + H, suml(T, B, S).

revsum(N, S) :- mklist(N, L), rev(L, R), suml(R, 0, S).

iter(0, A, A).
iter(N, A, S) :- N > 0, sumto(200, T), B is A + T, M is N - 1,
                 iter(M, B, S).

sumc(0, 0).
sumc(N, S) :- N > 0, !, M is N - 1, sumc(M, T), S is T + N.

itc(0, A, A).
itc(N, A, S) :- N > 0, !, sumc(200, T), B is A + T, M is N - 1,
                itc(M, B, S).

chunk :- revsum(120, _), fail.
chunk.

longrep(0, S) :- sumto(400, S).
longrep(K, S) :- K > 0, chunk, J is K - 1, longrep(J, S).
)PROLOG";

/** Normalize fresh-variable numbering (_NNN differs per process). */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
        out += s[i];
        if (s[i] == '_' && (i == 0 || !isalnum(s[i - 1]))) {
            while (i + 1 < s.size() && isdigit(s[i + 1]))
                ++i;
        }
    }
    return out;
}

/**
 * The baseline interpreter recurses on the host stack per inference
 * (continuation-passing solve()), so deep workload goals overflow the
 * default thread stack. Each oracle query runs on its own pthread
 * with a 1 GiB stack (lazily mapped; only touched pages cost memory).
 */
struct OracleTask
{
    baseline::Interpreter *interp = nullptr;
    const std::string *goal = nullptr;
    std::string answers;
    std::string error;
};

void *
oracleThreadMain(void *arg)
{
    auto *task = static_cast<OracleTask *>(arg);
    baseline::InterpResult res = task->interp->query(*task->goal, 1);
    for (const auto &s : res.solutions)
        task->answers += stripVarNumbers(s.toString()) + ";";
    task->error = res.error;
    return nullptr;
}

std::pair<std::string, std::string>
runOracle(baseline::Interpreter &interp, const std::string &goal)
{
    OracleTask task;
    task.interp = &interp;
    task.goal = &goal;
    pthread_attr_t attr;
    pthread_attr_init(&attr);
    pthread_attr_setstacksize(&attr, size_t(1) << 30);
    pthread_t tid;
    if (pthread_create(&tid, &attr, oracleThreadMain, &task) != 0)
        fatal("cannot spawn oracle thread");
    pthread_join(tid, nullptr);
    pthread_attr_destroy(&attr);
    return {task.answers, task.error};
}

struct Family
{
    const char *name;
    FaultKind kind;
    bool faultFree = false;
};

/** One deterministic pseudo-random query + fault script. */
struct ChaosQuery
{
    std::string goal;
    MachineConfig machine;
};

ChaosQuery
makeQuery(const Family &family, uint32_t seed,
          const MachineConfig &base)
{
    std::mt19937 rng(seed);
    auto pick = [&](uint64_t lo, uint64_t hi) {
        return lo + rng() % (hi - lo + 1);
    };

    ChaosQuery q;
    q.machine = base;

    // Mixed workload, all ground-integer answers: mostly short
    // queries, a tail of multi-megacycle ones that cross checkpoint
    // boundaries.
    uint64_t span_cycles; // rough length of the run
    switch (pick(0, 9)) {
      case 0: // long: >1 simulated Mcycle (crosses a checkpoint
              // boundary); few distinct values so the oracle cache
              // absorbs the interpreter cost. Each chunk fails and
              // backtracks, so the oracle's continuation stack
              // unwinds between chunks instead of nesting across the
              // whole run.
        q.goal = cat("longrep(", 10 + pick(0, 2), ", S)");
        span_cycles = 1'600'000;
        break;
      case 1:
      case 2:
      case 3: // quadratic list work on the heap
        q.goal = cat("revsum(", pick(20, 60), ", S)");
        span_cycles = 30'000;
        break;
      default: // arithmetic recursion
        q.goal = cat("sumto(", pick(200, 1200), ", S)");
        span_cycles = 20'000;
        break;
    }

    if (!family.faultFree) {
        FaultAction fault;
        // Half the faults land inside the run, half past its end
        // (those never fire: the clean path must still match).
        fault.cycle = pick(200, span_cycles * 2);
        fault.kind = family.kind;
        DataLayout layout;
        switch (family.kind) {
          case FaultKind::InjectPageFault:
            break;
          case FaultKind::TightenZone:
            fault.zone = Zone::Global;
            fault.limit = layout.globalStart + pick(4, 512);
            break;
          case FaultKind::CorruptWord:
            // A Ref into the unmapped gap between the static and
            // global zones: any dereference of the corrupted cell
            // traps (ZoneViolation); it can never decode as a valid
            // ground answer. Aimed at the low heap early in the run —
            // the list cells the workload re-reads later — so a good
            // fraction of these darts are actually observed (a dart
            // on a dead or not-yet-allocated cell is legitimately
            // harmless and must still match the oracle).
            fault.cycle = pick(200, 8000);
            fault.addr = layout.globalStart + pick(0, 127);
            fault.raw = Word::make(Tag::Ref, Zone::Global,
                                   layout.staticEnd + 16 +
                                       Addr(pick(0, 256)))
                            .raw();
            break;
        }
        q.machine.faultPlan.actions.push_back(fault);
    }
    return q;
}

struct FamilyTally
{
    int matched = 0;       ///< completed, bit-identical to the oracle
    int failedClassified = 0;
    int diverged = 0;      ///< the bug class this harness exists for
    int shed = 0;
    unsigned retries = 0;
    unsigned restarts = 0;
    uint64_t recoveryCycles = 0;
};

int
chaosSweep(int queries_per_family, unsigned workers,
           const std::string &json_path)
{
    const Family families[] = {
        {"fault_free", FaultKind::InjectPageFault, /*faultFree=*/true},
        {"page_fault", FaultKind::InjectPageFault},
        {"zone_tighten", FaultKind::TightenZone},
        {"corrupt_word", FaultKind::CorruptWord},
    };

    service::SupervisorOptions service;
    service.workers = workers;
    service.maxQueueDepth = size_t(queries_per_family) * 4 + 16;
    service.session.checkpointEveryMcycles = 1;
    service.session.maxRetries = 3;
    service.session.backoffBaseMs = 0; // chaos wants throughput
    service.session.deadlineMs = 20'000; // anti-hang backstop
    service.session.maxSolutions = 1;

    baseline::Interpreter oracle;
    oracle.consult(chaosProgram);

    KcmOptions compile_options;
    compile_options.machine = service.session.machine;
    KcmSystem system(compile_options);
    system.consult(chaosProgram);

    // Oracle answers are cached per goal text: the goal distribution
    // repeats, and the interpreter is the slow half of the harness.
    std::map<std::string, std::pair<std::string, std::string>> oracleCache;
    auto oracleAnswer =
        [&](const std::string &goal) -> std::pair<std::string, std::string> {
        auto it = oracleCache.find(goal);
        if (it != oracleCache.end())
            return it->second;
        auto entry = runOracle(oracle, goal);
        oracleCache[goal] = entry;
        return entry;
    };

    service::Supervisor supervisor(service);
    std::vector<std::pair<const Family *, ChaosQuery>> submitted;

    uint32_t seed = 1;
    for (const Family &family : families) {
        for (int i = 0; i < queries_per_family; ++i, ++seed) {
            ChaosQuery q = makeQuery(family, seed,
                                     service.session.machine);
            service::QueryJob job;
            job.id = cat(family.name, "/", i);
            job.goal = q.goal;
            job.machine = q.machine;
            supervisor.submit(job, system.compileOnly(q.goal));
            submitted.emplace_back(&family, std::move(q));
        }
    }

    auto results = supervisor.drain();
    auto stats = supervisor.stats();

    std::map<std::string, FamilyTally> tallies;
    int divergences = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const Family &family = *submitted[i].first;
        const auto &out = results[i].outcome;
        FamilyTally &tally = tallies[family.name];
        tally.retries += out.counters.retries;
        tally.restarts += out.counters.restarts;
        tally.recoveryCycles += out.counters.recoveryCycles;

        switch (out.status) {
          case service::QueryStatus::Completed: {
            auto [want_answers, want_error] =
                oracleAnswer(results[i].job.goal);
            std::string got;
            for (const auto &s : out.solutions)
                got += stripVarNumbers(s.toString()) + ";";
            if (got == want_answers && out.error == want_error) {
                ++tally.matched;
            } else {
                ++tally.diverged;
                ++divergences;
                fprintf(stderr,
                        "DIVERGENCE %s goal=%s\n  kcm:    '%s' "
                        "err='%s'\n  oracle: '%s' err='%s'\n",
                        results[i].job.id.c_str(),
                        results[i].job.goal.c_str(), got.c_str(),
                        out.error.c_str(), want_answers.c_str(),
                        want_error.c_str());
            }
            break;
          }
          case service::QueryStatus::Failed:
            if (out.failure.classification.empty()) {
                ++tally.diverged;
                ++divergences;
                fprintf(stderr, "UNCLASSIFIED FAILURE %s\n",
                        results[i].job.id.c_str());
            } else {
                ++tally.failedClassified;
            }
            break;
          case service::QueryStatus::Shed:
            ++tally.shed;
            break;
        }
    }

    printf("chaos sweep: %d queries/family, %u workers\n",
           queries_per_family, workers);
    printf("%-14s %8s %8s %8s %6s %8s %9s %14s\n", "family", "matched",
           "failed", "diverged", "shed", "retries", "restarts",
           "recovCycles");
    for (const Family &family : families) {
        const FamilyTally &t = tallies[family.name];
        printf("%-14s %8d %8d %8d %6d %8u %9u %14llu\n", family.name,
               t.matched, t.failedClassified, t.diverged, t.shed,
               t.retries, t.restarts,
               (unsigned long long)t.recoveryCycles);
    }
    printf("aggregate: %llu checkpoints (%llu bytes), %llu retries, "
           "%llu restarts, %llu shed\n",
           (unsigned long long)stats.checkpoints,
           (unsigned long long)stats.checkpointBytes,
           (unsigned long long)stats.retries,
           (unsigned long long)stats.restarts,
           (unsigned long long)stats.shed);

    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        fprintf(f, "{\n  \"label\": \"chaos_recovery\",\n");
        fprintf(f, "  \"queriesPerFamily\": %d,\n  \"workers\": %u,\n",
                queries_per_family, workers);
        fprintf(f, "  \"families\": [\n");
        for (size_t i = 0; i < std::size(families); ++i) {
            const FamilyTally &t = tallies[families[i].name];
            fprintf(f,
                    "    {\"name\": \"%s\", \"matched\": %d, "
                    "\"failedClassified\": %d, \"diverged\": %d, "
                    "\"shed\": %d, \"retries\": %u, \"restarts\": %u, "
                    "\"recoveryCycles\": %llu}%s\n",
                    families[i].name, t.matched, t.failedClassified,
                    t.diverged, t.shed, t.retries, t.restarts,
                    (unsigned long long)t.recoveryCycles,
                    i + 1 < std::size(families) ? "," : "");
        }
        fprintf(f, "  ],\n");
        fprintf(f,
                "  \"stats\": {\"checkpoints\": %llu, "
                "\"checkpointBytes\": %llu, \"retries\": %llu, "
                "\"restarts\": %llu, \"shed\": %llu, "
                "\"recoveryCycles\": %llu}\n}\n",
                (unsigned long long)stats.checkpoints,
                (unsigned long long)stats.checkpointBytes,
                (unsigned long long)stats.retries,
                (unsigned long long)stats.restarts,
                (unsigned long long)stats.shed,
                (unsigned long long)stats.recoveryCycles);
        std::fclose(f);
        printf("wrote %s\n", json_path.c_str());
    }

    return divergences ? 1 : 0;
}

/**
 * Checkpoint + recovery overhead vs interval, on a fixed ~3 Mcycle
 * query. For each interval: a fault-free supervised run (checkpoint
 * cost; simulated metrics must be identical to the unsupervised
 * baseline) and a run with a page fault injected mid-query (recovery
 * cost). Prints the EXPERIMENTS.md table.
 */
int
overheadTable()
{
    // The determinate (cut) iteration: ~4.9 simulated Mcycles with a
    // flat stack, so the run crosses even the 4-Mcycle checkpoint
    // interval without piling up choice points.
    const char *goal = "itc(450, 0, S)";

    KcmOptions options;
    KcmSystem system(options);
    system.consult(chaosProgram);
    CodeImage image = system.compileOnly(goal);

    // Unsupervised baseline.
    Machine baseline_machine(options.machine);
    baseline_machine.load(image);
    auto t0 = std::chrono::steady_clock::now();
    RunStatus status = baseline_machine.run();
    double base_host = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    if (status != RunStatus::SolutionFound) {
        fprintf(stderr, "overhead: baseline run did not complete\n");
        return 2;
    }
    uint64_t base_cycles = baseline_machine.cycles();
    uint64_t base_instr = baseline_machine.instructions();

    printf("checkpoint/recovery overhead, goal %s (%llu cycles)\n\n",
           goal, (unsigned long long)base_cycles);
    printf("| interval (Mcycles) | checkpoints | snapshot bytes | "
           "host overhead | sim cycles identical | recovery cycles "
           "(mid-run fault) | recovery host ms |\n");
    printf("|---|---|---|---|---|---|---|\n");

    int rc = 0;
    for (uint64_t interval : {0ull, 1ull, 2ull, 4ull}) {
        service::SessionOptions sopt;
        sopt.machine = options.machine;
        sopt.checkpointEveryMcycles = interval;
        sopt.maxRetries = 3;
        sopt.backoffBaseMs = 0;

        // Fault-free: checkpoint cost + metric determinism.
        service::Session clean(image, sopt);
        t0 = std::chrono::steady_clock::now();
        service::QueryOutcome out = clean.run();
        double host = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        bool identical = out.cycles == base_cycles &&
                         out.instructions == base_instr;
        if (!identical)
            rc = 1; // determinism violation

        // Faulted: inject a page fault mid-run, measure recovery.
        service::SessionOptions fopt = sopt;
        FaultAction fault;
        fault.cycle = base_cycles / 2;
        fault.kind = FaultKind::InjectPageFault;
        fopt.machine.faultPlan.actions.push_back(fault);
        service::Session faulted(image, fopt);
        t0 = std::chrono::steady_clock::now();
        service::QueryOutcome fout = faulted.run();
        double fhost = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
        bool recovered =
            fout.status == service::QueryStatus::Completed &&
            fout.success && fout.cycles == base_cycles;
        if (!recovered)
            rc = 1;

        printf("| %llu | %llu | %llu | %+.0f%% | %s | %llu | %.1f |\n",
               (unsigned long long)interval,
               (unsigned long long)out.counters.checkpoints,
               (unsigned long long)out.counters.checkpointBytes,
               base_host > 0 ? (host / base_host - 1.0) * 100.0 : 0.0,
               identical ? "yes" : "NO (BUG)",
               (unsigned long long)fout.counters.recoveryCycles,
               fhost * 1e3);
    }
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    int queries = 200;
    unsigned workers = 4;
    bool overhead = false;
    std::string json_path = benchOutputPath("BENCH_chaos.json");

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--queries") && i + 1 < argc)
            queries = std::max(1, atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--workers") && i + 1 < argc)
            workers = std::max(1, atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--overhead"))
            overhead = true;
        else {
            fprintf(stderr,
                    "usage: chaos_recovery [--queries N] [--workers N] "
                    "[--json PATH] [--overhead]\n");
            return 2;
        }
    }

    try {
        return overhead ? overheadTable()
                        : chaosSweep(queries, workers, json_path);
    } catch (const std::exception &e) {
        fprintf(stderr, "chaos_recovery: %s\n", e.what());
        return 2;
    }
}
