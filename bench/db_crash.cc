/**
 * @file
 * Durable-database torture harness: kill -9 the daemon mid-assert,
 * recover, and prove nothing acked was lost and nothing unacked was
 * half-applied.
 *
 * Each iteration runs the full crash-recovery story on a fresh
 * journal directory:
 *
 *   phase A   spawn kcm_serverd --db-journal, stream mutating queries
 *             (assertz bursts, asserta fronts, retract prunes) from a
 *             deterministic schedule, recording every acked commit id
 *             (`db_commit` in the reply); a killer thread SIGKILLs the
 *             daemon at a random point mid-burst
 *   verify    offline Journal::scanFile of what survived: the tail
 *             must be clean or torn_tail (never corrupt_record — no
 *             one flipped bits), the last commit id must cover every
 *             acked commit, and may exceed it by AT MOST ONE (the
 *             single in-flight query committed-but-unacked at the
 *             kill); the replayed store must be bit-identical — same
 *             saveTo() bytes, same skiplist `scanned` counts — to an
 *             in-process oracle that re-executes exactly the
 *             recovered-commit prefix of the schedule on its own
 *             ClauseStore
 *   phase B   restart the daemon on the same directory (startup
 *             recovery replays the journal), continue the schedule
 *             from the recovered prefix, kill again, verify the
 *             cumulative journal the same way
 *   probes    restart once more and differentially probe the
 *             recovered database: daemon answers vs the fast core,
 *             the decode-per-step oracle core and the baseline
 *             interpreter running on the oracle store (fast and
 *             oracle cycles must be bit-identical); then a SIGTERM
 *             drain that must exit 0
 *
 * Every ~8th iteration additionally runs kcm_dbck --verify/--repair
 * between the phases (repair must leave a clean journal, exit 0), and
 * every ~8th (offset) compacts the journal in-process and re-verifies
 * that the snapshot-only file still replays to the same bytes.
 *
 * Sync modes and snapshot cadences are cycled across iterations so
 * kills land on always/group/none journals with and without snapshot
 * records in flight.
 *
 * Modes:
 *   (default)     torture loop; writes BENCH_db_crash.json
 *   --sync-bench  group-commit overhead table: commits/s for
 *                 always / group(1,5,20 ms) / none / no-journal,
 *                 1-op and 16-op batches; writes BENCH_db_sync.json
 *
 * Options: --iterations N (default 40; CI smoke uses a handful, the
 * acceptance run uses >= 200), --serverd PATH ($KCM_SERVERD), --dbck
 * PATH ($KCM_DBCK), --json PATH, --verbose (keep daemon stderr).
 *
 * Exit codes: 0 = every iteration recovered bit-identically with no
 * lost or half-applied commit; 1 = any loss, half-application,
 * divergence or unexpected corruption (the failing journal dir is
 * kept and printed); 2 = harness error.
 */

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "bench_support/harness.hh"
#include "bench_support/json_report.hh"
#include "db/clause_store.hh"
#include "db/journal.hh"
#include "kcm/kcm.hh"
#include "service/client.hh"

using namespace kcm;
using service::Client;
using service::ClientReply;
using service::IoStatus;

namespace
{

/** The self-contained mutation program every query carries (the
 *  daemon runs --no-stdlib; the oracle replay consults the same
 *  text). All three mutator builtins are exercised. */
const char *mutProgram = R"PROLOG(
:- dynamic(f/2).

growk(_, N, N).
growk(B, I, N) :- I < N, K is B + I, V is K + K + 1,
                  assertz(f(K, V)), I1 is I + 1, growk(B, I1, N).

burst(B, N) :- growk(B, 0, N).

front(K) :- V is K + K + 1, asserta(f(K, V)).

prune(K) :- retract(f(K, _)).
)PROLOG";

bool verbose = false;

/** Deterministic tiny PRNG (stable across runs, no global state). */
uint32_t
mix(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352d;
    x ^= x >> 15;
    x *= 0x846ca68b;
    x ^= x >> 16;
    return x;
}

std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
        out += s[i];
        if (s[i] == '_' && (i == 0 || !isalnum(s[i - 1]))) {
            while (i + 1 < s.size() && isdigit(s[i + 1]))
                ++i;
        }
    }
    return out;
}

// ------------------------------------------------------------------ //
// Mutation schedule: a deterministic stream of assert/retract goals.
// One schedule entry == one query == one journal commit.
// ------------------------------------------------------------------ //

struct MutEntry
{
    int kind = 0; ///< 0 = burst (assertz), 1 = front (asserta), 2 = prune
    int64_t a = 0, b = 0;
    std::string goal;
};

/** Track which keys are live while generating (or re-walking a prefix
 *  of) a schedule; prune only ever targets a live key. */
void
applyToLive(const MutEntry &e, std::vector<int64_t> &live)
{
    if (e.kind == 0) {
        for (int64_t j = 0; j < e.b; ++j)
            live.push_back(e.a + j);
    } else if (e.kind == 1) {
        live.push_back(e.a);
    } else {
        for (size_t i = 0; i < live.size(); ++i) {
            if (live[i] == e.a) {
                live.erase(live.begin() + ptrdiff_t(i));
                break;
            }
        }
    }
}

std::vector<MutEntry>
makeSchedule(uint32_t seed, size_t n)
{
    std::vector<MutEntry> out;
    std::vector<int64_t> live;
    int64_t next_base = 0;
    for (size_t i = 0; i < n; ++i) {
        uint32_t r = mix(seed + uint32_t(i) * 2654435761u);
        MutEntry e;
        if (live.empty() || r % 10 < 5) {
            e.kind = 0;
            e.a = next_base;
            e.b = 2 + int64_t(r % 14);
            next_base += 1000;
            e.goal = cat("burst(", e.a, ", ", e.b, ")");
        } else if (r % 10 < 8) {
            e.kind = 1;
            // Half the fronts duplicate a live key (two clauses, same
            // first argument — order matters for the probes), half
            // mint a fresh one clear of any burst range.
            e.a = r % 2 ? live[(r / 16) % live.size()]
                        : next_base - 1000 + 500 + int64_t(r % 97);
            e.goal = cat("front(", e.a, ")");
        } else {
            e.kind = 2;
            e.a = live[(r / 16) % live.size()];
            e.goal = cat("prune(", e.a, ")");
        }
        applyToLive(e, live);
        out.push_back(std::move(e));
    }
    return out;
}

// ------------------------------------------------------------------ //
// In-process oracle: re-execute schedule entries on a private store
// with the real compiler + machine — byte-for-byte what the daemon's
// sessions did for the same prefix.
// ------------------------------------------------------------------ //

void
applyEntryInProcess(const std::shared_ptr<db::ClauseStore> &store,
                    const MutEntry &e)
{
    KcmSystem system; // no stdlib, matching the daemon's --no-stdlib
    system.consult(mutProgram);
    CodeImage image = system.compileOnly(e.goal);
    Machine machine;
    machine.attachDynamicDb(store);
    machine.load(image);
    RunStatus status = machine.run();
    if (status == RunStatus::Trapped)
        fatal("oracle mutation trapped: ", e.goal, ": ",
              trapDiagnosis(machine.lastTrap()));
    if (status != RunStatus::SolutionFound)
        fatal("oracle mutation failed: ", e.goal);
}

Functor
factFunctor()
{
    return {AtomTable::instance().intern("f"), 2};
}

/** Total index nodes touched resolving @p key to exhaustion — the
 *  skiplist-shape fingerprint the bit-identity contract promises. */
uint64_t
walkScanned(db::ClauseStore &store, const TermRef &key)
{
    Functor f = factFunctor();
    if (!store.isKnown(f))
        return 0;
    db::ArgKey k = db::ArgKey::forTerm(key);
    uint64_t gen = store.generation();
    uint64_t scanned = 0;
    db::ClauseStore::LookupResult r = store.first(f, k, gen);
    while (r.clause) {
        scanned += r.scanned;
        r = store.next(f, k, gen, r.clause->seq);
    }
    return scanned + r.scanned;
}

/** Bit-identity check: saveTo bytes, generation, and scanned counts
 *  over @p probe_keys plus a full unbound walk. */
bool
storesIdentical(db::ClauseStore &got, db::ClauseStore &want,
                const std::vector<int64_t> &probe_keys, std::string &why)
{
    std::vector<uint8_t> gb, wb;
    got.saveTo(gb);
    want.saveTo(wb);
    if (gb != wb) {
        why = cat("saveTo bytes differ (", gb.size(), " vs ", wb.size(),
                  " bytes)");
        return false;
    }
    if (got.generation() != want.generation()) {
        why = cat("generation ", got.generation(), " vs ",
                  want.generation());
        return false;
    }
    for (int64_t key : probe_keys) {
        uint64_t g = walkScanned(got, Term::makeInt(key));
        uint64_t w = walkScanned(want, Term::makeInt(key));
        if (g != w) {
            why = cat("scanned(", key, ") ", g, " vs ", w);
            return false;
        }
    }
    uint64_t g = walkScanned(got, Term::makeVar("X"));
    uint64_t w = walkScanned(want, Term::makeVar("X"));
    if (g != w) {
        why = cat("scanned(unbound) ", g, " vs ", w);
        return false;
    }
    return true;
}

// ------------------------------------------------------------------ //
// Daemon management.
// ------------------------------------------------------------------ //

std::string
toolPath(const std::string &override_path, const char *env_var,
         const char *sibling)
{
    if (!override_path.empty())
        return override_path;
    if (const char *env = std::getenv(env_var))
        return env;
    char exe[4096];
    ssize_t n = readlink("/proc/self/exe", exe, sizeof exe - 1);
    if (n <= 0)
        return sibling;
    exe[n] = '\0';
    std::string dir(exe);
    size_t slash = dir.rfind('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    return dir + "/../tools/" + sibling;
}

struct Daemon
{
    pid_t pid = -1;
    int outFd = -1;
    uint16_t port = 0;

    void
    closeFd()
    {
        if (outFd >= 0) {
            ::close(outFd);
            outFd = -1;
        }
    }
};

std::string
readLineFd(int fd)
{
    std::string line;
    char c;
    while (read(fd, &c, 1) == 1) {
        if (c == '\n')
            break;
        line += c;
    }
    return line;
}

Daemon
spawnDaemon(const std::string &path, const std::vector<std::string> &extra)
{
    int pipefd[2];
    if (pipe(pipefd) < 0)
        fatal("pipe(): ", strerror(errno));

    pid_t pid = fork();
    if (pid < 0)
        fatal("fork(): ", strerror(errno));
    if (pid == 0) {
        dup2(pipefd[1], STDOUT_FILENO);
        ::close(pipefd[0]);
        ::close(pipefd[1]);
        if (!verbose) {
            // The recovery info line repeats hundreds of times across
            // a torture run; keep stderr for --verbose only.
            int null = ::open("/dev/null", O_WRONLY);
            if (null >= 0) {
                dup2(null, STDERR_FILENO);
                ::close(null);
            }
        }
        std::vector<std::string> args = {path, "--workers", "1",
                                         "--no-stdlib"};
        args.insert(args.end(), extra.begin(), extra.end());
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        execv(path.c_str(), argv.data());
        fprintf(stderr, "exec %s: %s\n", path.c_str(), strerror(errno));
        _exit(127);
    }
    ::close(pipefd[1]);

    Daemon d;
    d.pid = pid;
    d.outFd = pipefd[0];
    std::string line = readLineFd(d.outFd);
    service::JsonObject obj;
    std::string err;
    if (!service::parseJsonObject(line, obj, err) ||
        obj.find("listening") == obj.end())
        fatal("daemon did not report a port (got '", line, "')");
    d.port = uint16_t(obj["listening"].asInt());
    return d;
}

void
reapKilled(Daemon &d)
{
    if (d.pid > 0) {
        kill(d.pid, SIGKILL); // idempotent if the killer already fired
        int status = 0;
        waitpid(d.pid, &status, 0);
        d.pid = -1;
    }
    d.closeFd();
}

// ------------------------------------------------------------------ //
// The torture loop.
// ------------------------------------------------------------------ //

struct Tally
{
    int iterations = 0;
    int kills = 0;
    uint64_t acked = 0;      ///< acked commits across all phases
    uint64_t recovered = 0;  ///< commits surviving final scans
    int unackedRecovered = 0; ///< kills that landed commit-before-ack
    int torn = 0;
    int clean = 0;
    int snapshotsSeen = 0;
    int dbckRuns = 0;
    int compactions = 0;
    int probeQueries = 0;
};

struct PhaseResult
{
    uint64_t ackedHi = 0; ///< highest acked commit id
    bool broke = false;   ///< transport died (one query was in flight)
    std::string err;      ///< non-empty = protocol violation
};

/** Stream schedule entries [k_start, ...) at the daemon until the
 *  killer (random delay) takes it down. Entry k must ack as commit
 *  k+1 — commit ids are strictly sequential across restarts. */
PhaseResult
runKillPhase(Daemon &daemon, const std::vector<MutEntry> &sched,
             size_t k_start, uint64_t kill_delay_ms)
{
    PhaseResult res;
    res.ackedHi = k_start;

    std::atomic<bool> done{false};
    pid_t victim = daemon.pid;
    std::thread killer([victim, kill_delay_ms, &done] {
        uint64_t slept = 0;
        while (slept < kill_delay_ms && !done.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            slept += 2;
        }
        kill(victim, SIGKILL);
    });

    Client client;
    if (client.connect("127.0.0.1", daemon.port, 2'000)) {
        size_t k = k_start;
        while (k < sched.size()) {
            ClientReply reply =
                client.query(cat("m", k), mutProgram, sched[k].goal,
                             /*max_solutions=*/1, /*deadline_ms=*/0,
                             /*timeout_ms=*/20'000);
            if (reply.io != IoStatus::Ok || !reply.parsed) {
                res.broke = true; // the kill — entry k is in flight
                break;
            }
            if (reply.status() != "completed") {
                res.err = cat("entry ", k, " unexpected status '",
                              reply.status(), "' error '",
                              reply.str("error"), "'");
                break;
            }
            int64_t commit = reply.num("db_commit");
            if (commit != int64_t(k) + 1) {
                res.err = cat("entry ", k, " acked as commit ", commit,
                              ", expected ", k + 1);
                break;
            }
            res.ackedHi = uint64_t(k) + 1;
            ++k;
        }
    }
    done.store(true);
    killer.join();
    client.close();
    reapKilled(daemon);
    return res;
}

/** Post-kill verification: scan the journal, bound the recovered
 *  commit count, extend the oracle store to match, and compare
 *  bit-for-bit. Returns the recovered commit count via @p commits. */
bool
verifyRecovery(const std::string &jpath, const std::vector<MutEntry> &sched,
               const PhaseResult &phase,
               const std::shared_ptr<db::ClauseStore> &oracle,
               size_t &oracle_applied, uint64_t &commits,
               db::JournalScan &scan, Tally &tally, std::string &why)
{
    db::ClauseStore recovered(db::DynDbConfig{});
    scan = db::Journal::scanFile(jpath, &recovered);

    if (scan.corrupt) {
        why = cat("corrupt_record after a plain kill: ", scan.reason);
        return false;
    }
    commits = scan.lastCommitId;
    if (commits < phase.ackedHi) {
        why = cat("LOST ", phase.ackedHi - commits,
                  " acked commit(s): acked through ", phase.ackedHi,
                  ", journal has ", commits);
        return false;
    }
    uint64_t max_ok = phase.ackedHi + (phase.broke ? 1 : 0);
    if (commits > max_ok) {
        why = cat("journal has ", commits, " commits but only ",
                  phase.ackedHi, " were acked with ",
                  phase.broke ? 1 : 0, " in flight");
        return false;
    }
    if (commits > phase.ackedHi)
        ++tally.unackedRecovered;
    if (scan.torn)
        ++tally.torn;
    else
        ++tally.clean;
    tally.snapshotsSeen += int(scan.snapshots);

    // Extend the oracle to the recovered prefix and compare. A
    // half-applied batch (record atomicity broken) or any replay
    // divergence shows up as a byte or scanned-count mismatch.
    while (oracle_applied < commits)
        applyEntryInProcess(oracle, sched[oracle_applied++]);

    std::vector<int64_t> probe_keys;
    for (size_t i = 0; i < oracle_applied && probe_keys.size() < 6;
         i += 1 + oracle_applied / 6)
        probe_keys.push_back(sched[i].a);
    return storesIdentical(recovered, *oracle, probe_keys, why);
}

std::vector<std::string>
journalFlags(const std::string &dir, int iteration)
{
    static const char *syncs[] = {"group", "always", "none"};
    static const uint64_t snaps[] = {1024, 4, 0};
    std::vector<std::string> flags = {
        "--db-journal",        dir,
        "--journal-sync",      syncs[iteration % 3],
        "--journal-group-ms",  "2",
        "--journal-snapshot-every",
        std::to_string(snaps[(iteration / 3) % 3])};
    return flags;
}

int
runDbck(const std::string &dbck, const std::string &op,
        const std::string &jpath)
{
    std::string cmd = cat(dbck, " ", op, " '", jpath, "'",
                          verbose ? "" : " >/dev/null 2>&1");
    int rc = std::system(cmd.c_str());
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

/** Differential probes against the restarted daemon: answers must
 *  match the fast core, the oracle core and the baseline interpreter
 *  on the oracle store; fast and oracle cycles must be bit-identical. */
bool
runProbes(Daemon &daemon, const std::vector<MutEntry> &sched,
          size_t applied, const std::shared_ptr<db::ClauseStore> &oracle,
          Tally &tally, std::string &why)
{
    std::vector<int64_t> live;
    for (size_t i = 0; i < applied; ++i)
        applyToLive(sched[i], live);

    std::vector<int64_t> keys;
    for (size_t i = 0; i < live.size() && keys.size() < 4;
         i += 1 + live.size() / 4)
        keys.push_back(live[i]);
    for (size_t i = 0; i < applied && keys.size() < 6; ++i)
        if (sched[i].kind == 2)
            keys.push_back(sched[i].a); // pruned: first clause is gone
    keys.push_back(1'000'000'007); // never existed

    Client client;
    if (!client.connect("127.0.0.1", daemon.port, 2'000)) {
        why = "cannot connect for probes";
        return false;
    }

    KcmOptions opts; // defaults match the daemon's session config
    MachineConfig fast_cfg = opts.machine;
    MachineConfig oracle_cfg = fast_cfg;
    oracle_cfg.fastDispatch = false;

    for (size_t i = 0; i < keys.size(); ++i) {
        std::string goal = cat("f(", keys[i], ", V)");
        ClientReply reply = client.query(cat("p", i), mutProgram, goal,
                                         /*max_solutions=*/0, 0, 20'000);
        if (reply.io != IoStatus::Ok || reply.status() != "completed") {
            why = cat("probe ", goal, " did not complete: ", reply.raw);
            return false;
        }
        std::vector<std::string> daemon_answers;
        auto it = reply.fields.find("answers");
        if (it != reply.fields.end())
            for (const auto &a : it->second.items)
                daemon_answers.push_back(stripVarNumbers(a.str));

        auto runEngine = [&](const MachineConfig &cfg, uint64_t &cycles) {
            std::vector<std::string> out;
            KcmSystem system;
            system.consult(mutProgram);
            CodeImage image = system.compileOnly(goal);
            Machine machine(cfg);
            machine.attachDynamicDb(oracle);
            machine.load(image);
            RunStatus st = machine.run();
            while (st == RunStatus::SolutionFound && out.size() < 64) {
                out.push_back(stripVarNumbers(
                    machine.lastSolution().toString()));
                st = machine.nextSolution();
            }
            if (st == RunStatus::Trapped)
                fatal("probe trapped: ", goal);
            cycles = machine.cycles();
            return out;
        };
        uint64_t fast_cycles = 0, oracle_cycles = 0;
        std::vector<std::string> fast = runEngine(fast_cfg, fast_cycles);
        std::vector<std::string> orc = runEngine(oracle_cfg, oracle_cycles);

        std::vector<std::string> base;
        {
            baseline::Interpreter interp;
            interp.attachDynamicDb(oracle);
            interp.consult(mutProgram);
            baseline::InterpResult r = interp.query(goal, 64);
            for (const auto &sol : r.solutions)
                base.push_back(stripVarNumbers(sol.toString()));
        }

        if (daemon_answers != fast || fast != orc || fast != base) {
            why = cat("probe ", goal, " diverged: daemon=",
                      daemon_answers.size(), " fast=", fast.size(),
                      " oracle=", orc.size(), " baseline=", base.size(),
                      " answers");
            for (size_t n = 0; n < daemon_answers.size() && n < 3; ++n)
                why += cat(" d[", n, "]='", daemon_answers[n], "'");
            for (size_t n = 0; n < fast.size() && n < 3; ++n)
                why += cat(" f[", n, "]='", fast[n], "'");
            return false;
        }
        if (fast_cycles != oracle_cycles) {
            why = cat("probe ", goal, " fast/oracle cycles diverged: ",
                      fast_cycles, " vs ", oracle_cycles);
            return false;
        }
        ++tally.probeQueries;
    }

    // The recovery report surfaced through stats must classify the
    // startup scan honestly — clean or torn, never silently corrupt.
    ClientReply s = client.stats();
    if (s.io != IoStatus::Ok || s.status() != "ok") {
        why = "stats probe failed";
        return false;
    }
    std::string rec = s.str("journal_recovery");
    if (rec != "clean" && rec != "torn_tail") {
        why = cat("unexpected journal_recovery '", rec, "'");
        return false;
    }
    client.close();
    return true;
}

int
tortureLoop(int iterations, const std::string &serverd,
            const std::string &dbck, const std::string &json_path)
{
    Tally tally;

    for (int iter = 0; iter < iterations; ++iter) {
        uint32_t seed = mix(uint32_t(iter) * 2654435761u + 777u);
        char dir_tmpl[] = "/tmp/kcm_db_crash_XXXXXX";
        if (!mkdtemp(dir_tmpl))
            fatal("mkdtemp: ", strerror(errno));
        std::string dir = dir_tmpl;
        std::string jpath = db::Journal::journalFilePath(dir);
        std::vector<std::string> jflags = journalFlags(dir, iter);

        std::vector<MutEntry> sched = makeSchedule(seed, 400);
        auto oracle = std::make_shared<db::ClauseStore>(db::DynDbConfig{});
        size_t applied = 0;
        std::string why;
        bool failed = false;
        uint64_t commits = 0;
        db::JournalScan scan;

        // Phase A and phase B: kill, verify, restart, kill, verify.
        for (int phase = 0; phase < 2 && !failed; ++phase) {
            Daemon daemon = spawnDaemon(serverd, jflags);
            uint64_t delay = 10 + mix(seed + 31u * uint32_t(phase)) % 140;
            PhaseResult res =
                runKillPhase(daemon, sched, applied, delay);
            ++tally.kills;
            if (!res.err.empty()) {
                why = res.err;
                failed = true;
                break;
            }
            tally.acked += res.ackedHi - applied;
            if (!verifyRecovery(jpath, sched, res, oracle, applied,
                                commits, scan, tally, why)) {
                failed = true;
                break;
            }

            // Interleave the offline tooling between the phases.
            if (phase == 0 && iter % 8 == 3) {
                int v = runDbck(dbck, "--verify", jpath);
                int expect = scan.clean() ? 0 : 1;
                int r = runDbck(dbck, "--repair", jpath);
                int v2 = runDbck(dbck, "--verify", jpath);
                tally.dbckRuns += 3;
                if (v != expect || r != expect || v2 != 0) {
                    why = cat("dbck verify/repair/verify = ", v, "/", r,
                              "/", v2, ", expected ", expect, "/",
                              expect, "/0");
                    failed = true;
                    break;
                }
            }
            if (phase == 0 && iter % 8 == 6) {
                db::Journal::compactFile(jpath, db::DynDbConfig{});
                ++tally.compactions;
                db::ClauseStore compacted(db::DynDbConfig{});
                db::JournalScan cs =
                    db::Journal::scanFile(jpath, &compacted);
                if (!cs.clean() || cs.lastCommitId != commits ||
                    cs.snapshots != 1 ||
                    !storesIdentical(compacted, *oracle, {}, why)) {
                    why = cat("compaction changed the database: ", why);
                    failed = true;
                    break;
                }
            }
        }

        // Final restart: differential probes + clean SIGTERM drain.
        if (!failed) {
            Daemon daemon = spawnDaemon(serverd, jflags);
            if (!runProbes(daemon, sched, applied, oracle, tally, why)) {
                failed = true;
                reapKilled(daemon);
            } else {
                kill(daemon.pid, SIGTERM);
                int status = 0;
                waitpid(daemon.pid, &status, 0);
                daemon.pid = -1;
                daemon.closeFd();
                if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                    why = "SIGTERM drain did not exit 0";
                    failed = true;
                }
            }
        }

        if (failed) {
            fprintf(stderr,
                    "db_crash: iteration %d FAILED: %s\n"
                    "db_crash: journal kept at %s\n",
                    iter, why.c_str(), dir.c_str());
            return 1;
        }
        tally.recovered += commits;
        ++tally.iterations;
        std::string rm = cat("rm -rf '", dir, "'");
        if (std::system(rm.c_str()) != 0)
            warn("cleanup failed: ", dir);
        printf("iter %3d: commits=%llu acked=%llu tail=%s%s\n", iter,
               (unsigned long long)commits,
               (unsigned long long)tally.acked,
               scan.classification(),
               iter % 8 == 3 ? " +dbck" : iter % 8 == 6 ? " +compact" : "");
        fflush(stdout);
    }

    printf("\ndb_crash: %d iterations, %d kills; %llu acked / %llu "
           "recovered commits,\n%d commit-before-ack races, %d torn "
           "tails, %d clean tails, %d snapshots;\n%d dbck runs, %d "
           "compactions, %d differential probes — all bit-identical\n",
           tally.iterations, tally.kills,
           (unsigned long long)tally.acked,
           (unsigned long long)tally.recovered, tally.unackedRecovered,
           tally.torn, tally.clean, tally.snapshotsSeen, tally.dbckRuns,
           tally.compactions, tally.probeQueries);

    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        fprintf(f,
                "{\n  \"label\": \"db_crash\",\n"
                "  \"iterations\": %d,\n  \"kills\": %d,\n"
                "  \"ackedCommits\": %llu,\n"
                "  \"recoveredCommits\": %llu,\n"
                "  \"unackedRecovered\": %d,\n"
                "  \"tornTails\": %d,\n  \"cleanTails\": %d,\n"
                "  \"snapshots\": %d,\n  \"dbckRuns\": %d,\n"
                "  \"compactions\": %d,\n  \"probeQueries\": %d,\n"
                "  \"lostCommits\": 0,\n  \"halfApplied\": 0,\n"
                "  \"divergences\": 0\n}\n",
                tally.iterations, tally.kills,
                (unsigned long long)tally.acked,
                (unsigned long long)tally.recovered,
                tally.unackedRecovered, tally.torn, tally.clean,
                tally.snapshotsSeen, tally.dbckRuns, tally.compactions,
                tally.probeQueries);
        std::fclose(f);
        printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}

// ------------------------------------------------------------------ //
// --sync-bench: what does each fsync policy cost per commit?
// ------------------------------------------------------------------ //

struct SyncRow
{
    std::string name;
    double oneOpPerSec = 0;
    double batchPerSec = 0;
    uint64_t syncs = 0;
};

SyncRow
measureSync(const std::string &name, bool journaled,
            db::JournalOptions opts)
{
    SyncRow row;
    row.name = name;
    Functor f = factFunctor();

    for (int pass = 0; pass < 2; ++pass) {
        const uint64_t commits = pass ? 600 : 3000;
        const int64_t ops_per = pass ? 16 : 1;

        char dir_tmpl[] = "/tmp/kcm_db_sync_XXXXXX";
        if (!mkdtemp(dir_tmpl))
            fatal("mkdtemp: ", strerror(errno));
        std::string dir = dir_tmpl;

        db::ClauseStore store(db::DynDbConfig{});
        db::Journal journal;
        db::JournalScan scan;
        if (journaled)
            journal.open(dir, opts, store, scan);

        auto t0 = std::chrono::steady_clock::now();
        int64_t key = 0;
        for (uint64_t c = 0; c < commits; ++c) {
            store.beginTxn();
            for (int64_t j = 0; j < ops_per; ++j, ++key)
                store.assertClause(
                    f,
                    Term::makeStruct("f", {Term::makeInt(key),
                                           Term::makeInt(key * 2 + 1)}),
                    nullptr, false);
            if (journaled)
                journal.commit(store.txnOps());
            store.commitTxn();
        }
        double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        if (journaled) {
            if (pass == 0)
                row.syncs = journal.syncsPerformed();
            journal.close();
        }
        (pass ? row.batchPerSec : row.oneOpPerSec) =
            secs > 0 ? double(commits) / secs : 0;
        std::string rm = cat("rm -rf '", dir, "'");
        if (std::system(rm.c_str()) != 0)
            warn("cleanup failed: ", dir);
    }
    return row;
}

int
syncBench(const std::string &json_path)
{
    db::JournalOptions base;
    base.snapshotEvery = 0; // isolate the fsync cost

    auto groupOpts = [&](uint64_t ms) {
        db::JournalOptions o = base;
        o.sync = db::JournalSync::Group;
        o.groupWindowMs = ms;
        return o;
    };
    db::JournalOptions always = base;
    always.sync = db::JournalSync::Always;
    db::JournalOptions none = base;
    none.sync = db::JournalSync::None;

    std::vector<SyncRow> rows;
    rows.push_back(measureSync("no-journal", false, base));
    rows.push_back(measureSync("none", true, none));
    rows.push_back(measureSync("group-20ms", true, groupOpts(20)));
    rows.push_back(measureSync("group-5ms", true, groupOpts(5)));
    rows.push_back(measureSync("group-1ms", true, groupOpts(1)));
    rows.push_back(measureSync("always", true, always));

    double baseline = rows[0].oneOpPerSec;
    TablePrinter table({"Sync mode", "1-op commits/s", "16-op commits/s",
                        "fsyncs (3000 commits)", "overhead"});
    for (const SyncRow &r : rows) {
        double overhead =
            r.oneOpPerSec > 0 ? baseline / r.oneOpPerSec : 0;
        table.addRow({r.name, cellFixed(r.oneOpPerSec / 1e3, 1) + "k",
                      cellFixed(r.batchPerSec / 1e3, 1) + "k",
                      r.name == "no-journal" ? "-"
                                             : std::to_string(r.syncs),
                      cellFixed(overhead, 2) + "x"});
    }
    printf("Group-commit overhead: single-threaded commits/s by fsync "
           "policy\n(journal on the host filesystem; 'overhead' is "
           "no-journal rate / this rate)\n\n%s\n",
           table.render().c_str());

    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        fprintf(f, "{\n  \"label\": \"db_sync\",\n  \"rows\": [\n");
        for (size_t i = 0; i < rows.size(); ++i)
            fprintf(f,
                    "    {\"mode\": \"%s\", \"oneOpPerSec\": %.0f, "
                    "\"batch16PerSec\": %.0f, \"syncs\": %llu}%s\n",
                    rows[i].name.c_str(), rows[i].oneOpPerSec,
                    rows[i].batchPerSec,
                    (unsigned long long)rows[i].syncs,
                    i + 1 < rows.size() ? "," : "");
        fprintf(f, "  ]\n}\n");
        std::fclose(f);
        printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int iterations = 40;
    bool sync_bench = false;
    std::string serverd, dbck, json_path;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--iterations") && i + 1 < argc)
            iterations = std::max(1, atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--serverd") && i + 1 < argc)
            serverd = argv[++i];
        else if (!std::strcmp(argv[i], "--dbck") && i + 1 < argc)
            dbck = argv[++i];
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--sync-bench"))
            sync_bench = true;
        else if (!std::strcmp(argv[i], "--verbose"))
            verbose = true;
        else {
            fprintf(stderr,
                    "usage: db_crash [--iterations N] [--serverd PATH] "
                    "[--dbck PATH] [--json PATH] [--sync-bench] "
                    "[--verbose]\n");
            return 2;
        }
    }
    if (json_path.empty())
        json_path = benchOutputPath(sync_bench ? "BENCH_db_sync.json"
                                               : "BENCH_db_crash.json");

    signal(SIGPIPE, SIG_IGN);
    setLoggingEnabled(verbose);
    try {
        if (sync_bench)
            return syncBench(json_path);
        return tortureLoop(iterations,
                           toolPath(serverd, "KCM_SERVERD", "kcm_serverd"),
                           toolPath(dbck, "KCM_DBCK", "kcm_dbck"),
                           json_path);
    } catch (const std::exception &e) {
        fprintf(stderr, "db_crash: %s\n", e.what());
        return 2;
    }
}
