/**
 * @file
 * Ablation of the data-cache organisation (§2.4, §3.2.4): the KCM
 * zone-sectioned cache (8 sections of 1K selected by the zone field)
 * against a plain direct-mapped cache of the same total size, and
 * against a 2x larger plain cache — quantifying what the split-stack +
 * zone-section design buys.
 */

#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

struct CacheVariant
{
    const char *name;
    DataCacheConfig config;
};

double
run(const PlmBenchmark &bench, const DataCacheConfig &cache,
    uint64_t &cycles)
{
    KcmOptions options;
    options.compiler.ioAsUnitClauses = true;
    options.machine.mem.dataCache = cache;
    KcmSystem system(options);
    system.consult(bench.program);
    auto result = system.query(bench.queryIo);
    cycles = result.cycles;
    return system.machine().mem().dataCache().hitRatio();
}

} // namespace

int
main()
{
    setLoggingEnabled(false);

    CacheVariant variants[3];
    variants[0].name = "KCM 8x1K zoned";
    variants[0].config = DataCacheConfig{1024, 8, true, true};
    variants[1].name = "plain 8K";
    variants[1].config = DataCacheConfig{1024, 8, false, true};
    variants[2].name = "plain 16K";
    variants[2].config = DataCacheConfig{2048, 8, false, true};

    TablePrinter table({"Program", "zoned hit%", "plain-8K hit%",
                        "plain-16K hit%", "zoned cyc", "plain-8K cyc"});

    for (const auto &bench : plmSuite()) {
        double hits[3];
        uint64_t cycles[3];
        for (int v = 0; v < 3; ++v)
            hits[v] = run(bench, variants[v].config, cycles[v]);
        table.addRow({bench.name, cellFixed(hits[0] * 100, 2),
                      cellFixed(hits[1] * 100, 2),
                      cellFixed(hits[2] * 100, 2), cellInt(cycles[0]),
                      cellInt(cycles[1])});
    }

    printf("Ablation: zone-sectioned vs plain direct-mapped data cache "
           "(§3.2.4).\n\n%s\n"
           "Expected shape: at the default (well separated) stack "
           "layout both organisations\nperform similarly; the zoned "
           "design's advantage is that its behaviour cannot\ndegrade "
           "when stack tops drift to colliding cache indices (see "
           "cache_collision).\n",
           table.render().c_str());
    return 0;
}
