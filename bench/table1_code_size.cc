/**
 * @file
 * Reproduces Table 1: static code size comparison (KCM vs PLM vs
 * SPUR) over the PLM suite, compiled with integer arithmetic and
 * static linking, runtime library excluded (§4.1).
 *
 * The PLM and SPUR columns are the published figures (Dobry et al.,
 * Borriello et al.), exactly as in the paper; the KCM columns are
 * measured from our compiler's linked image. KCM instructions are 8
 * bytes; switch instructions are the only multi-word ones.
 */

#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "bench_support/paper_data.hh"
#include "kcm/kcm.hh"

using namespace kcm;

int
main()
{
    setLoggingEnabled(false);

    TablePrinter table({"Program", "PLM i", "PLM B", "SPUR i", "SPUR B",
                        "KCM i", "KCM w", "KCM B", "KCM/PLM i",
                        "KCM/PLM B", "SPUR/KCM i", "SPUR/KCM B",
                        "KCM i(paper)", "KCM w(paper)"});

    double sum_kcm_plm_i = 0;
    double sum_kcm_plm_b = 0;
    double sum_spur_kcm_i = 0;
    double sum_spur_kcm_b = 0;
    int rows = 0;

    for (const auto &paper : paperTable1()) {
        const PlmBenchmark &bench = plmBenchmark(paper.program);

        KcmOptions options;
        options.compiler.ioAsUnitClauses = true;
        KcmSystem system(options);
        system.consult(bench.program);
        CodeImage image = system.compileOnly(bench.queryIo);

        size_t instr = 0;
        size_t words = 0;
        image.programSize(instr, words);
        size_t bytes = words * 8;

        double kcm_plm_i = double(instr) / paper.plmInstr;
        double kcm_plm_b = double(bytes) / paper.plmBytes;
        double spur_kcm_i = double(paper.spurInstr) / double(instr);
        double spur_kcm_b = double(paper.spurBytes) / double(bytes);
        sum_kcm_plm_i += kcm_plm_i;
        sum_kcm_plm_b += kcm_plm_b;
        sum_spur_kcm_i += spur_kcm_i;
        sum_spur_kcm_b += spur_kcm_b;
        ++rows;

        table.addRow({paper.program, cellInt(paper.plmInstr),
                      cellInt(paper.plmBytes), cellInt(paper.spurInstr),
                      cellInt(paper.spurBytes), cellInt(instr),
                      cellInt(words), cellInt(bytes),
                      cellRatio(kcm_plm_i), cellRatio(kcm_plm_b),
                      cellRatio(spur_kcm_i), cellRatio(spur_kcm_b),
                      cellInt(paper.kcmInstrPaper),
                      cellInt(paper.kcmWordsPaper)});
    }

    table.addRow({"average", "", "", "", "", "", "", "",
                  cellRatio(sum_kcm_plm_i / rows),
                  cellRatio(sum_kcm_plm_b / rows),
                  cellRatio(sum_spur_kcm_i / rows),
                  cellRatio(sum_spur_kcm_b / rows), "", ""});

    printf("Table 1: Static code size comparison "
           "(paper's average ratios: KCM/PLM instr 1.10, bytes 2.96; "
           "SPUR/KCM instr 13.61, bytes 6.43)\n\n%s\n",
           table.render().c_str());
    return 0;
}
