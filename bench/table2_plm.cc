/**
 * @file
 * Reproduces Table 2: execution time comparison with the PLM (§4.2).
 *
 * The PLM columns carry the published simulation figures from Dobry
 * et al. [4] — exactly the comparison method of the paper. The KCM
 * columns are measured on our cycle-level simulator with write/1 and
 * nl/0 compiled as unit clauses (a call costs the minimal 5-cycle
 * call/return pair), mirroring the paper's I/O assumption.
 *
 * Usage: table2_plm [--jobs N] [--timeout SECONDS]
 *   N benchmark Machines execute concurrently (default: the host's
 *   hardware concurrency; 1 reproduces the serial harness exactly).
 *   --timeout arms a per-benchmark wall-clock watchdog. A benchmark
 *   that traps or times out is reported as failed (with its trap
 *   diagnosis) while the rest of the table completes; any failure
 *   turns the exit code to 2. Results are always printed in table
 *   order and a BENCH_table2.json report is written to the working
 *   directory.
 */

#include <chrono>
#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "bench_support/json_report.hh"
#include "bench_support/paper_data.hh"

using namespace kcm;

int
main(int argc, char **argv)
try {
    setLoggingEnabled(false);
    unsigned jobs = benchJobsFromArgs(argc, argv);
    double watchdog = benchWatchdogFromArgs(argc, argv);

    std::vector<std::string> names;
    for (const auto &paper : paperTable2())
        names.push_back(paper.program);

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<BenchRun> runs =
        runPlmBenchmarks(names, /*pure=*/false, {}, jobs, watchdog);
    double wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    TablePrinter table({"Program", "Inf", "PLM ms", "PLM Klips",
                        "KCM ms", "KCM Klips", "PLM/KCM",
                        "KCM ms(paper)", "PLM/KCM(paper)"});

    double sum_ratio = 0;
    int rows = 0;
    int failures = 0;

    size_t i = 0;
    for (const auto &paper : paperTable2()) {
        const BenchRun &run = runs[i++];

        if (!run.success || run.ms <= 0) {
            ++failures;
            table.addRow({paper.program, "-", cellFixed(paper.plmMs, 3),
                          cellInt(paper.plmKlips), "FAILED", "-", "-",
                          cellFixed(paper.kcmMsPaper, 3),
                          cellRatio(paper.plmMs / paper.kcmMsPaper)});
            continue;
        }

        double ratio = paper.plmMs / run.ms;
        sum_ratio += ratio;
        ++rows;

        table.addRow(
            {paper.program, cellInt(run.inferences),
             cellFixed(paper.plmMs, 3), cellInt(paper.plmKlips),
             cellFixed(run.ms, 3), cellInt(uint64_t(run.klips + 0.5)),
             cellRatio(ratio), cellFixed(paper.kcmMsPaper, 3),
             cellRatio(paper.plmMs / paper.kcmMsPaper)});
    }

    table.addRow({"average", "", "", "", "", "",
                  rows ? cellRatio(sum_ratio / rows) : "-", "",
                  cellRatio(3.05)});

    printf("Table 2: Comparison with PLM "
           "(paper: KCM is 2-4x faster than PLM, average ratio 3.05)\n\n"
           "%s\n",
           table.render().c_str());

    for (const BenchRun &run : runs) {
        if (!run.failure.empty())
            printf("FAILED %s: %s\n", run.name.c_str(),
                   run.failure.c_str());
    }

    writeBenchJson("BENCH_table2.json", "table2", runs, jobs, wall_seconds);
    return failures ? benchTrapExitCode : 0;
} catch (const std::exception &err) {
    printf("FATAL: %s\n", err.what());
    return benchTrapExitCode;
}
