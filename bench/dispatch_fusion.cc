/**
 * @file
 * Superinstruction-fusion micro-benchmark: steady-state host
 * throughput of the fast core with fusion off, static and profiled,
 * over the PLM suite.
 *
 * The PLM programs are sub-millisecond, so a whole-run measurement
 * (Machine construction + warm-up + one measured run, as
 * host_throughput reports) is dominated by setup and says nothing
 * about the dispatch loop. This driver isolates the execution core:
 * per benchmark and per fusion mode it builds one machine, warms it
 * up, then repeats the measured-run phase — reload warm
 * (`load(image, cold_caches=false)` + `resetMeasurement()`), run —
 * until enough host time accumulates, and reports simulated cycles
 * per host second of that steady-state loop alone.
 *
 * On the way it holds fusion to its contract: all three modes must
 * agree bit-identically on every simulated metric (cycles,
 * instructions, inferences, cache hit ratios, physical memory words);
 * fusion may only change host-side dispatch counts.
 *
 * Usage: dispatch_fusion [--min-seconds S] [--timeout SECONDS]
 *                        [--profile-in FILE] [--profile-out FILE]
 *   Writes BENCH_host.json (label "dispatch_fusion", profiled-mode
 *   steady-state numbers) to the working directory. Exit 1 on any
 *   cross-mode metric disagreement, 2 on trap/compile failure.
 *
 * --profile-out persists the union of every per-benchmark profiling
 * pre-pass as a kcm-seqprofile text file; --profile-in reloads such a
 * file and seeds the profiled mode's fused-sequence selection from it,
 * so no pre-pass runs at all — the deployment shape, where profiling
 * happens once offline and every later run just loads the histogram.
 */

#include <chrono>
#include <cstdio>
#include <cstring>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "bench_support/json_report.hh"

using namespace kcm;

namespace
{

/** Steady-state measurement of the run phase only. */
struct SteadyRate
{
    uint64_t cycles = 0;      ///< per-run simulated cycles
    uint64_t dispatches = 0;  ///< per-run host dispatches
    uint64_t fusedHeads = 0;  ///< per-run fused-sequence heads
    unsigned reps = 0;
    double hostSeconds = 0;   ///< total host time of all reps
    double cyclesPerSecond = 0;
    bool failed = false;
};

/**
 * Repeat the measured-run protocol on one machine until
 * @p min_seconds of host time accumulate. The warm-up run and every
 * reload are outside the timed region; only run() itself is timed.
 * Reps are grouped into batches and the best batch rate is reported —
 * the paper's own "best figure obtained on 4 successive runs on a
 * quiet system" convention, which rejects scheduler noise spikes.
 */
SteadyRate
measureSteady(const PreparedBenchmark &prep, double min_seconds)
{
    SteadyRate rate;
    Machine machine(prep.machine);
    machine.load(prep.image);
    if (machine.run() == RunStatus::Trapped) {
        rate.failed = true;
        return rate;
    }

    // One timed rep sizes the batches (~25 ms each, >= 4 batches).
    auto timedRun = [&]() -> double {
        machine.load(prep.image, /*cold_caches=*/false);
        machine.resetMeasurement();
        auto t0 = std::chrono::steady_clock::now();
        RunStatus status = machine.run();
        double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
        if (status == RunStatus::Trapped)
            rate.failed = true;
        return s;
    };
    double first = timedRun();
    if (rate.failed)
        return rate;
    rate.cycles = machine.cycles();
    rate.dispatches = machine.dispatches();
    rate.fusedHeads = machine.fusedDispatches();
    rate.hostSeconds = first;
    rate.reps = 1;

    double batch_target = std::min(0.025, min_seconds / 4);
    unsigned batch_reps = std::max(
        1u, unsigned(batch_target / std::max(first, 1e-9)));

    double best_rate = 0;
    while (rate.hostSeconds < min_seconds) {
        double batch_seconds = 0;
        for (unsigned r = 0; r < batch_reps; ++r) {
            batch_seconds += timedRun();
            if (rate.failed)
                return rate;
        }
        rate.hostSeconds += batch_seconds;
        rate.reps += batch_reps;
        double batch_rate =
            batch_seconds > 0
                ? double(rate.cycles) * batch_reps / batch_seconds
                : 0;
        best_rate = std::max(best_rate, batch_rate);
    }
    rate.cyclesPerSecond = best_rate;
    return rate;
}

double
minSecondsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--min-seconds") == 0)
            return std::max(0.01, std::strtod(argv[i + 1], nullptr));
    }
    return 0.2;
}

} // namespace

int
main(int argc, char **argv)
try {
    setLoggingEnabled(false);
    double min_seconds = minSecondsFromArgs(argc, argv);
    double watchdog = benchWatchdogFromArgs(argc, argv);
    std::string profile_in = benchProfileInFromArgs(argc, argv);
    std::string profile_out = benchProfileOutFromArgs(argc, argv);

    KcmOptions off_options;
    off_options.machine.fastDispatch = true;
    off_options.machine.fusion.mode = FusionConfig::Mode::Off;
    KcmOptions static_options = off_options;
    static_options.machine.fusion.mode = FusionConfig::Mode::Static;
    KcmOptions profiled_options = off_options;
    profiled_options.machine.fusion.mode = FusionConfig::Mode::Profiled;

    if (!profile_in.empty()) {
        // Seed fusion from the persisted histogram: a non-empty
        // selection makes every profiled preparation skip its
        // per-benchmark pre-pass.
        SequenceProfile seed = loadSequenceProfileFile(profile_in);
        profiled_options.machine.fusion.sequences =
            selectFusedSequences(seed, 12);
        if (profiled_options.machine.fusion.sequences.empty())
            fatal(profile_in, ": profile selects no fused sequences");
    }
    SequenceProfile collected;

    TablePrinter table({"Program", "cycles", "disp off", "disp prof",
                        "saved", "Mcyc/s off", "Mcyc/s stat",
                        "Mcyc/s prof", "prof/off", "identical"});

    std::vector<BenchRun> report;
    bool all_identical = true;
    int failures = 0;
    double sum_speedup = 0;
    int rows = 0;

    auto wall_start = std::chrono::steady_clock::now();
    for (const PlmBenchmark &bench : plmSuite()) {
        // One whole-run measurement per mode checks the bit-identity
        // contract (and, for profiled, performs the profiling pass as
        // part of preparation).
        BenchRun off = runPlmBenchmark(bench, /*pure=*/true, off_options,
                                       watchdog);
        BenchRun stat = runPlmBenchmark(bench, /*pure=*/true,
                                        static_options, watchdog);
        BenchRun prof = runPlmBenchmark(bench, /*pure=*/true,
                                        profiled_options, watchdog,
                                        profile_out.empty() ? nullptr
                                                            : &collected);
        if (!off.failure.empty() || !stat.failure.empty() ||
            !prof.failure.empty()) {
            ++failures;
            report.push_back(prof);
            table.addRow({bench.name, "-", "-", "-", "-", "-", "-", "-",
                          "-", "FAILED"});
            continue;
        }

        auto same = [&](const BenchRun &a, const BenchRun &b) {
            return a.cycles == b.cycles &&
                   a.instructions == b.instructions &&
                   a.inferences == b.inferences &&
                   a.dcacheHitRatio == b.dcacheHitRatio &&
                   a.icacheHitRatio == b.icacheHitRatio &&
                   a.memoryWords == b.memoryWords;
        };
        bool identical = same(off, stat) && same(off, prof);
        all_identical = all_identical && identical;

        // Steady-state throughput of the dispatch loop itself.
        SteadyRate r_off = measureSteady(
            preparePlmBenchmark(bench, true, off_options), min_seconds);
        SteadyRate r_stat = measureSteady(
            preparePlmBenchmark(bench, true, static_options), min_seconds);
        SteadyRate r_prof = measureSteady(
            preparePlmBenchmark(bench, true, profiled_options),
            min_seconds);
        if (r_off.failed || r_stat.failed || r_prof.failed) {
            ++failures;
            report.push_back(prof);
            table.addRow({bench.name, "-", "-", "-", "-", "-", "-", "-",
                          "-", "FAILED"});
            continue;
        }

        double speedup = r_off.cyclesPerSecond > 0
                             ? r_prof.cyclesPerSecond /
                                   r_off.cyclesPerSecond
                             : 0;
        sum_speedup += speedup;
        ++rows;

        double saved =
            r_off.dispatches > 0
                ? 100.0 *
                      double(r_off.dispatches - r_prof.dispatches) /
                      double(r_off.dispatches)
                : 0;
        table.addRow({bench.name, cellInt(r_prof.cycles),
                      cellInt(r_off.dispatches),
                      cellInt(r_prof.dispatches),
                      cellFixed(saved, 0) + "%",
                      cellFixed(r_off.cyclesPerSecond / 1e6, 1),
                      cellFixed(r_stat.cyclesPerSecond / 1e6, 1),
                      cellFixed(r_prof.cyclesPerSecond / 1e6, 1),
                      cellRatio(speedup), identical ? "yes" : "NO"});

        // The JSON record carries the profiled-mode steady state: the
        // number tracked commit-over-commit is the fused dispatch
        // loop's throughput, setup excluded.
        prof.hostSeconds = r_prof.hostSeconds / r_prof.reps;
        prof.simCyclesPerHostSecond = r_prof.cyclesPerSecond;
        prof.dispatches = r_prof.dispatches;
        prof.fusedDispatches = r_prof.fusedHeads;
        report.push_back(prof);
    }
    double wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    printf("Superinstruction fusion: steady-state dispatch-loop "
           "throughput\n(per benchmark: one warm machine per mode, "
           "measured-run phase repeated for >= %.2fs host time;\n"
           "simulated metrics must be bit-identical across fusion "
           "modes)\n\n%s\n",
           min_seconds, table.render().c_str());
    if (rows)
        printf("average profiled/off steady-state speedup: %.2fx\n",
               sum_speedup / rows);

    writeBenchJson("BENCH_host.json", "dispatch_fusion", report, 1,
                   wall_seconds);

    if (!profile_out.empty()) {
        if (collected.empty())
            printf("warning: --profile-out with --profile-in (or all "
                   "benchmarks failed): no pre-pass ran, nothing to "
                   "persist\n");
        else
            saveSequenceProfileFile(profile_out, collected);
    }

    if (!all_identical) {
        printf("ERROR: fusion modes disagree on simulated metrics\n");
        return 1;
    }
    return failures ? benchTrapExitCode : 0;
} catch (const std::exception &err) {
    printf("FATAL: %s\n", err.what());
    return benchTrapExitCode;
}
