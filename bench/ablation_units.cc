/**
 * @file
 * Ablation of KCM's specialized hardware units — the §5 evaluation
 * study ("the influence of each specialized unit (trail,
 * dereferencing, RAC, double port register file...) on the overall
 * performance"), run here over the PLM suite.
 *
 * Each run disables one unit, replacing it with a plausible
 * non-specialized implementation:
 *   - trail comparators: serialized boundary checks (2 cycles/bind)
 *   - dereference path:  no speculative cache start (2 cycles/ref)
 *   - RAC block moves:   per-word address setup (2 cycles/word)
 *   - dual-port regfile: register moves cost a cycle
 */

#include <cstdio>

#include "base/logging.hh"
#include "bench_support/harness.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

uint64_t
suiteCycles(const MachineConfig &machine_config)
{
    uint64_t total = 0;
    for (const auto &bench : plmSuite()) {
        KcmOptions options;
        options.compiler.ioAsUnitClauses = true;
        options.machine = machine_config;
        KcmSystem system(options);
        system.consult(bench.program);
        auto result = system.query(bench.queryIo);
        if (!result.success)
            fatal("benchmark failed: ", bench.name);
        total += result.cycles;
    }
    return total;
}

} // namespace

int
main()
{
    setLoggingEnabled(false);

    struct Variant
    {
        const char *name;
        void (*disable)(MachineConfig &);
    };
    const Variant variants[] = {
        {"full KCM (all units)", [](MachineConfig &) {}},
        {"- trail comparators",
         [](MachineConfig &c) { c.parallelTrailCheck = false; }},
        {"- dereference path",
         [](MachineConfig &c) { c.fastDereference = false; }},
        {"- RAC block moves",
         [](MachineConfig &c) { c.racBlockMoves = false; }},
        {"- dual-port regfile",
         [](MachineConfig &c) { c.dualPortRegisterFile = false; }},
        {"- shallow backtracking",
         [](MachineConfig &c) { c.shallowBacktracking = false; }},
        {"none of the above", [](MachineConfig &c) {
             c.parallelTrailCheck = false;
             c.fastDereference = false;
             c.racBlockMoves = false;
             c.dualPortRegisterFile = false;
             c.shallowBacktracking = false;
         }},
    };

    MachineConfig baseline_config;
    uint64_t baseline = suiteCycles(baseline_config);

    TablePrinter table({"Configuration", "suite cycles", "slowdown"});
    for (const auto &variant : variants) {
        MachineConfig config;
        variant.disable(config);
        uint64_t cycles = suiteCycles(config);
        table.addRow({variant.name, cellInt(cycles),
                      cellRatio(double(cycles) / double(baseline))});
    }

    printf("Ablation of the specialized units (§5) over the whole PLM "
           "suite\n(Table 2 measurement conventions).\n\n%s\n"
           "Expected shape: each unit contributes a measurable share, "
           "shallow\nbacktracking being the largest single win; removing "
           "everything costs\naround 2x — the gap between KCM and a "
           "conventional microcoded WAM.\n",
           table.render().c_str());
    return 0;
}
