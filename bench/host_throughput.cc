/**
 * @file
 * Host-side throughput of the simulator itself: runs the full PLM
 * suite on both execution cores — the predecoded token-threaded fast
 * path and the decode-per-step oracle — and reports host wall time,
 * simulated-cycles-per-host-second and the fast/oracle speedup per
 * benchmark. Verifies on the way that both cores agree on every
 * simulated metric (they must be bit-identical).
 *
 * Usage: host_throughput [--jobs N] [--timeout SECONDS]
 *   Writes BENCH_host.json (fast-path numbers) to the working
 *   directory. A benchmark that traps or exceeds the watchdog is
 *   reported as failed (exit code 2); core disagreement exits 1.
 */

#include <chrono>
#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "bench_support/json_report.hh"

using namespace kcm;

int
main(int argc, char **argv)
try {
    setLoggingEnabled(false);
    unsigned jobs = benchJobsFromArgs(argc, argv);
    double watchdog = benchWatchdogFromArgs(argc, argv);

    KcmOptions fast_options;
    fast_options.machine.fastDispatch = true;
    KcmOptions oracle_options;
    oracle_options.machine.fastDispatch = false;

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<BenchRun> fast =
        runPlmSuite(/*pure=*/true, fast_options, jobs, watchdog);
    double wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    std::vector<BenchRun> oracle =
        runPlmSuite(/*pure=*/true, oracle_options, jobs, watchdog);

    TablePrinter table({"Program", "cycles", "Mcyc/s fast",
                        "Mcyc/s oracle", "fast/oracle", "identical"});

    double sum_speedup = 0;
    int rows = 0;
    bool all_identical = true;
    int failures = 0;

    for (size_t i = 0; i < fast.size(); ++i) {
        const BenchRun &f = fast[i];
        const BenchRun &o = oracle[i];
        if (!f.failure.empty() || !o.failure.empty()) {
            // Both cores must fail the same way; a one-sided failure
            // is a divergence.
            ++failures;
            all_identical =
                all_identical && f.trapped == o.trapped &&
                f.failure.empty() == o.failure.empty();
            table.addRow({f.name, "-", "-", "-", "-", "FAILED"});
            continue;
        }
        bool identical = f.cycles == o.cycles &&
                         f.instructions == o.instructions &&
                         f.inferences == o.inferences &&
                         f.dcacheHitRatio == o.dcacheHitRatio &&
                         f.icacheHitRatio == o.icacheHitRatio &&
                         f.memoryWords == o.memoryWords;
        all_identical = all_identical && identical;

        double speedup = o.hostSeconds > 0 && f.hostSeconds > 0
                             ? o.hostSeconds / f.hostSeconds
                             : 0;
        sum_speedup += speedup;
        ++rows;

        table.addRow({f.name, cellInt(f.cycles),
                      cellFixed(f.simCyclesPerHostSecond / 1e6, 1),
                      cellFixed(o.simCyclesPerHostSecond / 1e6, 1),
                      cellRatio(speedup), identical ? "yes" : "NO"});
    }

    table.addRow({"average", "", "", "",
                  rows ? cellRatio(sum_speedup / rows) : "-",
                  all_identical ? "yes" : "NO"});

    printf("Host execution-core throughput "
           "(fast = predecoded token-threaded dispatch, oracle = "
           "decode per step; simulated metrics must match exactly)\n\n"
           "%s\n",
           table.render().c_str());

    for (size_t i = 0; i < fast.size(); ++i) {
        if (!fast[i].failure.empty())
            printf("FAILED %s (fast): %s\n", fast[i].name.c_str(),
                   fast[i].failure.c_str());
        if (!oracle[i].failure.empty())
            printf("FAILED %s (oracle): %s\n", oracle[i].name.c_str(),
                   oracle[i].failure.c_str());
    }

    writeBenchJson("BENCH_host.json", "host_throughput", fast, jobs,
                   wall_seconds);

    if (!all_identical) {
        printf("ERROR: fast and oracle cores disagree on simulated "
               "metrics\n");
        return 1;
    }
    return failures ? benchTrapExitCode : 0;
} catch (const std::exception &err) {
    printf("FATAL: %s\n", err.what());
    return benchTrapExitCode;
}
