/**
 * @file
 * Network chaos harness: the always-on query server under hostile
 * clients and a hostile network.
 *
 * Spawns a real kcm_serverd daemon (fork/exec, ephemeral port), then
 * drives it with N concurrent clients whose workload is laced with
 * five fault families:
 *
 *   clean        well-behaved query/reply round trips (the carrier —
 *                every other family also issues real queries)
 *   garbage      binary/malformed frames before a real query; the
 *                server must answer "bad_request" and keep the
 *                connection serviceable
 *   slow_loris   requests trickled byte-by-byte; a trickle inside the
 *                read deadline must succeed, one past it must be
 *                rejected and the connection closed
 *   drop         the client sends a query and vanishes mid-flight
 *                (RST, no read); the server must complete the query
 *                and survive the dead socket
 *   corrupt      the "corrupt_cache" chaos hook flips a bit in the
 *                warm snapshot-template cache right before a query
 *                that would hit it; the checksum layers must eat the
 *                corruption (evict + recompile) — never a wrong answer
 *   straggler    real queries carrying "chaos_slice_delay_us": the
 *                executing worker sleeps at every governor slice
 *                boundary, simulating a degraded host. The reply must
 *                still be bit-identical (the delay is host-side only);
 *                when the supervisor hedges, the clean duplicate's
 *                answer is the same answer
 *   mem_hog      real queries carrying a 1 MiB "memory_budget_bytes"
 *                with heap-hungry work: every one must fail *classified*
 *                — resource_error(memory), or circuit_open once the
 *                shape's breaker trips — never complete, never hang
 *   journal_corrupt  a sequential pre-phase with its own durable
 *                daemon (--db-journal): commit a few mutations, drain
 *                cleanly, flip one payload byte in a mid-file journal
 *                record, restart — the daemon must classify the scan
 *                as corrupt_record, truncate the suspect suffix, and
 *                serve exactly the surviving-prefix database (verified
 *                against an offline Journal::scanFile replay); never a
 *                silent swallow, never a half-applied batch
 *
 * plus a kill-and-restart event: mid-run the daemon is SIGKILLed and
 * a fresh one spawned; every in-flight query classifies as a
 * connection failure and every client reconnects and carries on.
 *
 * Two deterministic sequential phases run before the sweep, each
 * against its own daemon:
 *
 *   hedge        a single straggler query under aggressive hedging
 *                (--hedge-min-ms 10): the monitor must launch a clean
 *                duplicate, the duplicate must win, and the delivered
 *                answer must match the oracle — asserted via the
 *                hedges / hedge_wins stats counters
 *   breaker      a query shape driven through the full circuit-breaker
 *                lifecycle: two classified failures open it, the next
 *                arrival fast-fails "circuit_open" with a retry hint,
 *                and after the cooldown the half-open probe completes
 *                and closes it — asserted via the breaker_* counters
 *
 * Every completed reply is checked bit-identical against the baseline
 * interpreter (the differential oracle); everything else must be a
 * *classified* failure (a structured server reply or an expected
 * transport event). An unclassified outcome or a divergent answer
 * fails the harness, as does a daemon crash or a drain that loses an
 * accepted query: the final SIGTERM must yield exit 0 with
 * accepted == replied.
 *
 * Modes:
 *   (default)      chaos sweep; writes BENCH_server_chaos.json
 *   --cache-bench  warm-cache speedup: compile+link+download vs
 *                  snapshot-template restore, measured both in-process
 *                  and as client-observed latency; writes
 *                  BENCH_server_cache.json
 *
 * Options: --clients N (default 10), --queries N (per client, default
 * 60), --serverd PATH (default: sibling ../tools/kcm_serverd, or
 * $KCM_SERVERD), --json PATH, --no-kill (skip the kill-restart event;
 * the TSan CI leg uses it — SIGKILL mid-write is outside TSan's
 * supported model).
 *
 * Exit codes: 0 = every query matched or failed classified and the
 * drain was clean; 1 = divergence / lost query / daemon crash;
 * 2 = harness error.
 */

#include <pthread.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "bench_support/json_report.hh"
#include "core/snapshot.hh"
#include "db/clause_store.hh"
#include "db/journal.hh"
#include "kcm/kcm.hh"
#include "service/client.hh"

using namespace kcm;
using service::Client;
using service::ClientReply;
using service::IoStatus;

namespace
{

const char *chaosProgram = R"PROLOG(
sumto(0, 0).
sumto(N, S) :- N > 0, M is N - 1, sumto(M, T), S is T + N.

mklist(0, []).
mklist(N, [N|T]) :- N > 0, M is N - 1, mklist(M, T).

app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).

rev([], []).
rev([H|T], R) :- rev(T, RT), app(RT, [H], R).

suml([], A, A).
suml([H|T], A, S) :- B is A + H, suml(T, B, S).

revsum(N, S) :- mklist(N, L), rev(L, R), suml(R, 0, S).

sumc(0, 0).
sumc(N, S) :- N > 0, !, M is N - 1, sumc(M, T), S is T + N.

itc(0, A, A).
itc(N, A, S) :- N > 0, !, sumc(200, T), B is A + T, M is N - 1,
                itc(M, B, S).
)PROLOG";

/** Normalize fresh-variable numbering (_NNN differs per process). */
std::string
stripVarNumbers(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
        out += s[i];
        if (s[i] == '_' && (i == 0 || !isalnum(s[i - 1]))) {
            while (i + 1 < s.size() && isdigit(s[i + 1]))
                ++i;
        }
    }
    return out;
}

// ------------------------------------------------------------------ //
// Oracle: the baseline interpreter, big-stack pthread + answer cache
// (same pattern as chaos_recovery).
// ------------------------------------------------------------------ //

struct OracleTask
{
    baseline::Interpreter *interp = nullptr;
    const std::string *goal = nullptr;
    std::string answers;
    std::string error;
};

void *
oracleThreadMain(void *arg)
{
    auto *task = static_cast<OracleTask *>(arg);
    baseline::InterpResult res = task->interp->query(*task->goal, 1);
    for (const auto &s : res.solutions)
        task->answers += stripVarNumbers(s.toString()) + ";";
    task->error = res.error;
    return nullptr;
}

class Oracle
{
  public:
    Oracle() { interp_.consult(chaosProgram); }

    /** (answers, error) for @p goal, first solution only. */
    std::pair<std::string, std::string>
    answer(const std::string &goal)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(goal);
        if (it != cache_.end())
            return it->second;
        OracleTask task;
        task.interp = &interp_;
        task.goal = &goal;
        pthread_attr_t attr;
        pthread_attr_init(&attr);
        pthread_attr_setstacksize(&attr, size_t(1) << 30);
        pthread_t tid;
        if (pthread_create(&tid, &attr, oracleThreadMain, &task) != 0)
            fatal("cannot spawn oracle thread");
        pthread_join(tid, nullptr);
        pthread_attr_destroy(&attr);
        auto entry = std::make_pair(task.answers, task.error);
        cache_[goal] = entry;
        return entry;
    }

  private:
    std::mutex mutex_;
    baseline::Interpreter interp_;
    std::map<std::string, std::pair<std::string, std::string>> cache_;
};

// ------------------------------------------------------------------ //
// Daemon management: fork/exec kcm_serverd, ephemeral port reported
// on its stdout; SIGKILL for the crash family, SIGTERM for the final
// drain assertion.
// ------------------------------------------------------------------ //

std::string
serverdPath(const std::string &override_path)
{
    if (!override_path.empty())
        return override_path;
    if (const char *env = std::getenv("KCM_SERVERD"))
        return env;
    // Sibling of this binary: build/bench/server_chaos →
    // build/tools/kcm_serverd.
    char exe[4096];
    ssize_t n = readlink("/proc/self/exe", exe, sizeof exe - 1);
    if (n <= 0)
        return "kcm_serverd";
    exe[n] = '\0';
    std::string dir(exe);
    size_t slash = dir.rfind('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    return dir + "/../tools/kcm_serverd";
}

struct Daemon
{
    pid_t pid = -1;
    int outFd = -1; ///< daemon stdout (port line, final drain line)
    uint16_t port = 0;

    void
    closeFd()
    {
        if (outFd >= 0) {
            ::close(outFd);
            outFd = -1;
        }
    }
};

/** Read one '\n'-terminated line from @p fd (blocking, short reads). */
std::string
readLineFd(int fd)
{
    std::string line;
    char c;
    while (read(fd, &c, 1) == 1) {
        if (c == '\n')
            break;
        line += c;
    }
    return line;
}

Daemon
spawnDaemon(const std::string &path,
            const std::vector<std::string> &extra = {})
{
    int pipefd[2];
    if (pipe(pipefd) < 0)
        fatal("pipe(): ", strerror(errno));

    pid_t pid = fork();
    if (pid < 0)
        fatal("fork(): ", strerror(errno));
    if (pid == 0) {
        // Child: stdout → pipe, exec the daemon.
        dup2(pipefd[1], STDOUT_FILENO);
        ::close(pipefd[0]);
        ::close(pipefd[1]);
        std::vector<std::string> args = {
            path,        "--chaos-hooks",     "--workers",
            "4",         "--queue-depth",     "256",
            "--deadline-ms", "20000",         "--checkpoint-every",
            "1",         "--read-deadline-ms", "800",
            "--idle-timeout-ms", "30000",     "--drain-grace-ms",
            "8000"};
        args.insert(args.end(), extra.begin(), extra.end());
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        execv(path.c_str(), argv.data());
        fprintf(stderr, "exec %s: %s\n", path.c_str(), strerror(errno));
        _exit(127);
    }
    ::close(pipefd[1]);

    Daemon d;
    d.pid = pid;
    d.outFd = pipefd[0];
    std::string line = readLineFd(d.outFd);
    service::JsonObject obj;
    std::string err;
    if (!service::parseJsonObject(line, obj, err) ||
        obj.find("listening") == obj.end())
        fatal("daemon did not report a port (got '", line, "')");
    d.port = uint16_t(obj["listening"].asInt());
    return d;
}

// ------------------------------------------------------------------ //
// The sweep.
// ------------------------------------------------------------------ //

/** Shared daemon endpoint, updated across kill-and-restart. */
struct Endpoint
{
    std::atomic<uint16_t> port{0};
    std::atomic<uint32_t> generation{0};
    std::atomic<bool> restarting{false};
};

struct Tally
{
    int matched = 0;  ///< completed, bit-identical to the oracle
    int diverged = 0; ///< the bug class this harness exists for
    std::map<std::string, int> classified; ///< every other outcome
};

struct SweepShared
{
    Endpoint endpoint;
    Oracle oracle;
    std::atomic<int> issued{0};
    std::mutex tallyMutex;
    std::map<std::string, Tally> tallies; ///< per family
};

/** Deterministic tiny PRNG (no global state, stable across runs). */
uint32_t
mix(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352d;
    x ^= x >> 15;
    x *= 0x846ca68b;
    x ^= x >> 16;
    return x;
}

std::string
goalFor(uint32_t seed)
{
    // A pool of ~50 distinct goals: small enough that even a short
    // smoke burst repeats some (program, goal) keys and exercises the
    // warm-template hit path, large enough that the LRU cache still
    // churns under the full sweep.
    uint32_t r = mix(seed * 2654435761u + 12345u);
    if (r % 4 == 0)
        return cat("revsum(", 10 + (r >> 4) % 10, ", S)");
    return cat("sumto(", 100 + (r >> 4) % 40, ", S)");
}

void
bump(SweepShared &shared, const std::string &family,
     const std::string &klass)
{
    std::lock_guard<std::mutex> lock(shared.tallyMutex);
    ++shared.tallies[family].classified[klass];
}

/** Connect to the current endpoint, retrying across a restart. */
bool
connectCurrent(Client &client, Endpoint &endpoint)
{
    for (int attempt = 0; attempt < 100; ++attempt) {
        uint16_t port = endpoint.port.load();
        if (port && client.connect("127.0.0.1", port, 2'000))
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return false;
}

/** Issue one real query and verify it against the oracle. Returns
 *  false when the connection needs to be re-established. A nonzero
 *  @p slice_delay_us rides along as "chaos_slice_delay_us" (the
 *  straggler family) — host-side only, so the answer contract is
 *  unchanged. */
bool
verifiedQuery(Client &client, SweepShared &shared,
              const std::string &family, const std::string &id,
              const std::string &goal, uint64_t slice_delay_us = 0)
{
    uint32_t gen = shared.endpoint.generation.load();
    service::JsonWriter w;
    w.field("op", "query")
        .field("id", id)
        .field("program", chaosProgram)
        .field("goal", goal)
        .field("max_solutions", uint64_t(1));
    if (slice_delay_us)
        w.field("chaos_slice_delay_us", slice_delay_us);
    ClientReply reply;
    if (client.sendLine(w.str()) != IoStatus::Ok)
        reply.io = IoStatus::Closed;
    else
        reply = client.readReply(60'000);
    ++shared.issued;

    if (reply.io != IoStatus::Ok || !reply.parsed) {
        // Transport breakage. Expected — and classified — when the
        // daemon was killed under us; anything else is still a
        // classified transport event, never a silent loss.
        bool killed = shared.endpoint.generation.load() != gen ||
                      shared.endpoint.restarting.load();
        bump(shared, family,
             killed ? "daemon_killed"
                    : cat("transport_",
                          service::ioStatusName(reply.io)));
        return false;
    }

    const std::string status = reply.status();
    if (status == "completed") {
        auto [want_answers, want_error] = shared.oracle.answer(goal);
        std::string got;
        auto it = reply.fields.find("answers");
        if (it != reply.fields.end())
            for (const auto &a : it->second.items)
                got += stripVarNumbers(a.str) + ";";
        std::string got_error = reply.str("error");
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        if (got == want_answers && got_error == want_error) {
            ++shared.tallies[family].matched;
        } else {
            ++shared.tallies[family].diverged;
            fprintf(stderr,
                    "DIVERGENCE %s goal=%s\n  server: '%s' err='%s'\n"
                    "  oracle: '%s' err='%s'\n",
                    id.c_str(), goal.c_str(), got.c_str(),
                    got_error.c_str(), want_answers.c_str(),
                    want_error.c_str());
        }
        return true;
    }
    if (status == "failed" || status == "overloaded" ||
        status == "bad_request") {
        // A structured, classified server-side failure.
        std::string klass = reply.str("error");
        bump(shared, family,
             klass.empty() ? status : cat(status, ":", klass));
        return true;
    }
    bump(shared, family, cat("unexpected_status:", status));
    std::lock_guard<std::mutex> lock(shared.tallyMutex);
    ++shared.tallies[family].diverged;
    return true;
}

void
clientMain(SweepShared &shared, int client_id, int queries)
{
    Client client;
    if (!connectCurrent(client, shared.endpoint)) {
        bump(shared, "clean", "never_connected");
        return;
    }

    static const char *families[] = {"clean",   "garbage",
                                     "slow_loris", "drop",
                                     "corrupt", "straggler",
                                     "mem_hog"};
    for (int i = 0; i < queries; ++i) {
        uint32_t seed = uint32_t(client_id) * 10'000 + uint32_t(i);
        const std::string family = families[(client_id + i) % 7];
        const std::string goal = goalFor(seed);
        const std::string id = cat("c", client_id, "/q", i);

        if (!client.connected() &&
            !connectCurrent(client, shared.endpoint)) {
            bump(shared, family, "reconnect_failed");
            return;
        }

        bool ok = true;
        if (family == "clean") {
            ok = verifiedQuery(client, shared, family, id, goal);
        } else if (family == "garbage") {
            // A garbage frame (binary junk, unterminated JSON, raw
            // control bytes) must yield bad_request and leave the
            // connection usable for the real query that follows.
            static const char *frames[] = {
                "\x01\x02\xff\xfe binary junk",
                "{\"op\": \"query\", \"program\": ",
                "]]]}{{{",
                "{\"op\": [\"nested\", {\"not\": \"allowed\"}]}",
            };
            std::string frame = frames[mix(seed) % 4];
            if (client.sendLine(frame) != IoStatus::Ok) {
                bump(shared, family, "transport_send");
                ok = false;
            } else {
                ClientReply r = client.readReply(10'000);
                if (r.io == IoStatus::Ok &&
                    r.status() == "bad_request") {
                    bump(shared, family, "garbage_rejected");
                    ok = verifiedQuery(client, shared, family, id,
                                       goal);
                } else {
                    bump(shared, family,
                         cat("garbage_unrejected:",
                             service::ioStatusName(r.io)));
                    ok = false;
                }
            }
        } else if (family == "slow_loris") {
            service::JsonWriter w;
            w.field("op", "query")
                .field("id", id)
                .field("program", chaosProgram)
                .field("goal", goal)
                .field("max_solutions", uint64_t(1));
            std::string frame = w.str() + "\n";
            if (mix(seed + 7) % 2 == 0) {
                // Inside the read deadline (800 ms): ~6 large chunks,
                // 25 ms apart. Must be served normally.
                IoStatus st = client.sendSlowly(
                    frame, frame.size() / 6 + 1, 25);
                ++shared.issued;
                if (st != IoStatus::Ok) {
                    bump(shared, family, "transport_send");
                    ok = false;
                } else {
                    ClientReply r = client.readReply(60'000);
                    if (r.io == IoStatus::Ok &&
                        r.status() == "completed") {
                        auto [want, want_err] =
                            shared.oracle.answer(goal);
                        std::string got;
                        auto itf = r.fields.find("answers");
                        if (itf != r.fields.end())
                            for (const auto &a : itf->second.items)
                                got += stripVarNumbers(a.str) + ";";
                        std::lock_guard<std::mutex> lock(
                            shared.tallyMutex);
                        if (got == want &&
                            r.str("error") == want_err) {
                            ++shared.tallies[family].matched;
                        } else {
                            ++shared.tallies[family].diverged;
                            fprintf(stderr,
                                    "DIVERGENCE (slow) %s\n",
                                    id.c_str());
                        }
                    } else if (r.io == IoStatus::Ok) {
                        bump(shared, family,
                             cat("slow_ok_variant:", r.status()));
                    } else {
                        bump(shared, family,
                             cat("slow_ok_transport:",
                                 service::ioStatusName(r.io)));
                        ok = false;
                    }
                }
            } else {
                // Past the read deadline: trickle ~2.5 s of a frame.
                // The server must reject and close — if it serves the
                // request anyway, the slow-loris bound is broken.
                IoStatus st = client.sendSlowly(
                    frame.substr(0, 50), 5, 250);
                ClientReply r = client.readReply(10'000);
                if (r.io == IoStatus::Ok &&
                    r.status() == "bad_request") {
                    bump(shared, family, "loris_rejected");
                } else if (r.io == IoStatus::Closed ||
                           st != IoStatus::Ok) {
                    bump(shared, family, "loris_closed");
                } else {
                    bump(shared, family, "loris_not_rejected");
                    std::lock_guard<std::mutex> lock(
                        shared.tallyMutex);
                    ++shared.tallies[family].diverged;
                }
                client.close();
                ok = false; // reconnect
            }
        } else if (family == "drop") {
            // Send a real query and vanish (RST, nothing read). The
            // daemon still executes and replies into the dead socket;
            // its accounting must absorb that without crashing.
            service::JsonWriter w;
            w.field("op", "query")
                .field("id", id)
                .field("program", chaosProgram)
                .field("goal", goal)
                .field("max_solutions", uint64_t(1));
            if (client.sendLine(w.str()) == IoStatus::Ok) {
                ++shared.issued;
                bump(shared, family, "client_aborted");
            } else {
                bump(shared, family, "transport_send");
            }
            client.abort();
            ok = false; // reconnect
        } else if (family == "corrupt") {
            // Flip a bit in the hottest cache template, then query:
            // the checksum layers must turn the corruption into a
            // recompile, never into a wrong answer.
            if (client.sendLine("{\"op\": \"corrupt_cache\"}") ==
                IoStatus::Ok) {
                ClientReply ack = client.readReply(10'000);
                if (ack.io != IoStatus::Ok) {
                    bump(shared, family, "corrupt_ack_lost");
                    ok = false;
                } else {
                    ok = verifiedQuery(client, shared, family, id,
                                       goal);
                }
            } else {
                bump(shared, family, "transport_send");
                ok = false;
            }
        } else if (family == "straggler") {
            // A degraded worker: multi-slice work with a per-slice
            // host delay. The answer contract is untouched — if the
            // supervisor hedges it onto a clean worker, the duplicate
            // is bit-identical by construction and the oracle check
            // below holds for whichever attempt wins.
            ok = verifiedQuery(client, shared, family, id,
                               "itc(200, 0, S)",
                               /*slice_delay_us=*/20'000);
        } else { // mem_hog
            // A 1 MiB budget against multi-MiB work: the reply must
            // be a *classified* failure — resource_error(memory), or
            // circuit_open once this shape's breaker trips — never a
            // completion, never a hang.
            service::JsonWriter w;
            w.field("op", "query")
                .field("id", id)
                .field("program", chaosProgram)
                .field("goal", "mklist(200000, L)")
                .field("max_solutions", uint64_t(1))
                .field("memory_budget_bytes", uint64_t(1) << 20);
            if (client.sendLine(w.str()) != IoStatus::Ok) {
                bump(shared, family, "transport_send");
                ok = false;
            } else {
                ClientReply r = client.readReply(60'000);
                ++shared.issued;
                if (r.io != IoStatus::Ok) {
                    bool killed = shared.endpoint.restarting.load();
                    bump(shared, family,
                         killed ? "daemon_killed"
                                : cat("transport_",
                                      service::ioStatusName(r.io)));
                    ok = false;
                } else if (r.status() == "completed") {
                    // The budget was ignored: that is the bug class.
                    std::lock_guard<std::mutex> lock(
                        shared.tallyMutex);
                    ++shared.tallies[family].diverged;
                    fprintf(stderr,
                            "DIVERGENCE %s: mem_hog completed past "
                            "its budget\n", id.c_str());
                } else {
                    std::string klass = r.str("error");
                    bump(shared, family,
                         klass.empty() ? r.status()
                                       : cat(r.status(), ":", klass));
                }
            }
        }

        if (!ok)
            client.close();
    }
}

// ------------------------------------------------------------------ //
// journal_corrupt: bit rot in the durable database's journal. A
// sequential phase with its own daemon — commit, drain, flip one
// payload byte mid-file, restart, and hold the daemon to the
// corrupt_record contract: report it, truncate the suffix, serve
// exactly the surviving prefix.
// ------------------------------------------------------------------ //

void
journalCorruptPhase(const std::string &serverd, SweepShared &shared)
{
    const char *family = "journal_corrupt";
    const char *db_program = ":- dynamic(g/1).\nadd(K) :- assertz(g(K)).\n";
    const int commits = 6;

    auto diverge = [&](const std::string &why) {
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        ++shared.tallies[family].diverged;
        fprintf(stderr, "journal_corrupt: %s\n", why.c_str());
    };

    char dir_tmpl[] = "/tmp/kcm_chaos_journal_XXXXXX";
    if (!mkdtemp(dir_tmpl))
        fatal("mkdtemp(): ", strerror(errno));
    std::string dir = dir_tmpl;
    std::string jpath = db::Journal::journalFilePath(dir);
    std::vector<std::string> jflags = {"--db-journal", dir,
                                       "--journal-sync", "always",
                                       "--journal-snapshot-every", "0"};

    // Build a small committed history, then drain cleanly.
    {
        Daemon daemon = spawnDaemon(serverd, jflags);
        Client client;
        if (!client.connect("127.0.0.1", daemon.port, 2'000)) {
            diverge("cannot connect to the durable daemon");
            return;
        }
        for (int i = 0; i < commits; ++i) {
            ClientReply r = client.query(cat("jc", i), db_program,
                                         cat("add(", i, ")"), 1, 0,
                                         30'000);
            if (r.io != IoStatus::Ok || r.status() != "completed" ||
                r.num("db_commit") != i + 1) {
                diverge(cat("mutation ", i, " not acked as commit ",
                            i + 1, ": ", r.raw));
                return;
            }
        }
        client.close();
        kill(daemon.pid, SIGTERM);
        int status = 0;
        waitpid(daemon.pid, &status, 0);
        std::string drain = readLineFd(daemon.outFd);
        daemon.closeFd();
        service::JsonObject obj;
        std::string err;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
            !service::parseJsonObject(drain, obj, err) ||
            obj["journal_commits"].asInt() != commits) {
            diverge(cat("clean drain did not report ", commits,
                        " journal commits: ", drain));
            return;
        }
        bump(shared, family, "history_committed");
    }

    // Flip one payload byte in a mid-file commit record. The record
    // header is 24 bytes (type, reserved, length, checksum); +24 is
    // the first payload byte.
    db::JournalScan before = db::Journal::scanFile(jpath, nullptr);
    if (!before.clean() || before.commits != commits ||
        before.recordOffsets.size() != size_t(commits)) {
        diverge("pre-corruption journal is not the committed history");
        return;
    }
    const int cut = commits / 2; // records [cut..) must be dropped
    {
        std::FILE *f = std::fopen(jpath.c_str(), "r+b");
        if (!f)
            fatal("cannot reopen ", jpath);
        long off = long(before.recordOffsets[size_t(cut)]) + 24;
        std::fseek(f, off, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, off, SEEK_SET);
        std::fputc(c ^ 0x40, f);
        std::fclose(f);
    }

    // The offline oracle: the corrupted file must classify as
    // corrupt_record and replay exactly the pre-corruption prefix.
    db::ClauseStore replayed{db::DynDbConfig{}};
    db::JournalScan after = db::Journal::scanFile(jpath, &replayed);
    Functor g{AtomTable::instance().intern("g"), 1};
    if (std::string(after.classification()) != "corrupt_record" ||
        after.lastCommitId != uint64_t(cut) ||
        replayed.liveClauseCount(g) != uint64_t(cut)) {
        diverge(cat("offline scan: tail=", after.classification(),
                    " lastCommit=", after.lastCommitId, " live=",
                    replayed.liveClauseCount(g), ", expected "
                    "corrupt_record/", cut, "/", cut));
        return;
    }
    bump(shared, family, "corruption_classified");

    // Restart on the damaged journal: startup recovery must report
    // the corruption, truncate the suffix, and serve the surviving
    // prefix — bit rot is loud, never a wrong answer.
    {
        Daemon daemon = spawnDaemon(serverd, jflags);
        Client client;
        if (!client.connect("127.0.0.1", daemon.port, 2'000)) {
            diverge("cannot reconnect after corruption");
            return;
        }
        ClientReply s = client.stats();
        if (s.io != IoStatus::Ok ||
            s.str("journal_recovery") != "corrupt_record" ||
            s.num("journal_recovered_commits") != cut ||
            s.num("journal_truncated_bytes") <= 0) {
            diverge(cat("stats hide the corruption: ", s.raw));
            return;
        }
        bump(shared, family, "recovery_reported");
        for (int i = 0; i < commits; ++i) {
            ClientReply r = client.query(cat("jp", i), db_program,
                                         cat("g(", i, ")"), 0, 0,
                                         30'000);
            bool want_live = i < cut;
            bool got_live = false;
            auto it = r.fields.find("answers");
            if (it != r.fields.end())
                got_live = !it->second.items.empty();
            if (r.io != IoStatus::Ok || r.status() != "completed" ||
                got_live != want_live) {
                diverge(cat("probe g(", i, "): live=", got_live,
                            " want=", want_live, ": ", r.raw));
                return;
            }
            std::lock_guard<std::mutex> lock(shared.tallyMutex);
            ++shared.tallies[family].matched;
        }
        client.close();
        kill(daemon.pid, SIGTERM);
        int status = 0;
        waitpid(daemon.pid, &status, 0);
        daemon.closeFd();
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            diverge("post-corruption drain did not exit 0");
            return;
        }
        bump(shared, family, "drain_clean");
    }
    std::string rm = cat("rm -rf '", dir, "'");
    if (std::system(rm.c_str()) != 0)
        fprintf(stderr, "journal_corrupt: cleanup failed: %s\n",
                dir.c_str());
}

// ------------------------------------------------------------------ //
// hedge: a single straggler under aggressive hedging. Deterministic:
// the primary sleeps 40 ms at every 1-Mcycle slice boundary, the
// monitor's threshold is 10 ms, and two workers sit idle — the clean
// duplicate must launch, win, and deliver the oracle's answer.
// ------------------------------------------------------------------ //

void
hedgePhase(const std::string &serverd, SweepShared &shared)
{
    const char *family = "hedge";
    auto diverge = [&](const std::string &why) {
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        ++shared.tallies[family].diverged;
        fprintf(stderr, "hedge: %s\n", why.c_str());
    };

    Daemon daemon = spawnDaemon(
        serverd, {"--workers", "2", "--hedge-min-ms", "10",
                  "--hedge-poll-ms", "1"});
    Client client;
    if (!client.connect("127.0.0.1", daemon.port, 2'000)) {
        diverge("cannot connect to the hedging daemon");
        return;
    }

    const std::string goal = "itc(300, 0, S)";
    service::JsonWriter w;
    w.field("op", "query")
        .field("id", "hedge0")
        .field("program", chaosProgram)
        .field("goal", goal)
        .field("max_solutions", uint64_t(1))
        .field("chaos_slice_delay_us", uint64_t(40'000));
    if (client.sendLine(w.str()) != IoStatus::Ok) {
        diverge("cannot send the straggler query");
        return;
    }
    ClientReply reply = client.readReply(120'000);
    if (reply.io != IoStatus::Ok || reply.status() != "completed") {
        diverge(cat("straggler did not complete: ", reply.raw));
        return;
    }
    auto [want, want_err] = shared.oracle.answer(goal);
    std::string got;
    if (auto it = reply.fields.find("answers"); it != reply.fields.end())
        for (const auto &a : it->second.items)
            got += stripVarNumbers(a.str) + ";";
    if (got != want || reply.str("error") != want_err) {
        diverge(cat("hedged answer diverges: got '", got, "' want '",
                    want, "'"));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        ++shared.tallies[family].matched;
    }

    ClientReply s = client.stats();
    if (s.io != IoStatus::Ok || s.num("hedges") < 1 ||
        s.num("hedge_wins") < 1) {
        diverge(cat("no hedge win observed: ", s.raw));
        return;
    }
    bump(shared, family, "hedge_win_observed");

    client.close();
    kill(daemon.pid, SIGTERM);
    int status = 0;
    waitpid(daemon.pid, &status, 0);
    daemon.closeFd();
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        diverge("hedging daemon drain did not exit 0");
        return;
    }
    bump(shared, family, "drain_clean");
}

// ------------------------------------------------------------------ //
// breaker: one query shape driven around the full breaker lifecycle
// — open on repeated classified failures, fast-fail while open,
// half-open probe after the cooldown, closed on the probe's success.
// ------------------------------------------------------------------ //

void
breakerPhase(const std::string &serverd, SweepShared &shared)
{
    const char *family = "breaker";
    auto diverge = [&](const std::string &why) {
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        ++shared.tallies[family].diverged;
        fprintf(stderr, "breaker: %s\n", why.c_str());
    };

    Daemon daemon = spawnDaemon(
        serverd, {"--retries", "0", "--breaker-threshold", "2",
                  "--breaker-open-ms", "300"});
    Client client;
    if (!client.connect("127.0.0.1", daemon.port, 2'000)) {
        diverge("cannot connect to the breaker daemon");
        return;
    }
    const std::string goal = "itc(500, 0, S)";

    // Two killer-deadline failures open the shape's breaker (the
    // shape hash ignores deadlines, so the later deadline-free
    // queries are the *same* shape).
    for (int i = 0; i < 2; ++i) {
        ClientReply r = client.query(cat("bk", i), chaosProgram, goal,
                                     1, /*deadline_ms=*/1, 60'000);
        if (r.io != IoStatus::Ok || r.status() != "failed" ||
            r.str("error") != "deadline_exceeded") {
            diverge(cat("failure ", i, " not classified: ", r.raw));
            return;
        }
    }
    bump(shared, family, "opened_on_failures");

    // While open: fast-fail with a retry hint, zero machine cycles.
    ClientReply fast = client.query("bkfast", chaosProgram, goal, 1,
                                    0, 60'000);
    if (fast.io != IoStatus::Ok || fast.str("error") != "circuit_open" ||
        fast.num("retry_after_ms") <= 0) {
        diverge(cat("open breaker did not fast-fail: ", fast.raw));
        return;
    }
    bump(shared, family, "fast_failed_while_open");

    // After the cooldown the half-open probe is admitted; without the
    // killer deadline it completes — and must match the oracle.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    ClientReply probe = client.query("bkprobe", chaosProgram, goal, 1,
                                     0, 120'000);
    if (probe.io != IoStatus::Ok || probe.status() != "completed") {
        diverge(cat("probe did not complete: ", probe.raw));
        return;
    }
    auto [want, want_err] = shared.oracle.answer(goal);
    std::string got;
    if (auto it = probe.fields.find("answers"); it != probe.fields.end())
        for (const auto &a : it->second.items)
            got += stripVarNumbers(a.str) + ";";
    if (got != want || probe.str("error") != want_err) {
        diverge(cat("probe answer diverges: got '", got, "'"));
        return;
    }
    {
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        ++shared.tallies[family].matched;
    }

    ClientReply s = client.stats();
    if (s.io != IoStatus::Ok || s.num("breaker_open") != 1 ||
        s.num("breaker_closed") != 1 || s.num("breaker_probes") != 1 ||
        s.num("breaker_fast_fails") < 1 ||
        s.num("breaker_open_shapes") != 0) {
        diverge(cat("breaker lifecycle counters wrong: ", s.raw));
        return;
    }
    bump(shared, family, "closed_via_probe");

    client.close();
    kill(daemon.pid, SIGTERM);
    int status = 0;
    waitpid(daemon.pid, &status, 0);
    daemon.closeFd();
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        diverge("breaker daemon drain did not exit 0");
        return;
    }
    bump(shared, family, "drain_clean");
}

int
chaosSweep(int clients, int queries_per_client,
           const std::string &serverd, const std::string &json_path,
           bool kill_restart)
{
    SweepShared shared;

    // The deterministic sequential phases run first, each against its
    // own daemon; their failures count as divergences in the shared
    // tally.
    journalCorruptPhase(serverd, shared);
    hedgePhase(serverd, shared);
    breakerPhase(serverd, shared);

    Daemon daemon = spawnDaemon(serverd);
    shared.endpoint.port.store(daemon.port);
    printf("server_chaos: daemon pid %d on port %u; %d clients x %d "
           "queries\n",
           int(daemon.pid), unsigned(daemon.port), clients,
           queries_per_client);

    std::vector<std::thread> threads;
    threads.reserve(size_t(clients));
    for (int c = 0; c < clients; ++c)
        threads.emplace_back(
            [&shared, c, queries_per_client] {
                clientMain(shared, c, queries_per_client);
            });

    // Kill-and-restart: once half the workload is through, SIGKILL
    // the daemon mid-flight and bring up a fresh one. Clients classify
    // the breakage and carry on against the new instance.
    const int total = clients * queries_per_client;
    int restarts = 0;
    if (kill_restart) {
        while (shared.issued.load() < total / 2)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        shared.endpoint.restarting.store(true);
        kill(daemon.pid, SIGKILL);
        int status = 0;
        waitpid(daemon.pid, &status, 0);
        daemon.closeFd();
        printf("server_chaos: SIGKILLed daemon pid %d mid-run\n",
               int(daemon.pid));
        daemon = spawnDaemon(serverd);
        shared.endpoint.port.store(daemon.port);
        shared.endpoint.generation.fetch_add(1);
        shared.endpoint.restarting.store(false);
        ++restarts;
        printf("server_chaos: restarted as pid %d on port %u\n",
               int(daemon.pid), unsigned(daemon.port));
    }

    for (std::thread &t : threads)
        t.join();

    // The daemon must still be alive and serviceable.
    int status = 0;
    if (waitpid(daemon.pid, &status, WNOHANG) != 0) {
        fprintf(stderr, "server_chaos: daemon died during the sweep\n");
        return 1;
    }
    uint64_t cache_hits = 0, cache_corrupt = 0;
    std::string stats_raw;
    {
        Client probe;
        if (!probe.connect("127.0.0.1", daemon.port, 2'000)) {
            fprintf(stderr,
                    "server_chaos: daemon unreachable after sweep\n");
            return 1;
        }
        ClientReply s = probe.stats();
        if (s.io != IoStatus::Ok || s.status() != "ok") {
            fprintf(stderr, "server_chaos: stats probe failed\n");
            return 1;
        }
        stats_raw = s.raw;
        cache_hits = uint64_t(s.num("cache_hits"));
        cache_corrupt = uint64_t(s.num("cache_corrupt_evictions") +
                                 s.num("corrupt_retries"));
    }

    // Final drain: SIGTERM must exit 0 and lose no accepted query.
    kill(daemon.pid, SIGTERM);
    waitpid(daemon.pid, &status, 0);
    bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::string drain_line = readLineFd(daemon.outFd);
    daemon.closeFd();
    uint64_t accepted = 0, replied = 0;
    {
        service::JsonObject obj;
        std::string err;
        if (service::parseJsonObject(drain_line, obj, err)) {
            accepted = uint64_t(obj["accepted"].asInt());
            replied = uint64_t(obj["replied"].asInt());
        }
    }

    // ---- report ----
    int diverged = 0, matched = 0, classified = 0;
    printf("\n%-12s %8s %8s  %s\n", "family", "matched", "diverged",
           "classified");
    {
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        for (const auto &[family, tally] : shared.tallies) {
            matched += tally.matched;
            diverged += tally.diverged;
            std::string detail;
            for (const auto &[klass, n] : tally.classified) {
                classified += n;
                detail += cat(klass, "=", n, " ");
            }
            printf("%-12s %8d %8d  %s\n", family.c_str(),
                   tally.matched, tally.diverged, detail.c_str());
        }
    }
    printf("\ndrain: exit %s, accepted=%llu replied=%llu; "
           "cache_hits=%llu corrupt_evictions+retries=%llu; "
           "restarts=%d\n",
           clean_exit ? "0" : "NONZERO",
           (unsigned long long)accepted, (unsigned long long)replied,
           (unsigned long long)cache_hits,
           (unsigned long long)cache_corrupt, restarts);

    // Post-mortem dump: the final daemon stats snapshot and drain
    // summary, written unconditionally so a failing CI run can attach
    // them as artifacts.
    {
        std::string dump = benchOutputPath("server_chaos_stats_dump.json");
        if (std::FILE *f = std::fopen(dump.c_str(), "w")) {
            fprintf(f, "{\"stats\": %s,\n \"drain\": %s}\n",
                    stats_raw.empty() ? "null" : stats_raw.c_str(),
                    drain_line.empty() ? "null" : drain_line.c_str());
            std::fclose(f);
            printf("wrote %s\n", dump.c_str());
        }
    }

    bool lost = accepted != replied;
    bool no_hits = cache_hits == 0;
    if (diverged)
        fprintf(stderr, "server_chaos: %d divergences\n", diverged);
    if (!clean_exit)
        fprintf(stderr, "server_chaos: drain exit was not 0\n");
    if (lost)
        fprintf(stderr, "server_chaos: drain lost %lld replies\n",
                (long long)accepted - (long long)replied);
    if (no_hits)
        fprintf(stderr, "server_chaos: warm cache never hit\n");

    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        fprintf(f, "{\n  \"label\": \"server_chaos\",\n");
        fprintf(f,
                "  \"clients\": %d,\n  \"queriesPerClient\": %d,\n"
                "  \"restarts\": %d,\n",
                clients, queries_per_client, restarts);
        fprintf(f, "  \"families\": [\n");
        std::lock_guard<std::mutex> lock(shared.tallyMutex);
        size_t fi = 0;
        for (const auto &[family, tally] : shared.tallies) {
            fprintf(f,
                    "    {\"name\": \"%s\", \"matched\": %d, "
                    "\"diverged\": %d, \"classified\": {",
                    family.c_str(), tally.matched, tally.diverged);
            size_t ci = 0;
            for (const auto &[klass, n] : tally.classified)
                fprintf(f, "%s\"%s\": %d",
                        ci++ ? ", " : "", klass.c_str(), n);
            fprintf(f, "}}%s\n",
                    ++fi < shared.tallies.size() ? "," : "");
        }
        fprintf(f, "  ],\n");
        fprintf(f,
                "  \"drain\": {\"cleanExit\": %s, \"accepted\": %llu, "
                "\"replied\": %llu},\n"
                "  \"cacheHits\": %llu,\n"
                "  \"corruptEvictions\": %llu\n}\n",
                clean_exit ? "true" : "false",
                (unsigned long long)accepted,
                (unsigned long long)replied,
                (unsigned long long)cache_hits,
                (unsigned long long)cache_corrupt);
        std::fclose(f);
        printf("wrote %s\n", json_path.c_str());
    }

    return (diverged || !clean_exit || lost || no_hits) ? 1 : 0;
}

// ------------------------------------------------------------------ //
// --cache-bench: what does the warm template actually buy?
// ------------------------------------------------------------------ //

int
cacheBench(const std::string &serverd, const std::string &json_path)
{
    const std::string goal = "revsum(25, S)";
    const int reps = 20;

    // In-process: the miss path (consult + compile + static link +
    // download + snapshot) vs the hit path (restore the template).
    using Clock = std::chrono::steady_clock;
    double compile_us = 0, restore_us = 0;
    Snapshot tmpl;
    for (int i = 0; i < reps; ++i) {
        auto t0 = Clock::now();
        KcmSystem system;
        system.consultStandardLibrary(); // the server's miss path
        system.consult(chaosProgram);
        CodeImage image = system.compileOnly(goal);
        Machine machine;
        machine.load(image);
        Snapshot snap = takeSnapshot(machine);
        compile_us += std::chrono::duration<double, std::micro>(
                          Clock::now() - t0)
                          .count();
        tmpl = std::move(snap);
    }
    for (int i = 0; i < reps; ++i) {
        auto t0 = Clock::now();
        Machine machine;
        restoreSnapshot(machine, tmpl);
        restore_us += std::chrono::duration<double, std::micro>(
                          Clock::now() - t0)
                          .count();
    }
    compile_us /= reps;
    restore_us /= reps;

    // Client-observed: end-to-end latency of the first (miss) query
    // vs the mean of the warm repeats, against a real daemon.
    Daemon daemon = spawnDaemon(serverd);
    Client client;
    if (!client.connect("127.0.0.1", daemon.port, 2'000)) {
        fprintf(stderr, "cache-bench: cannot connect\n");
        return 2;
    }
    auto timedQuery = [&](int i) -> double {
        auto t0 = Clock::now();
        ClientReply r = client.query(cat("b", i), chaosProgram, goal,
                                     1, 0, 60'000);
        if (r.io != IoStatus::Ok || r.status() != "completed") {
            fprintf(stderr, "cache-bench: query %d failed (%s)\n", i,
                    r.raw.c_str());
            return -1;
        }
        return std::chrono::duration<double, std::micro>(Clock::now() -
                                                         t0)
            .count();
    };
    double miss_us = timedQuery(0);
    double hit_us = 0;
    for (int i = 1; i <= reps; ++i) {
        double us = timedQuery(i);
        if (us < 0 || miss_us < 0)
            return 1;
        hit_us += us;
    }
    hit_us /= reps;

    ClientReply s = client.stats();
    uint64_t hits = uint64_t(s.num("cache_hits"));
    client.close();
    kill(daemon.pid, SIGTERM);
    int status = 0;
    waitpid(daemon.pid, &status, 0);
    daemon.closeFd();

    printf("warm-cache speedup (%d reps, goal %s):\n", reps,
           goal.c_str());
    printf("  in-process: compile+link+download %.0f us, template "
           "restore %.0f us  -> %.1fx\n",
           compile_us, restore_us, compile_us / restore_us);
    printf("  client-observed: cold %.0f us, warm %.0f us -> %.1fx "
           "(cache_hits=%llu)\n",
           miss_us, hit_us, miss_us / hit_us,
           (unsigned long long)hits);

    if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
        fprintf(f,
                "{\n  \"label\": \"server_cache\",\n  \"reps\": %d,\n"
                "  \"compileMicros\": %.1f,\n"
                "  \"restoreMicros\": %.1f,\n"
                "  \"inProcessSpeedup\": %.2f,\n"
                "  \"clientColdMicros\": %.1f,\n"
                "  \"clientWarmMicros\": %.1f,\n"
                "  \"clientSpeedup\": %.2f,\n"
                "  \"cacheHits\": %llu\n}\n",
                reps, compile_us, restore_us, compile_us / restore_us,
                miss_us, hit_us, miss_us / hit_us,
                (unsigned long long)hits);
        std::fclose(f);
        printf("wrote %s\n", json_path.c_str());
    }

    return hits == 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    int clients = 10;
    int queries = 60;
    bool cache_bench = false;
    bool kill_restart = true;
    std::string serverd;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--clients") && i + 1 < argc)
            clients = std::max(1, atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--queries") && i + 1 < argc)
            queries = std::max(1, atoi(argv[++i]));
        else if (!std::strcmp(argv[i], "--serverd") && i + 1 < argc)
            serverd = argv[++i];
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            json_path = argv[++i];
        else if (!std::strcmp(argv[i], "--cache-bench"))
            cache_bench = true;
        else if (!std::strcmp(argv[i], "--no-kill"))
            kill_restart = false;
        else {
            fprintf(stderr,
                    "usage: server_chaos [--clients N] [--queries N] "
                    "[--serverd PATH] [--json PATH] [--cache-bench] "
                    "[--no-kill]\n");
            return 2;
        }
    }
    if (json_path.empty())
        json_path = benchOutputPath(cache_bench
                                        ? "BENCH_server_cache.json"
                                        : "BENCH_server_chaos.json");

    signal(SIGPIPE, SIG_IGN);
    try {
        std::string path = serverdPath(serverd);
        return cache_bench
                   ? cacheBench(path, json_path)
                   : chaosSweep(clients, queries, path, json_path,
                                kill_restart);
    } catch (const std::exception &e) {
        fprintf(stderr, "server_chaos: %s\n", e.what());
        return 2;
    }
}
