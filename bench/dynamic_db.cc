/**
 * @file
 * Dynamic clause-store benchmark: load / lookup / update rates of the
 * first-argument deep index (src/db) at million-fact scale, indexed
 * versus linear, with a differential oracle holding the index to its
 * transparency contract.
 *
 * Four store configurations are measured over the same fact set
 * f(0..N-1, payload):
 *
 *   indexed    hash buckets + skiplist (the default)
 *   hash-only  buckets on, skiplist off (bucket walks are linear)
 *   skip-only  buckets off, skiplist on (master-list express lanes)
 *   linear     both off — every lookup scans the master list
 *
 * Per configuration: the load phase asserts N facts; the lookup phase
 * resolves bound-first-argument queries to exhaustion (first + next
 * until miss — the engines' dispatch protocol) against a
 * deterministic key sample; the update phase interleaves assertz with
 * retract of the clause just added. Host rates and the store's own
 * `scanned` node counts are both reported; simulated lookup KLIPS
 * derives from scanned * DynDbConfig.scanCycles at the paper's 80 ns
 * cycle. Configurations without hash buckets make every clause a
 * candidate, and without the skiplist the stateless cursor re-seek
 * makes exhaustion quadratic — those rows run a smaller key sample
 * and cap the candidate walk, so their reported per-lookup cost is a
 * LOWER BOUND (printed as such).
 *
 * The differential oracle runs bound-key hits and misses against the
 * full-size stores on the fast core, the decode-per-step oracle core
 * and the baseline interpreter, then replays a richer goal set
 * (unbound scan, asserta'd front clause, retracted tombstone) on a
 * small store where the linear-config machine is also tractable. All
 * engines must return identical solutions; fast and oracle cores must
 * agree on cycles bit-for-bit.
 *
 * Usage: dynamic_db [--facts N] [--lookups N] [--updates N]
 *   Defaults: 1,000,000 facts, 100,000 lookups, 50,000 updates (CI
 *   smoke passes --facts 100000). Writes BENCH_dynamic_db.json.
 *   Exit 0 on success, 1 when the indexed/linear per-lookup scanned
 *   ratio falls under 50x (at >= 10,000 facts) or any engine
 *   disagrees, 2 on trap/compile failure.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "baseline/interp.hh"
#include "bench_support/harness.hh"
#include "bench_support/json_report.hh"
#include "db/clause_store.hh"

using namespace kcm;

namespace
{

constexpr double minScannedRatio = 50.0;

/** Deterministic key scrambler (splitmix64) — spreads lookups over
 *  the fact range without any host PRNG state. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

int64_t
payloadOf(int64_t key)
{
    return key * 2 + 1;
}

Functor
factFunctor()
{
    return {AtomTable::instance().intern("f"), 2};
}

TermRef
makeFact(int64_t key, int64_t payload)
{
    return Term::makeStruct(
        "f", {Term::makeInt(key), Term::makeInt(payload)});
}

db::ArgKey
intKey(int64_t key)
{
    return db::ArgKey::forTerm(Term::makeInt(key));
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct StoreMetrics
{
    std::string name;
    double loadSeconds = 0;
    double lookupSeconds = 0;
    double updateSeconds = 0;
    uint64_t lookups = 0;
    uint64_t updates = 0;
    uint64_t scanned = 0;   ///< total index nodes touched (lookups)
    uint64_t found = 0;     ///< candidates yielded
    bool truncated = false; ///< candidate walks hit the step cap

    double loadPerSec(uint64_t facts) const
    {
        return loadSeconds > 0 ? double(facts) / loadSeconds : 0;
    }
    double lookupPerSec() const
    {
        return lookupSeconds > 0 ? double(lookups) / lookupSeconds : 0;
    }
    double updatePerSec() const
    {
        return updateSeconds > 0 ? double(updates) / updateSeconds : 0;
    }
    double avgScanned() const
    {
        return lookups ? double(scanned) / double(lookups) : 0;
    }
    /** Simulated lookup KLIPS under the store's cost model: one
     *  bound-argument resolution = one inference, charged
     *  avgScanned * scanCycles cycles at 80 ns each. */
    double simKlips(unsigned scan_cycles) const
    {
        double cycles_per = avgScanned() * scan_cycles;
        if (cycles_per <= 0)
            return 0;
        return 1.0 / (cycles_per * cycleSeconds) / 1e3;
    }
};

/**
 * Assert N facts, then run the lookup and update phases.
 * @param max_candidates cap on first/next steps per lookup (0 =
 *        exhaustive). Nonzero only for the quadratic no-skiplist
 *        configurations; a capped row reports a lower bound.
 */
StoreMetrics
measureStore(db::ClauseStore &store, const char *name, uint64_t facts,
             uint64_t lookups, uint64_t updates, uint64_t max_candidates)
{
    StoreMetrics m;
    m.name = name;
    Functor f = factFunctor();
    store.declareDynamic(f);

    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < facts; ++i) {
        store.assertClause(f, makeFact(int64_t(i), payloadOf(int64_t(i))),
                           nullptr, /*at_front=*/false);
    }
    m.loadSeconds = secondsSince(t0);

    // Lookup phase: resolve each sampled key to exhaustion, exactly
    // the first/next protocol the engines' dynamic dispatch uses.
    uint64_t gen = store.generation();
    t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < lookups; ++i) {
        int64_t key = int64_t(mix64(i) % facts);
        db::ArgKey k = intKey(key);
        uint64_t steps = 0;
        db::ClauseStore::LookupResult r = store.first(f, k, gen);
        while (r.clause) {
            m.scanned += r.scanned;
            ++m.found;
            if (max_candidates && ++steps >= max_candidates) {
                m.truncated = true;
                break;
            }
            r = store.next(f, k, gen, r.clause->seq);
        }
        if (!r.clause)
            m.scanned += r.scanned; // the final miss costs nodes too
        ++m.lookups;
    }
    m.lookupSeconds = secondsSince(t0);

    // Update phase: assertz a fresh fact, then retract it (tombstone
    // by sequence number) — the store's incremental re-index both
    // ways.
    t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < updates; ++i) {
        int64_t key = int64_t(facts + i);
        const db::StoredClause &added = store.assertClause(
            f, makeFact(key, payloadOf(key)), nullptr, false);
        store.eraseClause(f, added.seq);
        m.updates += 2;
    }
    m.updateSeconds = secondsSince(t0);
    return m;
}

/** One engine's answers to a query set, plus cycle counts for the
 *  fast-vs-oracle bit-identity check. */
struct OracleAnswers
{
    std::vector<std::string> solutions; ///< flattened, per query
    std::vector<uint64_t> cycles;       ///< per query
};

/** Run a compiled goal on a Machine wired to @p store; collect all
 *  solutions (bounded — the oracle queries are deterministic and
 *  small). */
void
runMachineQuery(const CodeImage &image, const MachineConfig &config,
                std::shared_ptr<db::ClauseStore> store,
                const std::string &goal_label, OracleAnswers &answers)
{
    Machine machine(config);
    machine.attachDynamicDb(std::move(store));
    machine.load(image);

    size_t n = 0;
    RunStatus status = machine.run();
    while (status == RunStatus::SolutionFound && n < 64) {
        answers.solutions.push_back(goal_label + " " +
                                    machine.lastSolution().toString());
        ++n;
        status = machine.nextSolution();
    }
    if (status == RunStatus::Trapped)
        fatal("oracle query trapped: ", goal_label, ": ",
              trapDiagnosis(machine.lastTrap()));
    answers.solutions.push_back(goal_label + " <end>");
    answers.cycles.push_back(machine.cycles());
}

void
runBaselineQuery(std::shared_ptr<db::ClauseStore> store,
                 const std::string &program, const std::string &goal,
                 OracleAnswers &answers)
{
    baseline::Interpreter interp;
    interp.attachDynamicDb(std::move(store));
    interp.consult(program);
    baseline::InterpResult r = interp.query(goal, 64);
    for (const auto &sol : r.solutions)
        answers.solutions.push_back(goal + " " + sol.toString());
    answers.solutions.push_back(goal + " <end>");
}

uint64_t
argValue(int argc, char **argv, const char *flag, uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
try {
    setLoggingEnabled(false);
    uint64_t facts = argValue(argc, argv, "--facts", 1'000'000);
    uint64_t lookups = argValue(argc, argv, "--lookups", 100'000);
    uint64_t updates = argValue(argc, argv, "--updates", 50'000);
    if (facts < 16)
        fatal("--facts must be at least 16");

    // Configurations without hash buckets resolve every lookup
    // against the whole master list, so they get a smaller key sample
    // (per-lookup averages are what the table compares), and the
    // fully linear configuration additionally caps the candidate walk
    // — its quadratic re-seek makes exhaustion infeasible, so its row
    // is an explicit lower bound.
    uint64_t scan_lookups = std::min<uint64_t>(
        lookups, std::max<uint64_t>(8, 8'000'000 / facts));
    uint64_t linear_cap = 1000;

    db::DynDbConfig indexed_cfg;
    db::DynDbConfig hash_only = indexed_cfg;
    hash_only.skiplist = false;
    db::DynDbConfig skip_only = indexed_cfg;
    skip_only.hashIndex = false;
    db::DynDbConfig linear_cfg = indexed_cfg;
    linear_cfg.hashIndex = false;
    linear_cfg.skiplist = false;

    auto wall_start = std::chrono::steady_clock::now();

    // Ablation rows first (freed immediately); the indexed and linear
    // stores stay alive for the differential oracle, bounding peak
    // memory to two full-size stores.
    StoreMetrics rows[4];
    {
        db::ClauseStore store(hash_only);
        rows[1] = measureStore(store, "hash-only", facts, lookups,
                               updates, 0);
    }
    {
        db::ClauseStore store(skip_only);
        rows[2] = measureStore(store, "skip-only", facts, scan_lookups,
                               updates, 0);
    }
    auto linear_store = std::make_shared<db::ClauseStore>(linear_cfg);
    rows[3] = measureStore(*linear_store, "linear", facts, scan_lookups,
                           updates, linear_cap);
    auto indexed_store = std::make_shared<db::ClauseStore>(indexed_cfg);
    rows[0] = measureStore(*indexed_store, "indexed", facts, lookups,
                           updates, 0);

    TablePrinter table({"Config", "load/s", "lookup/s", "update/s",
                        "avg scanned", "sim KLIPS"});
    for (const StoreMetrics &m : rows) {
        std::string scanned = cellFixed(m.avgScanned(), 1);
        if (m.truncated)
            scanned = ">=" + scanned;
        table.addRow({m.name, cellFixed(m.loadPerSec(facts) / 1e3, 0) + "k",
                      cellFixed(m.lookupPerSec() / 1e3, 1) + "k",
                      cellFixed(m.updatePerSec() / 1e3, 0) + "k",
                      scanned,
                      cellFixed(m.simKlips(indexed_cfg.scanCycles), 1)});
    }
    printf("Dynamic clause store: %llu facts, first-argument integer "
           "keys\n(lookup = bound-first-argument resolution to "
           "exhaustion; sim KLIPS at\n%u cycles per scanned index "
           "node, 80 ns cycle; >= rows hit the %llu-candidate\nwalk "
           "cap and report lower bounds)\n\n%s\n",
           (unsigned long long)facts, indexed_cfg.scanCycles,
           (unsigned long long)linear_cap, table.render().c_str());

    double ratio = rows[0].avgScanned() > 0
                       ? rows[3].avgScanned() / rows[0].avgScanned()
                       : 0;
    double host_ratio =
        rows[0].lookupPerSec() > 0 && rows[3].lookupPerSec() > 0
            ? rows[0].lookupPerSec() / rows[3].lookupPerSec()
            : 0;
    printf("indexed vs linear per-lookup: %.0fx fewer index nodes, "
           "%.0fx host speedup\n\n",
           ratio, host_ratio);

    // --- differential oracle -------------------------------------
    const std::string program = ":- dynamic(f/2).";

    // Phase 1: bound-key hits and misses at full size. The linear
    // machine sits this one out (its full-list resolution of a
    // nextSolution() exhaustion is the quadratic case above); it is
    // exercised at small scale in phase 2.
    std::vector<std::string> big_goals;
    for (uint64_t k :
         {uint64_t(0), facts - 1, facts / 2, mix64(7) % facts,
          facts * 4 + 1, facts /* retracted update keys */})
        big_goals.push_back("f(" + std::to_string(k) + ", V)");

    KcmOptions fast_opts;
    fast_opts.machine.fastDispatch = true;
    fast_opts.machine.dyndb = indexed_cfg;
    MachineConfig oracle_cfg_m = fast_opts.machine;
    oracle_cfg_m.fastDispatch = false;
    MachineConfig linear_cfg_m = fast_opts.machine;
    linear_cfg_m.dyndb = linear_cfg;

    OracleAnswers big_fast, big_oracle, big_base;
    for (const std::string &goal : big_goals) {
        KcmSystem system(fast_opts);
        system.consult(program);
        CodeImage image = system.compileOnly(goal);
        runMachineQuery(image, fast_opts.machine, indexed_store, goal,
                        big_fast);
        runMachineQuery(image, oracle_cfg_m, indexed_store, goal,
                        big_oracle);
        runBaselineQuery(indexed_store, program, goal, big_base);
    }

    // Phase 2: a small store (front-inserted clause, a tombstone, an
    // unbound full scan) across all four engines. Both stores carry
    // identical clause content; only the index layout differs.
    uint64_t small = std::min<uint64_t>(facts, 2'000);
    auto small_indexed = std::make_shared<db::ClauseStore>(indexed_cfg);
    auto small_linear = std::make_shared<db::ClauseStore>(linear_cfg);
    Functor f = factFunctor();
    for (db::ClauseStore *s :
         {small_indexed.get(), small_linear.get()}) {
        s->declareDynamic(f);
        for (uint64_t i = 0; i < small; ++i)
            s->assertClause(f, makeFact(int64_t(i), payloadOf(int64_t(i))),
                            nullptr, false);
        // A clause asserta'd to the front.
        s->assertClause(f, makeFact(-1, payloadOf(-1)), nullptr,
                        /*at_front=*/true);
    }
    // Tombstone the key-5 clause in both stores. Only the indexed
    // lookup filters by key (hash-off returns every clause as a
    // candidate), but the two stores allocated identical sequence
    // numbers, so the indexed victim's seq applies to both.
    db::ClauseStore::LookupResult victim = small_indexed->first(
        f, intKey(5), small_indexed->generation());
    small_indexed->eraseClause(f, victim.clause->seq);
    small_linear->eraseClause(f, victim.clause->seq);

    std::vector<std::string> small_goals = {
        "f(-1, V)", // the asserta'd front clause
        "f(5, V)",  // retracted: must fail everywhere
        "f(" + std::to_string(small / 2) + ", V)",
        "f(K, V), K < 2", // unbound scan: front clause then 0, 1
    };

    OracleAnswers sm_fast, sm_oracle, sm_linear, sm_base;
    for (const std::string &goal : small_goals) {
        KcmSystem system(fast_opts);
        system.consult(program);
        CodeImage image = system.compileOnly(goal);
        runMachineQuery(image, fast_opts.machine, small_indexed, goal,
                        sm_fast);
        runMachineQuery(image, oracle_cfg_m, small_indexed, goal,
                        sm_oracle);
        runMachineQuery(image, linear_cfg_m, small_linear, goal,
                        sm_linear);
        runBaselineQuery(small_indexed, program, goal, sm_base);
    }

    bool big_ok = big_fast.solutions == big_oracle.solutions &&
                  big_fast.solutions == big_base.solutions;
    bool small_ok = sm_fast.solutions == sm_oracle.solutions &&
                    sm_fast.solutions == sm_linear.solutions &&
                    sm_fast.solutions == sm_base.solutions;
    bool cycles_ok = big_fast.cycles == big_oracle.cycles &&
                     sm_fast.cycles == sm_oracle.cycles;
    bool answers_ok = big_ok && small_ok;
    printf("oracle: %zu full-size + %zu small-store queries; answers "
           "%s; fast vs oracle cycles %s\n",
           big_goals.size(), small_goals.size(),
           answers_ok ? "identical across engines" : "DIVERGED",
           cycles_ok ? "bit-identical" : "DIVERGED");
    auto dumpDivergence = [](const char *tag, const OracleAnswers &a,
                             const OracleAnswers &b) {
        if (a.solutions == b.solutions)
            return;
        size_t n = std::max(a.solutions.size(), b.solutions.size());
        for (size_t i = 0; i < n; ++i) {
            const char *l = i < a.solutions.size()
                                ? a.solutions[i].c_str()
                                : "<missing>";
            const char *r = i < b.solutions.size()
                                ? b.solutions[i].c_str()
                                : "<missing>";
            if (i >= a.solutions.size() || i >= b.solutions.size() ||
                a.solutions[i] != b.solutions[i])
                printf("  %s[%zu] %s | %s\n", tag, i, l, r);
        }
    };
    dumpDivergence("big fast/oracle", big_fast, big_oracle);
    dumpDivergence("big fast/baseline", big_fast, big_base);
    dumpDivergence("small fast/oracle", sm_fast, sm_oracle);
    dumpDivergence("small fast/linear", sm_fast, sm_linear);
    dumpDivergence("small fast/baseline", sm_fast, sm_base);

    // JSON record: the indexed row's simulated lookup KLIPS is the
    // commit-over-commit number.
    std::vector<BenchRun> report;
    for (const StoreMetrics &m : rows) {
        BenchRun run;
        run.name = "dynamic_db_" + m.name;
        run.success = true;
        run.inferences = m.lookups;
        run.klips = m.simKlips(indexed_cfg.scanCycles);
        run.hostSeconds = m.lookupSeconds;
        run.cycles =
            uint64_t(double(m.scanned) * indexed_cfg.scanCycles);
        report.push_back(run);
    }
    writeBenchJson("BENCH_dynamic_db.json", "dynamic_db", report, 1,
                   secondsSince(wall_start));

    bool ratio_ok = facts < 10'000 || ratio >= minScannedRatio;
    if (!ratio_ok)
        printf("ERROR: indexed/linear scanned ratio %.0fx under the "
               "%.0fx floor\n",
               ratio, minScannedRatio);
    if (!answers_ok || !cycles_ok || !ratio_ok)
        return 1;
    return 0;
} catch (const std::exception &err) {
    printf("FATAL: %s\n", err.what());
    return benchTrapExitCode;
}
