/**
 * @file
 * Memory behaviour study (§3.2.4): read/write mix and cache
 * effectiveness over the PLM suite.
 *
 * The paper's design rationale: "the ratio of reads to writes in
 * Prolog is about 1:1 which is much smaller than in conventional
 * programming languages. Therefore the data cache in KCM is a
 * store-in (copy-back) cache" — and with a line size of one, a write
 * miss allocates without fetching.
 */

#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"

using namespace kcm;

int
main()
{
    setLoggingEnabled(false);

    TablePrinter table({"Program", "data reads", "data writes", "R/W",
                        "dcache hit%", "icache hit%",
                        "mem words moved", "traffic/ref%"});

    uint64_t total_reads = 0;
    uint64_t total_writes = 0;

    for (const auto &bench : plmSuite()) {
        BenchRun run = runPlmBenchmark(bench, /*pure=*/false);
        total_reads += run.dataReads;
        total_writes += run.dataWrites;
        uint64_t refs = run.dataReads + run.dataWrites;
        table.addRow(
            {bench.name, cellInt(run.dataReads), cellInt(run.dataWrites),
             cellRatio(run.dataWrites
                           ? double(run.dataReads) / run.dataWrites
                           : 0),
             cellFixed(run.dcacheHitRatio * 100, 2),
             cellFixed(run.icacheHitRatio * 100, 2),
             cellInt(run.memoryWords),
             cellFixed(refs ? 100.0 * run.memoryWords / refs : 0, 2)});
    }

    table.addRow({"total", cellInt(total_reads), cellInt(total_writes),
                  cellRatio(double(total_reads) / total_writes), "", "",
                  "", ""});

    printf("Memory traffic study (§3.2.4): Prolog's read/write mix and "
           "the store-in\ndata cache's filtering of it.\n\n%s\n"
           "Expected shape: reads:writes near 1:1 (far below "
           "conventional languages),\nhigh hit ratios from stack "
           "locality, and physical traffic that is a small\nfraction "
           "of the reference stream thanks to write-allocate-without-"
           "fetch.\n",
           table.render().c_str());
    return 0;
}
