/**
 * @file
 * Reproduces the cache experiment of §3.2.4.
 *
 * "We ran a number of small programs in a simulator of a direct
 *  mapped cache with two different initialisations; In the first run
 *  the top-of-stack pointers were initialised to values such that
 *  they used different cache locations. For the second run the
 *  top-of-stack pointers were initialised such that they all pointed
 *  to the same cache cell. The hit ratios were very good in the first
 *  run and dropped quite dramatically in the second."
 *
 * This bench runs small PLM programs on a plain (non-zone-indexed)
 * direct-mapped data cache under both initialisations, and on the
 * actual KCM design (8 sections of 1K selected by the zone field),
 * which makes stack collisions impossible by construction.
 */

#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

/** Run one program/query under a given layout/cache config. */
double
hitRatio(const std::string &program, const std::string &goal,
         const DataLayout &layout, bool zone_indexed,
         unsigned section_words)
{
    KcmOptions options;
    options.compiler.ioAsUnitClauses = true;
    options.machine.mem.layout = layout;
    options.machine.mem.dataCache.zoneIndexed = zone_indexed;
    options.machine.mem.dataCache.sectionWords = section_words;
    options.machine.mem.dataCache.sections = 8;

    KcmSystem system(options);
    system.consult(program);
    system.query(goal);
    return system.machine().mem().dataCache().hitRatio();
}

/**
 * A worst-case small program: sum/2 walks a global-stack list while
 * pushing one environment per element on the local stack, so the two
 * stack tops advance in lockstep — exactly the access pattern that
 * ping-pongs between colliding cache lines.
 */
const char *lockstepProgram = R"PL(
build(0, []) :- !.
build(N, [N|T]) :- M is N - 1, build(M, T).
sum([], 0).
sum([H|T], S) :- sum(T, S1), S is S1 + H.
main(N) :- build(N, L), sum(L, _).
)PL";

} // namespace

int
main()
{
    setLoggingEnabled(false);

    // Total cache size in the unified runs: 8 x 128 = 1K words — a
    // small cache so the effect is pronounced, as in the paper's
    // simulator study.
    constexpr unsigned sectionWords = 256;
    constexpr unsigned totalWords = 8 * sectionWords;

    // Separated: stack bases fall into different cache locations.
    DataLayout separated;
    separated.globalStart = 0x0100000;
    separated.localStart = 0x0200000 + 1 * (totalWords / 4);
    separated.controlStart = 0x0300000 + 2 * (totalWords / 4);
    separated.trailStart = 0x0400000 + 3 * (totalWords / 4);
    separated.globalEnd = 0x0200000;
    separated.localEnd = 0x0300000;
    separated.controlEnd = 0x0380000;
    separated.trailEnd = 0x0480000;

    // Colliding: every top-of-stack pointer maps to the same cell
    // (all bases are multiples of the cache size).
    DataLayout colliding; // the default bases are all 0 mod 1K

    struct Workload
    {
        std::string name;
        std::string program;
        std::string goal;
    };
    std::vector<Workload> workloads;
    for (const char *name : {"nrev1", "qs4", "ops8", "queens"}) {
        const PlmBenchmark &bench = plmBenchmark(name);
        workloads.push_back({name, bench.program, bench.queryIo});
    }
    workloads.push_back({"lockstep", lockstepProgram, "main(60)"});

    TablePrinter table({"Program", "separated hit%", "colliding hit%",
                        "drop", "KCM zoned hit%"});

    for (const auto &w : workloads) {
        double separated_hits =
            hitRatio(w.program, w.goal, separated, false, sectionWords);
        double colliding_hits =
            hitRatio(w.program, w.goal, colliding, false, sectionWords);
        double zoned_hits =
            hitRatio(w.program, w.goal, colliding, true, sectionWords);
        table.addRow({w.name, cellFixed(separated_hits * 100, 2),
                      cellFixed(colliding_hits * 100, 2),
                      cellFixed((separated_hits - colliding_hits) * 100, 2),
                      cellFixed(zoned_hits * 100, 2)});
    }

    printf("Cache-collision experiment (§3.2.4): plain direct-mapped "
           "data cache (1K words)\nwith separated vs colliding "
           "top-of-stack initialisations, vs the KCM\nzone-sectioned "
           "design (8 x 128 words, section selected by zone field).\n\n"
           "%s\n"
           "Expected shape: separated hit ratios are very good; the "
           "colliding run drops\ndramatically; the zone-sectioned KCM "
           "cache matches the separated case by\nconstruction "
           "regardless of stack placement.\n",
           table.render().c_str());
    return 0;
}
