/**
 * @file
 * Ablation: shallow backtracking (§3.1.5) on vs off.
 *
 * With delayed choice points, a clause whose head or guard fails
 * costs only the three shadow registers; the standard WAM pushes and
 * restores a ~10-word frame. The paper motivates the feature with
 * Tick's observation that choice point saving/restoring amounts to
 * about 50% of all memory references in a standard WAM.
 */

#include <cstdio>

#include "base/logging.hh"

#include "bench_support/harness.hh"
#include "kcm/kcm.hh"

using namespace kcm;

namespace
{

struct AblationRow
{
    BenchRun shallow;
    BenchRun standard;
    double cpTrafficShare = 0; ///< CP words / data refs (standard WAM)
};

AblationRow
runBoth(const PlmBenchmark &bench)
{
    AblationRow row;

    KcmOptions shallow_options;
    shallow_options.compiler.ioAsUnitClauses = true;
    row.shallow = runPlmBenchmark(bench, false, shallow_options);

    KcmOptions wam_options;
    wam_options.compiler.ioAsUnitClauses = true;
    wam_options.machine.shallowBacktracking = false;
    {
        KcmSystem system(wam_options);
        system.consult(bench.program);
        system.query(bench.queryIo);
        Machine &machine = system.machine();
        row.standard.name = bench.name;
        row.standard.cycles = machine.cycles();
        row.standard.ms = machine.seconds() * 1e3;
        row.standard.inferences = machine.inferences();
        row.standard.choicePointsCreated =
            machine.choicePointsCreated.value();
        uint64_t cp_words = machine.cpWordsWritten.value() +
                            machine.cpWordsRead.value();
        DataCache &dcache = machine.mem().dataCache();
        uint64_t refs = dcache.totalAccesses();
        row.cpTrafficShare = refs ? double(cp_words) / double(refs) : 0;
    }
    return row;
}

} // namespace

int
main()
{
    setLoggingEnabled(false);

    TablePrinter table({"Program", "WAM CPs", "KCM CPs", "CPs avoided%",
                        "WAM ms", "KCM ms", "speedup",
                        "CP traffic share (WAM)"});

    double total_wam_ms = 0;
    double total_kcm_ms = 0;

    for (const auto &bench : plmSuite()) {
        AblationRow row = runBoth(bench);
        double avoided =
            row.standard.choicePointsCreated
                ? 100.0 *
                      (1.0 - double(row.shallow.choicePointsCreated) /
                                 double(row.standard.choicePointsCreated))
                : 0.0;
        total_wam_ms += row.standard.ms;
        total_kcm_ms += row.shallow.ms;
        table.addRow({bench.name,
                      cellInt(row.standard.choicePointsCreated),
                      cellInt(row.shallow.choicePointsCreated),
                      cellFixed(avoided, 1),
                      cellFixed(row.standard.ms, 3),
                      cellFixed(row.shallow.ms, 3),
                      cellRatio(row.standard.ms / row.shallow.ms),
                      cellFixed(row.cpTrafficShare * 100, 1)});
    }

    table.addRow({"total", "", "", "", cellFixed(total_wam_ms, 3),
                  cellFixed(total_kcm_ms, 3),
                  cellRatio(total_wam_ms / total_kcm_ms), ""});

    printf("Ablation: shallow backtracking (delayed choice points, "
           "§3.1.5)\nvs standard WAM (immediate choice points).\n\n%s\n"
           "Expected shape: shallow backtracking eliminates most choice "
           "point creation\non deterministic-by-guard predicates "
           "(partition, deriv, arithmetic loops),\ncutting control-stack "
           "traffic and time.\n",
           table.render().c_str());
    return 0;
}
