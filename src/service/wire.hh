/**
 * @file
 * Wire protocol helpers for the always-on query server: a minimal
 * JSON codec for the newline-delimited request/response framing, and
 * poll-based socket I/O with hard deadlines.
 *
 * The protocol deliberately uses flat JSON objects (scalar fields plus
 * arrays of scalars, e.g. the "answers" list); anything else — nested
 * objects, unterminated strings, binary garbage, oversized lines — is
 * rejected with a diagnostic instead of trusting the peer. The codec
 * is hardened the same way the KCMSNAP2 container is: every parse is
 * bounds-checked, and a malformed frame can only ever produce a
 * "bad_request" reply, never undefined behaviour or a crash.
 *
 * The I/O helpers implement the connection-lifecycle half of the
 * server contract: reads and writes carry deadlines enforced with
 * poll(2) slices, a partial request line must complete within a
 * request deadline measured from its *first byte* (the slow-loris
 * bound, separate from the more generous idle timeout between
 * requests), and every path is cancellable so a draining server never
 * blocks on a dead or malicious peer.
 */

#ifndef KCM_SERVICE_WIRE_HH
#define KCM_SERVICE_WIRE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace kcm::service
{

/** One decoded JSON scalar (or array of scalars). */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        Str,
        Array, ///< array of scalar JsonValues
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    int64_t integer = 0;
    double real = 0;
    std::string str;
    std::vector<JsonValue> items;

    bool isString() const { return kind == Kind::Str; }
    bool isNumber() const
    {
        return kind == Kind::Int || kind == Kind::Double;
    }

    /** Numeric value as an integer (Double truncates). */
    int64_t
    asInt(int64_t fallback = 0) const
    {
        if (kind == Kind::Int)
            return integer;
        if (kind == Kind::Double)
            return int64_t(real);
        if (kind == Kind::Bool)
            return boolean ? 1 : 0;
        return fallback;
    }
};

/** A decoded flat JSON object. */
using JsonObject = std::map<std::string, JsonValue>;

/**
 * Parse one JSON object holding scalars and arrays of scalars.
 * Returns false with a diagnostic in @p error on malformed input
 * (including nested containers, which the protocol never uses).
 */
bool parseJsonObject(const std::string &text, JsonObject &out,
                     std::string &error);

/** Quote and escape @p s as a JSON string literal (with quotes). */
std::string jsonQuote(const std::string &s);

/**
 * Incremental builder for one flat JSON object on one line. Field
 * order is insertion order; the result never contains a newline, so
 * it frames cleanly in the newline-delimited protocol.
 */
class JsonWriter
{
  public:
    JsonWriter &field(const std::string &key, const std::string &value);
    JsonWriter &field(const std::string &key, const char *value);
    JsonWriter &field(const std::string &key, int64_t value);
    JsonWriter &field(const std::string &key, uint64_t value);
    JsonWriter &field(const std::string &key, bool value);
    JsonWriter &fieldRaw(const std::string &key, const std::string &raw);
    JsonWriter &fieldStrings(const std::string &key,
                             const std::vector<std::string> &values);

    /** The finished object, "{...}" (no trailing newline). */
    std::string str() const;

  private:
    void key(const std::string &k);
    std::string body_;
};

/** Why a deadline-bounded I/O call returned. */
enum class IoStatus
{
    Ok,        ///< line delivered / bytes fully written
    Timeout,   ///< deadline exceeded (reader: idle timeout)
    SlowLoris, ///< reader only: partial request outlived its deadline
    Oversize,  ///< reader only: line exceeded the frame cap
    Closed,    ///< orderly EOF (reader) / EPIPE-class close (writer)
    Cancelled, ///< the cancel callback asked to stop
    Error,     ///< errno-level failure; see message
};

const char *ioStatusName(IoStatus status);

/**
 * Write all @p size bytes with a hard deadline, surviving partial
 * writes and EINTR. @p cancel (optional) is polled between slices.
 */
IoStatus writeAllDeadline(int fd, const void *data, size_t size,
                          uint64_t deadline_ms,
                          const std::function<bool()> &cancel = {});

/**
 * Newline-delimited frame reader over a socket. Buffers carry-over
 * bytes between calls, enforces a frame-size cap, an idle timeout
 * (no pending partial line) and a per-request deadline measured from
 * the first byte of the current line — the slow-loris bound.
 */
class LineReader
{
  public:
    LineReader(int fd, size_t max_line_bytes);

    /**
     * Deliver the next complete line (without the '\n') into
     * @p line. @p idle_ms bounds the wait for a first byte;
     * @p request_ms bounds first byte → full line. @p cancel is
     * polled every slice so a draining server can stop reading.
     */
    IoStatus next(std::string &line, uint64_t idle_ms,
                  uint64_t request_ms,
                  const std::function<bool()> &cancel = {});

    /** Bytes of an incomplete line currently buffered. */
    size_t pendingBytes() const { return buffer_.size(); }

  private:
    int fd_;
    size_t maxLineBytes_;
    std::string buffer_;
    bool sawEof_ = false;
};

} // namespace kcm::service

#endif // KCM_SERVICE_WIRE_HH
