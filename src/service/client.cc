#include "service/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"

namespace kcm::service
{

namespace
{
/** Frame cap for replies; matches the server's request cap. */
constexpr size_t replyLineCap = 4u << 20;
} // namespace

std::string
ClientReply::status() const
{
    return str("status");
}

std::string
ClientReply::str(const std::string &key) const
{
    auto it = fields.find(key);
    if (it == fields.end() || !it->second.isString())
        return "";
    return it->second.str;
}

int64_t
ClientReply::num(const std::string &key, int64_t fallback) const
{
    auto it = fields.find(key);
    if (it == fields.end())
        return fallback;
    return it->second.asInt(fallback);
}

Client::Client() = default;

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &host, uint16_t port,
                uint64_t timeout_ms)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error_ = cat("socket(): ", strerror(errno));
        return false;
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error_ = cat("bad address '", host, "'");
        close();
        return false;
    }

    // Nonblocking connect with a deadline, then back to blocking mode
    // (all further I/O is poll-bounded anyway).
    int flags = fcntl(fd_, F_GETFL, 0);
    fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rv = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    if (rv < 0 && errno != EINPROGRESS) {
        error_ = cat("connect(): ", strerror(errno));
        close();
        return false;
    }
    if (rv < 0) {
        pollfd pfd{fd_, POLLOUT, 0};
        rv = poll(&pfd, 1, int(timeout_ms));
        if (rv <= 0) {
            error_ = rv == 0 ? "connect timeout"
                             : cat("poll(): ", strerror(errno));
            close();
            return false;
        }
        int soerr = 0;
        socklen_t len = sizeof soerr;
        getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
            error_ = cat("connect(): ", strerror(soerr));
            close();
            return false;
        }
    }
    fcntl(fd_, F_SETFL, flags);
    reader_ = std::make_unique<LineReader>(fd_, replyLineCap);
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_.reset();
}

void
Client::abort()
{
    if (fd_ >= 0) {
        // RST instead of FIN: simulate a client that vanished.
        linger lg{1, 0};
        setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    close();
}

IoStatus
Client::sendLine(const std::string &line, uint64_t timeout_ms)
{
    return sendRaw(line + "\n", timeout_ms);
}

IoStatus
Client::sendRaw(const std::string &bytes, uint64_t timeout_ms)
{
    if (fd_ < 0) {
        error_ = "not connected";
        return IoStatus::Error;
    }
    IoStatus st =
        writeAllDeadline(fd_, bytes.data(), bytes.size(), timeout_ms);
    if (st != IoStatus::Ok)
        error_ = cat("send: ", ioStatusName(st));
    return st;
}

IoStatus
Client::sendSlowly(const std::string &bytes, size_t chunk,
                   uint64_t delay_ms)
{
    if (chunk == 0)
        chunk = 1;
    for (size_t off = 0; off < bytes.size(); off += chunk) {
        IoStatus st = sendRaw(bytes.substr(off, chunk), 2'000);
        if (st != IoStatus::Ok)
            return st;
        if (off + chunk < bytes.size())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay_ms));
    }
    return IoStatus::Ok;
}

ClientReply
Client::readReply(uint64_t timeout_ms)
{
    ClientReply reply;
    if (fd_ < 0 || !reader_) {
        error_ = "not connected";
        reply.io = IoStatus::Error;
        return reply;
    }
    reply.io = reader_->next(reply.raw, timeout_ms, timeout_ms);
    if (reply.io != IoStatus::Ok) {
        error_ = cat("read: ", ioStatusName(reply.io));
        return reply;
    }
    std::string parse_error;
    reply.parsed = parseJsonObject(reply.raw, reply.fields, parse_error);
    if (!reply.parsed)
        error_ = cat("reply parse: ", parse_error);
    return reply;
}

ClientReply
Client::query(const std::string &id, const std::string &program,
              const std::string &goal, size_t max_solutions,
              uint64_t deadline_ms, uint64_t timeout_ms)
{
    JsonWriter w;
    w.field("op", "query")
        .field("id", id)
        .field("program", program)
        .field("goal", goal)
        .field("max_solutions", uint64_t(max_solutions));
    if (deadline_ms)
        w.field("deadline_ms", deadline_ms);
    IoStatus st = sendLine(w.str());
    if (st != IoStatus::Ok) {
        ClientReply reply;
        reply.io = st;
        return reply;
    }
    return readReply(timeout_ms);
}

ClientReply
Client::ping(uint64_t timeout_ms)
{
    IoStatus st = sendLine(JsonWriter().field("op", "ping").str());
    if (st != IoStatus::Ok) {
        ClientReply reply;
        reply.io = st;
        return reply;
    }
    return readReply(timeout_ms);
}

ClientReply
Client::stats(uint64_t timeout_ms)
{
    IoStatus st = sendLine(JsonWriter().field("op", "stats").str());
    if (st != IoStatus::Ok) {
        ClientReply reply;
        reply.io = st;
        return reply;
    }
    return readReply(timeout_ms);
}

} // namespace kcm::service
