/**
 * @file
 * Session: one supervised query on one machine.
 *
 * The paper's system picture (§2, Fig. 1) is a host driving a KCM
 * back end: the host compiles and downloads an image, the KCM runs
 * it, and the host collects solutions. A Session is that host-side
 * protocol hardened for a serving deployment: it wraps one Machine
 * plus one linked image and runs the query to completion under
 *
 *  - a governor budget (cycles, stack quotas — MachineConfig),
 *  - a wall-clock deadline per attempt,
 *  - periodic snapshot checkpoints taken at run-loop boundaries
 *    (every K simulated megacycles, configurable), and
 *  - a crash-recovery loop: when the machine traps (page fault,
 *    FaultPlan corruption, stack ceiling) the session restores the
 *    last checkpoint, dismisses the not-yet-fired scripted faults
 *    (transient-fault model) and retries with exponential backoff up
 *    to a retry budget; if a restored checkpoint re-traps without
 *    making progress the fault is baked into the snapshot (armed MMU
 *    fault, tightened zone, latent corrupt word) and the session
 *    escalates to a full restart on a fresh machine. When the budget
 *    is exhausted the query fails *cleanly* with a structured
 *    FailureReport — never a hang, never a crash, never a silently
 *    wrong answer.
 *
 * Checkpoint slicing rides on Machine::setSliceStop(), which is pure
 * host machinery: a fault-free run with checkpointing enabled reports
 * bit-identical simulated cycles and counters to one without.
 */

#ifndef KCM_SERVICE_SESSION_HH
#define KCM_SERVICE_SESSION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compiler/code_image.hh"
#include "core/machine.hh"
#include "core/snapshot.hh"
#include "db/journal.hh"

namespace kcm::service
{

/** Per-session policy (machine config + supervision knobs). */
struct SessionOptions
{
    MachineConfig machine;

    /**
     * Durable dynamic database (null = per-session in-memory store).
     * When set, the session attaches the shared journaled store to
     * its machine, serializes on its mutex, runs the query inside a
     * store transaction, and — before run() returns, i.e. before any
     * reply is written — journals the op batch on completion or rolls
     * it back on failure. Checkpoint recovery and retries are forced
     * off in this mode: a snapshot restore would replace the attached
     * store contents mid-transaction.
     */
    std::shared_ptr<db::JournaledStore> durableDb;

    /** Checkpoint interval in simulated megacycles (0 = no periodic
     *  checkpoints; the post-load checkpoint is still taken when
     *  recovery is enabled). */
    uint64_t checkpointEveryMcycles = 4;

    /** Wall-clock deadline per attempt in milliseconds (0 = none). A
     *  blown deadline is handled like a trap: restore + retry, then a
     *  clean "deadline_exceeded" failure. */
    uint64_t deadlineMs = 0;

    /**
     * End-to-end absolute deadline: steady-clock nanoseconds since
     * the clock's epoch (0 = none) — the propagated form of a
     * client's wire deadline. Unlike deadlineMs this budget is never
     * extended by retries: the session converts the remaining wall
     * budget into governor cycle slices (using the observed
     * simulation rate) so the query stops *itself* at the boundary,
     * and expiry is a terminal "deadline_exceeded" failure carrying
     * the simulated cycles spent.
     */
    uint64_t deadlineAbsNs = 0;

    /**
     * Cooperative cancellation token (null = none), polled at slice
     * boundaries like the interrupt flag: when set the query stops at
     * the next instruction boundary with a clean "cancelled" failure.
     * The supervisor's hedging machinery uses it to stop the losing
     * attempt of a hedged pair.
     */
    std::shared_ptr<std::atomic<bool>> cancel;

    /**
     * Testing-only straggler injection: sleep this many host
     * microseconds at every slice boundary, simulating a degraded
     * worker. Purely host-side — simulated cycles and answers are
     * unchanged — so a hedged attempt without the delay is
     * bit-identical and merely faster.
     */
    uint64_t chaosSliceDelayUs = 0;

    /** Recovery attempts after the first (0 = fail on first trap). */
    unsigned maxRetries = 3;

    /** First retry backoff; doubles per subsequent retry. Kept small
     *  by default — the backoff is for politeness under load, not
     *  correctness. */
    uint64_t backoffBaseMs = 1;

    /** Collect at most this many solutions (0 = all). */
    size_t maxSolutions = 1;

    /** Watchdog slice in cycles when no checkpoint interval is set
     *  but a deadline is (how often the wall clock is polled). */
    uint64_t watchdogSliceCycles = 4'000'000;

    /** Poll the process-wide interrupt flag (requestServiceInterrupt,
     *  set by the drivers' SIGINT/SIGTERM handlers or by a server
     *  drain that ran out of grace) at slice boundaries and abort the
     *  query with a clean "interrupted" failure. Arms the watchdog
     *  slice even without a deadline so the poll actually happens. */
    bool abortOnInterrupt = false;
};

/** Why a supervised query could not be served. */
struct FailureReport
{
    /** Machine-readable classification, always a re-readable Prolog
     *  term: "resource_error(<kind>)", "machine_trap(<kind>)",
     *  "deadline_exceeded" (per-attempt or propagated absolute
     *  deadline), "overloaded", "interrupted" (aborted by a shutdown
     *  request at an instruction boundary), "cancelled" (stopped via
     *  the session's cancellation token — e.g. the losing attempt of
     *  a hedged pair) or "corrupt_image_template" (a warm-start
     *  snapshot failed its checksum re-validation; the caller evicts
     *  and recompiles). */
    std::string classification;

    TrapKind trapKind = TrapKind::Abort;
    std::string detail;       ///< trap message of the final attempt

    unsigned attempts = 0;    ///< attempts made (1 = no retries)
    uint64_t cyclesLost = 0;  ///< simulated cycles discarded by recovery
    uint64_t checkpointAgeCycles = 0; ///< fail cycle - last checkpoint
};

/** How a supervised query ended. */
enum class QueryStatus
{
    Completed, ///< ran to completion (solutions, failure, halt — and
               ///< program-level errors like an uncaught ball)
    Failed,    ///< could not be served; see FailureReport
    Shed,      ///< evicted from the admission queue (FailureReport
               ///< classification "overloaded")
};

/** Robustness counters for one session (also aggregated service-wide
 *  by the Supervisor). */
struct SessionCounters
{
    unsigned retries = 0;          ///< checkpoint restores performed
    unsigned restarts = 0;         ///< full fresh-machine restarts
    uint64_t checkpoints = 0;      ///< snapshots taken
    uint64_t checkpointBytes = 0;  ///< total snapshot bytes
    uint64_t recoveryCycles = 0;   ///< simulated cycles re-lost to recovery
};

/** Everything one supervised query produces. */
struct QueryOutcome
{
    QueryStatus status = QueryStatus::Completed;

    // Completed payload (mirrors KcmSystem::QueryResult).
    bool success = false;             ///< at least one solution
    std::vector<Solution> solutions;
    std::string output;               ///< captured write/1 output
    bool halted = false;
    /** Program-level diagnosis (e.g. "unhandled_exception(<ball>)");
     *  a program outcome, not a service failure, so it is never
     *  retried — the baseline interpreter reports it identically. */
    std::string error;

    FailureReport failure;            ///< valid when status != Completed

    // Simulated measurements of the (final, successful) attempt.
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t inferences = 0;
    double wallSeconds = 0;

    // Durable-database accounting (durableDb sessions only).
    uint64_t dbOps = 0;      ///< mutations committed by this query
    uint64_t dbCommitId = 0; ///< journal commit id (0 = no mutations)

    SessionCounters counters;
};

/**
 * One supervised query: machine + image + recovery loop.
 * Construct, call run() once, read the outcome. Not thread-safe;
 * each worker thread owns its sessions exclusively.
 */
/** Ask every session with abortOnInterrupt set to stop at its next
 *  slice boundary (async-signal-safe; called from signal handlers). */
void requestServiceInterrupt();

/** Clear the interrupt flag (tests; a server arming a fresh drain). */
void clearServiceInterrupt();

/** Whether requestServiceInterrupt() has been called. */
bool serviceInterruptRequested();

class Session
{
  public:
    Session(CodeImage image, SessionOptions options);

    /**
     * Warm start: instead of compiling and load()ing an image, the
     * session restores a post-download KCMSNAP2 template (the state a
     * load() of the compiled image produces) into its machine — the
     * server's snapshot-template cache path. The template buffer is
     * shared between concurrent sessions and never modified; if its
     * checksums fail re-validation on restore the session fails
     * cleanly with classification "corrupt_image_template" so the
     * owner can evict the entry and recompile.
     */
    Session(std::shared_ptr<const Snapshot> warm_template,
            SessionOptions options);

    ~Session();

    /** Execute the query to completion under supervision. */
    QueryOutcome run();

    const SessionCounters &counters() const { return counters_; }

  private:
    struct Checkpoint
    {
        Snapshot snap;
        size_t solutionCount = 0; ///< host-collected solutions so far
        bool resumeAfterRestore = false; ///< restore into resume()?
        uint64_t cycle = 0;       ///< cycles() at snapshot time
    };

    void takeCheckpoint(std::vector<Solution> &solutions,
                        bool resume_after);
    bool coldStart(); ///< load the image / restore the template
    bool restartFresh();

    CodeImage image_;
    std::shared_ptr<const Snapshot> template_;
    SessionOptions options_;
    std::unique_ptr<Machine> machine_;
    Checkpoint checkpoint_;
    SessionCounters counters_;
    std::string templateError_; ///< set when a template restore failed
};

} // namespace kcm::service

#endif // KCM_SERVICE_SESSION_HH
