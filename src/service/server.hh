/**
 * @file
 * The always-on KCM query server.
 *
 * ROADMAP north star: the KCM as "a Prolog accelerator for millions of
 * users" — which means the host side of the paper's Fig. 1 picture has
 * to become a persistent daemon, not a batch driver. This server
 * listens on localhost TCP, speaks a newline-delimited JSON protocol,
 * and layers three robustness mechanisms over the existing Supervisor
 * pool:
 *
 *  1. **Warm snapshot-template cache** (ImageCache): the first query
 *     for a (program, goal, config) triple pays the full compile +
 *     static link + download and snapshots the post-download machine
 *     as a KCMSNAP2 template; every later identical query restores the
 *     template into a pooled worker — zero recompilation. Templates
 *     are checksum re-validated on every lookup AND on every restore;
 *     a corrupt entry is evicted and the query transparently
 *     recompiled (once), so the cache can only ever cost time, never
 *     correctness.
 *
 *  2. **Hardened connection lifecycle**: per-connection read/write
 *     deadlines (with a separate slow-loris bound for partial
 *     requests), a per-connection in-flight cap, malformed frames
 *     answered with a structured "bad_request" (never a crash, never a
 *     dropped connection state machine), and global overload answered
 *     with "overloaded" + a retry_after_ms hint that scales with the
 *     admission backlog (the Supervisor sheds earliest-deadline
 *     queries when the queue is full).
 *
 *  3. **Graceful drain**: requestDrain() (wired to SIGTERM/SIGINT by
 *     kcm_serverd) stops accepting connections and reading requests,
 *     but every already-accepted query still completes and its reply
 *     is flushed; after a grace period stragglers are checkpoint-
 *     aborted via the process-wide interrupt flag and answered with a
 *     classified "interrupted" failure. Accounting invariant:
 *     accepted == replied at exit — a drain loses no accepted query.
 *
 * Protocol (one JSON object per line, both directions):
 *
 *   request:  {"op": "query", "id": "q1", "program": "p(1).",
 *              "goal": "p(X)", "max_solutions": 0, "deadline_ms": 0}
 *             {"op": "ping"} | {"op": "stats"} |
 *             {"op": "corrupt_cache"}            (chaos hook, gated)
 *   reply:    {"id": ..., "status": "completed" | "failed" |
 *              "overloaded" | "bad_request" | "pong" | "ok", ...}
 *
 * See DESIGN.md ("The always-on query server") for the full schema.
 */

#ifndef KCM_SERVICE_SERVER_HH
#define KCM_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/breaker.hh"
#include "service/image_cache.hh"
#include "service/supervisor.hh"
#include "service/wire.hh"

namespace kcm::service
{

struct ServerOptions
{
    /** Listen address; the server is a localhost daemon by design. */
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (read it back via port()). */
    uint16_t port = 0;

    /** Per-query supervision policy for the worker pool. The server
     *  forces abortOnInterrupt on so a drain can reclaim stragglers. */
    SessionOptions session;

    unsigned workers = 4;
    size_t maxQueueDepth = 64;

    /** Warm-template cache budget in bytes (0 disables caching). */
    uint64_t cacheBudgetBytes = 256ull << 20;

    /** Consult the bundled standard library into every compiled
     *  program (append/3, member/2, ...). */
    bool consultStdlib = true;

    /** Fact-file text preloaded into every query's dynamic clause
     *  store (kcm_serverd --db-facts). The facts ride the compiled
     *  image's dynamic-init section, so they are part of the warm
     *  snapshot template and restore deterministically into every
     *  pooled worker. Validate with KcmSystem::preloadFacts before
     *  the server starts; a malformed clause in here fails each query
     *  with a compile_error otherwise. */
    std::string dbFactsSource;
    std::string dbFactsOrigin = "db-facts";

    /**
     * Durable dynamic database (kcm_serverd --db-journal). When
     * nonempty, the server opens (or recovers) a write-ahead journal
     * in this directory *before accepting connections* and attaches
     * the journaled store to every session: queries run inside store
     * transactions and their mutation batches are journaled before the
     * reply is written (commit-before-ack). In this mode --db-facts
     * seeds the store once, on first boot only (journal commit #1) —
     * compiled images carry the fact predicates' dynamic declarations
     * but not the facts, which live in the recovered store.
     */
    std::string dbJournalDir;
    db::JournalOptions journal;

    // Connection lifecycle.
    uint64_t idleTimeoutMs = 30'000;  ///< between requests
    uint64_t readDeadlineMs = 5'000;  ///< first byte → full request
    uint64_t writeDeadlineMs = 5'000; ///< one reply line
    size_t maxLineBytes = 4u << 20;   ///< request frame cap
    unsigned maxInflightPerConn = 8;  ///< per-client fairness cap
    size_t maxConnections = 256;

    /** Drain grace in ms before in-flight queries are checkpoint-
     *  aborted ("interrupted"). */
    uint64_t drainGraceMs = 5'000;

    /** Enable the chaos hooks ("corrupt_cache" op, the
     *  "chaos_slice_delay_us" straggler request field). Off in any
     *  real deployment; the harness turns it on. */
    bool chaosHooks = false;

    /** Per-query-shape circuit breakers (see breaker.hh). */
    BreakerOptions breaker;

    /** Seed for the deterministic jitter applied to every
     *  retry_after_ms hint (overloaded, shed, breaker fast-fail,
     *  connection-refused). Jitter de-synchronizes client retry
     *  storms; seeding keeps test runs reproducible. */
    uint64_t retryJitterSeed = 0x9e3779b97f4a7c15ull;

    // Supervisor self-defense knobs (forwarded to SupervisorOptions;
    // see supervisor.hh for semantics).
    uint64_t globalMemoryBudgetBytes = 0;
    uint64_t defaultMemoryChargeBytes = 32ull << 20;
    bool hedging = true;
    double hedgeLatencyFactor = 3.0;
    uint64_t hedgeMinMs = 50;
    uint64_t hedgePollMs = 2;
};

/** Server-level counters (cache and supervisor keep their own). */
struct ServerCounters
{
    uint64_t connectionsAccepted = 0;
    uint64_t connectionsRefused = 0; ///< over maxConnections
    uint64_t requests = 0;           ///< complete frames read
    uint64_t badRequests = 0;        ///< malformed / oversize / slow
    uint64_t overloaded = 0;         ///< per-conn cap or queue shed
    uint64_t queriesAccepted = 0;    ///< admitted to the pool
    uint64_t queriesReplied = 0;     ///< replies flushed to the socket
    uint64_t compiles = 0;
    uint64_t compileMicros = 0;      ///< total compile+link+snapshot µs
    uint64_t corruptRetries = 0;     ///< template failed on restore →
                                     ///< evicted, recompiled, re-run
    uint64_t interrupted = 0;        ///< aborted past the drain grace
    uint64_t frameTooLarge = 0;      ///< request frames over the cap
    uint64_t breakerFastFails = 0;   ///< queries refused circuit_open
};

/**
 * The daemon core: listen socket + accept loop + per-connection
 * reader threads, queries executed by a Supervisor pool, replies
 * written by the worker completion callbacks. start() it, then
 * waitDrained() blocks until someone calls requestDrain() (signal
 * handlers may: it only stores to an atomic) and every accepted query
 * has been answered.
 */
class Server
{
  public:
    explicit Server(ServerOptions options);
    ~Server();

    /** Bind, listen, start the accept loop. Fatal on bind failure. */
    void start();

    /** The bound port (after start()). */
    uint16_t port() const { return port_; }

    /** Begin a graceful drain: stop accepting, stop reading, finish
     *  and flush everything in flight. Async-signal-safe. */
    void requestDrain() { draining_.store(true, std::memory_order_relaxed); }

    /** Block until the drain completes and all threads are joined. */
    void waitDrained();

    ServerCounters counters() const;
    ImageCacheStats cacheStats() const { return cache_.stats(); }
    ServiceStats poolStats() const;
    BreakerStats breakerStats() const { return breakers_.stats(); }

    /** The journaled store (null unless dbJournalDir was set). */
    const db::JournaledStore *durableDb() const { return durable_.get(); }

  private:
    struct Connection;
    struct QueryCtx;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);
    void handleRequest(const std::shared_ptr<Connection> &conn,
                       const std::string &line);
    void handleQuery(const std::shared_ptr<Connection> &conn,
                     const JsonObject &request, const std::string &id);
    void onOutcome(std::shared_ptr<QueryCtx> ctx, QueryOutcome outcome);
    void writeReply(const std::shared_ptr<Connection> &conn,
                    const std::string &line);
    void replyError(const std::shared_ptr<Connection> &conn,
                    const std::string &id, const char *status,
                    const std::string &error);
    void replyOverloaded(const std::shared_ptr<Connection> &conn,
                         const std::string &id,
                         const std::string &detail);

    /** Compile program+goal, download into a fresh machine, snapshot,
     *  insert into the cache. Returns nullptr with @p error set on a
     *  compile failure. */
    std::shared_ptr<const Snapshot>
    compileTemplate(uint64_t key, const std::string &program,
                    const std::string &goal, std::string &error);

    uint64_t retryAfterMs() const;

    /** @p base plus a deterministic pseudo-random jitter in
     *  [0, base/2] (seeded xorshift64*; see retryJitterSeed). */
    uint64_t jitteredRetryAfter(uint64_t base) const;

    /** Open/recover the journal and seed --db-facts on first boot
     *  (constructor helper; runs before the pool copies the session
     *  options). */
    void openDurableDb();

    ServerOptions options_;
    ImageCache cache_;
    BreakerRegistry breakers_;
    mutable std::mutex jitterMutex_;
    mutable uint64_t jitterState_;
    std::shared_ptr<db::JournaledStore> durable_;
    /** Durable mode: `:- dynamic(f/n).` text consulted instead of the
     *  facts themselves, so compiled images keep dynamic dispatch. */
    std::string durableDecls_;
    std::unique_ptr<Supervisor> pool_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> draining_{false};
    std::thread acceptThread_;

    mutable std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    size_t liveConnections_ = 0;

    mutable std::mutex statsMutex_;
    ServerCounters counters_;
    ServiceStats poolFinal_; ///< pool stats captured at drain

    /** accepted-but-unreplied queries; drain waits on this. */
    std::atomic<uint64_t> inflightQueries_{0};
    std::mutex drainMutex_;
    std::condition_variable drainCv_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_SERVER_HH
