#include "service/image_cache.hh"

#include "base/checksum.hh"
#include "base/logging.hh"

namespace kcm::service
{

uint64_t
imageCacheKey(const std::string &program, const std::string &goal,
              const MachineConfig &config)
{
    uint64_t h = fnvOffsetBasis;
    fnvMixStr(h, program);
    fnvMixStr(h, goal);

    // Machine-config fingerprint: every knob that changes what a
    // restored template computes or reports. (fastDispatch and fusion
    // participate even though snapshots are portable across them —
    // conservative, and it keeps per-tenant config isolation simple.)
    fnvMixPod(h, config.mem.memoryWords);
    fnvMixPod(h, config.shallowBacktracking);
    fnvMixPod(h, config.timeMemory);
    fnvMixPod(h, config.fastDispatch);
    fnvMixPod(h, config.captureOutput);
    fnvMixPod(h, config.maxCycles);
    fnvMixPod(h, config.gcThresholdWords);
    fnvMixPod(h, config.fastDereference);
    fnvMixPod(h, config.parallelTrailCheck);
    fnvMixPod(h, config.racBlockMoves);
    fnvMixPod(h, config.dualPortRegisterFile);
    fnvMixPod(h, config.catchUnwindCycles);
    fnvMixPod(h, config.fusion.mode);
    for (uint16_t s : config.fusion.sequences)
        fnvMixPod(h, s);
    // Dynamic clause store: index ablation changes scanned counts
    // (and therefore cycles), the cost knobs change them directly.
    fnvMixPod(h, config.dyndb.hashIndex);
    fnvMixPod(h, config.dyndb.skiplist);
    fnvMixPod(h, config.dyndb.scanCycles);
    fnvMixPod(h, config.dyndb.updateCycles);
    fnvMixPod(h, config.governor.cycleBudget);
    fnvMixPod(h, config.governor.globalQuotaWords);
    fnvMixPod(h, config.governor.localQuotaWords);
    fnvMixPod(h, config.governor.controlQuotaWords);
    fnvMixPod(h, config.governor.trailQuotaWords);
    fnvMixPod(h, config.governor.growStacks);
    fnvMixPod(h, config.governor.growthStepWords);
    fnvMixPod(h, config.governor.zoneCeilingWords);
    fnvMixPod(h, config.governor.stackGrowCycles);
    fnvMixPod(h, config.governor.memoryBudgetBytes);
    // Fault plans are chaos-harness configuration; a faulted tenant
    // must not share templates with a clean one.
    fnvMixPod(h, config.faultPlan.actions.size());
    for (const FaultAction &a : config.faultPlan.actions) {
        fnvMixPod(h, a.cycle);
        fnvMixPod(h, a.kind);
        fnvMixPod(h, a.zone);
        fnvMixPod(h, a.limit);
        fnvMixPod(h, a.addr);
        fnvMixPod(h, a.raw);
    }
    return h;
}

ImageCache::ImageCache(uint64_t budget_bytes)
    : budgetBytes_(budget_bytes)
{
}

std::shared_ptr<const Snapshot>
ImageCache::lookup(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    // Re-validate before serving: a template that rotted in the cache
    // is evicted and reported as a miss (caller recompiles), never
    // handed to a worker.
    if (!validateSnapshot(*it->second->snap)) {
        stats_.bytes -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
        ++stats_.corruptEvictions;
        ++stats_.misses;
        stats_.entries = index_.size();
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->snap;
}

std::shared_ptr<const Snapshot>
ImageCache::insert(uint64_t key, Snapshot snapshot)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (budgetBytes_ == 0)
        return std::make_shared<const Snapshot>(std::move(snapshot));
    auto it = index_.find(key);
    if (it != index_.end()) {
        stats_.bytes -= it->second->bytes;
        lru_.erase(it->second);
        index_.erase(it);
    }
    Entry e;
    e.key = key;
    e.bytes = snapshot.bytes.size();
    e.snap = std::make_shared<const Snapshot>(std::move(snapshot));
    stats_.bytes += e.bytes;
    ++stats_.insertions;
    auto stored = e.snap;
    lru_.push_front(std::move(e));
    index_[key] = lru_.begin();
    while (stats_.bytes > budgetBytes_ && lru_.size() > 1)
        evictLruLocked();
    stats_.entries = index_.size();
    return stored;
}

void
ImageCache::evictLruLocked()
{
    Entry &victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    stats_.entries = index_.size();
}

bool
ImageCache::evict(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end())
        return false;
    stats_.bytes -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.corruptEvictions;
    stats_.entries = index_.size();
    return true;
}

size_t
ImageCache::corruptOneForTesting()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (lru_.empty())
        return 0;
    Entry &mru = lru_.front();
    // Copy-and-replace: concurrent sessions may be restoring from the
    // old buffer right now; mutating it in place would be a data race.
    auto corrupted = std::make_shared<Snapshot>(*mru.snap);
    if (!corrupted->bytes.empty()) {
        // Flip a payload bit past the section table so the declared
        // structure still parses and only the checksum catches it.
        size_t offset = corrupted->bytes.size() / 2;
        corrupted->bytes[offset] ^= 0x40;
    }
    mru.snap = std::move(corrupted);
    return 1;
}

ImageCacheStats
ImageCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace kcm::service
