#include "service/breaker.hh"

namespace kcm::service
{

BreakerRegistry::BreakerRegistry(BreakerOptions options)
    : options_(options)
{
}

bool
BreakerRegistry::shouldReject(uint64_t key, uint64_t &retry_after_ms,
                              bool *is_probe)
{
    if (is_probe)
        *is_probe = false;
    if (!options_.enabled)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = breakers_.find(key);
    if (it == breakers_.end())
        return false;
    Breaker &b = it->second;
    switch (b.state) {
      case State::Closed:
        return false;
      case State::Open: {
        auto now = Clock::now();
        if (now < b.openUntil) {
            auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    b.openUntil - now)
                    .count();
            retry_after_ms = left > 0 ? uint64_t(left) : 1;
            ++stats_.fastFails;
            return true;
        }
        // Cooldown elapsed: this arrival becomes the half-open probe.
        b.state = State::HalfOpen;
        b.probeInFlight = true;
        ++stats_.probes;
        if (is_probe)
            *is_probe = true;
        return false;
      }
      case State::HalfOpen:
        if (!b.probeInFlight) {
            b.probeInFlight = true;
            ++stats_.probes;
            if (is_probe)
                *is_probe = true;
            return false;
        }
        retry_after_ms = options_.openMs;
        ++stats_.fastFails;
        return true;
    }
    return false;
}

void
BreakerRegistry::abandonProbe(uint64_t key)
{
    if (!options_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = breakers_.find(key);
    if (it == breakers_.end())
        return;
    Breaker &b = it->second;
    if (b.state == State::HalfOpen && b.probeInFlight)
        b.probeInFlight = false;
}

void
BreakerRegistry::recordSuccess(uint64_t key)
{
    if (!options_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = breakers_.find(key);
    if (it == breakers_.end())
        return;
    Breaker &b = it->second;
    if (b.state != State::Closed) {
        ++stats_.closed;
        --stats_.openShapes;
    }
    // One servable answer fully resets the shape — a closed breaker
    // keeps no memory of old trouble.
    breakers_.erase(it);
}

void
BreakerRegistry::recordFailure(uint64_t key)
{
    if (!options_.enabled)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    Breaker &b = breakers_[key];
    switch (b.state) {
      case State::Closed:
        if (++b.consecutiveFailures >= options_.failureThreshold) {
            b.state = State::Open;
            b.openUntil = Clock::now() +
                          std::chrono::milliseconds(options_.openMs);
            ++stats_.opened;
            ++stats_.openShapes;
        }
        break;
      case State::HalfOpen:
        // The probe failed: back to a full cooldown.
        b.state = State::Open;
        b.probeInFlight = false;
        b.openUntil =
            Clock::now() + std::chrono::milliseconds(options_.openMs);
        ++stats_.reopened;
        break;
      case State::Open:
        // A failure from a query admitted before the breaker opened;
        // the cooldown is already running.
        break;
    }
}

BreakerStats
BreakerRegistry::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

const char *
BreakerRegistry::stateName(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = breakers_.find(key);
    if (it == breakers_.end())
        return "closed";
    switch (it->second.state) {
      case State::Closed:   return "closed";
      case State::Open:     return "open";
      case State::HalfOpen: return "half_open";
    }
    return "closed";
}

} // namespace kcm::service
