/**
 * @file
 * Warm snapshot-template cache for the always-on query server.
 *
 * The paper's workflow pays a full compile + static link + download
 * for every query (§3: the compiler links the whole consulted program
 * with the goal into one image). A serving deployment sees the same
 * (program, goal) pair over and over; this cache memoises the
 * *post-download machine state* as a KCMSNAP2 snapshot template keyed
 * by a content hash of (program text, goal text, machine-config
 * fingerprint). A hit restores the template into a pooled worker —
 * zero recompilation, zero re-linking — and, because KCMSNAP2 restore
 * re-verifies every section checksum before mutating the machine, a
 * corrupt cache entry can only ever produce a classified
 * "corrupt_image_template" failure, never a wrong answer.
 *
 * Safety/robustness contract:
 *  - entries are immutable shared buffers (std::shared_ptr<const
 *    Snapshot>); concurrent sessions restore from the same bytes and
 *    never write them;
 *  - lookup() re-validates the container checksums *again* before
 *    handing the template out (cheap: one FNV-1a pass over the bytes)
 *    and evicts silently-corrupted entries instead of serving them;
 *  - the cache is LRU under a byte budget: inserting past the budget
 *    evicts least-recently-used templates first;
 *  - corruptOneForTesting() is the chaos hook: it *replaces* an entry
 *    with a bit-flipped copy under the cache lock (in-place mutation
 *    of a shared buffer would race concurrent restores).
 */

#ifndef KCM_SERVICE_IMAGE_CACHE_HH
#define KCM_SERVICE_IMAGE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/machine_config.hh"
#include "core/snapshot.hh"

namespace kcm::service
{

/** Cache-observable counters (monotonic; snapshot under the lock). */
struct ImageCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;        ///< LRU budget evictions
    uint64_t corruptEvictions = 0; ///< failed re-validation / explicit
    uint64_t insertions = 0;
    uint64_t bytes = 0;            ///< current resident template bytes
    uint64_t entries = 0;
};

/**
 * Content-hash key for one warm template. The machine configuration
 * participates because predecode layout, fusion mode and memory
 * geometry are baked into the snapshot's restore target; two tenants
 * with different configs must never share a template.
 */
uint64_t imageCacheKey(const std::string &program,
                       const std::string &goal,
                       const MachineConfig &config);

class ImageCache
{
  public:
    /** @p budget_bytes bounds resident template bytes (0 disables
     *  caching entirely: every lookup misses, inserts are dropped). */
    explicit ImageCache(uint64_t budget_bytes);

    /**
     * Fetch the template for @p key, bumping its LRU position. A
     * checksum-invalid entry is evicted and reported as a miss (the
     * caller recompiles, exactly as on a cold miss). Returns nullptr
     * on miss.
     */
    std::shared_ptr<const Snapshot> lookup(uint64_t key);

    /**
     * Insert (or replace) the template for @p key, then evict LRU
     * entries until the byte budget holds. The snapshot is stored as
     * an immutable shared buffer, which is also returned so the
     * inserting query can run from it without a second lookup (and
     * still can when a zero budget made the insert a no-op).
     */
    std::shared_ptr<const Snapshot> insert(uint64_t key,
                                           Snapshot snapshot);

    /** Drop @p key if present (e.g. after a worker reported
     *  "corrupt_image_template" for a template that passed the cheap
     *  pre-check). Returns true if an entry was evicted. */
    bool evict(uint64_t key);

    /**
     * Chaos hook: replace the most-recently-used entry with a copy
     * whose payload has one bit flipped (the container keeps its
     * declared lengths, so the corruption is only catchable by the
     * checksums). Returns the number of entries corrupted (0 or 1).
     */
    size_t corruptOneForTesting();

    ImageCacheStats stats() const;

  private:
    struct Entry
    {
        uint64_t key = 0;
        std::shared_ptr<const Snapshot> snap;
        uint64_t bytes = 0;
    };

    void evictLruLocked();

    const uint64_t budgetBytes_;

    mutable std::mutex mutex_;
    /** MRU at front. */
    std::list<Entry> lru_;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
    ImageCacheStats stats_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_IMAGE_CACHE_HH
