#include "service/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"
#include "kcm/kcm.hh"

namespace kcm::service
{

namespace
{

using Clock = std::chrono::steady_clock;

uint64_t
micros(Clock::time_point since)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - since)
                        .count());
}

uint64_t
steadyNowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now().time_since_epoch())
                        .count());
}

/** Wall-clock now in milliseconds since the Unix epoch — the clock
 *  the wire protocol's "deadline_abs_ms" is expressed in. */
int64_t
wallNowMs()
{
    return int64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

/** One accepted client connection. The reader loop runs in its own
 *  thread; replies are written by whatever thread completes the query
 *  (worker callback or the reader itself), serialized by writeMutex.
 *  The fd is closed only after the last in-flight reply for this
 *  connection has been written. */
struct Server::Connection
{
    int fd = -1;
    uint64_t id = 0;

    std::mutex writeMutex;
    std::atomic<bool> dead{false}; ///< write failed; stop servicing

    std::mutex inflightMutex;
    std::condition_variable inflightCv;
    unsigned inflight = 0; ///< queries submitted, reply not yet sent
};

/** Everything a submitted query needs to be answered — and, when its
 *  warm template turns out corrupt, transparently recompiled and
 *  resubmitted exactly once. */
struct Server::QueryCtx
{
    std::shared_ptr<Connection> conn;
    QueryJob job;
    std::string program;
    uint64_t key = 0;
    bool cacheHit = false;
    bool retriedCorrupt = false;
    bool breakerProbe = false; ///< this query is a half-open probe
    Clock::time_point submitted;
};

Server::Server(ServerOptions options)
    : options_(std::move(options)), cache_(options_.cacheBudgetBytes),
      breakers_(options_.breaker),
      jitterState_(options_.retryJitterSeed ? options_.retryJitterSeed
                                            : 0x9e3779b97f4a7c15ull)
{
    // A drain must be able to reclaim stragglers at slice boundaries.
    options_.session.abortOnInterrupt = true;

    // Recover/open the journal before the pool copies the session
    // options: every worker session shares the durable store pointer.
    if (!options_.dbJournalDir.empty())
        openDurableDb();

    SupervisorOptions pool;
    pool.session = options_.session;
    pool.workers = options_.workers;
    pool.maxQueueDepth = options_.maxQueueDepth;
    pool.globalMemoryBudgetBytes = options_.globalMemoryBudgetBytes;
    pool.defaultMemoryChargeBytes = options_.defaultMemoryChargeBytes;
    pool.hedging = options_.hedging;
    pool.hedgeLatencyFactor = options_.hedgeLatencyFactor;
    pool.hedgeMinMs = options_.hedgeMinMs;
    pool.hedgePollMs = options_.hedgePollMs;
    pool_ = std::make_unique<Supervisor>(std::move(pool));
}

void
Server::openDurableDb()
{
    durable_ = std::make_shared<db::JournaledStore>(
        options_.dbJournalDir, options_.journal,
        options_.session.machine.dyndb);
    options_.session.durableDb = durable_;

    if (!options_.dbFactsSource.empty()) {
        // Durable mode decouples the fact file from the compiled
        // images: images consult only the predicates' dynamic
        // declarations (stable text — cache keys don't churn as the
        // store mutates) while the facts themselves seed the store
        // once, as journal commit #1. A recovered journal wins over
        // the file: re-seeding would duplicate every fact.
        std::vector<TermRef> facts = KcmSystem::parseFactFile(
            options_.dbFactsSource, options_.dbFactsOrigin);
        durableDecls_ = KcmSystem::factDeclarations(facts);
        if (durable_->recoveryReport().records == 0 && !facts.empty()) {
            {
                std::lock_guard<std::mutex> lock(durable_->mutex());
                db::ClauseStore &store = durable_->store();
                store.beginTxn();
                for (const TermRef &fact : facts)
                    store.assertClause(fact->functor(), fact, nullptr,
                                       /*at_front=*/false);
                durable_->commit(store.txnOps());
                store.commitTxn();
            }
            durable_->flush(); // flush() takes the mutex itself
        }
    }
}

Server::~Server()
{
    requestDrain();
    waitDrained();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
Server::start()
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("server: socket(): ", strerror(errno));
    int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.bindAddress.c_str(),
                  &addr.sin_addr) != 1)
        fatal("server: bad bind address '", options_.bindAddress, "'");
    if (bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
             sizeof addr) < 0)
        fatal("server: bind(", options_.bindAddress, ":", options_.port,
              "): ", strerror(errno));
    if (listen(listenFd_, 64) < 0)
        fatal("server: listen(): ", strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound), &len);
    port_ = ntohs(bound.sin_port);

    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
Server::acceptLoop()
{
    uint64_t next_id = 0;
    while (!draining_.load(std::memory_order_relaxed)) {
        pollfd pfd{listenFd_, POLLIN, 0};
        int rv = poll(&pfd, 1, 100);
        if (rv <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;

        bool refuse = false;
        {
            std::lock_guard<std::mutex> lock(connMutex_);
            if (liveConnections_ >= options_.maxConnections)
                refuse = true;
            else
                ++liveConnections_;
        }
        if (refuse) {
            std::string line =
                JsonWriter()
                    .field("status", "overloaded")
                    .field("error", "connection limit reached")
                    .field("retry_after_ms", jitteredRetryAfter(1000))
                    .str() +
                "\n";
            writeAllDeadline(fd, line.data(), line.size(),
                             options_.writeDeadlineMs);
            ::close(fd);
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.connectionsRefused;
            continue;
        }

        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->id = ++next_id;
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.connectionsAccepted;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        connThreads_.emplace_back(
            [this, conn = std::move(conn)]() mutable {
                connectionLoop(std::move(conn));
            });
    }
}

void
Server::connectionLoop(std::shared_ptr<Connection> conn)
{
    LineReader reader(conn->fd, options_.maxLineBytes);
    auto cancel = [this, &conn] {
        return draining_.load(std::memory_order_relaxed) ||
               conn->dead.load(std::memory_order_relaxed);
    };

    for (;;) {
        std::string line;
        IoStatus st = reader.next(line, options_.idleTimeoutMs,
                                  options_.readDeadlineMs, cancel);
        if (st == IoStatus::Ok) {
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++counters_.requests;
            }
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            handleRequest(conn, line);
            continue;
        }
        if (st == IoStatus::SlowLoris || st == IoStatus::Oversize ||
            st == IoStatus::Timeout) {
            // A frame that never completes (trickled, oversized, or an
            // idle peer) ends the connection — with a diagnostic when
            // there was a partial request to diagnose.
            if (st != IoStatus::Timeout || reader.pendingBytes()) {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++counters_.badRequests;
                if (st == IoStatus::Oversize)
                    ++counters_.frameTooLarge;
            }
            if (st != IoStatus::Timeout) {
                // Oversize gets its own classification: the reader
                // stopped buffering at the cap (it never reads past
                // it), and the client should know the frame itself —
                // not its pacing — was the problem.
                writeReply(conn,
                           JsonWriter()
                               .field("status", "bad_request")
                               .field("error",
                                      st == IoStatus::Oversize
                                          ? std::string("frame_too_large")
                                          : cat("request frame ",
                                                ioStatusName(st)))
                               .str());
            }
        }
        break; // Closed / Cancelled / Error / the cases above
    }

    // Drain this connection: every submitted query still gets its
    // reply written (by the worker callbacks) before the fd closes.
    {
        std::unique_lock<std::mutex> lock(conn->inflightMutex);
        conn->inflightCv.wait(lock,
                              [&] { return conn->inflight == 0; });
    }
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
    std::lock_guard<std::mutex> lock(connMutex_);
    --liveConnections_;
}

void
Server::writeReply(const std::shared_ptr<Connection> &conn,
                   const std::string &line)
{
    std::string framed = line + "\n";
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->dead.load(std::memory_order_relaxed))
        return;
    IoStatus st = writeAllDeadline(conn->fd, framed.data(),
                                   framed.size(),
                                   options_.writeDeadlineMs);
    if (st != IoStatus::Ok) {
        // The peer stopped reading (or vanished): mark the connection
        // dead so its reader unblocks; in-flight queries still finish
        // (their replies are dropped here, but the accounting counts
        // them as replied — the server did its part).
        conn->dead.store(true, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

uint64_t
Server::jitteredRetryAfter(uint64_t base) const
{
    uint64_t x;
    {
        std::lock_guard<std::mutex> lock(jitterMutex_);
        // xorshift64*: cheap, full-period, and — seeded — fully
        // reproducible, so tests can assert the exact hint sequence.
        jitterState_ ^= jitterState_ >> 12;
        jitterState_ ^= jitterState_ << 25;
        jitterState_ ^= jitterState_ >> 27;
        x = jitterState_ * 0x2545f4914f6cdd1dull;
    }
    // Up to +50% de-synchronizes a retry storm without materially
    // delaying any one client.
    return base + x % (base / 2 + 1);
}

uint64_t
Server::retryAfterMs() const
{
    uint64_t backlog = pool_->queueDepth();
    uint64_t hint = 25 * (backlog + 1);
    return jitteredRetryAfter(hint > 2000 ? 2000 : hint);
}

void
Server::replyError(const std::shared_ptr<Connection> &conn,
                   const std::string &id, const char *status,
                   const std::string &error)
{
    JsonWriter w;
    if (!id.empty())
        w.field("id", id);
    w.field("status", status).field("error", error);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.badRequests;
    }
    writeReply(conn, w.str());
}

void
Server::replyOverloaded(const std::shared_ptr<Connection> &conn,
                        const std::string &id,
                        const std::string &detail)
{
    JsonWriter w;
    if (!id.empty())
        w.field("id", id);
    w.field("status", "overloaded")
        .field("error", detail)
        .field("retry_after_ms", retryAfterMs());
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.overloaded;
    }
    writeReply(conn, w.str());
}

void
Server::handleRequest(const std::shared_ptr<Connection> &conn,
                      const std::string &line)
{
    JsonObject request;
    std::string parse_error;
    if (!parseJsonObject(line, request, parse_error)) {
        replyError(conn, "", "bad_request",
                   cat("malformed request: ", parse_error));
        return;
    }

    std::string id;
    if (auto it = request.find("id");
        it != request.end() && it->second.isString())
        id = it->second.str;

    std::string op = "query";
    if (auto it = request.find("op"); it != request.end()) {
        if (!it->second.isString()) {
            replyError(conn, id, "bad_request", "\"op\" must be a string");
            return;
        }
        op = it->second.str;
    }

    if (op == "ping") {
        JsonWriter w;
        if (!id.empty())
            w.field("id", id);
        writeReply(conn, w.field("status", "pong").str());
        return;
    }
    if (op == "stats") {
        ServerCounters c = counters();
        ImageCacheStats cs = cache_.stats();
        ServiceStats ps = pool_->stats();
        BreakerStats bs = breakers_.stats();
        JsonWriter w;
        if (!id.empty())
            w.field("id", id);
        w.field("status", "ok")
            .field("connections", c.connectionsAccepted)
            .field("requests", c.requests)
            .field("bad_requests", c.badRequests)
            .field("overloaded", c.overloaded)
            .field("queries_accepted", c.queriesAccepted)
            .field("queries_replied", c.queriesReplied)
            .field("compiles", c.compiles)
            .field("compile_micros", c.compileMicros)
            .field("corrupt_retries", c.corruptRetries)
            .field("frame_too_large", c.frameTooLarge)
            .field("cache_hits", cs.hits)
            .field("cache_misses", cs.misses)
            .field("cache_evictions", cs.evictions)
            .field("cache_corrupt_evictions", cs.corruptEvictions)
            .field("cache_bytes", cs.bytes)
            .field("cache_entries", cs.entries)
            .field("pool_completed", ps.completed)
            .field("pool_failed", ps.failed)
            .field("pool_shed", ps.shed)
            .field("pool_retries", ps.retries)
            .field("pool_restarts", ps.restarts)
            .field("pool_checkpoints", ps.checkpoints)
            .field("hedges", ps.hedges)
            .field("hedge_wins", ps.hedgeWins)
            .field("deadline_propagated_sheds",
                   ps.deadlinePropagatedSheds)
            .field("mem_aborts", ps.memAborts)
            .field("mem_admission_refusals", ps.memAdmissionRefusals)
            .field("mem_charged_bytes", ps.memChargedBytes)
            .field("breaker_open", bs.opened)
            .field("breaker_reopened", bs.reopened)
            .field("breaker_closed", bs.closed)
            .field("breaker_fast_fails", bs.fastFails)
            .field("breaker_probes", bs.probes)
            .field("breaker_open_shapes", bs.openShapes);
        if (durable_) {
            const db::JournalScan &rec = durable_->recoveryReport();
            w.field("db_commits", ps.dbCommits)
                .field("db_ops", ps.dbOps)
                .field("journal_commits", durable_->commitsWritten())
                .field("journal_ops", durable_->opsWritten())
                .field("journal_snapshots",
                       durable_->snapshotsWritten())
                .field("journal_bytes", durable_->bytesWritten())
                .field("journal_recovered_commits", rec.commits)
                .field("journal_recovered_ops", rec.ops)
                .field("journal_recovery", rec.classification())
                .field("journal_truncated_bytes",
                       rec.fileBytes - rec.goodBytes);
        }
        writeReply(conn, w.str());
        return;
    }
    if (op == "corrupt_cache") {
        if (!options_.chaosHooks) {
            replyError(conn, id, "bad_request",
                       "chaos hooks are disabled");
            return;
        }
        size_t n = cache_.corruptOneForTesting();
        JsonWriter w;
        if (!id.empty())
            w.field("id", id);
        writeReply(conn,
                   w.field("status", "ok")
                       .field("corrupted", uint64_t(n))
                       .str());
        return;
    }
    if (op != "query") {
        replyError(conn, id, "bad_request", cat("unknown op \"", op, "\""));
        return;
    }
    handleQuery(conn, request, id);
}

void
Server::handleQuery(const std::shared_ptr<Connection> &conn,
                    const JsonObject &request, const std::string &id)
{
    auto str_field = [&](const char *name,
                         std::string &out) -> bool {
        auto it = request.find(name);
        if (it == request.end() || !it->second.isString())
            return false;
        out = it->second.str;
        return true;
    };

    std::string program, goal;
    if (!str_field("program", program)) {
        replyError(conn, id, "bad_request",
                   "\"program\" (string) is required");
        return;
    }
    if (!str_field("goal", goal) || goal.empty()) {
        replyError(conn, id, "bad_request",
                   "\"goal\" (nonempty string) is required");
        return;
    }

    QueryJob job;
    job.id = id;
    job.goal = goal;
    if (auto it = request.find("deadline_ms"); it != request.end()) {
        int64_t v = it->second.asInt(-1);
        if (!it->second.isNumber() || v < 0) {
            replyError(conn, id, "bad_request",
                       "\"deadline_ms\" must be a nonnegative number");
            return;
        }
        job.deadlineMs = uint64_t(v);
    }
    if (auto it = request.find("max_solutions"); it != request.end()) {
        int64_t v = it->second.asInt(-1);
        if (!it->second.isNumber() || v < 0) {
            replyError(conn, id, "bad_request",
                       "\"max_solutions\" must be a nonnegative number");
            return;
        }
        job.maxSolutions = size_t(v);
    }
    if (auto it = request.find("deadline_abs_ms"); it != request.end()) {
        // End-to-end deadline: absolute wall-clock milliseconds since
        // the Unix epoch, converted here — once — to the steady clock
        // the whole propagation chain (supervisor shedding, session
        // cycle slices) runs on. An already-expired deadline still
        // propagates: the supervisor sheds it with a classified
        // "deadline_exceeded" and zero cycles spent.
        int64_t v = it->second.asInt(-1);
        if (!it->second.isNumber() || v < 0) {
            replyError(
                conn, id, "bad_request",
                "\"deadline_abs_ms\" must be a nonnegative number "
                "(wall-clock ms since the epoch)");
            return;
        }
        int64_t delta_ms = v - wallNowMs();
        uint64_t now_ns = steadyNowNs();
        job.deadlineAbsNs =
            delta_ms > 0 ? now_ns + uint64_t(delta_ms) * 1'000'000u
                         : 1; // nonzero-but-past: sheds at admission
    }
    if (auto it = request.find("memory_budget_bytes");
        it != request.end()) {
        // Per-query memory governance: byte ceiling over the four
        // governed data zones, enforced at zone-growth boundaries and
        // raised as a catchable resource_error(memory). Part of the
        // query shape (cache key): different budgets are different
        // shapes.
        int64_t v = it->second.asInt(-1);
        if (!it->second.isNumber() || v < 0) {
            replyError(
                conn, id, "bad_request",
                "\"memory_budget_bytes\" must be a nonnegative number");
            return;
        }
        if (v > 0) {
            MachineConfig mc = options_.session.machine;
            mc.governor.memoryBudgetBytes = uint64_t(v);
            job.machine = mc;
        }
    }
    if (auto it = request.find("chaos_slice_delay_us");
        it != request.end()) {
        if (!options_.chaosHooks) {
            replyError(conn, id, "bad_request",
                       "chaos hooks are disabled");
            return;
        }
        job.chaosSliceDelayUs = uint64_t(it->second.asInt(0));
    }

    // The query shape: image-cache hash over program, goal and the
    // effective machine config (per-query memory budgets are part of
    // the shape; deadlines are not — a shape opened by tight-deadline
    // failures can close via a probe with a generous one).
    const uint64_t key = imageCacheKey(
        program, goal,
        job.machine ? *job.machine : options_.session.machine);
    job.shapeKey = key;

    // Circuit breaker: a shape that keeps failing fast-fails here —
    // structured reply, zero machine cycles — until its cooldown
    // admits a half-open probe.
    bool breaker_probe = false;
    if (uint64_t retry_ms = 0;
        breakers_.shouldReject(key, retry_ms, &breaker_probe)) {
        JsonWriter w;
        if (!id.empty())
            w.field("id", id);
        w.field("status", "failed")
            .field("error", "circuit_open")
            .field("detail",
                   cat("circuit breaker open for this query shape (",
                       "repeated classified failures); retry later"))
            .field("retry_after_ms", jitteredRetryAfter(retry_ms));
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.breakerFastFails;
        }
        writeReply(conn, w.str());
        return;
    }

    // Per-client fairness: one slow client cannot monopolize the pool.
    {
        std::lock_guard<std::mutex> lock(conn->inflightMutex);
        if (conn->inflight >= options_.maxInflightPerConn) {
            if (breaker_probe)
                breakers_.abandonProbe(key);
            replyOverloaded(conn, id,
                            cat("per-connection in-flight cap (",
                                options_.maxInflightPerConn,
                                ") reached"));
            return;
        }
        ++conn->inflight;
    }

    // Warm-template cache: hit → restore, miss → compile + insert.
    std::shared_ptr<const Snapshot> tmpl = cache_.lookup(key);
    const bool hit = tmpl != nullptr;
    if (!tmpl) {
        std::string compile_error;
        tmpl = compileTemplate(key, program, goal, compile_error);
        if (!tmpl) {
            {
                std::lock_guard<std::mutex> lock(conn->inflightMutex);
                --conn->inflight;
                conn->inflightCv.notify_all();
            }
            // A compile error is intrinsic to the shape — it counts
            // toward opening its breaker like any classified failure.
            breakers_.recordFailure(key);
            replyError(conn, id, "bad_request",
                       cat("compile_error: ", compile_error));
            return;
        }
    }

    auto ctx = std::make_shared<QueryCtx>();
    ctx->conn = conn;
    ctx->job = job;
    ctx->program = program;
    ctx->key = key;
    ctx->cacheHit = hit;
    ctx->breakerProbe = breaker_probe;
    ctx->submitted = Clock::now();

    inflightQueries_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.queriesAccepted;
    }
    pool_->submitAsync(std::move(job), std::move(tmpl),
                       [this, ctx](QueryOutcome outcome) mutable {
                           onOutcome(std::move(ctx),
                                     std::move(outcome));
                       });
}

std::shared_ptr<const Snapshot>
Server::compileTemplate(uint64_t key, const std::string &program,
                        const std::string &goal, std::string &error)
{
    const auto started = Clock::now();
    try {
        KcmOptions opt;
        opt.machine = options_.session.machine;
        KcmSystem system(opt);
        if (options_.consultStdlib)
            system.consultStandardLibrary();
        system.consult(program);
        if (durable_) {
            // Durable mode: the store carries the facts; the image
            // only needs the dynamic declarations so it keeps its
            // dynamic-dispatch stubs (dynRetryEntry) for store-only
            // predicates.
            if (!durableDecls_.empty())
                system.consult(durableDecls_);
        } else if (!options_.dbFactsSource.empty()) {
            system.preloadFacts(options_.dbFactsSource,
                                options_.dbFactsOrigin);
        }
        CodeImage image = system.compileOnly(goal);

        Machine machine(options_.session.machine);
        machine.load(image);
        Snapshot snap = takeSnapshot(machine);
        auto tmpl = cache_.insert(key, std::move(snap));
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.compiles;
        counters_.compileMicros += micros(started);
        return tmpl;
    } catch (const FatalError &e) {
        error = e.what();
        return nullptr;
    }
}

void
Server::onOutcome(std::shared_ptr<QueryCtx> ctx, QueryOutcome outcome)
{
    // A template that passed the cheap checksum pre-check but failed
    // the full restore validation: evict, recompile, resubmit once.
    // (Twice corrupt means something is systematically wrong — the
    // client gets the classified failure.)
    if (outcome.status == QueryStatus::Failed &&
        outcome.failure.classification == "corrupt_image_template" &&
        !ctx->retriedCorrupt) {
        ctx->retriedCorrupt = true;
        cache_.evict(ctx->key);
        std::string compile_error;
        auto tmpl = compileTemplate(ctx->key, ctx->program,
                                    ctx->job.goal, compile_error);
        if (tmpl) {
            {
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++counters_.corruptRetries;
            }
            ctx->cacheHit = false;
            QueryJob job = ctx->job;
            pool_->submitAsync(
                std::move(job), std::move(tmpl),
                [this, ctx](QueryOutcome o) mutable {
                    onOutcome(std::move(ctx), std::move(o));
                });
            return;
        }
        // fall through: report the original failure
    }

    // Feed the shape's circuit breaker. Completing — even with a
    // program-level error term — proves the shape servable; a
    // classified failure counts against it, except server-initiated
    // stops ("interrupted", "cancelled") and sheds, which say nothing
    // about the shape itself.
    switch (outcome.status) {
      case QueryStatus::Completed:
        breakers_.recordSuccess(ctx->key);
        break;
      case QueryStatus::Failed: {
        const std::string &cls = outcome.failure.classification;
        if (cls == "interrupted" || cls == "cancelled") {
            if (ctx->breakerProbe)
                breakers_.abandonProbe(ctx->key);
        } else {
            breakers_.recordFailure(ctx->key);
        }
        break;
      }
      case QueryStatus::Shed:
        if (ctx->breakerProbe)
            breakers_.abandonProbe(ctx->key);
        break;
    }

    JsonWriter w;
    if (!ctx->job.id.empty())
        w.field("id", ctx->job.id);

    switch (outcome.status) {
      case QueryStatus::Completed: {
        std::vector<std::string> answers;
        answers.reserve(outcome.solutions.size());
        for (const Solution &s : outcome.solutions)
            answers.push_back(s.toString());
        w.field("status", "completed")
            .field("success", outcome.success)
            .fieldStrings("answers", answers)
            .field("output", outcome.output)
            .field("halted", outcome.halted);
        if (!outcome.error.empty())
            w.field("error", outcome.error);
        if (outcome.dbCommitId) {
            // The durable ack: this reply's mutations are journaled
            // under this commit id (the torture harness replays acked
            // commits against the recovered store).
            w.field("db_ops", outcome.dbOps)
                .field("db_commit", outcome.dbCommitId);
        }
        w.field("cycles", outcome.cycles)
            .field("instructions", outcome.instructions)
            .field("inferences", outcome.inferences)
            .field("cache", ctx->cacheHit ? "hit" : "miss")
            .field("wall_ms",
                   uint64_t(outcome.wallSeconds * 1000.0));
        break;
      }
      case QueryStatus::Failed:
        // "cycles" makes the failure's cost inspectable: a propagated
        // deadline shed reports 0 (never ran), a mid-run expiry
        // reports the simulated cycles burned before the session
        // stopped itself.
        w.field("status", "failed")
            .field("error", outcome.failure.classification)
            .field("detail", outcome.failure.detail)
            .field("attempts", uint64_t(outcome.failure.attempts))
            .field("cycles", outcome.cycles)
            .field("cache", ctx->cacheHit ? "hit" : "miss");
        if (outcome.failure.classification == "interrupted") {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.interrupted;
        }
        break;
      case QueryStatus::Shed:
        w.field("status", "overloaded")
            .field("error", outcome.failure.detail)
            .field("retry_after_ms", retryAfterMs());
        {
            std::lock_guard<std::mutex> lock(statsMutex_);
            ++counters_.overloaded;
        }
        break;
    }

    // Count before the write lands: a reply into a dead socket still
    // counts as delivered (writeReply absorbs the failure), and a
    // client that reads its reply then immediately asks for stats
    // must already see it in queries_replied.
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++counters_.queriesReplied;
    }
    writeReply(ctx->conn, w.str());
    {
        std::lock_guard<std::mutex> lock(ctx->conn->inflightMutex);
        --ctx->conn->inflight;
        ctx->conn->inflightCv.notify_all();
    }
    if (inflightQueries_.fetch_sub(1, std::memory_order_relaxed) == 1) {
        std::lock_guard<std::mutex> lock(drainMutex_);
        drainCv_.notify_all();
    }
}

void
Server::waitDrained()
{
    if (!pool_)
        return; // already drained

    // Phase 0: wait for the drain request. Polled, because the flag
    // is set from signal handlers, which cannot notify a condition
    // variable (only the atomic store is async-signal-safe).
    while (!draining_.load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // Phase 1: grace — every accepted query runs to completion and
    // its reply is flushed by the worker callbacks.
    {
        std::unique_lock<std::mutex> lock(drainMutex_);
        bool quiesced = drainCv_.wait_for(
            lock, std::chrono::milliseconds(options_.drainGraceMs),
            [this] {
                return inflightQueries_.load(
                           std::memory_order_relaxed) == 0;
            });
        if (!quiesced) {
            // Phase 2: out of grace — checkpoint-abort the stragglers.
            // Their sessions stop at the next slice boundary and the
            // callbacks still flush classified "interrupted" replies,
            // so accepted == replied holds even on a hard drain.
            requestServiceInterrupt();
            drainCv_.wait(lock, [this] {
                return inflightQueries_.load(
                           std::memory_order_relaxed) == 0;
            });
        }
    }

    // Every reader sees draining_ within one poll slice and exits once
    // its last reply is out.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads) {
        if (t.joinable())
            t.join();
    }

    // The pool is idle (no in-flight queries); its destructor joins
    // the workers. Final stats stay readable for the drain report.
    poolFinal_ = pool_->stats();
    pool_.reset();

    // Every acked commit is already write()n (commit-before-ack); the
    // drain flush pushes the tail through fsync so even a subsequent
    // kernel crash keeps the journal and the drain report in agreement.
    if (durable_)
        durable_->flush();
}

ServerCounters
Server::counters() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return counters_;
}

ServiceStats
Server::poolStats() const
{
    return pool_ ? pool_->stats() : poolFinal_;
}

} // namespace kcm::service
