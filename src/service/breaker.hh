/**
 * @file
 * Per-query-shape circuit breakers.
 *
 * A query shape — the image-cache hash over (program, goal, machine
 * config) — that keeps failing will keep failing: the failure is in
 * the work itself (a goal that always blows its memory budget, a
 * program that always traps), not in transient load. Admitting more
 * instances of it burns worker time that healthy shapes are queued
 * behind. The breaker registry watches classified failures per shape
 * and trips a standard three-state breaker:
 *
 *   Closed    — normal admission; a run of `failureThreshold`
 *               *consecutive* classified failures opens the breaker
 *               (one success resets the run).
 *   Open      — admissions fast-fail with classification
 *               "circuit_open" and a retry_after_ms hint, spending
 *               zero machine cycles, until `openMs` has elapsed.
 *   Half-open — after the cooldown exactly one probe query is
 *               admitted; its success closes the breaker, its
 *               failure re-opens the cooldown. Concurrent arrivals
 *               while the probe is in flight still fast-fail.
 *
 * What counts as a failure is the *caller's* decision (recordSuccess /
 * recordFailure): the server counts classified service failures —
 * deadline_exceeded, resource_error(...), machine traps — but not
 * "interrupted"/"cancelled" (server-initiated stops) and not shed
 * queries (which never ran). A query that completes — even with a
 * program-level error term — is a success: the shape is servable.
 *
 * Thread-safe; one registry per server, shared by every connection.
 */

#ifndef KCM_SERVICE_BREAKER_HH
#define KCM_SERVICE_BREAKER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>

namespace kcm::service
{

struct BreakerOptions
{
    /** Master switch (kcm_serverd --no-breakers). */
    bool enabled = true;

    /** Consecutive classified failures that open a shape's breaker. */
    unsigned failureThreshold = 5;

    /** Cooldown before a half-open probe is admitted. Also the base
     *  of the retry_after_ms hint on fast-fails. */
    uint64_t openMs = 250;
};

/** Aggregate counters across all shapes (monotonic, except where
 *  noted). */
struct BreakerStats
{
    uint64_t opened = 0;    ///< closed → open transitions
    uint64_t reopened = 0;  ///< half-open probe failed → open again
    uint64_t closed = 0;    ///< half-open probe succeeded → closed
    uint64_t fastFails = 0; ///< admissions rejected while open
    uint64_t probes = 0;    ///< half-open probes admitted
    uint64_t openShapes = 0; ///< gauge: shapes currently open/half-open
};

class BreakerRegistry
{
  public:
    explicit BreakerRegistry(BreakerOptions options);

    /**
     * Admission gate for one query of shape @p key. Returns true to
     * fast-fail the query (breaker open; @p retry_after_ms is set to
     * the remaining cooldown), false to admit it — which may be the
     * shape's half-open probe (@p is_probe, when non-null, reports
     * which; a probe that ends without a countable outcome must be
     * released via abandonProbe or the shape stays stuck half-open).
     */
    bool shouldReject(uint64_t key, uint64_t &retry_after_ms,
                      bool *is_probe = nullptr);

    /** The admitted query of shape @p key completed servably. */
    void recordSuccess(uint64_t key);

    /** The admitted query of shape @p key failed in a way that counts
     *  against the breaker. */
    void recordFailure(uint64_t key);

    /** A half-open probe ended with a neutral outcome (shed,
     *  interrupted, cancelled — the shape was never really tried):
     *  release the probe slot so the next arrival probes instead. */
    void abandonProbe(uint64_t key);

    BreakerStats stats() const;

    /** Current state of @p key's breaker: "closed", "open" or
     *  "half_open" (tests and the stats op). */
    const char *stateName(uint64_t key) const;

  private:
    using Clock = std::chrono::steady_clock;

    enum class State
    {
        Closed,
        Open,
        HalfOpen,
    };

    struct Breaker
    {
        State state = State::Closed;
        unsigned consecutiveFailures = 0;
        Clock::time_point openUntil;
        bool probeInFlight = false;
    };

    BreakerOptions options_;
    mutable std::mutex mutex_;
    std::map<uint64_t, Breaker> breakers_;
    BreakerStats stats_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_BREAKER_HH
