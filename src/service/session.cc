#include "service/session.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "base/logging.hh"
#include "mem/traps.hh"

namespace kcm::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedSeconds(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since).count();
}

uint64_t
steadyNowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now().time_since_epoch())
                        .count());
}

/** Process-wide shutdown flag; written by signal handlers (a lock-free
 *  atomic store is async-signal-safe), read at slice boundaries. */
std::atomic<bool> interruptFlag{false};

} // namespace

void
requestServiceInterrupt()
{
    interruptFlag.store(true, std::memory_order_relaxed);
}

void
clearServiceInterrupt()
{
    interruptFlag.store(false, std::memory_order_relaxed);
}

bool
serviceInterruptRequested()
{
    return interruptFlag.load(std::memory_order_relaxed);
}

Session::Session(CodeImage image, SessionOptions options)
    : image_(std::move(image)), options_(std::move(options))
{
}

Session::Session(std::shared_ptr<const Snapshot> warm_template,
                 SessionOptions options)
    : template_(std::move(warm_template)), options_(std::move(options))
{
    if (!template_)
        fatal("session: null warm-start template");
}

Session::~Session() = default;

void
Session::takeCheckpoint(std::vector<Solution> &solutions,
                        bool resume_after)
{
    checkpoint_.snap = takeSnapshot(*machine_);
    checkpoint_.solutionCount = solutions.size();
    checkpoint_.resumeAfterRestore = resume_after;
    checkpoint_.cycle = machine_->cycles();
    ++counters_.checkpoints;
    counters_.checkpointBytes += checkpoint_.snap.bytes.size();
}

bool
Session::coldStart()
{
    // Bring the fresh machine to its ready-to-run state: download the
    // compiled image, or restore the shared post-download KCMSNAP2
    // template (the warm-cache path; restoreSnapshot re-validates
    // every section checksum before mutating anything, so a corrupt
    // template is reported here and never executes).
    if (template_) {
        try {
            restoreSnapshot(*machine_, *template_);
        } catch (const FatalError &e) {
            templateError_ = e.what();
            return false;
        }
        // The template's zone table was snapped under the compiling
        // machine's config; re-impose this session's governor quotas
        // (per-query memory budgets) so the restored state matches a
        // fresh load() under options_.machine.
        machine_->reapplyQuotas();
        return true;
    }
    machine_->load(image_);
    return true;
}

bool
Session::restartFresh()
{
    // The checkpoint snapshot itself carries the fault (armed MMU
    // fault, tightened zone limit, latent corrupt word): throw the
    // machine away. load() resets everything a fresh Machine has
    // except the zone hard ends a TightenZone already moved, so
    // escalation needs a genuinely new machine, not a reload.
    machine_ = std::make_unique<Machine>(options_.machine);
    bool ok = coldStart();
    machine_->dismissPendingFaults();
    ++counters_.restarts;
    return ok;
}

QueryOutcome
Session::run()
{
    const auto started = Clock::now();
    QueryOutcome out;

    db::JournaledStore *durable = options_.durableDb.get();
    std::unique_lock<std::mutex> durable_lock;
    if (durable) {
        // Durable queries serialize on the shared store's mutex for
        // the whole run and disable checkpoint recovery/retries: a
        // snapshot restore would replace the attached store contents
        // mid-transaction.
        durable_lock = std::unique_lock<std::mutex>(durable->mutex());
        options_.checkpointEveryMcycles = 0;
        options_.maxRetries = 0;
    }

    const uint64_t checkpoint_cycles =
        options_.checkpointEveryMcycles * 1'000'000;
    const bool recovery = options_.maxRetries > 0 ||
                          checkpoint_cycles > 0;
    // Slice granularity: the checkpoint interval when checkpointing,
    // else the watchdog tick when a deadline (or the shutdown flag)
    // needs polling.
    uint64_t slice = checkpoint_cycles;
    if (!slice &&
        (options_.deadlineMs || options_.deadlineAbsNs ||
         options_.abortOnInterrupt || options_.cancel))
        slice = options_.watchdogSliceCycles;

    machine_ = std::make_unique<Machine>(options_.machine);
    if (!coldStart()) {
        // The warm-start template failed checksum re-validation: a
        // corrupt cache entry is never executed. Classified so the
        // owner evicts the entry and recompiles.
        out.status = QueryStatus::Failed;
        out.failure.classification = "corrupt_image_template";
        out.failure.trapKind = TrapKind::Abort;
        out.failure.detail = templateError_;
        out.failure.attempts = 1;
        out.wallSeconds = elapsedSeconds(started);
        out.counters = counters_;
        return out;
    }
    if (durable) {
        // Attach after coldStart: both load() and a warm-template
        // restore install their own store; the durable store must win.
        machine_->attachDynamicDb(durable->storePtr());
        durable->store().beginTxn();
    }
    if (recovery)
        takeCheckpoint(out.solutions, /*resume_after=*/false);

    const size_t max_solutions =
        options_.maxSolutions == 0 ? SIZE_MAX : options_.maxSolutions;

    enum class Mode { Run, Next, Resume };
    Mode mode = Mode::Run;
    unsigned attempts = 1;
    uint64_t backoff_ms = options_.backoffBaseMs;
    uint64_t last_failure_cycle = 0;
    bool failed_before = false;

    auto finish = [&](QueryStatus status) {
        if (durable && durable->store().inTxn()) {
            // Commit-before-ack: the journal record is on disk (or the
            // transaction is fully rolled back) before run() returns,
            // so a reply can never acknowledge an unjournaled
            // mutation. Completed covers program-level errors too —
            // ISO semantics: side effects before an unhandled
            // exception persist. Failed/interrupted queries roll back
            // exactly, never leaving a half-applied burst.
            if (status == QueryStatus::Completed &&
                !durable->store().txnOps().empty()) {
                try {
                    out.dbCommitId =
                        durable->commit(durable->store().txnOps());
                    out.dbOps = durable->store().commitTxn().size();
                } catch (const FatalError &e) {
                    durable->store().rollbackTxn();
                    status = QueryStatus::Failed;
                    out.solutions.clear();
                    out.failure.classification = "journal_io_error";
                    out.failure.trapKind = TrapKind::Abort;
                    out.failure.detail = e.what();
                    out.failure.attempts = attempts;
                }
            } else if (status == QueryStatus::Completed) {
                durable->store().commitTxn(); // no mutations to journal
            } else {
                durable->store().rollbackTxn();
            }
        }
        out.status = status;
        out.success = !out.solutions.empty();
        out.halted = machine_->halted();
        out.output = machine_->output();
        out.cycles = machine_->cycles();
        out.instructions = machine_->instructions();
        out.inferences = machine_->inferences();
        out.wallSeconds = elapsedSeconds(started);
        out.counters = counters_;
        return out;
    };
    auto fail = [&](std::string classification, TrapKind kind,
                    std::string detail) {
        out.failure.classification = std::move(classification);
        out.failure.trapKind = kind;
        out.failure.detail = std::move(detail);
        out.failure.attempts = attempts;
        out.failure.cyclesLost = counters_.recoveryCycles;
        out.failure.checkpointAgeCycles =
            machine_->cycles() >= checkpoint_.cycle
                ? machine_->cycles() - checkpoint_.cycle
                : machine_->cycles();
        return finish(QueryStatus::Failed);
    };
    auto deadlineBlown = [&]() {
        return options_.deadlineMs &&
               elapsedSeconds(started) * 1000.0 >
                   double(options_.deadlineMs) * double(attempts);
    };
    auto cancelled = [&]() {
        return options_.cancel &&
               options_.cancel->load(std::memory_order_relaxed);
    };
    // End-to-end deadline → governor cycle slices: size each slice so
    // the machine stops itself at (or just past) the propagated
    // boundary instead of overshooting by a full watchdog tick. The
    // simulation rate is observed as the run progresses; the initial
    // estimate is deliberately low so the first slice under a tight
    // deadline is short.
    double est_cycles_per_sec = 20e6;
    auto deadlineSliceCycles = [&]() -> uint64_t {
        if (!options_.deadlineAbsNs)
            return 0;
        uint64_t now_ns = steadyNowNs();
        if (now_ns >= options_.deadlineAbsNs)
            return 1; // expired: surface at the next boundary
        double elapsed = elapsedSeconds(started);
        if (elapsed > 1e-3 && machine_->cycles() > 0) {
            est_cycles_per_sec =
                std::min(1e10, std::max(1e6, double(machine_->cycles()) /
                                                 elapsed));
        }
        double remaining_sec =
            double(options_.deadlineAbsNs - now_ns) * 1e-9;
        double budget = remaining_sec * est_cycles_per_sec;
        return uint64_t(std::max(10e3, std::min(budget, 4e15)));
    };
    auto absDeadlineExpired = [&]() {
        return options_.deadlineAbsNs &&
               steadyNowNs() >= options_.deadlineAbsNs;
    };
    // Recover from a trap (or blown deadline slice): restore the last
    // checkpoint, or escalate to a fresh machine when the checkpoint
    // re-traps without progress. Returns false when the retry budget
    // is exhausted — the caller then emits the failure report.
    auto recover = [&]() {
        if (attempts > options_.maxRetries)
            return false;
        ++attempts;
        const uint64_t fail_cycle = machine_->cycles();
        const bool progressed = !failed_before ||
                                fail_cycle > last_failure_cycle;
        failed_before = true;
        last_failure_cycle = fail_cycle;
        if (progressed) {
            counters_.recoveryCycles +=
                fail_cycle - checkpoint_.cycle;
            restoreSnapshot(*machine_, checkpoint_.snap);
            machine_->dismissPendingFaults();
            out.solutions.resize(checkpoint_.solutionCount);
            mode = checkpoint_.resumeAfterRestore ? Mode::Resume
                                                  : Mode::Run;
            ++counters_.retries;
        } else {
            // The checkpoint re-trapped at (or before) the same
            // cycle: the fault is baked into the snapshot. Restart
            // from scratch on a fresh machine.
            counters_.recoveryCycles += fail_cycle;
            if (!restartFresh())
                return false;
            out.solutions.clear();
            takeCheckpoint(out.solutions, /*resume_after=*/false);
            mode = Mode::Run;
        }
        if (backoff_ms) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff_ms));
            backoff_ms *= 2;
        }
        return true;
    };

    if (absDeadlineExpired()) {
        // Already past the propagated deadline: spend no cycles at
        // all (the supervisor sheds these before a worker is burned;
        // this is the last line of defense).
        return fail("deadline_exceeded", TrapKind::Abort,
                    "propagated absolute deadline expired before "
                    "execution started (0 simulated cycles)");
    }

    for (;;) {
        uint64_t eff_slice = slice;
        if (uint64_t budget = deadlineSliceCycles())
            eff_slice = eff_slice ? std::min(eff_slice, budget)
                                  : budget;
        if (eff_slice)
            machine_->setSliceStop(machine_->cycles() + eff_slice);
        RunStatus status;
        switch (mode) {
          case Mode::Run:
            status = machine_->run();
            break;
          case Mode::Next:
            status = machine_->nextSolution();
            break;
          case Mode::Resume:
            status = machine_->resume();
            break;
        }

        switch (status) {
          case RunStatus::SolutionFound:
            out.solutions.push_back(machine_->lastSolution());
            if (out.solutions.size() >= max_solutions)
                return finish(QueryStatus::Completed);
            mode = Mode::Next;
            continue;

          case RunStatus::Failed:
          case RunStatus::Halted:
            return finish(QueryStatus::Completed);

          case RunStatus::CycleLimit:
            // maxCycles is an informational stop, same contract as
            // KcmSystem::query: the run simply ends.
            return finish(QueryStatus::Completed);

          case RunStatus::Trapped:
            break;
        }

        if (machine_->sliceExpired()) {
            // Host machinery, not a fault: poll the cancellation
            // token, the shutdown flag and the deadlines, take the
            // periodic checkpoint, continue where we stopped.
            if (options_.chaosSliceDelayUs) {
                std::this_thread::sleep_for(std::chrono::microseconds(
                    options_.chaosSliceDelayUs));
            }
            if (cancelled()) {
                return fail("cancelled", TrapKind::Abort,
                            cat("cancelled at an instruction boundary "
                                "after ",
                                machine_->cycles(),
                                " simulated cycles"));
            }
            if (options_.abortOnInterrupt && serviceInterruptRequested()) {
                return fail("interrupted", TrapKind::Abort,
                            "aborted by shutdown request at an "
                            "instruction boundary");
            }
            if (absDeadlineExpired()) {
                // The propagated end-to-end deadline is terminal: a
                // retry cannot finish any sooner, so the budget is
                // never extended per attempt.
                return fail("deadline_exceeded", TrapKind::Abort,
                            cat("propagated absolute deadline "
                                "exceeded after ",
                                machine_->cycles(),
                                " simulated cycles"));
            }
            if (deadlineBlown()) {
                if (!recover()) {
                    return fail("deadline_exceeded", TrapKind::Abort,
                                cat("wall-clock deadline of ",
                                    options_.deadlineMs,
                                    " ms per attempt exceeded"));
                }
                continue;
            }
            if (checkpoint_cycles)
                takeCheckpoint(out.solutions, /*resume_after=*/true);
            mode = Mode::Resume;
            continue;
        }

        const TrapInfo &trap = machine_->lastTrap();
        if (trap.kind == TrapKind::UnhandledException) {
            // A thrown ball with no catch/3 marker is a *program*
            // outcome (the baseline interpreter reports it the same
            // way), not a service fault — never retried.
            out.error = trapDiagnosis(trap);
            return finish(QueryStatus::Completed);
        }
        if (!recover()) {
            if (!templateError_.empty()) {
                return fail("corrupt_image_template", TrapKind::Abort,
                            templateError_);
            }
            return fail(trapDiagnosis(trap), trap.kind, trap.message);
        }
    }
}

} // namespace kcm::service
