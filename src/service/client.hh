/**
 * @file
 * Client for the always-on KCM query server.
 *
 * Speaks the newline-delimited JSON protocol (server.hh) over a
 * blocking TCP connection with deadline-bounded I/O. Exposes both a
 * well-behaved path (query/ping/stats: send one request, wait for its
 * reply) and the raw knobs the network chaos harness needs to be a
 * *badly*-behaved client: partial writes with delays (slow loris),
 * arbitrary garbage frames, and mid-query disconnects.
 */

#ifndef KCM_SERVICE_CLIENT_HH
#define KCM_SERVICE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "service/wire.hh"

namespace kcm::service
{

/** One decoded server reply plus transport status. */
struct ClientReply
{
    IoStatus io = IoStatus::Ok; ///< transport verdict
    std::string raw;            ///< reply line as received
    JsonObject fields;          ///< decoded (valid when parsed)
    bool parsed = false;

    /** The reply's "status" field ("" when unparsed). */
    std::string status() const;
    /** A string field by name ("" when absent). */
    std::string str(const std::string &key) const;
    /** An integer field by name. */
    int64_t num(const std::string &key, int64_t fallback = 0) const;
};

class Client
{
  public:
    Client();
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to the server; false (with error()) on failure. */
    bool connect(const std::string &host, uint16_t port,
                 uint64_t timeout_ms = 5'000);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Last transport error diagnostic. */
    const std::string &error() const { return error_; }

    /** Send one already-framed line (newline appended). */
    IoStatus sendLine(const std::string &line,
                      uint64_t timeout_ms = 5'000);

    /** Read the next reply line and decode it. */
    ClientReply readReply(uint64_t timeout_ms = 30'000);

    /** query op round-trip: send, then wait for the reply. */
    ClientReply query(const std::string &id, const std::string &program,
                      const std::string &goal, size_t max_solutions = 0,
                      uint64_t deadline_ms = 0,
                      uint64_t timeout_ms = 60'000);

    ClientReply ping(uint64_t timeout_ms = 5'000);
    ClientReply stats(uint64_t timeout_ms = 5'000);

    // --- chaos knobs -------------------------------------------- //

    /** Write raw bytes verbatim (no framing, no validation). */
    IoStatus sendRaw(const std::string &bytes,
                     uint64_t timeout_ms = 5'000);

    /** Slow loris: trickle @p bytes in @p chunk-byte pieces with
     *  @p delay_ms between pieces. Stops early if the server gives up
     *  on us (returns the transport status). */
    IoStatus sendSlowly(const std::string &bytes, size_t chunk,
                        uint64_t delay_ms);

    /** Abruptly drop the connection (no shutdown handshake). */
    void abort();

  private:
    int fd_ = -1;
    std::unique_ptr<LineReader> reader_;
    std::string error_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_CLIENT_HH
