#include "service/wire.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/logging.hh"

namespace kcm::service
{

namespace
{

/** Poll slice: how often deadlines and the cancel callback are
 *  re-checked while blocked on the socket. */
constexpr int pollSliceMs = 50;

uint64_t
nowMs()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return uint64_t(ts.tv_sec) * 1000 + uint64_t(ts.tv_nsec) / 1000000;
}

// ---------------------------------------------------------------- //
// JSON parsing: recursive descent over one flat object. The grammar
// is full JSON for scalars; containers are restricted to one object
// of scalars / arrays-of-scalars (all the protocol ever sends).
// ---------------------------------------------------------------- //

struct Parser
{
    const char *p;
    const char *end;
    std::string error;

    bool
    fail(const std::string &why)
    {
        error = why;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\r' ||
                           *p == '\n'))
            ++p;
    }

    bool
    expect(char c)
    {
        skipWs();
        if (p >= end || *p != c)
            return fail(cat("expected '", std::string(1, c), "'"));
        ++p;
        return true;
    }

    bool
    parseHex4(uint32_t &out)
    {
        if (end - p < 4)
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = *p++;
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= uint32_t(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    static void
    appendUtf8(std::string &s, uint32_t cp)
    {
        if (cp < 0x80) {
            s.push_back(char(cp));
        } else if (cp < 0x800) {
            s.push_back(char(0xC0 | (cp >> 6)));
            s.push_back(char(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            s.push_back(char(0xE0 | (cp >> 12)));
            s.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(char(0x80 | (cp & 0x3F)));
        } else {
            s.push_back(char(0xF0 | (cp >> 18)));
            s.push_back(char(0x80 | ((cp >> 12) & 0x3F)));
            s.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            s.push_back(char(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (p < end) {
            unsigned char c = (unsigned char)*p++;
            if (c == '"')
                return true;
            if (c == '\\') {
                if (p >= end)
                    return fail("truncated escape");
                char e = *p++;
                switch (e) {
                  case '"':  out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/':  out.push_back('/'); break;
                  case 'b':  out.push_back('\b'); break;
                  case 'f':  out.push_back('\f'); break;
                  case 'n':  out.push_back('\n'); break;
                  case 'r':  out.push_back('\r'); break;
                  case 't':  out.push_back('\t'); break;
                  case 'u': {
                      uint32_t cp;
                      if (!parseHex4(cp))
                          return false;
                      // Surrogate pair → one code point.
                      if (cp >= 0xD800 && cp <= 0xDBFF && end - p >= 6 &&
                          p[0] == '\\' && p[1] == 'u') {
                          p += 2;
                          uint32_t lo;
                          if (!parseHex4(lo))
                              return false;
                          if (lo < 0xDC00 || lo > 0xDFFF)
                              return fail("bad low surrogate");
                          cp = 0x10000 + ((cp - 0xD800) << 10) +
                               (lo - 0xDC00);
                      }
                      appendUtf8(out, cp);
                      break;
                  }
                  default:
                    return fail("bad escape character");
                }
                continue;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            out.push_back(char(c));
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        bool integral = true;
        while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' ||
                           *p == 'e' || *p == 'E' || *p == '+' ||
                           *p == '-')) {
            if (*p == '.' || *p == 'e' || *p == 'E')
                integral = false;
            ++p;
        }
        if (p == start || (p == start + 1 && *start == '-'))
            return fail("bad number");
        std::string text(start, p);
        errno = 0;
        if (integral) {
            char *parse_end = nullptr;
            long long v = strtoll(text.c_str(), &parse_end, 10);
            if (errno == ERANGE)
                integral = false; // fall through to double
            else if (!parse_end || *parse_end != '\0')
                return fail("bad number");
            else {
                out.kind = JsonValue::Kind::Int;
                out.integer = v;
                return true;
            }
        }
        char *parse_end = nullptr;
        errno = 0;
        double d = strtod(text.c_str(), &parse_end);
        if (!parse_end || *parse_end != '\0')
            return fail("bad number");
        out.kind = JsonValue::Kind::Double;
        out.real = d;
        return true;
    }

    bool
    parseScalar(JsonValue &out)
    {
        skipWs();
        if (p >= end)
            return fail("truncated value");
        char c = *p;
        if (c == '"') {
            out.kind = JsonValue::Kind::Str;
            return parseString(out.str);
        }
        if (c == 't') {
            if (end - p < 4 || memcmp(p, "true", 4) != 0)
                return fail("bad literal");
            p += 4;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (end - p < 5 || memcmp(p, "false", 5) != 0)
                return fail("bad literal");
            p += 5;
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (end - p < 4 || memcmp(p, "null", 4) != 0)
                return fail("bad literal");
            p += 4;
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        if (c == '{' || c == '[')
            return fail("nested containers are not in the protocol");
        return parseNumber(out);
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (p < end && *p == '[') {
            ++p;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            for (;;) {
                JsonValue item;
                if (!parseScalar(item))
                    return false;
                out.items.push_back(std::move(item));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                return expect(']');
            }
        }
        return parseScalar(out);
    }

    bool
    parseObject(JsonObject &out)
    {
        if (!expect('{'))
            return false;
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        for (;;) {
            std::string k;
            if (!parseString(k))
                return false;
            if (!expect(':'))
                return false;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out[std::move(k)] = std::move(v);
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                skipWs();
                continue;
            }
            return expect('}');
        }
    }
};

} // namespace

bool
parseJsonObject(const std::string &text, JsonObject &out,
                std::string &error)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    out.clear();
    if (!parser.parseObject(out)) {
        error = parser.error;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        error = "trailing bytes after object";
        return false;
    }
    return true;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(char(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::key(const std::string &k)
{
    if (!body_.empty())
        body_ += ", ";
    body_ += jsonQuote(k);
    body_ += ": ";
}

JsonWriter &
JsonWriter::field(const std::string &k, const std::string &value)
{
    key(k);
    body_ += jsonQuote(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, const char *value)
{
    return field(k, std::string(value));
}

JsonWriter &
JsonWriter::field(const std::string &k, int64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, uint64_t value)
{
    key(k);
    body_ += std::to_string(value);
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &k, bool value)
{
    key(k);
    body_ += value ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::fieldRaw(const std::string &k, const std::string &raw)
{
    key(k);
    body_ += raw;
    return *this;
}

JsonWriter &
JsonWriter::fieldStrings(const std::string &k,
                         const std::vector<std::string> &values)
{
    key(k);
    body_ += "[";
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            body_ += ", ";
        body_ += jsonQuote(values[i]);
    }
    body_ += "]";
    return *this;
}

std::string
JsonWriter::str() const
{
    return "{" + body_ + "}";
}

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok:        return "ok";
      case IoStatus::Timeout:   return "timeout";
      case IoStatus::SlowLoris: return "slow_loris";
      case IoStatus::Oversize:  return "oversize";
      case IoStatus::Closed:    return "closed";
      case IoStatus::Cancelled: return "cancelled";
      case IoStatus::Error:     return "error";
    }
    return "unknown";
}

IoStatus
writeAllDeadline(int fd, const void *data, size_t size,
                 uint64_t deadline_ms,
                 const std::function<bool()> &cancel)
{
    const char *p = static_cast<const char *>(data);
    const uint64_t start = nowMs();
    size_t written = 0;
    while (written < size) {
        if (cancel && cancel())
            return IoStatus::Cancelled;
        if (nowMs() - start >= deadline_ms)
            return IoStatus::Timeout;
        pollfd pfd{fd, POLLOUT, 0};
        int rv = poll(&pfd, 1, pollSliceMs);
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (rv == 0)
            continue;
        if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL))
            return IoStatus::Closed;
        ssize_t n = ::send(fd, p + written, size - written,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            if (errno == EPIPE || errno == ECONNRESET)
                return IoStatus::Closed;
            return IoStatus::Error;
        }
        written += size_t(n);
    }
    return IoStatus::Ok;
}

LineReader::LineReader(int fd, size_t max_line_bytes)
    : fd_(fd), maxLineBytes_(max_line_bytes)
{
}

IoStatus
LineReader::next(std::string &line, uint64_t idle_ms,
                 uint64_t request_ms,
                 const std::function<bool()> &cancel)
{
    const uint64_t start = nowMs();
    // A partial line carried over from the previous call keeps its
    // slow-loris clock ticking from *now* — per call is the tightest
    // bound we can enforce without wall-clock state in the reader,
    // and it still caps how long a trickling peer holds the thread.
    for (;;) {
        // Deliver a buffered complete line first.
        size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line.assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return IoStatus::Ok;
        }
        if (buffer_.size() > maxLineBytes_)
            return IoStatus::Oversize;
        if (sawEof_)
            return IoStatus::Closed;

        if (cancel && cancel())
            return IoStatus::Cancelled;
        const uint64_t waited = nowMs() - start;
        if (buffer_.empty()) {
            if (waited >= idle_ms)
                return IoStatus::Timeout;
        } else {
            if (waited >= request_ms)
                return IoStatus::SlowLoris;
        }

        pollfd pfd{fd_, POLLIN, 0};
        int rv = poll(&pfd, 1, pollSliceMs);
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        if (rv == 0)
            continue;
        // Bound total buffered bytes *before* reading: never pull more
        // than one byte past the frame cap into memory, so a peer
        // blasting an unterminated frame costs at most maxLineBytes_+1
        // bytes of buffer, not an unbounded stream. (One byte past the
        // cap is what distinguishes "exactly cap-sized frame" from
        // "oversized".)
        char chunk[4096];
        size_t room = maxLineBytes_ + 1 - buffer_.size();
        ssize_t n =
            ::recv(fd_, chunk, room < sizeof chunk ? room : sizeof chunk,
                   0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            if (errno == ECONNRESET)
                return IoStatus::Closed;
            return IoStatus::Error;
        }
        if (n == 0) {
            sawEof_ = true;
            // Trailing unterminated bytes are not a frame.
            if (!buffer_.empty())
                buffer_.clear();
            continue;
        }
        buffer_.append(chunk, size_t(n));
    }
}

} // namespace kcm::service
