/**
 * @file
 * Supervisor: N supervised sessions over a worker-thread pool.
 *
 * The serving half of the host in the paper's Fig. 1 system picture:
 * clients submit compiled queries, a bounded admission queue feeds a
 * pool of worker threads, and each worker runs one Session (machine +
 * checkpoints + retry loop) per query. Robustness policies live here:
 *
 *  - load shedding: the admission queue is bounded; when it is full,
 *    the queued query with the *earliest deadline* is evicted (it is
 *    the one most likely to blow its deadline anyway) and completes
 *    immediately with a classified "overloaded" failure — clients
 *    always get an answer, never a hang;
 *  - aggregate robustness counters (retries, restarts, checkpoints,
 *    checkpoint bytes, recovery cycles, shed queries) on top of the
 *    per-session ones.
 *
 * Determinism notes: queries are *compiled on the submitting thread*
 * (atom interning order affects generated switch tables, hence
 * simulated cycle counts — serial compilation keeps every simulated
 * metric reproducible across runs regardless of worker scheduling);
 * only execution fans out. startPaused + resume() let tests fill the
 * admission queue and observe shedding without racing the workers.
 */

#ifndef KCM_SERVICE_SUPERVISOR_HH
#define KCM_SERVICE_SUPERVISOR_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/session.hh"

namespace kcm::service
{

/** One client query, as submitted. */
struct QueryJob
{
    std::string id;   ///< client tag, echoed in the result
    std::string goal; ///< query text (for reports; already compiled)

    /** Wall-clock deadline for this query in milliseconds from
     *  submission (0 = the session default). Also the load-shedding
     *  eviction key: earliest deadline is shed first. */
    uint64_t deadlineMs = 0;

    /** Per-query machine configuration (e.g. a per-tenant governor,
     *  or a fault-injection script in the chaos harness); the pool's
     *  session config when unset. */
    std::optional<MachineConfig> machine;
};

/** A finished query, in submission order. */
struct ServiceResult
{
    QueryJob job;
    QueryOutcome outcome;
};

/** Aggregate robustness counters across all sessions. */
struct ServiceStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t shed = 0;
    uint64_t retries = 0;
    uint64_t restarts = 0;
    uint64_t checkpoints = 0;
    uint64_t checkpointBytes = 0;
    uint64_t recoveryCycles = 0;
};

struct SupervisorOptions
{
    SessionOptions session;

    /** Worker threads executing sessions. */
    unsigned workers = 4;

    /** Admission-queue bound; a submit beyond it sheds the queued
     *  query with the earliest deadline. */
    size_t maxQueueDepth = 64;

    /** Create the pool idle; no query runs until resume(). Lets a
     *  client (or test) fill the admission queue deterministically. */
    bool startPaused = false;
};

/**
 * The session pool. submit() compiled queries, then drain() for the
 * results (in submission order). Thread-safe for a single submitting
 * thread; results are produced by the worker pool.
 */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions options);
    ~Supervisor();

    /** Admit a compiled query. May shed (and immediately complete
     *  with an "overloaded" failure) the earliest-deadline queued
     *  query when the admission queue is full. */
    void submit(QueryJob job, CodeImage image);

    /** Start the workers (after startPaused). */
    void resume();

    /** Close admissions, run everything down, join the workers and
     *  return every result in submission order. */
    std::vector<ServiceResult> drain();

    /** Aggregate counters (stable after drain()). */
    ServiceStats stats() const;

  private:
    struct Pending
    {
        size_t slot = 0; ///< result slot, in submission order
        QueryJob job;
        CodeImage image;
        uint64_t deadlineKeyMs = 0; ///< eviction key
    };

    void workerMain();
    void shedLocked(std::deque<Pending>::iterator victim);
    void finishLocked(size_t slot, QueryOutcome outcome);

    SupervisorOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::deque<Pending> queue_;
    std::vector<ServiceResult> results_;
    std::vector<bool> done_;
    size_t outstanding_ = 0;
    bool paused_ = false;
    bool stopping_ = false;
    ServiceStats stats_;

    std::vector<std::thread> workers_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_SUPERVISOR_HH
