/**
 * @file
 * Supervisor: N supervised sessions over a worker-thread pool.
 *
 * The serving half of the host in the paper's Fig. 1 system picture:
 * clients submit compiled queries, a bounded admission queue feeds a
 * pool of worker threads, and each worker runs one Session (machine +
 * checkpoints + retry loop) per query. Robustness policies live here:
 *
 *  - load shedding: the admission queue is bounded; when it is full,
 *    the queued query with the *earliest deadline* is evicted (it is
 *    the one most likely to blow its deadline anyway) and completes
 *    immediately with a classified "overloaded" failure — clients
 *    always get an answer, never a hang;
 *  - aggregate robustness counters (retries, restarts, checkpoints,
 *    checkpoint bytes, recovery cycles, shed queries) on top of the
 *    per-session ones.
 *
 * Determinism notes: queries are *compiled on the submitting thread*
 * (atom interning order affects generated switch tables, hence
 * simulated cycle counts — serial compilation keeps every simulated
 * metric reproducible across runs regardless of worker scheduling);
 * only execution fans out. startPaused + resume() let tests fill the
 * admission queue and observe shedding without racing the workers.
 */

#ifndef KCM_SERVICE_SUPERVISOR_HH
#define KCM_SERVICE_SUPERVISOR_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/session.hh"

namespace kcm::service
{

/** One client query, as submitted. */
struct QueryJob
{
    std::string id;   ///< client tag, echoed in the result
    std::string goal; ///< query text (for reports; already compiled)

    /** Wall-clock deadline for this query in milliseconds from
     *  submission (0 = the session default). Also the load-shedding
     *  eviction key: earliest deadline is shed first. */
    uint64_t deadlineMs = 0;

    /** Per-query machine configuration (e.g. a per-tenant governor,
     *  or a fault-injection script in the chaos harness); the pool's
     *  session config when unset. */
    std::optional<MachineConfig> machine;

    /** Per-query solution cap (the server's "max_solutions" request
     *  field); the pool's session default when unset. */
    std::optional<size_t> maxSolutions;
};

/** A finished query, in submission order. */
struct ServiceResult
{
    QueryJob job;
    QueryOutcome outcome;
};

/** Aggregate robustness counters across all sessions. */
struct ServiceStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t shed = 0;
    uint64_t retries = 0;
    uint64_t restarts = 0;
    uint64_t checkpoints = 0;
    uint64_t checkpointBytes = 0;
    uint64_t recoveryCycles = 0;
    uint64_t dbCommits = 0; ///< journaled durable-db commits
    uint64_t dbOps = 0;     ///< mutations across those commits
};

struct SupervisorOptions
{
    SessionOptions session;

    /** Worker threads executing sessions. */
    unsigned workers = 4;

    /** Admission-queue bound; a submit beyond it sheds the queued
     *  query with the earliest deadline. */
    size_t maxQueueDepth = 64;

    /** Create the pool idle; no query runs until resume(). Lets a
     *  client (or test) fill the admission queue deterministically. */
    bool startPaused = false;
};

/**
 * The session pool. submit() compiled queries, then drain() for the
 * results (in submission order). Thread-safe for a single submitting
 * thread; results are produced by the worker pool.
 */
class Supervisor
{
  public:
    /** Completion callback for submitAsync(): runs on the worker
     *  thread that executed (or the submitting thread that shed) the
     *  query. Must not call back into this Supervisor. */
    using Completion = std::function<void(QueryOutcome)>;

    explicit Supervisor(SupervisorOptions options);
    ~Supervisor();

    /** Admit a compiled query. May shed (and immediately complete
     *  with an "overloaded" failure) the earliest-deadline queued
     *  query when the admission queue is full. */
    void submit(QueryJob job, CodeImage image);

    /**
     * Streaming admission (the always-on server path): the outcome is
     * delivered through @p done instead of drain()'s result vector —
     * including a shed query, whose callback fires with the
     * "overloaded" failure before submitAsync returns. Queries run
     * from the compiled @p image, or warm-start from a shared
     * post-download KCMSNAP2 @p warm template (Session re-validates
     * its checksums on restore). Thread-safe against concurrent
     * submitters.
     */
    void submitAsync(QueryJob job, CodeImage image, Completion done);
    void submitAsync(QueryJob job,
                     std::shared_ptr<const Snapshot> warm,
                     Completion done);

    /** Queued-but-not-yet-running queries (admission backlog; the
     *  server's retry-after hint scales with it). */
    size_t queueDepth() const;

    /** Start the workers (after startPaused). */
    void resume();

    /** Close admissions, run everything down, join the workers and
     *  return every result in submission order. */
    std::vector<ServiceResult> drain();

    /** Aggregate counters (stable after drain()). */
    ServiceStats stats() const;

  private:
    /** SIZE_MAX slot marks an async submission (callback delivery,
     *  no result-vector slot). */
    static constexpr size_t asyncSlot = SIZE_MAX;

    struct Pending
    {
        size_t slot = asyncSlot; ///< result slot, in submission order
        QueryJob job;
        CodeImage image;
        std::shared_ptr<const Snapshot> warm; ///< warm-start template
        Completion done;                      ///< async delivery
        uint64_t deadlineKeyMs = 0;           ///< eviction key
    };

    void workerMain();
    void enqueue(Pending pending);
    QueryOutcome shedOneLocked(Completion &shed_cb);
    void bumpStatsLocked(const QueryOutcome &outcome);
    void finishLocked(size_t slot, QueryOutcome outcome);

    SupervisorOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::deque<Pending> queue_;
    std::vector<ServiceResult> results_;
    std::vector<bool> done_;
    size_t outstanding_ = 0;
    bool paused_ = false;
    bool stopping_ = false;
    ServiceStats stats_;

    std::vector<std::thread> workers_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_SUPERVISOR_HH
