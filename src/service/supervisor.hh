/**
 * @file
 * Supervisor: N supervised sessions over a worker-thread pool.
 *
 * The serving half of the host in the paper's Fig. 1 system picture:
 * clients submit compiled queries, a bounded admission queue feeds a
 * pool of worker threads, and each worker runs one Session (machine +
 * checkpoints + retry loop) per query. Robustness policies live here:
 *
 *  - load shedding: the admission queue is bounded; when it is full,
 *    the queued query with the *earliest deadline* is evicted (it is
 *    the one most likely to blow its deadline anyway) and completes
 *    immediately with a classified "overloaded" failure — clients
 *    always get an answer, never a hang;
 *  - deadline propagation: a query carrying an absolute deadline is
 *    shed — classified "deadline_exceeded", zero cycles burned — at
 *    admission or dequeue when the deadline has passed or the
 *    predicted queue wait (observed per-shape latency × backlog)
 *    makes it unmeetable; what survives runs under the Session's
 *    deadline-to-cycle-slice conversion;
 *  - memory governance: every admitted query charges its governor
 *    byte budget (or a configured default) against a global resident
 *    budget; admission is refused — classified "overloaded" — when
 *    the aggregate would exceed it;
 *  - hedged retries: a monitor thread watches running queries; one
 *    that exceeds its shape's latency threshold (while the queue is
 *    empty and a worker is idle) gets a second bit-identical attempt
 *    from the same admission state. First finisher wins and delivers;
 *    the loser is stopped through its session's cancellation token
 *    and dropped. Determinism makes hedging safe: both attempts
 *    produce byte-identical answers, so a win changes latency only;
 *  - aggregate robustness counters (retries, restarts, checkpoints,
 *    checkpoint bytes, recovery cycles, shed queries, hedges, memory
 *    aborts) on top of the per-session ones.
 *
 * Determinism notes: queries are *compiled on the submitting thread*
 * (atom interning order affects generated switch tables, hence
 * simulated cycle counts — serial compilation keeps every simulated
 * metric reproducible across runs regardless of worker scheduling);
 * only execution fans out. startPaused + resume() let tests fill the
 * admission queue and observe shedding without racing the workers.
 */

#ifndef KCM_SERVICE_SUPERVISOR_HH
#define KCM_SERVICE_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/session.hh"

namespace kcm::service
{

/** One client query, as submitted. */
struct QueryJob
{
    std::string id;   ///< client tag, echoed in the result
    std::string goal; ///< query text (for reports; already compiled)

    /** Wall-clock deadline for this query in milliseconds from
     *  submission (0 = the session default). Also the load-shedding
     *  eviction key: earliest deadline is shed first. */
    uint64_t deadlineMs = 0;

    /** End-to-end absolute deadline in steady-clock nanoseconds
     *  (0 = none) — the propagated form of the client's wire
     *  deadline. The supervisor sheds the query when it cannot be
     *  met; the session stops itself at the boundary. */
    uint64_t deadlineAbsNs = 0;

    /** Query-shape key (the server's image-cache hash over program,
     *  goal and machine config; 0 = untracked). Keys the per-shape
     *  latency estimate that drives deadline shedding and hedging. */
    uint64_t shapeKey = 0;

    /** Per-query machine configuration (e.g. a per-tenant governor,
     *  or a fault-injection script in the chaos harness); the pool's
     *  session config when unset. */
    std::optional<MachineConfig> machine;

    /** Per-query solution cap (the server's "max_solutions" request
     *  field); the pool's session default when unset. */
    std::optional<size_t> maxSolutions;

    /** Testing-only straggler injection, copied into the session
     *  (SessionOptions::chaosSliceDelayUs). Hedged attempts run with
     *  the delay stripped — the delay models a degraded worker, and
     *  the hedge lands on a healthy one. */
    uint64_t chaosSliceDelayUs = 0;
};

/** A finished query, in submission order. */
struct ServiceResult
{
    QueryJob job;
    QueryOutcome outcome;
};

/** Aggregate robustness counters across all sessions. */
struct ServiceStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t shed = 0;
    uint64_t retries = 0;
    uint64_t restarts = 0;
    uint64_t checkpoints = 0;
    uint64_t checkpointBytes = 0;
    uint64_t recoveryCycles = 0;
    uint64_t dbCommits = 0; ///< journaled durable-db commits
    uint64_t dbOps = 0;     ///< mutations across those commits

    // Self-defense counters.
    uint64_t hedges = 0;    ///< duplicate attempts launched
    uint64_t hedgeWins = 0; ///< hedged attempt finished first
    uint64_t deadlinePropagatedSheds = 0; ///< shed before execution
    uint64_t memAborts = 0; ///< queries failed resource_error(memory)
    uint64_t memAdmissionRefusals = 0; ///< global memory budget hits
    uint64_t memChargedBytes = 0; ///< gauge: bytes currently charged
};

struct SupervisorOptions
{
    SessionOptions session;

    /** Worker threads executing sessions. */
    unsigned workers = 4;

    /** Admission-queue bound; a submit beyond it sheds the queued
     *  query with the earliest deadline. */
    size_t maxQueueDepth = 64;

    /** Create the pool idle; no query runs until resume(). Lets a
     *  client (or test) fill the admission queue deterministically. */
    bool startPaused = false;

    /**
     * Aggregate resident-byte budget across all queued and running
     * queries (0 = unlimited). Each query charges its governor's
     * memoryBudgetBytes — or defaultMemoryChargeBytes when
     * ungoverned — at admission and releases it at completion; an
     * admission that would cross the budget is refused with a
     * classified "overloaded" failure (memAdmissionRefusals).
     */
    uint64_t globalMemoryBudgetBytes = 0;

    /** Charge assumed for a query with no per-query memory budget:
     *  the full span of the four governed data zones. */
    uint64_t defaultMemoryChargeBytes = 32ull << 20;

    /** Launch duplicate attempts for stragglers (async submissions
     *  only; the first finisher wins, the loser is cancelled). */
    bool hedging = true;

    /** Hedge a running query once its elapsed wall time exceeds
     *  max(hedgeMinMs, hedgeLatencyFactor × the shape's completed-
     *  latency EWMA) — and only while the queue is empty and a worker
     *  is idle, so hedges never displace first attempts. */
    double hedgeLatencyFactor = 3.0;
    uint64_t hedgeMinMs = 50;

    /** Straggler-monitor poll period. */
    uint64_t hedgePollMs = 2;
};

/**
 * The session pool. submit() compiled queries, then drain() for the
 * results (in submission order). Thread-safe for a single submitting
 * thread; results are produced by the worker pool.
 */
class Supervisor
{
  public:
    /** Completion callback for submitAsync(): runs on the worker
     *  thread that executed (or the submitting thread that shed) the
     *  query. Must not call back into this Supervisor. */
    using Completion = std::function<void(QueryOutcome)>;

    explicit Supervisor(SupervisorOptions options);
    ~Supervisor();

    /** Admit a compiled query. May shed (and immediately complete
     *  with an "overloaded" failure) the earliest-deadline queued
     *  query when the admission queue is full. */
    void submit(QueryJob job, CodeImage image);

    /**
     * Streaming admission (the always-on server path): the outcome is
     * delivered through @p done instead of drain()'s result vector —
     * including a shed query, whose callback fires with the
     * "overloaded" failure before submitAsync returns. Queries run
     * from the compiled @p image, or warm-start from a shared
     * post-download KCMSNAP2 @p warm template (Session re-validates
     * its checksums on restore). Thread-safe against concurrent
     * submitters.
     */
    void submitAsync(QueryJob job, CodeImage image, Completion done);
    void submitAsync(QueryJob job,
                     std::shared_ptr<const Snapshot> warm,
                     Completion done);

    /** Queued-but-not-yet-running queries (admission backlog; the
     *  server's retry-after hint scales with it). */
    size_t queueDepth() const;

    /** Completed-latency EWMA for @p shape_key in milliseconds
     *  (0 = no completed sample yet). */
    double shapeLatencyMs(uint64_t shape_key) const;

    /** Start the workers (after startPaused). */
    void resume();

    /** Close admissions, run everything down, join the workers and
     *  return every result in submission order. */
    std::vector<ServiceResult> drain();

    /** Aggregate counters (stable after drain()). */
    ServiceStats stats() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** SIZE_MAX slot marks an async submission (callback delivery,
     *  no result-vector slot). */
    static constexpr size_t asyncSlot = SIZE_MAX;

    /** Shared state of a hedged pair (guarded by mutex_). The first
     *  attempt to finish takes `done`, flips `delivered` and cancels
     *  its sibling; the loser is dropped. */
    struct HedgeGroup
    {
        bool delivered = false;
        Completion done; ///< moved here from the primary at launch
        std::shared_ptr<std::atomic<bool>> primaryCancel;
        std::shared_ptr<std::atomic<bool>> hedgeCancel;
    };

    struct Pending
    {
        size_t slot = asyncSlot; ///< result slot, in submission order
        QueryJob job;
        std::shared_ptr<const CodeImage> image;
        std::shared_ptr<const Snapshot> warm; ///< warm-start template
        Completion done;                      ///< async delivery
        uint64_t deadlineKeyMs = 0;           ///< eviction key
        uint64_t memCharge = 0;   ///< bytes charged while admitted
        bool isHedge = false;
        std::shared_ptr<HedgeGroup> group; ///< set once hedged
        std::shared_ptr<std::atomic<bool>> cancel; ///< set at dequeue
        Clock::time_point startedAt; ///< set at dequeue
    };

    void workerMain();
    void monitorMain();
    void enqueue(std::shared_ptr<Pending> pending);
    QueryOutcome shedOneLocked(Completion &shed_cb);
    void bumpStatsLocked(const QueryOutcome &outcome);
    void finishLocked(size_t slot, QueryOutcome outcome);
    void recordShapeLatencyLocked(uint64_t shape_key, double ms);
    uint64_t memChargeFor(const QueryJob &job) const;
    /** Whether job's absolute deadline is unmeetable given the
     *  backlog and the shape's latency estimate (mutex_ held). */
    bool deadlineUnmeetableLocked(const QueryJob &job) const;
    QueryOutcome deadlineShedOutcome(const QueryJob &job,
                                     const char *where) const;
    void launchHedgeLocked(const std::shared_ptr<Pending> &p);

    SupervisorOptions options_;

    mutable std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    std::condition_variable monitorCv_;
    std::deque<std::shared_ptr<Pending>> queue_;
    std::vector<std::shared_ptr<Pending>> running_;
    std::vector<ServiceResult> results_;
    std::vector<bool> done_;
    size_t outstanding_ = 0;
    bool paused_ = false;
    bool stopping_ = false;
    ServiceStats stats_;

    /** Completed-latency EWMA per shape key (ms). */
    struct ShapeStat
    {
        double ewmaMs = 0;
        uint64_t samples = 0;
    };
    std::map<uint64_t, ShapeStat> shapes_;

    std::vector<std::thread> workers_;
    std::thread monitor_;
};

} // namespace kcm::service

#endif // KCM_SERVICE_SUPERVISOR_HH
