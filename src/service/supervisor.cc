#include "service/supervisor.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kcm::service
{

namespace
{

uint64_t
steadyNowNs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)), paused_(options_.startPaused)
{
    if (options_.workers == 0)
        fatal("supervisor needs at least one worker");
    if (options_.maxQueueDepth == 0)
        fatal("supervisor needs a nonzero admission queue");
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
    // Hedging needs a second concurrent attempt of the same query;
    // durable-db sessions serialize on the store mutex (and commit),
    // so a hedge there would be a double-commit hazard, not a latency
    // win.
    if (options_.hedging && !options_.session.durableDb)
        monitor_ = std::thread([this] { monitorMain(); });
}

Supervisor::~Supervisor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        paused_ = false;
    }
    workCv_.notify_all();
    monitorCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    if (monitor_.joinable())
        monitor_.join();
}

uint64_t
Supervisor::memChargeFor(const QueryJob &job) const
{
    uint64_t budget = job.machine
                          ? job.machine->governor.memoryBudgetBytes
                          : options_.session.machine.governor
                                .memoryBudgetBytes;
    return budget ? budget : options_.defaultMemoryChargeBytes;
}

bool
Supervisor::deadlineUnmeetableLocked(const QueryJob &job) const
{
    if (!job.deadlineAbsNs)
        return false;
    uint64_t now = steadyNowNs();
    if (now >= job.deadlineAbsNs)
        return true;
    // Predicted queue wait from the shape's completed-latency EWMA
    // scaled by the backlog per worker. Conservative: only shed on a
    // prediction once the estimate has a few samples behind it.
    auto it = shapes_.find(job.shapeKey);
    if (job.shapeKey && it != shapes_.end() &&
        it->second.samples >= 3) {
        double wait_ms =
            it->second.ewmaMs *
            (1.0 + double(queue_.size()) / double(options_.workers));
        if (now + uint64_t(wait_ms * 1e6) > job.deadlineAbsNs)
            return true;
    }
    return false;
}

QueryOutcome
Supervisor::deadlineShedOutcome(const QueryJob &job,
                                const char *where) const
{
    QueryOutcome out;
    out.status = QueryStatus::Failed;
    out.failure.classification = "deadline_exceeded";
    out.failure.trapKind = TrapKind::Abort;
    out.failure.detail =
        cat("propagated deadline unmeetable: shed at ", where,
            " with 0 simulated cycles spent (query ", job.id, ")");
    out.failure.attempts = 0;
    return out;
}

/**
 * Evict the queued query with the earliest deadline (queue is full).
 * Ties (and the no-deadline default, key 0 meaning "infinite") fall
 * back to oldest-submitted-first among equals. A slot-based victim is
 * completed in the result vector here; an async victim's callback is
 * returned through @p shed_cb for the caller to invoke outside the
 * lock (callbacks write to sockets — never under the pool mutex).
 */
QueryOutcome
Supervisor::shedOneLocked(Completion &shed_cb)
{
    auto victim = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end();
         ++it) {
        uint64_t vk = (*victim)->deadlineKeyMs
                          ? (*victim)->deadlineKeyMs
                          : UINT64_MAX;
        uint64_t ik =
            (*it)->deadlineKeyMs ? (*it)->deadlineKeyMs : UINT64_MAX;
        if (ik < vk)
            victim = it;
    }

    QueryOutcome out;
    out.status = QueryStatus::Shed;
    out.failure.classification = "overloaded";
    out.failure.detail =
        cat("admission queue full (depth ", options_.maxQueueDepth,
            "); evicted earliest-deadline query");
    ++stats_.shed;
    stats_.memChargedBytes -= (*victim)->memCharge;
    if ((*victim)->slot == asyncSlot) {
        shed_cb = std::move((*victim)->done);
    } else {
        results_[(*victim)->slot].outcome = out;
        done_[(*victim)->slot] = true;
    }
    --outstanding_;
    queue_.erase(victim);
    doneCv_.notify_all();
    return out;
}

void
Supervisor::enqueue(std::shared_ptr<Pending> pending)
{
    Completion refuse_cb;
    QueryOutcome refuse_out;
    Completion shed_cb;
    QueryOutcome shed_out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            fatal("submit after drain");
        ++stats_.submitted;

        // Deadline propagation: refuse work that cannot be served
        // before its boundary — zero cycles, zero queue time.
        if (deadlineUnmeetableLocked(pending->job)) {
            refuse_out =
                deadlineShedOutcome(pending->job, "admission");
            ++stats_.deadlinePropagatedSheds;
            bumpStatsLocked(refuse_out);
            if (pending->slot == asyncSlot) {
                refuse_cb = std::move(pending->done);
            } else {
                results_[pending->slot].outcome = refuse_out;
                done_[pending->slot] = true;
                doneCv_.notify_all();
            }
        } else if (uint64_t budget = options_.globalMemoryBudgetBytes;
                   budget &&
                   stats_.memChargedBytes + pending->memCharge >
                       budget) {
            // Memory governance: admission refusal under the global
            // resident budget. The incoming query is refused (running
            // queries' memory cannot be evicted).
            refuse_out.status = QueryStatus::Shed;
            refuse_out.failure.classification = "overloaded";
            refuse_out.failure.detail = cat(
                "global memory budget exhausted (",
                stats_.memChargedBytes, " charged + ",
                pending->memCharge, " > ", budget, " bytes)");
            ++stats_.shed;
            ++stats_.memAdmissionRefusals;
            if (pending->slot == asyncSlot) {
                refuse_cb = std::move(pending->done);
            } else {
                results_[pending->slot].outcome = refuse_out;
                done_[pending->slot] = true;
                doneCv_.notify_all();
            }
        } else {
            ++outstanding_;
            stats_.memChargedBytes += pending->memCharge;
            if (queue_.size() >= options_.maxQueueDepth)
                shed_out = shedOneLocked(shed_cb);
            queue_.push_back(std::move(pending));
        }
    }
    workCv_.notify_one();
    if (refuse_cb)
        refuse_cb(std::move(refuse_out));
    if (shed_cb)
        shed_cb(std::move(shed_out));
}

void
Supervisor::submit(QueryJob job, CodeImage image)
{
    auto p = std::make_shared<Pending>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        p->slot = results_.size();
        results_.push_back(ServiceResult{job, QueryOutcome{}});
        done_.push_back(false);
    }
    p->deadlineKeyMs = job.deadlineMs;
    p->memCharge = memChargeFor(job);
    p->job = std::move(job);
    p->image = std::make_shared<const CodeImage>(std::move(image));
    enqueue(std::move(p));
}

void
Supervisor::submitAsync(QueryJob job, CodeImage image, Completion done)
{
    auto p = std::make_shared<Pending>();
    p->deadlineKeyMs = job.deadlineMs;
    p->memCharge = memChargeFor(job);
    p->job = std::move(job);
    p->image = std::make_shared<const CodeImage>(std::move(image));
    p->done = std::move(done);
    enqueue(std::move(p));
}

void
Supervisor::submitAsync(QueryJob job,
                        std::shared_ptr<const Snapshot> warm,
                        Completion done)
{
    auto p = std::make_shared<Pending>();
    p->deadlineKeyMs = job.deadlineMs;
    p->memCharge = memChargeFor(job);
    p->job = std::move(job);
    p->warm = std::move(warm);
    p->done = std::move(done);
    enqueue(std::move(p));
}

size_t
Supervisor::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

double
Supervisor::shapeLatencyMs(uint64_t shape_key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = shapes_.find(shape_key);
    return it == shapes_.end() ? 0.0 : it->second.ewmaMs;
}

void
Supervisor::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    workCv_.notify_all();
}

void
Supervisor::bumpStatsLocked(const QueryOutcome &outcome)
{
    switch (outcome.status) {
      case QueryStatus::Completed:
        ++stats_.completed;
        break;
      case QueryStatus::Failed:
        ++stats_.failed;
        if (outcome.failure.classification ==
            "resource_error(memory)")
            ++stats_.memAborts;
        break;
      case QueryStatus::Shed:
        ++stats_.shed;
        break;
    }
    stats_.retries += outcome.counters.retries;
    stats_.restarts += outcome.counters.restarts;
    stats_.checkpoints += outcome.counters.checkpoints;
    stats_.checkpointBytes += outcome.counters.checkpointBytes;
    stats_.recoveryCycles += outcome.counters.recoveryCycles;
    stats_.dbCommits += outcome.dbCommitId ? 1 : 0;
    stats_.dbOps += outcome.dbOps;
}

void
Supervisor::finishLocked(size_t slot, QueryOutcome outcome)
{
    bumpStatsLocked(outcome);
    results_[slot].outcome = std::move(outcome);
    done_[slot] = true;
    --outstanding_;
    doneCv_.notify_all();
}

void
Supervisor::recordShapeLatencyLocked(uint64_t shape_key, double ms)
{
    if (!shape_key)
        return;
    ShapeStat &s = shapes_[shape_key];
    s.ewmaMs = s.samples ? 0.8 * s.ewmaMs + 0.2 * ms : ms;
    ++s.samples;
}

void
Supervisor::launchHedgeLocked(const std::shared_ptr<Pending> &p)
{
    auto group = std::make_shared<HedgeGroup>();
    group->done = std::move(p->done);
    group->primaryCancel = p->cancel;
    p->group = group;

    auto h = std::make_shared<Pending>();
    h->job = p->job;
    // The straggler injection models a degraded worker; the hedge
    // runs on a healthy one.
    h->job.chaosSliceDelayUs = 0;
    h->image = p->image;
    h->warm = p->warm;
    h->deadlineKeyMs = p->deadlineKeyMs;
    h->memCharge = p->memCharge;
    h->isHedge = true;
    h->group = group;

    ++outstanding_;
    ++stats_.hedges;
    stats_.memChargedBytes += h->memCharge;
    queue_.push_back(std::move(h));
    workCv_.notify_one();
}

void
Supervisor::monitorMain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        monitorCv_.wait_for(
            lock, std::chrono::milliseconds(options_.hedgePollMs),
            [this] { return stopping_; });
        if (stopping_)
            return;
        // Hedge only into genuinely idle capacity: never displace a
        // first attempt.
        if (paused_ || !queue_.empty() ||
            running_.size() >= options_.workers)
            continue;
        for (const auto &p : running_) {
            if (p->isHedge || p->group || p->slot != asyncSlot ||
                !p->done)
                continue;
            double threshold = double(options_.hedgeMinMs);
            auto it = shapes_.find(p->job.shapeKey);
            if (p->job.shapeKey && it != shapes_.end() &&
                it->second.samples > 0) {
                threshold = std::max(
                    threshold, options_.hedgeLatencyFactor *
                                   it->second.ewmaMs);
            }
            if (elapsedMs(p->startedAt) <= threshold)
                continue;
            if (uint64_t budget = options_.globalMemoryBudgetBytes;
                budget &&
                stats_.memChargedBytes + p->memCharge > budget)
                continue;
            launchHedgeLocked(p);
            break; // one hedge per poll; the queue is non-empty now
        }
    }
}

void
Supervisor::workerMain()
{
    for (;;) {
        std::shared_ptr<Pending> p;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return (!paused_ && !queue_.empty()) || stopping_;
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            if (paused_)
                continue;
            p = std::move(queue_.front());
            queue_.pop_front();

            // A hedge whose sibling already delivered is abandoned
            // without burning a machine.
            if (p->group && p->group->delivered) {
                stats_.memChargedBytes -= p->memCharge;
                --outstanding_;
                doneCv_.notify_all();
                continue;
            }

            // Deadline propagation at dequeue: the queue wait alone
            // may have consumed the budget.
            if (!p->group && p->job.deadlineAbsNs &&
                steadyNowNs() >= p->job.deadlineAbsNs) {
                QueryOutcome out =
                    deadlineShedOutcome(p->job, "dequeue");
                ++stats_.deadlinePropagatedSheds;
                stats_.memChargedBytes -= p->memCharge;
                if (p->slot == asyncSlot) {
                    bumpStatsLocked(out);
                    Completion cb = std::move(p->done);
                    lock.unlock();
                    if (cb)
                        cb(std::move(out));
                    lock.lock();
                    --outstanding_;
                    doneCv_.notify_all();
                } else {
                    finishLocked(p->slot, std::move(out));
                }
                continue;
            }

            p->cancel = std::make_shared<std::atomic<bool>>(false);
            p->startedAt = Clock::now();
            if (p->group) {
                (p->isHedge ? p->group->hedgeCancel
                            : p->group->primaryCancel) = p->cancel;
            }
            running_.push_back(p);
        }

        SessionOptions session_options = options_.session;
        if (p->job.deadlineMs)
            session_options.deadlineMs = p->job.deadlineMs;
        if (p->job.machine)
            session_options.machine = *p->job.machine;
        if (p->job.maxSolutions)
            session_options.maxSolutions = *p->job.maxSolutions;
        session_options.deadlineAbsNs = p->job.deadlineAbsNs;
        session_options.cancel = p->cancel;
        session_options.chaosSliceDelayUs = p->job.chaosSliceDelayUs;
        QueryOutcome outcome;
        if (p->warm) {
            Session session(p->warm, std::move(session_options));
            outcome = session.run();
        } else {
            Session session(CodeImage(*p->image),
                            std::move(session_options));
            outcome = session.run();
        }

        Completion cb;
        bool drop = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            running_.erase(
                std::remove(running_.begin(), running_.end(), p),
                running_.end());
            stats_.memChargedBytes -= p->memCharge;
            if (outcome.status == QueryStatus::Completed)
                recordShapeLatencyLocked(p->job.shapeKey,
                                         elapsedMs(p->startedAt));
            if (p->group) {
                if (p->group->delivered) {
                    // The sibling already won; this attempt —
                    // typically stopped through its cancellation
                    // token — is dropped, not delivered.
                    drop = true;
                } else {
                    p->group->delivered = true;
                    auto &sibling = p->isHedge
                                        ? p->group->primaryCancel
                                        : p->group->hedgeCancel;
                    if (sibling)
                        sibling->store(true,
                                       std::memory_order_relaxed);
                    if (p->isHedge)
                        ++stats_.hedgeWins;
                    bumpStatsLocked(outcome);
                    cb = std::move(p->group->done);
                }
            } else if (p->slot == asyncSlot) {
                bumpStatsLocked(outcome);
                cb = std::move(p->done);
            } else {
                finishLocked(p->slot, std::move(outcome));
                continue;
            }
        }

        if (!drop && cb) {
            // Deliver before retiring the job so drain() cannot
            // return while a completion is still writing its reply.
            cb(std::move(outcome));
        }
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
        doneCv_.notify_all();
    }
}

std::vector<ServiceResult>
Supervisor::drain()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        paused_ = false;
        workCv_.notify_all();
        doneCv_.wait(lock, [this] { return outstanding_ == 0; });
        stopping_ = true;
    }
    workCv_.notify_all();
    monitorCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    if (monitor_.joinable())
        monitor_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(results_);
}

ServiceStats
Supervisor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace kcm::service
