#include "service/supervisor.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kcm::service
{

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)), paused_(options_.startPaused)
{
    if (options_.workers == 0)
        fatal("supervisor needs at least one worker");
    if (options_.maxQueueDepth == 0)
        fatal("supervisor needs a nonzero admission queue");
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

Supervisor::~Supervisor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        paused_ = false;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
}

/**
 * Evict the queued query with the earliest deadline (queue is full).
 * Ties (and the no-deadline default, key 0 meaning "infinite") fall
 * back to oldest-submitted-first among equals. A slot-based victim is
 * completed in the result vector here; an async victim's callback is
 * returned through @p shed_cb for the caller to invoke outside the
 * lock (callbacks write to sockets — never under the pool mutex).
 */
QueryOutcome
Supervisor::shedOneLocked(Completion &shed_cb)
{
    auto victim = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end();
         ++it) {
        uint64_t vk = victim->deadlineKeyMs ? victim->deadlineKeyMs
                                            : UINT64_MAX;
        uint64_t ik = it->deadlineKeyMs ? it->deadlineKeyMs
                                        : UINT64_MAX;
        if (ik < vk)
            victim = it;
    }

    QueryOutcome out;
    out.status = QueryStatus::Shed;
    out.failure.classification = "overloaded";
    out.failure.detail =
        cat("admission queue full (depth ", options_.maxQueueDepth,
            "); evicted earliest-deadline query");
    ++stats_.shed;
    if (victim->slot == asyncSlot) {
        shed_cb = std::move(victim->done);
    } else {
        results_[victim->slot].outcome = out;
        done_[victim->slot] = true;
    }
    --outstanding_;
    queue_.erase(victim);
    doneCv_.notify_all();
    return out;
}

void
Supervisor::enqueue(Pending pending)
{
    Completion shed_cb;
    QueryOutcome shed_out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            fatal("submit after drain");
        ++outstanding_;
        ++stats_.submitted;
        if (queue_.size() >= options_.maxQueueDepth)
            shed_out = shedOneLocked(shed_cb);
        queue_.push_back(std::move(pending));
    }
    workCv_.notify_one();
    if (shed_cb)
        shed_cb(std::move(shed_out));
}

void
Supervisor::submit(QueryJob job, CodeImage image)
{
    Pending p;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        p.slot = results_.size();
        results_.push_back(ServiceResult{job, QueryOutcome{}});
        done_.push_back(false);
    }
    p.deadlineKeyMs = job.deadlineMs;
    p.job = std::move(job);
    p.image = std::move(image);
    enqueue(std::move(p));
}

void
Supervisor::submitAsync(QueryJob job, CodeImage image, Completion done)
{
    Pending p;
    p.deadlineKeyMs = job.deadlineMs;
    p.job = std::move(job);
    p.image = std::move(image);
    p.done = std::move(done);
    enqueue(std::move(p));
}

void
Supervisor::submitAsync(QueryJob job,
                        std::shared_ptr<const Snapshot> warm,
                        Completion done)
{
    Pending p;
    p.deadlineKeyMs = job.deadlineMs;
    p.job = std::move(job);
    p.warm = std::move(warm);
    p.done = std::move(done);
    enqueue(std::move(p));
}

size_t
Supervisor::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
Supervisor::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    workCv_.notify_all();
}

void
Supervisor::bumpStatsLocked(const QueryOutcome &outcome)
{
    switch (outcome.status) {
      case QueryStatus::Completed:
        ++stats_.completed;
        break;
      case QueryStatus::Failed:
        ++stats_.failed;
        break;
      case QueryStatus::Shed:
        ++stats_.shed;
        break;
    }
    stats_.retries += outcome.counters.retries;
    stats_.restarts += outcome.counters.restarts;
    stats_.checkpoints += outcome.counters.checkpoints;
    stats_.checkpointBytes += outcome.counters.checkpointBytes;
    stats_.recoveryCycles += outcome.counters.recoveryCycles;
    stats_.dbCommits += outcome.dbCommitId ? 1 : 0;
    stats_.dbOps += outcome.dbOps;
}

void
Supervisor::finishLocked(size_t slot, QueryOutcome outcome)
{
    bumpStatsLocked(outcome);
    results_[slot].outcome = std::move(outcome);
    done_[slot] = true;
    --outstanding_;
    doneCv_.notify_all();
}

void
Supervisor::workerMain()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return (!paused_ && !queue_.empty()) || stopping_;
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            if (paused_)
                continue;
            p = std::move(queue_.front());
            queue_.pop_front();
        }

        SessionOptions session_options = options_.session;
        if (p.job.deadlineMs)
            session_options.deadlineMs = p.job.deadlineMs;
        if (p.job.machine)
            session_options.machine = *p.job.machine;
        if (p.job.maxSolutions)
            session_options.maxSolutions = *p.job.maxSolutions;
        QueryOutcome outcome;
        if (p.warm) {
            Session session(std::move(p.warm),
                            std::move(session_options));
            outcome = session.run();
        } else {
            Session session(std::move(p.image),
                            std::move(session_options));
            outcome = session.run();
        }

        if (p.slot == asyncSlot) {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                bumpStatsLocked(outcome);
            }
            // Deliver before retiring the job so drain() cannot
            // return while a completion is still writing its reply.
            p.done(std::move(outcome));
            std::lock_guard<std::mutex> lock(mutex_);
            --outstanding_;
            doneCv_.notify_all();
        } else {
            std::lock_guard<std::mutex> lock(mutex_);
            finishLocked(p.slot, std::move(outcome));
        }
    }
}

std::vector<ServiceResult>
Supervisor::drain()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        paused_ = false;
        workCv_.notify_all();
        doneCv_.wait(lock, [this] { return outstanding_ == 0; });
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(results_);
}

ServiceStats
Supervisor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace kcm::service
