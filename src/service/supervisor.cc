#include "service/supervisor.hh"

#include <algorithm>

#include "base/logging.hh"

namespace kcm::service
{

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)), paused_(options_.startPaused)
{
    if (options_.workers == 0)
        fatal("supervisor needs at least one worker");
    if (options_.maxQueueDepth == 0)
        fatal("supervisor needs a nonzero admission queue");
    workers_.reserve(options_.workers);
    for (unsigned i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

Supervisor::~Supervisor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        paused_ = false;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
}

void
Supervisor::shedLocked(std::deque<Pending>::iterator victim)
{
    QueryOutcome out;
    out.status = QueryStatus::Shed;
    out.failure.classification = "overloaded";
    out.failure.detail =
        cat("admission queue full (depth ", options_.maxQueueDepth,
            "); evicted earliest-deadline query");
    ++stats_.shed;
    size_t slot = victim->slot;
    results_[slot].outcome = std::move(out);
    done_[slot] = true;
    --outstanding_;
    queue_.erase(victim);
    doneCv_.notify_all();
}

void
Supervisor::submit(QueryJob job, CodeImage image)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_)
        fatal("submit after drain");
    size_t slot = results_.size();
    results_.push_back(ServiceResult{job, QueryOutcome{}});
    done_.push_back(false);
    ++outstanding_;
    ++stats_.submitted;

    if (queue_.size() >= options_.maxQueueDepth) {
        // Shed the queued query with the earliest deadline — it is
        // the least likely to be served in time. Ties (and the
        // no-deadline default, key 0 meaning "infinite") fall back to
        // oldest-submitted-first among equals.
        auto victim = queue_.begin();
        for (auto it = std::next(queue_.begin()); it != queue_.end();
             ++it) {
            uint64_t vk = victim->deadlineKeyMs ? victim->deadlineKeyMs
                                                : UINT64_MAX;
            uint64_t ik = it->deadlineKeyMs ? it->deadlineKeyMs
                                            : UINT64_MAX;
            if (ik < vk)
                victim = it;
        }
        shedLocked(victim);
    }

    Pending p;
    p.slot = slot;
    p.deadlineKeyMs = job.deadlineMs;
    p.job = std::move(job);
    p.image = std::move(image);
    queue_.push_back(std::move(p));
    workCv_.notify_one();
}

void
Supervisor::resume()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = false;
    }
    workCv_.notify_all();
}

void
Supervisor::finishLocked(size_t slot, QueryOutcome outcome)
{
    switch (outcome.status) {
      case QueryStatus::Completed:
        ++stats_.completed;
        break;
      case QueryStatus::Failed:
        ++stats_.failed;
        break;
      case QueryStatus::Shed:
        ++stats_.shed;
        break;
    }
    stats_.retries += outcome.counters.retries;
    stats_.restarts += outcome.counters.restarts;
    stats_.checkpoints += outcome.counters.checkpoints;
    stats_.checkpointBytes += outcome.counters.checkpointBytes;
    stats_.recoveryCycles += outcome.counters.recoveryCycles;
    results_[slot].outcome = std::move(outcome);
    done_[slot] = true;
    --outstanding_;
    doneCv_.notify_all();
}

void
Supervisor::workerMain()
{
    for (;;) {
        Pending p;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return (!paused_ && !queue_.empty()) || stopping_;
            });
            if (queue_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            if (paused_)
                continue;
            p = std::move(queue_.front());
            queue_.pop_front();
        }

        SessionOptions session_options = options_.session;
        if (p.job.deadlineMs)
            session_options.deadlineMs = p.job.deadlineMs;
        if (p.job.machine)
            session_options.machine = *p.job.machine;
        Session session(std::move(p.image),
                        std::move(session_options));
        QueryOutcome outcome = session.run();

        std::lock_guard<std::mutex> lock(mutex_);
        finishLocked(p.slot, std::move(outcome));
    }
}

std::vector<ServiceResult>
Supervisor::drain()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        paused_ = false;
        workCv_.notify_all();
        doneCv_.wait(lock, [this] { return outstanding_ == 0; });
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread &t : workers_) {
        if (t.joinable())
            t.join();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(results_);
}

ServiceStats
Supervisor::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace kcm::service
