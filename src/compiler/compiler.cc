#include "compiler/compiler.hh"

#include <functional>
#include <set>

#include "base/logging.hh"
#include "compiler/builtin_defs.hh"
#include "prolog/writer.hh"

namespace kcm
{

Compiler::Compiler(const CompilerOptions &options) : options_(options) {}

void
Compiler::addSource(const std::string &source, bool library)
{
    Parser parser(source, ops_);
    ReadClause clause;
    while (parser.readClause(clause)) {
        clauses_.push_back(clause);
        clauseIsLibrary_.push_back(library);
    }
}

void
Compiler::addProgram(const std::string &source)
{
    addSource(source, false);
}

void
Compiler::addLibrary(const std::string &source)
{
    addSource(source, true);
}

void
Compiler::setQuery(const std::string &source)
{
    querySource_ = source;
}

CodeImage
Compiler::compile()
{
    // --- Normalize program and library clauses ---

    NormProgram program;
    std::map<Functor, bool> is_library;

    auto normalize_group = [&](bool library) {
        std::vector<ReadClause> group;
        for (size_t i = 0; i < clauses_.size(); ++i) {
            if (clauseIsLibrary_[i] == library)
                group.push_back(clauses_[i]);
        }
        size_t aux_before = program.auxiliaries.size();
        size_t order_before = program.order.size();
        normalizeProgram(group, program);
        for (size_t i = order_before; i < program.order.size(); ++i) {
            if (!is_library.count(program.order[i]))
                is_library[program.order[i]] = library;
        }
        (void)aux_before;
    };
    normalize_group(false);
    normalize_group(true);

    // In Table 2 mode the I/O predicates are unit clauses costing
    // exactly one call/return sequence (§4.2).
    if (options_.ioAsUnitClauses) {
        const char *unit_io =
            "write(_). writeq(_). nl. tab(_). write_canonical(_).";
        Parser parser(unit_io, ops_);
        size_t order_before = program.order.size();
        normalizeProgram(parser.readAll(), program);
        for (size_t i = order_before; i < program.order.size(); ++i)
            is_library[program.order[i]] = true;
    }

    // --- Parse and normalize the query ---

    std::vector<TermRef> query_goals;
    std::vector<std::pair<std::string, TermRef>> query_var_names;
    if (!querySource_.empty()) {
        std::string text = querySource_;
        Parser parser(text + " .", ops_);
        ReadClause read;
        if (!parser.readClause(read))
            fatal("empty query");
        TermRef body = read.term;
        if (body->isStruct() && body->arity() == 1 &&
            (body->functorName() == internAtom("?-") ||
             body->functorName() == AtomTable::instance().neck)) {
            body = body->arg(0);
        }
        size_t order_before = program.order.size();
        query_goals = normalizeBody(body, program);
        for (size_t i = order_before; i < program.order.size(); ++i)
            is_library[program.order[i]] = true;
        query_var_names = read.varNames;
    }

    // --- Determine referenced-but-undefined predicates ---

    CodegenOptions cg_options;
    cg_options.integerArithmetic = options_.integerArithmetic;

    std::set<Functor> called;
    auto note_goal = [&](const TermRef &goal) {
        if (goal->isAtom()) {
            AtomTable &atoms = AtomTable::instance();
            AtomId a = goal->atom();
            if (a == atoms.trueAtom || a == atoms.failAtom ||
                a == atoms.cutAtom || a == internAtom("false")) {
                return;
            }
            called.insert(Functor{a, 0});
            return;
        }
        const std::string &name = atomText(goal->functorName());
        if (goal->arity() == 2) {
            if (name == "=")
                return;
            if (options_.integerArithmetic &&
                (name == "is" || name == "<" || name == ">" ||
                 name == "=<" || name == ">=" || name == "=:=" ||
                 name == "=\\=")) {
                return;
            }
        }
        called.insert(goal->functor());
    };
    for (const auto &[functor, clauses] : program.preds) {
        for (const auto &clause : clauses) {
            for (const auto &goal : clause.goals)
                note_goal(goal);
        }
    }
    for (const auto &goal : query_goals)
        note_goal(goal);

    // Dynamic clause bodies run through the runtime meta-call, which
    // resolves builtins through the image's escape stubs — note their
    // leaf goals so the stubs exist. (Goals first constructed at run
    // time resolve against the same stub set; see DESIGN.md.)
    {
        AtomId comma = AtomTable::instance().comma;
        std::function<void(const TermRef &)> note_dynamic_body =
            [&](const TermRef &goal) {
                if (goal->isStruct() && goal->arity() == 2 &&
                    goal->functorName() == comma) {
                    note_dynamic_body(goal->arg(0));
                    note_dynamic_body(goal->arg(1));
                    return;
                }
                if (goal->isAtom() || goal->isStruct())
                    note_goal(goal);
            };
        AtomId neck_atom = AtomTable::instance().neck;
        for (const auto &[functor, term] : program.dynamicClauses) {
            if (term->isStruct() && term->arity() == 2 &&
                term->functorName() == neck_atom)
                note_dynamic_body(term->arg(1));
        }
    }

    // Does this image need the dynamic-dispatch machinery (retry stub
    // + per-predicate trap stubs)? Only then does any of it get
    // emitted, so purely static programs stay bit-identical.
    std::set<Functor> dynamic_preds(program.dynamicDecls.begin(),
                                    program.dynamicDecls.end());
    bool wants_dynamic = !dynamic_preds.empty();
    for (const auto &functor : called) {
        if (program.preds.count(functor) || dynamic_preds.count(functor))
            continue;
        auto builtin = findBuiltin(functor);
        if (!builtin) {
            wants_dynamic = true; // undefined → dynamic-capable stub
        } else if (builtin->id == BuiltinId::AssertA ||
                   builtin->id == BuiltinId::AssertZ ||
                   builtin->id == BuiltinId::Retract) {
            wants_dynamic = true; // runtime asserts need the retry stub
        }
    }

    // Dynamic clause bodies run through the meta-call, which resolves
    // control constructs as ordinary predicates — compile the support
    // library for them. Gated on wants_dynamic so purely static images
    // stay bit-identical. (A cut inside these is local to the
    // construct, like call/1; see DESIGN.md.)
    if (wants_dynamic) {
        const char *dyn_support =
            "','(G1, G2) :- call(G1), call(G2). "
            "';'(G1, G2) :- call(G1) ; call(G2). "
            "'->'(C, T) :- call(C) -> call(T). "
            "'\\\\+'(G) :- \\+ call(G).";
        Parser parser(dyn_support, ops_);
        size_t order_before = program.order.size();
        normalizeProgram(parser.readAll(), program);
        for (size_t i = order_before; i < program.order.size(); ++i) {
            const Functor &functor = program.order[i];
            is_library[functor] = true;
            // The support clauses were added after the called-set
            // scan: note their goals so call/1's stub gets emitted.
            for (const auto &clause : program.preds.at(functor))
                for (const auto &goal : clause.goals)
                    note_goal(goal);
        }
    }

    // --- Emit ---

    Assembler assembler;
    ClauseCompiler codegen(assembler, cg_options);
    CodeImage image;

    // Shared stubs first.
    Addr halt_fail = assembler.emit(
        Instr::makeValue(Opcode::Halt, 1)); // halt: query failed
    Label fail_label = assembler.newLabel();
    assembler.bind(fail_label);
    Addr fail_stub = assembler.emit(Instr::make(Opcode::FailOp));

    // Catch-marker alternative: backtracking into a catch/3 barrier
    // lands here; the escape pops the marker and keeps failing.
    Addr catch_fail = assembler.emit(Instr::makeValue(
        Opcode::Escape, static_cast<uint32_t>(BuiltinId::CatchFail), 0));

    image.haltFailEntry = halt_fail;
    image.failEntry = fail_stub;
    image.catchFailEntry = catch_fail;

    // Shared dynamic-retry stub: the alternative address of every
    // dynamic-dispatch choice point. Only emitted when the image uses
    // dynamic dispatch at all.
    if (wants_dynamic) {
        image.dynRetryEntry = assembler.emit(Instr::makeValue(
            Opcode::Escape, static_cast<uint32_t>(BuiltinId::DynamicRetry),
            0));
        assembler.emit(Instr::make(Opcode::Proceed));
    }

    // Indexed-dispatch stub of one dynamic-capable predicate: trap
    // into the clause store, fall through to Proceed for facts.
    auto emit_dyn_stub = [&](const Functor &functor, bool from_library) {
        PredicateInfo info;
        info.functor = functor;
        info.fromLibrary = from_library;
        info.entry = assembler.here();
        size_t instr_before = assembler.instructionCount();
        Addr escape_addr = assembler.emit(Instr::makeValue(
            Opcode::Escape, static_cast<uint32_t>(BuiltinId::DynamicCall),
            static_cast<Reg>(functor.arity)));
        assembler.emit(Instr::make(Opcode::Proceed));
        image.dynStubs[escape_addr] = functor;
        image.dynamicDecls.insert(functor);
        info.instructions = assembler.instructionCount() - instr_before;
        info.words = info.instructions;
        image.predicates[functor] = info;
    };
    for (const auto &functor : program.dynamicDecls)
        emit_dyn_stub(functor, false);

    // Escape stubs for referenced builtins not defined as predicates.
    // Referenced-but-undefined predicates get a dynamic-dispatch stub
    // instead of a plain FailOp: a call still fails while the store
    // has no matching clauses, but assert/1 (or --db-facts) can give
    // the predicate clauses at run time.
    for (const auto &functor : called) {
        if (program.preds.count(functor) ||
            image.predicates.count(functor)) {
            continue;
        }
        auto builtin = findBuiltin(functor);
        if (!builtin) {
            warn("predicate ", atomText(functor.name), "/", functor.arity,
                 " is undefined; calls to it fail");
            emit_dyn_stub(functor, true);
            continue;
        }
        PredicateInfo info;
        info.functor = functor;
        info.fromLibrary = true;
        info.entry = assembler.here();
        size_t instr_before = assembler.instructionCount();
        assembler.emit(Instr::makeValue(
            Opcode::Escape, static_cast<uint32_t>(builtin->id),
            static_cast<Reg>(functor.arity)));
        assembler.emit(Instr::make(Opcode::Proceed));
        info.instructions = assembler.instructionCount() - instr_before;
        info.words = info.instructions;
        image.predicates[functor] = info;
    }

    // User and library predicates.
    IndexingOptions ix_options;
    ix_options.enabled = options_.indexing;
    for (const auto &functor : program.order) {
        PredicateInfo info =
            emitPredicate(assembler, codegen, functor,
                          program.preds.at(functor), ix_options,
                          fail_label);
        auto lib_it = is_library.find(functor);
        info.fromLibrary = lib_it != is_library.end() && lib_it->second;
        image.predicates[functor] = info;
    }

    // Query.
    if (!query_goals.empty()) {
        image.queryEntry = assembler.here();
        std::vector<TermRef> var_order;
        codegen.compileQuery(query_goals, var_order);
        for (size_t slot = 0; slot < var_order.size(); ++slot) {
            for (const auto &[name, var] : query_var_names) {
                if (var.get() == var_order[slot].get()) {
                    image.querySolutionSlots.emplace_back(
                        name, static_cast<int>(slot));
                }
            }
        }
    }

    // --- Link ---

    auto fixups = assembler.predFixups();
    assembler.finalize(image);
    for (const auto &fixup : fixups) {
        auto it = image.predicates.find(fixup.callee);
        Addr target;
        if (it == image.predicates.end()) {
            warn("unresolved predicate ", atomText(fixup.callee.name), "/",
                 fixup.callee.arity);
            target = image.failEntry;
        } else {
            target = it->second.entry;
        }
        if (fixup.isTableWord) {
            image.words[fixup.index] = Word::makeCodePtr(target).raw();
        } else {
            image.words[fixup.index] =
                Instr(image.words[fixup.index]).withValue(target).raw();
        }
    }

    // Canonical text of the dynamic predicates' source clauses; the
    // loader asserts these into the clause store after download, in
    // this (assertz) order.
    if (!program.dynamicClauses.empty()) {
        WriteOptions canonical;
        canonical.quoted = true;
        canonical.ignoreOps = true;
        for (const auto &[functor, term] : program.dynamicClauses) {
            (void)functor;
            image.dynamicInit.push_back(writeTerm(term, ops_, canonical));
        }
    }

    return image;
}

} // namespace kcm
