#include "compiler/image_io.hh"

#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "isa/disasm.hh"

namespace kcm
{

namespace
{

constexpr const char *magic = "KCMIMAGE 2";

/**
 * Visit every atom-id reference inside the code words (constants with
 * an Atom type field, functor words in get/put_structure, switch-table
 * keys) and pass the id through @p remap.
 */
void
remapAtoms(std::vector<uint64_t> &words,
           const std::function<AtomId(AtomId)> &remap)
{
    size_t index = 0;
    while (index < words.size()) {
        Instr instr(words[index]);
        size_t length = instrLength(words, index);
        switch (instr.opcode()) {
          case Opcode::GetConstant:
          case Opcode::PutConstant:
          case Opcode::UnifyConstant:
          case Opcode::LoadImm:
            if (instr.typeField() == Tag::Atom) {
                words[index] =
                    instr.withValue(remap(instr.value())).raw();
            }
            break;
          case Opcode::GetStructure:
          case Opcode::PutStructure: {
            Word f = instr.constant();
            Word remapped =
                Word::makeFunctor(remap(f.functorName()),
                                  f.functorArity());
            words[index] = instr.withValue(remapped.value()).raw();
            break;
          }
          case Opcode::SwitchOnConstant:
          case Opcode::SwitchOnStructure: {
            unsigned n = instr.value();
            for (unsigned i = 0; i < n; ++i) {
                Word key(words[index + 1 + 2 * i]);
                if (key.isAtom()) {
                    words[index + 1 + 2 * i] =
                        Word::makeAtom(remap(key.atom())).raw();
                } else if (key.isFunctorWord()) {
                    words[index + 1 + 2 * i] =
                        Word::makeFunctor(remap(key.functorName()),
                                          key.functorArity())
                            .raw();
                }
            }
            break;
          }
          default:
            break;
        }
        index += length;
    }
}

} // namespace

void
saveImage(const CodeImage &image, std::ostream &out)
{
    out << magic << "\n";
    out << "base " << image.base << "\n";
    out << "query " << image.queryEntry << "\n";
    out << "fail " << image.failEntry << "\n";
    out << "haltfail " << image.haltFailEntry << "\n";
    out << "catchfail " << image.catchFailEntry << "\n";
    out << "dynretry " << image.dynRetryEntry << "\n";

    // Collect the referenced atoms by remapping through an identity
    // that records ids.
    std::set<AtomId> used;
    std::vector<uint64_t> words = image.words;
    remapAtoms(words, [&](AtomId id) {
        used.insert(id);
        return id;
    });
    for (const auto &[functor, info] : image.predicates) {
        used.insert(functor.name);
        (void)info;
    }
    for (const auto &[addr, functor] : image.dynStubs) {
        used.insert(functor.name);
        (void)addr;
    }
    for (const auto &functor : image.dynamicDecls)
        used.insert(functor.name);

    out << "atoms " << used.size() << "\n";
    for (AtomId id : used) {
        const std::string &text = atomText(id);
        out << id << " " << text.size() << " " << text << "\n";
    }

    out << "predicates " << image.predicates.size() << "\n";
    for (const auto &[functor, info] : image.predicates) {
        out << functor.name << " " << functor.arity << " " << info.entry
            << " " << info.words << " " << info.instructions << " "
            << (info.fromLibrary ? 1 : 0) << "\n";
    }

    out << "dynstubs " << image.dynStubs.size() << "\n";
    for (const auto &[addr, functor] : image.dynStubs)
        out << addr << " " << functor.name << " " << functor.arity << "\n";

    out << "dyndecls " << image.dynamicDecls.size() << "\n";
    for (const auto &functor : image.dynamicDecls)
        out << functor.name << " " << functor.arity << "\n";

    out << "dyninit " << image.dynamicInit.size() << "\n";
    for (const auto &clause : image.dynamicInit)
        out << clause.size() << " " << clause << "\n";

    out << "slots " << image.querySolutionSlots.size() << "\n";
    for (const auto &[name, slot] : image.querySolutionSlots)
        out << slot << " " << name.size() << " " << name << "\n";

    out << "words " << image.words.size() << "\n";
    for (uint64_t word : image.words)
        out << word << "\n";
}

void
saveImageFile(const CodeImage &image, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write image file ", path);
    saveImage(image, out);
}

namespace
{

std::string
expectKeyword(std::istream &in, const char *keyword)
{
    std::string token;
    in >> token;
    if (token != keyword)
        fatal("bad image file: expected '", keyword, "', got '", token,
              "'");
    return token;
}

std::string
readSizedString(std::istream &in)
{
    size_t length = 0;
    in >> length;
    in.get(); // the single separating space
    std::string text(length, '\0');
    in.read(text.data(), static_cast<std::streamsize>(length));
    return text;
}

} // namespace

CodeImage
loadImage(std::istream &in)
{
    std::string header;
    std::getline(in, header);
    if (header != magic)
        fatal("not a KCM image file");

    CodeImage image;
    expectKeyword(in, "base");
    in >> image.base;
    expectKeyword(in, "query");
    in >> image.queryEntry;
    expectKeyword(in, "fail");
    in >> image.failEntry;
    expectKeyword(in, "haltfail");
    in >> image.haltFailEntry;
    expectKeyword(in, "catchfail");
    in >> image.catchFailEntry;
    expectKeyword(in, "dynretry");
    in >> image.dynRetryEntry;

    expectKeyword(in, "atoms");
    size_t atom_count = 0;
    in >> atom_count;
    std::map<AtomId, AtomId> atom_map;
    for (size_t i = 0; i < atom_count; ++i) {
        AtomId old_id = 0;
        in >> old_id;
        atom_map[old_id] = internAtom(readSizedString(in));
    }

    expectKeyword(in, "predicates");
    size_t pred_count = 0;
    in >> pred_count;
    for (size_t i = 0; i < pred_count; ++i) {
        AtomId name = 0;
        PredicateInfo info;
        uint32_t arity = 0;
        int from_library = 0;
        in >> name >> arity >> info.entry >> info.words >>
            info.instructions >> from_library;
        auto it = atom_map.find(name);
        if (it == atom_map.end())
            fatal("image references unknown atom id ", name);
        info.functor = Functor{it->second, arity};
        info.fromLibrary = from_library != 0;
        image.predicates[info.functor] = info;
    }

    auto mapped_atom = [&atom_map](AtomId old_id) {
        auto it = atom_map.find(old_id);
        if (it == atom_map.end())
            fatal("image references unknown atom id ", old_id);
        return it->second;
    };

    expectKeyword(in, "dynstubs");
    size_t stub_count = 0;
    in >> stub_count;
    for (size_t i = 0; i < stub_count; ++i) {
        Addr addr = 0;
        AtomId name = 0;
        uint32_t arity = 0;
        in >> addr >> name >> arity;
        image.dynStubs[addr] = Functor{mapped_atom(name), arity};
    }

    expectKeyword(in, "dyndecls");
    size_t decl_count = 0;
    in >> decl_count;
    for (size_t i = 0; i < decl_count; ++i) {
        AtomId name = 0;
        uint32_t arity = 0;
        in >> name >> arity;
        image.dynamicDecls.insert(Functor{mapped_atom(name), arity});
    }

    expectKeyword(in, "dyninit");
    size_t init_count = 0;
    in >> init_count;
    for (size_t i = 0; i < init_count; ++i)
        image.dynamicInit.push_back(readSizedString(in));

    expectKeyword(in, "slots");
    size_t slot_count = 0;
    in >> slot_count;
    for (size_t i = 0; i < slot_count; ++i) {
        int slot = 0;
        in >> slot;
        image.querySolutionSlots.emplace_back(readSizedString(in), slot);
    }

    expectKeyword(in, "words");
    size_t word_count = 0;
    in >> word_count;
    image.words.resize(word_count);
    for (size_t i = 0; i < word_count; ++i)
        in >> image.words[i];
    if (!in)
        fatal("truncated image file");

    remapAtoms(image.words, [&](AtomId old_id) {
        auto it = atom_map.find(old_id);
        if (it == atom_map.end())
            fatal("image references unknown atom id ", old_id);
        return it->second;
    });
    return image;
}

CodeImage
loadImageFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open image file ", path);
    return loadImage(in);
}

} // namespace kcm
