/**
 * @file
 * Clause normalization.
 *
 * Turns read clauses into a predicate-indexed program of flat clauses
 * (head + list of body goals). Control constructs that the KCM
 * instruction set does not execute directly — disjunction, if-then-
 * else, negation-as-failure — are compiled into fresh auxiliary
 * predicates, exactly as a WAM compiler front end does.
 */

#ifndef KCM_COMPILER_NORMALIZE_HH
#define KCM_COMPILER_NORMALIZE_HH

#include <map>
#include <string>
#include <vector>

#include "prolog/parser.hh"
#include "prolog/term.hh"

namespace kcm
{

/** One flat clause: head plus a flattened conjunction of goals. */
struct NormClause
{
    TermRef head;
    std::vector<TermRef> goals;
};

/** A normalized program: clauses grouped by predicate. */
struct NormProgram
{
    /** Predicates in first-definition order. */
    std::vector<Functor> order;
    std::map<Functor, std::vector<NormClause>> preds;
    /** Functors of auxiliary predicates generated during
     *  normalization (they are implementation details). */
    std::vector<Functor> auxiliaries;

    /** Predicates declared `:- dynamic(F/N)`, declaration order.
     *  Their clauses are excluded from static compilation and land in
     *  @ref dynamicClauses instead. */
    std::vector<Functor> dynamicDecls;

    /** Source clauses of dynamic predicates (original clause term,
     *  source order) for the loader to assert into the clause store. */
    std::vector<std::pair<Functor, TermRef>> dynamicClauses;

    /** Add a clause, registering the predicate on first sight. */
    void add(const Functor &f, NormClause clause);
};

/**
 * Normalize source clauses into @p out. Directives (":- G") other
 * than op/3 (already handled by the reader) are ignored with a
 * warning.
 */
void normalizeProgram(const std::vector<ReadClause> &clauses,
                      NormProgram &out);

/** Normalize a single goal term (a query body) into flat goals,
 *  adding any needed auxiliary predicates to @p program. */
std::vector<TermRef> normalizeBody(const TermRef &body,
                                   NormProgram &program);

} // namespace kcm

#endif // KCM_COMPILER_NORMALIZE_HH
