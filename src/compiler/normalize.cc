#include "compiler/normalize.hh"

#include <set>

#include "base/logging.hh"
#include "prolog/writer.hh"

namespace kcm
{

namespace
{

/** Fresh auxiliary predicate counter (per-process; names are unique). */
uint32_t auxCounter = 0;

bool
isControlStruct(const TermRef &t, const char *name, uint32_t arity)
{
    return t->isStruct() && t->arity() == arity &&
           t->functorName() == internAtom(name);
}

class Normalizer
{
  public:
    explicit Normalizer(NormProgram &program) : program_(program) {}

    /** Flatten @p body into @p goals, spawning auxiliaries. */
    void
    flatten(const TermRef &body, std::vector<TermRef> &goals)
    {
        if (body->isAtomNamed(AtomTable::instance().comma)) {
            // A bare ',' atom is malformed; fall through to goal case.
        }
        if (isControlStruct(body, ",", 2)) {
            flatten(body->arg(0), goals);
            flatten(body->arg(1), goals);
            return;
        }
        if (isControlStruct(body, ";", 2) || isControlStruct(body, "->", 2) ||
            isControlStruct(body, "\\+", 1)) {
            goals.push_back(makeAuxiliary(body));
            return;
        }
        if (isControlStruct(body, "catch", 3)) {
            // catch/3 meta-calls its Goal and Recovery at run time; wrap
            // them in auxiliary predicates so control constructs compile
            // and cuts stay local to the protected goal (ISO).
            goals.push_back(Term::makeStruct(
                "catch", {wrapMetaArg(body->arg(0)), body->arg(1),
                          wrapMetaArg(body->arg(2))}));
            return;
        }
        if (body->isVar()) {
            // Meta-call of a variable: route through call/1.
            goals.push_back(Term::makeStruct("call", {body}));
            return;
        }
        if (!body->isAtom() && !body->isStruct()) {
            fatal("normalize: goal is not callable: ", writeTerm(body));
        }
        goals.push_back(body);
    }

    /**
     * Wrap a catch/3 Goal or Recovery argument: callable arguments
     * become a call to a fresh auxiliary predicate (one clause, the
     * argument as body). Variables and non-callables pass through and
     * are dealt with by the runtime meta-call (instantiation_error /
     * type_error(callable, _)).
     */
    TermRef
    wrapMetaArg(const TermRef &goal)
    {
        if (!goal->isAtom() && !goal->isStruct())
            return goal;
        std::vector<TermRef> vars;
        collectVars(goal, vars);
        std::string name = cat("$aux", auxCounter++);
        AtomId name_atom = internAtom(name);
        TermRef call_goal = vars.empty()
                                ? Term::makeAtom(name_atom)
                                : Term::makeStruct(name_atom, vars);
        Functor f{name_atom, static_cast<uint32_t>(vars.size())};
        program_.auxiliaries.push_back(f);
        NormClause clause;
        clause.head = call_goal;
        flatten(goal, clause.goals);
        program_.add(f, std::move(clause));
        return call_goal;
    }

    /**
     * Replace a control construct with a call to a fresh predicate
     * whose clauses implement it. The auxiliary's arguments are the
     * distinct variables of the construct (they connect it to the
     * enclosing clause).
     */
    TermRef
    makeAuxiliary(const TermRef &construct)
    {
        std::vector<TermRef> vars;
        collectVars(construct, vars);
        std::string name = cat("$aux", auxCounter++);
        AtomId name_atom = internAtom(name);
        TermRef call_goal = vars.empty()
                                ? Term::makeAtom(name_atom)
                                : Term::makeStruct(name_atom, vars);
        Functor f{name_atom, static_cast<uint32_t>(vars.size())};
        program_.auxiliaries.push_back(f);

        auto add_clause = [&](const TermRef &body) {
            NormClause clause;
            clause.head = call_goal;
            flatten(body, clause.goals);
            program_.add(f, std::move(clause));
        };

        TermRef cut = Term::makeAtom(AtomTable::instance().cutAtom);
        TermRef fail_atom = Term::makeAtom(AtomTable::instance().failAtom);
        TermRef true_atom = Term::makeAtom(AtomTable::instance().trueAtom);

        if (isControlStruct(construct, "\\+", 1)) {
            // aux :- G, !, fail.   aux.
            add_clause(Term::makeStruct(
                ",", {construct->arg(0), Term::makeStruct(",",
                                                          {cut, fail_atom})}));
            add_clause(true_atom);
            return call_goal;
        }

        if (isControlStruct(construct, "->", 2)) {
            // (C -> T): aux :- C, !, T.  (fails if C fails)
            add_clause(Term::makeStruct(
                ",", {construct->arg(0),
                      Term::makeStruct(",", {cut, construct->arg(1)})}));
            return call_goal;
        }

        // Disjunction, possibly an if-then-else.
        const TermRef &lhs = construct->arg(0);
        const TermRef &rhs = construct->arg(1);
        if (isControlStruct(lhs, "->", 2)) {
            // (C -> T ; E)
            add_clause(Term::makeStruct(
                ",", {lhs->arg(0),
                      Term::makeStruct(",", {cut, lhs->arg(1)})}));
            add_clause(rhs);
        } else {
            add_clause(lhs);
            add_clause(rhs);
        }
        return call_goal;
    }

  private:
    NormProgram &program_;
};

} // namespace

void
NormProgram::add(const Functor &f, NormClause clause)
{
    auto it = preds.find(f);
    if (it == preds.end()) {
        order.push_back(f);
        preds[f].push_back(std::move(clause));
    } else {
        it->second.push_back(std::move(clause));
    }
}

namespace
{

/** Parse one dynamic/1 spec: F/N, a ','-chain of specs, or a list of
 *  specs. Appends the functors to @p out. */
void
collectDynamicSpec(const TermRef &spec, std::vector<Functor> &out)
{
    AtomId slash = internAtom("/");
    AtomId comma = AtomTable::instance().comma;
    if (spec->isStruct() && spec->arity() == 2 &&
        spec->functorName() == comma) {
        collectDynamicSpec(spec->arg(0), out);
        collectDynamicSpec(spec->arg(1), out);
        return;
    }
    if (spec->isCons()) {
        TermRef t = spec;
        while (t->isCons()) {
            collectDynamicSpec(t->arg(0), out);
            t = t->arg(1);
        }
        if (!t->isNil())
            fatal("dynamic/1: improper predicate indicator list");
        return;
    }
    if (spec->isStruct() && spec->arity() == 2 &&
        spec->functorName() == slash && spec->arg(0)->isAtom() &&
        spec->arg(1)->isInt() && spec->arg(1)->intValue() >= 0 &&
        spec->arg(1)->intValue() <= 0xFF) {
        out.push_back(Functor{spec->arg(0)->atom(),
                              static_cast<uint32_t>(spec->arg(1)->intValue())});
        return;
    }
    fatal("dynamic/1: bad predicate indicator: ", writeTerm(spec));
}

bool
isDynamicDirective(const TermRef &goal)
{
    return goal->isStruct() && goal->arity() == 1 &&
           goal->functorName() == internAtom("dynamic");
}

} // namespace

void
normalizeProgram(const std::vector<ReadClause> &clauses, NormProgram &out)
{
    Normalizer normalizer(out);
    AtomId neck = AtomTable::instance().neck;
    AtomId query_neck = internAtom("?-");

    // Pass 1: collect every dynamic/1 declaration, so the directive
    // is honoured wherever it appears relative to the clauses.
    std::set<Functor> dynamic_set(out.dynamicDecls.begin(),
                                  out.dynamicDecls.end());
    for (const auto &read : clauses) {
        const TermRef &term = read.term;
        if (term->isStruct() && term->arity() == 1 &&
            (term->functorName() == neck ||
             term->functorName() == query_neck) &&
            isDynamicDirective(term->arg(0))) {
            std::vector<Functor> decls;
            collectDynamicSpec(term->arg(0)->arg(0), decls);
            for (const Functor &f : decls) {
                if (dynamic_set.insert(f).second)
                    out.dynamicDecls.push_back(f);
            }
        }
    }

    for (const auto &read : clauses) {
        const TermRef &term = read.term;

        // Directives.
        if (term->isStruct() && term->arity() == 1 &&
            (term->functorName() == neck ||
             term->functorName() == query_neck)) {
            const TermRef &goal = term->arg(0);
            bool is_op = goal->isStruct() && goal->arity() == 3 &&
                         goal->functorName() == internAtom("op");
            if (!is_op && !isDynamicDirective(goal)) {
                warn("ignoring directive: ", writeTerm(term));
            }
            continue;
        }

        // Clauses of dynamic predicates skip static compilation; the
        // loader asserts them into the clause store instead.
        {
            TermRef head = term;
            if (term->isStruct() && term->arity() == 2 &&
                term->functorName() == neck)
                head = term->arg(0);
            if ((head->isAtom() || head->isStruct()) &&
                dynamic_set.count(head->functor())) {
                out.dynamicClauses.emplace_back(head->functor(), term);
                continue;
            }
        }

        NormClause clause;
        if (term->isStruct() && term->arity() == 2 &&
            term->functorName() == neck) {
            clause.head = term->arg(0);
            normalizer.flatten(term->arg(1), clause.goals);
        } else {
            clause.head = term;
        }

        if (!clause.head->isAtom() && !clause.head->isStruct())
            fatal("normalize: bad clause head: ", writeTerm(clause.head));

        Functor f = clause.head->functor();
        out.add(f, std::move(clause));
    }
}

std::vector<TermRef>
normalizeBody(const TermRef &body, NormProgram &program)
{
    Normalizer normalizer(program);
    std::vector<TermRef> goals;
    normalizer.flatten(body, goals);
    return goals;
}

} // namespace kcm
