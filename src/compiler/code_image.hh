/**
 * @file
 * The output of compilation: a linked image of 64-bit code words plus
 * the symbol table and per-predicate size bookkeeping (used both by
 * the loader and by the Table 1 static-size measurements).
 */

#ifndef KCM_COMPILER_CODE_IMAGE_HH
#define KCM_COMPILER_CODE_IMAGE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "isa/instr.hh"
#include "prolog/atom_table.hh"

namespace kcm
{

/** Where a predicate lives in the image. */
struct PredicateInfo
{
    Functor functor;
    Addr entry = 0;           ///< address callers jump to
    size_t words = 0;         ///< code words including switch tables
    size_t instructions = 0;  ///< instruction count (tables excluded)
    bool fromLibrary = false; ///< runtime-library predicate (excluded
                              ///< from Table 1 program sizes)
};

/** A linked code image based at @ref base. */
struct CodeImage
{
    /** First code address; address 0 is reserved as "null". */
    Addr base = 0x100;

    /** The code words, index i lives at address base + i. */
    std::vector<uint64_t> words;

    /** Symbol table. */
    std::map<Functor, PredicateInfo> predicates;

    /** Entry point of the compiled query, 0 if none. */
    Addr queryEntry = 0;

    /** Address of the shared fail stub (deep fail into an empty
     *  indexing bucket lands here). */
    Addr failEntry = 0;

    /** Address of the query-failure halt stub (the bottom choice
     *  point's alternative). */
    Addr haltFailEntry = 0;

    /** Address of the catch-marker alternative: a choice point whose
     *  alt field equals this address is a catch/3 barrier. Backtracking
     *  into it pops the marker and keeps failing; throw/1 scans the B
     *  chain for it. */
    Addr catchFailEntry = 0;

    /** Named query variables: (name, Y slot) pairs for solutions. */
    std::vector<std::pair<std::string, int>> querySolutionSlots;

    /** Address of the shared dynamic-retry stub: a choice point whose
     *  alt field equals this address is a dynamic-predicate clause
     *  iterator (its saved X slots carry the cursor; see
     *  Machine::execDynamicRetry). 0 when the image has no dynamic
     *  dispatch. */
    Addr dynRetryEntry = 0;

    /** Dynamic-dispatch stubs: address of each `Escape $dynamic_call`
     *  instruction → the predicate it traps into the clause store
     *  for. Both cores hold the current instruction address in p_
     *  while executing an escape, so this doubles as the stub's
     *  self-identification. */
    std::map<Addr, Functor> dynStubs;

    /** Predicates declared `:- dynamic(F/N)` (calls trap to the
     *  store; asserting to anything else is a permission error). */
    std::set<Functor> dynamicDecls;

    /**
     * Source clauses of dynamic predicates, in canonical quoted
     * ignore-ops text, in source order. The loader asserts these into
     * the machine's clause store after download (assertz order), so a
     * KCMSNAP2 template taken post-download already contains them.
     * `--db-facts` preloads append here after compilation.
     */
    std::vector<std::string> dynamicInit;

    /** True when calls to @p f dispatch through the clause store. */
    bool
    isDynamic(const Functor &f) const
    {
        return dynamicDecls.count(f) != 0;
    }

    Addr
    endAddr() const
    {
        return base + static_cast<Addr>(words.size());
    }

    /** Lookup a predicate; null if absent. */
    const PredicateInfo *
    find(Functor f) const
    {
        auto it = predicates.find(f);
        return it == predicates.end() ? nullptr : &it->second;
    }

    /** Static size of the non-library program code, for Table 1. */
    void
    programSize(size_t &instructions, size_t &words_out) const
    {
        instructions = 0;
        words_out = 0;
        for (const auto &[functor, info] : predicates) {
            if (info.fromLibrary)
                continue;
            instructions += info.instructions;
            words_out += info.words;
        }
    }
};

} // namespace kcm

#endif // KCM_COMPILER_CODE_IMAGE_HH
