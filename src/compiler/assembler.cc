#include "compiler/assembler.hh"

#include "base/logging.hh"

namespace kcm
{

Addr
Assembler::emit(Instr instr)
{
    Addr at = here();
    words_.push_back(instr.raw());
    ++instructionCount_;
    return at;
}

Addr
Assembler::emitWord(Word word)
{
    Addr at = here();
    words_.push_back(word.raw());
    return at;
}

void
Assembler::markLast()
{
    if (words_.empty())
        panic("markLast: nothing emitted");
    words_.back() = Instr(words_.back()).withMark().raw();
}

Label
Assembler::newLabel()
{
    labelAddrs_.push_back(0);
    return static_cast<Label>(labelAddrs_.size() - 1);
}

void
Assembler::bind(Label label)
{
    if (label >= labelAddrs_.size())
        panic("bind: unknown label");
    if (labelAddrs_[label] != 0)
        panic("bind: label bound twice");
    labelAddrs_[label] = here();
}

Addr
Assembler::emitWithLabel(Instr instr, Label label)
{
    size_t index = words_.size();
    Addr at = emit(instr);
    labelFixups_.push_back({index, label, false});
    return at;
}

Addr
Assembler::emitLabelWord(Label label)
{
    size_t index = words_.size();
    Addr at = emitWord(Word::makeCodePtr(0));
    labelFixups_.push_back({index, label, true});
    return at;
}

Addr
Assembler::emitCall(Instr instr, Functor callee)
{
    size_t index = words_.size();
    Addr at = emit(instr);
    predFixups_.push_back({index, callee, false});
    return at;
}

Addr
Assembler::emitCalleeWord(Functor callee)
{
    size_t index = words_.size();
    Addr at = emitWord(Word::makeCodePtr(0));
    predFixups_.push_back({index, callee, true});
    return at;
}

void
Assembler::patchValue(size_t index, uint32_t value, bool is_table_word)
{
    if (is_table_word) {
        words_[index] = Word::makeCodePtr(value).raw();
    } else {
        words_[index] = Instr(words_[index]).withValue(value).raw();
    }
}

void
Assembler::finalize(CodeImage &image)
{
    for (const auto &fixup : labelFixups_) {
        Addr target = labelAddrs_[fixup.label];
        if (target == 0)
            panic("finalize: unbound label ", fixup.label);
        patchValue(fixup.index, target, fixup.isTableWord);
    }
    labelFixups_.clear();
    image.base = base_;
    image.words = std::move(words_);
}

} // namespace kcm
