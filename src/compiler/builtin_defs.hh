/**
 * @file
 * The builtin predicate registry shared between the compiler (which
 * emits Escape stubs and counts inferences) and the machine (which
 * dispatches Escape instructions to C++ implementations via the host
 * interface, §2.1).
 */

#ifndef KCM_COMPILER_BUILTIN_DEFS_HH
#define KCM_COMPILER_BUILTIN_DEFS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "prolog/atom_table.hh"

namespace kcm
{

/** Identifiers of escape builtins. */
enum class BuiltinId : uint32_t
{
    Write = 0,      ///< write/1
    Writeq,         ///< writeq/1
    Nl,             ///< nl/0
    Halt,           ///< halt/0
    Var,            ///< var/1
    NonVar,         ///< nonvar/1
    AtomP,          ///< atom/1
    AtomicP,        ///< atomic/1
    IntegerP,       ///< integer/1
    FloatP,         ///< float/1
    NumberP,        ///< number/1
    CompoundP,      ///< compound/1
    FunctorB,       ///< functor/3
    ArgB,           ///< arg/3
    Univ,           ///< =../2
    StructEq,       ///< ==/2
    StructNe,       ///< \==/2
    CompareB,       ///< compare/3
    TermLt,         ///< @</2
    TermGt,         ///< @>/2
    TermLe,         ///< @=</2
    TermGe,         ///< @>=/2
    IsGeneric,      ///< is/2 (generic arithmetic mode)
    CmpGenericLt,   ///< </2 generic
    CmpGenericGt,   ///< >/2
    CmpGenericLe,   ///< =</2
    CmpGenericGe,   ///< >=/2
    CmpGenericEq,   ///< =:=/2
    CmpGenericNe,   ///< =\=/2
    CallGoal,       ///< call/1 (meta-call)
    CollectSolution, ///< internal: record query bindings
    NameB,          ///< name/2
    AtomLength,     ///< atom_length/2
    TabB,           ///< tab/1
    WriteCanonical, ///< write_canonical/1
    CatchB,         ///< catch/3 (push marker choice point, call Goal)
    ThrowB,         ///< throw/1 (unwind to the innermost marker)
    CatchFail,      ///< internal: backtracked into a catch marker
    AssertA,        ///< asserta/1 (dynamic clause store, front)
    AssertZ,        ///< assertz/1 and assert/1 (back)
    Retract,        ///< retract/1 (first matching clause, semidet)
    DynamicCall,    ///< internal: dynamic-predicate dispatch stub
    DynamicRetry,   ///< internal: next dynamic clause on backtracking
    NumBuiltins,
};

/** How a source goal is realized by the compiler. */
enum class GoalKind
{
    UserCall,     ///< call/execute a compiled predicate
    EscapeCall,   ///< call a library stub that escapes to C++
    InlineOp,     ///< compiled inline (is/2, comparisons, =/2, true...)
};

/** Static description of one escape builtin. */
struct BuiltinDef
{
    const char *name;
    uint32_t arity;
    BuiltinId id;
    /** Extra cycles the escape costs beyond the Escape opcode's base
     *  (models microcode + host interaction). */
    unsigned extraCycles;
};

/** All registered builtins. */
const std::vector<BuiltinDef> &builtinTable();

/** Find a builtin by functor. */
std::optional<BuiltinDef> findBuiltin(const Functor &f);

/** Find a builtin by id. */
const BuiltinDef &builtinById(BuiltinId id);

} // namespace kcm

#endif // KCM_COMPILER_BUILTIN_DEFS_HH
