/**
 * @file
 * Predicate-level code emission: clause chains with
 * try_me_else/retry_me_else/trust_me headers, and first-argument
 * indexing through switch_on_term / switch_on_constant /
 * switch_on_structure with try/retry/trust blocks (§3.1.4, §4.2 —
 * "the highest ratio is actually obtained on query ... showing the
 * efficiency of KCM indexing").
 */

#ifndef KCM_COMPILER_INDEXING_HH
#define KCM_COMPILER_INDEXING_HH

#include <vector>

#include "compiler/assembler.hh"
#include "compiler/codegen.hh"
#include "compiler/normalize.hh"

namespace kcm
{

struct IndexingOptions
{
    bool enabled = true; ///< emit switch instructions
};

/**
 * Emit the complete code of one predicate and return its info (entry
 * address and static sizes). @p fail_label must resolve to the shared
 * fail stub.
 */
PredicateInfo emitPredicate(Assembler &assembler, ClauseCompiler &codegen,
                            const Functor &functor,
                            const std::vector<NormClause> &clauses,
                            const IndexingOptions &options,
                            Label fail_label);

} // namespace kcm

#endif // KCM_COMPILER_INDEXING_HH
