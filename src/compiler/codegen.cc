#include "compiler/codegen.hh"

#include "base/logging.hh"
#include "compiler/builtin_defs.hh"
#include "prolog/writer.hh"

namespace kcm
{

namespace
{

/** A compound term: a structure or a cons cell. */
bool
isCompound(const TermRef &t)
{
    return t->isStruct();
}

/** The constant Word of an atomic term. */
Word
constantWord(const TermRef &t)
{
    switch (t->kind()) {
      case TermKind::Atom:
        return t->isNil() ? Word::makeNil() : Word::makeAtom(t->atom());
      case TermKind::Int:
        return Word::makeInt(static_cast<int32_t>(t->intValue()));
      case TermKind::Float:
        return Word::makeFloat(static_cast<float>(t->floatValue()));
      default:
        panic("constantWord: not atomic");
    }
}

bool
isArithOp(const TermRef &t, const char *name, uint32_t arity)
{
    return t->isStruct() && t->arity() == arity &&
           t->functorName() == internAtom(name);
}

} // namespace

// ------------------------------------------------------------- analysis

ClauseCompiler::GoalClass
ClauseCompiler::classify(const TermRef &goal) const
{
    if (goal->isAtom()) {
        AtomTable &atoms = AtomTable::instance();
        if (goal->atom() == atoms.trueAtom)
            return GoalClass::True;
        if (goal->atom() == atoms.failAtom ||
            goal->atom() == internAtom("false")) {
            return GoalClass::Fail;
        }
        if (goal->atom() == atoms.cutAtom)
            return GoalClass::Cut;
        return GoalClass::Call;
    }
    if (goal->isStruct() && goal->arity() == 2) {
        const std::string &name = atomText(goal->functorName());
        if (name == "=")
            return GoalClass::Unify;
        if (options_.integerArithmetic) {
            if (name == "is")
                return GoalClass::Is;
            if (name == "<" || name == ">" || name == "=<" ||
                name == ">=" || name == "=:=" || name == "=\\=") {
                return GoalClass::Compare;
            }
        }
    }
    return GoalClass::Call;
}

ClauseCompiler::VarInfo &
ClauseCompiler::info(const TermRef &var)
{
    auto it = vars_.find(var.get());
    if (it == vars_.end())
        panic("unknown variable in codegen");
    return it->second;
}

void
ClauseCompiler::noteVars(const TermRef &t, int chunk, int goal_index)
{
    if (t->isVar()) {
        auto [it, fresh] = vars_.emplace(t.get(), VarInfo{});
        VarInfo &vi = it->second;
        if (fresh) {
            vi.firstChunk = chunk;
            varOrder_.push_back(t);
        }
        vi.lastChunk = chunk;
        ++vi.occurrences;
        if (goal_index >= 0)
            vi.lastGoal = goal_index;
        return;
    }
    if (t->isStruct()) {
        for (const auto &arg : t->args())
            noteVars(arg, chunk, goal_index);
    }
}

void
ClauseCompiler::analyze(const NormClause &clause, bool force_all_perm)
{
    vars_.clear();
    varOrder_.clear();
    permCount_ = 0;
    cutLevelY_ = -1;
    firstCallGoal_ = -1;

    // Chunk 0 is the head plus everything up to and including the
    // first Call-class goal; each later Call goal closes a chunk.
    int chunk = 0;
    if (clause.head)
        noteVars(clause.head, 0, -1);

    bool has_deep_cut = false;
    for (size_t i = 0; i < clause.goals.size(); ++i) {
        const TermRef &goal = clause.goals[i];
        GoalClass klass = classify(goal);
        noteVars(goal, chunk, static_cast<int>(i));
        if (klass == GoalClass::Cut && firstCallGoal_ >= 0)
            has_deep_cut = true;
        if (klass == GoalClass::Call) {
            if (firstCallGoal_ < 0)
                firstCallGoal_ = static_cast<int>(i);
            ++chunk;
        }
    }

    for (const auto &var : varOrder_) {
        VarInfo &vi = vars_[var.get()];
        vi.perm = force_all_perm || vi.firstChunk != vi.lastChunk;
        if (vi.perm)
            vi.y = permCount_++;
    }
    if (has_deep_cut)
        cutLevelY_ = permCount_++;
}

// -------------------------------------------------------- reg management

Reg
ClauseCompiler::newTemp()
{
    if (!freeTemps_.empty()) {
        Reg r = freeTemps_.back();
        freeTemps_.pop_back();
        return r;
    }
    if (nextTemp_ >= numXRegs) {
        fatal("clause needs more than ", numXRegs,
              " temporary registers");
    }
    return static_cast<Reg>(nextTemp_++);
}

void
ClauseCompiler::releaseTemp(Reg r)
{
    if (r >= tempBase_)
        freeTemps_.push_back(r);
}

bool
ClauseCompiler::hasHome(const TermRef &var) const
{
    auto it = vars_.find(var.get());
    if (it == vars_.end())
        return false;
    return it->second.argHome >= 0 || it->second.x >= 0;
}

Reg
ClauseCompiler::homeReg(const TermRef &var)
{
    VarInfo &vi = info(var);
    if (vi.argHome >= 0)
        return static_cast<Reg>(vi.argHome);
    if (vi.x >= 0)
        return static_cast<Reg>(vi.x);
    panic("variable has no register home");
}

void
ClauseCompiler::emitMove(Reg from, Reg to)
{
    asm_.emit(Instr::makeRegs(Opcode::Move2, from, from, to, to));
}

void
ClauseCompiler::markLast()
{
    asm_.markLast();
}

// ------------------------------------------------------------------ head

void
ClauseCompiler::compileHead(const TermRef &head)
{
    inHead_ = true;
    if (!head->isAtom()) {
        for (uint32_t i = 0; i < head->arity(); ++i)
            compileHeadArg(head->arg(i), static_cast<Reg>(i));
    }
    inHead_ = false;
}

void
ClauseCompiler::compileHeadArg(const TermRef &t, Reg areg)
{
    switch (t->kind()) {
      case TermKind::Var: {
        VarInfo &vi = info(t);
        if (vi.argHome < 0 && vi.x < 0 && !vi.yValid) {
            // First occurrence: the value simply lives in the argument
            // register; no instruction needed.
            vi.argHome = areg;
        } else {
            asm_.emit(Instr::makeRegs(Opcode::GetValueX, homeReg(t), areg));
        }
        return;
      }
      case TermKind::Atom:
        if (t->isNil()) {
            asm_.emit(Instr::makeRegs(Opcode::GetNil, 0, areg));
        } else {
            asm_.emit(Instr::makeConstant(Opcode::GetConstant,
                                          constantWord(t), 0, areg));
        }
        return;
      case TermKind::Int:
      case TermKind::Float:
        asm_.emit(Instr::makeConstant(Opcode::GetConstant, constantWord(t),
                                      0, areg));
        return;
      case TermKind::Struct:
        break;
    }

    if (t->isCons()) {
        asm_.emit(Instr::makeRegs(Opcode::GetList, 0, areg));
        compileUnifyArgs(t->args(), /*is_cons=*/true);
    } else {
        Word f = Word::makeFunctor(t->functorName(), t->arity());
        asm_.emit(Instr::makeConstant(Opcode::GetStructure, f, 0, areg));
        compileUnifyArgs(t->args(), /*is_cons=*/false);
    }
}

void
ClauseCompiler::compileUnifyArgs(const std::vector<TermRef> &args,
                                 bool is_cons)
{
    // Breadth-first: unify this level, queueing nested structures into
    // fresh temporaries to be decomposed afterwards. Cons levels are
    // compiled as unify_list chains: a statically-known list cell then
    // costs two instructions (§4.1).
    struct Pending
    {
        Reg reg;
        TermRef term;
    };
    std::vector<Pending> queue;

    auto unify_child = [&](const TermRef &child) {
        if (child->isVar() && info(child).occurrences == 1 &&
            !info(child).perm) {
            asm_.emit(Instr::makeRegs(Opcode::UnifyVoid, 1));
            return;
        }
        if (isCompound(child)) {
            Reg t = newTemp();
            asm_.emit(Instr::makeRegs(Opcode::UnifyVariableX, t));
            queue.push_back({t, child});
            return;
        }
        emitUnifyChild(child);
    };

    auto unify_cons_level = [&](const std::vector<TermRef> &level) {
        // level = {head, tail} of a cons cell; chain through tails.
        TermRef head = level[0];
        TermRef tail = level[1];
        while (true) {
            unify_child(head);
            if (tail->isCons()) {
                asm_.emit(Instr::makeRegs(Opcode::UnifyList, 0));
                head = tail->arg(0);
                tail = tail->arg(1);
                continue;
            }
            if (tail->isNil()) {
                asm_.emit(Instr::makeRegs(Opcode::UnifyNil, 0));
            } else {
                unify_child(tail);
            }
            return;
        }
    };

    auto unify_level = [&](const std::vector<TermRef> &level,
                           bool level_is_cons) {
        if (level_is_cons) {
            unify_cons_level(level);
            return;
        }
        size_t i = 0;
        while (i < level.size()) {
            const TermRef &child = level[i];
            if (child->isVar() && info(child).occurrences == 1 &&
                !info(child).perm) {
                // Coalesce consecutive anonymous children.
                unsigned count = 0;
                while (i < level.size() && level[i]->isVar() &&
                       info(level[i]).occurrences == 1 &&
                       !info(level[i]).perm) {
                    ++count;
                    ++i;
                }
                asm_.emit(Instr::makeRegs(Opcode::UnifyVoid,
                                          static_cast<Reg>(count)));
                continue;
            }
            unify_child(child);
            ++i;
        }
    };

    unify_level(args, is_cons);
    size_t next = 0;
    while (next < queue.size()) {
        Pending p = queue[next++];
        if (p.term->isCons()) {
            asm_.emit(Instr::makeRegs(Opcode::GetList, 0, p.reg));
        } else {
            Word f = Word::makeFunctor(p.term->functorName(),
                                       p.term->arity());
            asm_.emit(
                Instr::makeConstant(Opcode::GetStructure, f, 0, p.reg));
        }
        // The holder register has been consumed (it set S); recycle it
        // so long list patterns need O(1) temporaries.
        releaseTemp(p.reg);
        unify_level(p.term->args(), p.term->isCons());
    }
}

void
ClauseCompiler::emitUnifyChild(const TermRef &child)
{
    switch (child->kind()) {
      case TermKind::Var: {
        VarInfo &vi = info(child);
        bool fresh = vi.argHome < 0 && vi.x < 0 && !vi.yValid;
        if (fresh) {
            if (vi.perm && inHead_) {
                // No environment yet: capture into a temporary; the
                // move to the Y slot happens right after allocate.
                Reg t = newTemp();
                asm_.emit(Instr::makeRegs(Opcode::UnifyVariableX, t));
                vi.x = t;
                vi.heapSafe = true;
            } else if (vi.perm) {
                asm_.emit(Instr::makeRegs(Opcode::UnifyVariableY,
                                          static_cast<Reg>(vi.y)));
                vi.yValid = true;
                vi.heapSafe = true;
            } else {
                Reg t = newTemp();
                asm_.emit(Instr::makeRegs(Opcode::UnifyVariableX, t));
                vi.x = t;
                vi.heapSafe = true;
            }
            return;
        }
        // Repeat occurrence.
        if (vi.perm && vi.yValid) {
            asm_.emit(Instr::makeRegs(vi.heapSafe
                                          ? Opcode::UnifyValueY
                                          : Opcode::UnifyLocalValueY,
                                      static_cast<Reg>(vi.y)));
        } else {
            asm_.emit(Instr::makeRegs(vi.heapSafe
                                          ? Opcode::UnifyValueX
                                          : Opcode::UnifyLocalValueX,
                                      homeReg(child)));
        }
        return;
      }
      case TermKind::Atom:
        if (child->isNil()) {
            asm_.emit(Instr::makeRegs(Opcode::UnifyNil, 0));
        } else {
            asm_.emit(Instr::makeConstant(Opcode::UnifyConstant,
                                          constantWord(child)));
        }
        return;
      case TermKind::Int:
      case TermKind::Float:
        asm_.emit(Instr::makeConstant(Opcode::UnifyConstant,
                                      constantWord(child)));
        return;
      case TermKind::Struct:
        panic("emitUnifyChild: compounds handled by caller");
    }
}

// ------------------------------------------------------------------ body

void
ClauseCompiler::compileClause(const NormClause &clause,
                              const ClauseContext &ctx)
{
    analyze(clause, false);
    arity_ = ctx.arity;

    tempBase_ = arity_;
    for (const auto &goal : clause.goals) {
        if (classify(goal) == GoalClass::Call)
            tempBase_ = std::max(tempBase_, goal->arity());
    }
    nextTemp_ = tempBase_;
    freeTemps_.clear();

    compileHead(clause.head);

    // Guard: a prefix of inline tests and cuts that may run before the
    // neck (they never touch the argument registers).
    size_t guard_end = 0;
    while (guard_end < clause.goals.size()) {
        const TermRef &goal = clause.goals[guard_end];
        GoalClass klass = classify(goal);
        if (!guardSafe(goal, klass))
            break;
        switch (klass) {
          case GoalClass::Cut:
            asm_.emit(Instr::make(Opcode::Cut));
            break;
          case GoalClass::Compare:
            compileCompareGoal(goal);
            break;
          case GoalClass::Is:
            compileIsGoal(goal);
            break;
          default:
            panic("unexpected guard goal");
        }
        ++guard_end;
    }

    if (ctx.hasAlternatives)
        asm_.emit(Instr::make(Opcode::Neck));

    NormClause rest;
    rest.head = clause.head;
    rest.goals.assign(clause.goals.begin() +
                          static_cast<long>(guard_end),
                      clause.goals.end());
    // Re-number goal indices consumed by the guard: analysis indices
    // still refer to the original list; compileBody only needs the
    // remaining goals and per-variable state already tracks homes.
    compileBody(rest, false);
}

void
ClauseCompiler::compileQuery(const std::vector<TermRef> &goals,
                             std::vector<TermRef> &var_order)
{
    NormClause clause;
    clause.head = Term::makeAtom(internAtom("$query"));
    clause.goals = goals;
    analyze(clause, true);
    arity_ = 0;

    tempBase_ = 0;
    for (const auto &goal : goals) {
        if (classify(goal) == GoalClass::Call)
            tempBase_ = std::max(tempBase_, goal->arity());
    }
    nextTemp_ = tempBase_;
    freeTemps_.clear();

    var_order = varOrder_;
    compileBody(clause, true);
}

bool
ClauseCompiler::guardSafe(const TermRef &goal, GoalClass klass) const
{
    auto vars_have_homes = [&](const TermRef &t) {
        std::vector<TermRef> vs;
        collectVars(t, vs);
        for (const auto &v : vs) {
            if (!hasHome(v))
                return false;
        }
        return true;
    };

    switch (klass) {
      case GoalClass::Cut:
        return true;
      case GoalClass::Compare:
        return vars_have_homes(goal);
      case GoalClass::Is: {
        // Safe when the target is a fresh temporary and the expression
        // reads only registers: pure register computation.
        const TermRef &target = goal->arg(0);
        if (!target->isVar())
            return false;
        auto it = vars_.find(target.get());
        if (it == vars_.end())
            return false;
        const VarInfo &vi = it->second;
        bool fresh = vi.argHome < 0 && vi.x < 0 && !vi.yValid && !vi.perm;
        return fresh && vars_have_homes(goal->arg(1));
      }
      default:
        return false;
    }
}

void
ClauseCompiler::compileBody(const NormClause &clause, bool query_mode)
{
    const std::vector<TermRef> &goals = clause.goals;

    // Which goals are calls, and does the body end with one?
    int call_count = 0;
    int last_call_index = -1;
    for (size_t i = 0; i < goals.size(); ++i) {
        if (classify(goals[i]) == GoalClass::Call) {
            ++call_count;
            last_call_index = static_cast<int>(i);
        }
    }
    bool ends_with_call = !goals.empty() &&
                          last_call_index ==
                              static_cast<int>(goals.size()) - 1;
    bool lco = ends_with_call && !query_mode;

    bool needs_env =
        query_mode || permCount_ > 0 || cutLevelY_ >= 0 ||
        (call_count > 0 && !(call_count == 1 && lco));

    if (needs_env) {
        // permCount_ already includes the cut-level slot if present.
        asm_.emit(Instr::makeRegs(Opcode::Allocate,
                                  static_cast<Reg>(permCount_)));
        // Move permanent variables captured in the head into their Y
        // slots.
        for (const auto &var : varOrder_) {
            VarInfo &vi = vars_[var.get()];
            if (vi.perm && !vi.yValid && (vi.argHome >= 0 || vi.x >= 0)) {
                asm_.emit(Instr::makeRegs(Opcode::GetVariableY,
                                          static_cast<Reg>(vi.y),
                                          homeReg(var)));
                vi.yValid = true;
                vi.argHome = -1;
                vi.x = -1;
            }
        }
        if (cutLevelY_ >= 0) {
            asm_.emit(Instr::makeRegs(Opcode::GetLevel,
                                      static_cast<Reg>(cutLevelY_)));
        }
    }

    bool call_seen = false;
    bool ended_with_execute = false;

    for (size_t i = 0; i < goals.size(); ++i) {
        const TermRef &goal = goals[i];
        GoalClass klass = classify(goal);
        bool is_last = lco && static_cast<int>(i) == last_call_index;

        switch (klass) {
          case GoalClass::True:
            asm_.emit(Instr::make(Opcode::Noop));
            markLast();
            break;
          case GoalClass::Fail:
            asm_.emit(Instr::make(Opcode::FailOp));
            markLast();
            break;
          case GoalClass::Cut:
            if (call_seen) {
                if (cutLevelY_ < 0)
                    panic("deep cut without saved level");
                asm_.emit(Instr::makeRegs(Opcode::CutY,
                                          static_cast<Reg>(cutLevelY_)));
            } else {
                asm_.emit(Instr::make(Opcode::Cut));
            }
            break;
          case GoalClass::Unify:
            compileUnifyGoal(goal);
            break;
          case GoalClass::Is:
            compileIsGoal(goal);
            break;
          case GoalClass::Compare:
            compileCompareGoal(goal);
            break;
          case GoalClass::Call: {
            bool deallocate_before = is_last && needs_env;
            putGoalArgs(goal, is_last);
            if (deallocate_before)
                asm_.emit(Instr::make(Opcode::Deallocate));
            Functor f = goal->functor();
            Instr instr = Instr::makeValue(is_last ? Opcode::Execute
                                                   : Opcode::Call,
                                           0, static_cast<Reg>(f.arity));
            asm_.emitCall(instr.withMark(), f);
            if (is_last) {
                ended_with_execute = true;
            } else {
                call_seen = true;
                // Temporaries do not survive a call; the temp pool is
                // reusable in the next chunk.
                for (const auto &var : varOrder_) {
                    VarInfo &vi = vars_[var.get()];
                    vi.argHome = -1;
                    vi.x = -1;
                }
                nextTemp_ = tempBase_;
                freeTemps_.clear();
            }
            break;
          }
        }
    }

    if (ended_with_execute)
        return;

    if (query_mode) {
        asm_.emit(Instr::makeValue(
            Opcode::Escape,
            static_cast<uint32_t>(BuiltinId::CollectSolution), 0));
        asm_.emit(Instr::make(Opcode::Halt));
        return;
    }

    if (needs_env)
        asm_.emit(Instr::make(Opcode::Deallocate));
    asm_.emit(Instr::make(Opcode::Proceed));
}

// ------------------------------------------------------------- call args

void
ClauseCompiler::resolveConflicts(const TermRef &goal)
{
    uint32_t m = goal->arity();

    // Does @p var occur in goal args (k > j), or nested in arg j?
    auto occurs_in = [&](const TermRef &var, const TermRef &t,
                         bool top_level, auto &&self) -> bool {
        if (t->isVar())
            return t.get() == var.get() && !top_level;
        if (t->isStruct()) {
            for (const auto &arg : t->args()) {
                if (arg->isVar() ? arg.get() == var.get()
                                 : self(var, arg, false, self)) {
                    return true;
                }
            }
        }
        return false;
    };

    for (uint32_t j = 0; j < m; ++j) {
        for (const auto &var : varOrder_) {
            VarInfo &vi = vars_[var.get()];
            if (vi.argHome != static_cast<int>(j))
                continue;
            bool conflict = false;
            // Nested in arg j?
            if (occurs_in(var, goal->arg(j), true, occurs_in))
                conflict = true;
            // Anywhere in later args?
            for (uint32_t k = j + 1; k < m && !conflict; ++k) {
                const TermRef &a = goal->arg(k);
                if (a->isVar() ? a.get() == var.get()
                               : occurs_in(var, a, false, occurs_in)) {
                    conflict = true;
                }
            }
            if (conflict) {
                Reg t = newTemp();
                emitMove(static_cast<Reg>(j), t);
                vi.argHome = -1;
                vi.x = t;
            }
        }
    }
}

void
ClauseCompiler::putGoalArgs(const TermRef &goal, bool is_last_call)
{
    if (goal->isAtom())
        return;
    resolveConflicts(goal);
    int goal_index = -1;
    // Last-occurrence bookkeeping uses lastGoal recorded in analysis;
    // we recover the index by checking identity below via lastGoal of
    // each variable (put args only need "is this the final goal that
    // mentions the variable", handled in putArg via is_last_call).
    for (uint32_t j = 0; j < goal->arity(); ++j)
        putArg(goal->arg(j), static_cast<Reg>(j), is_last_call, goal_index);
}

void
ClauseCompiler::putArg(const TermRef &t, Reg areg, bool is_last_call,
                       int goal_index)
{
    (void)goal_index;
    switch (t->kind()) {
      case TermKind::Var: {
        VarInfo &vi = info(t);
        bool fresh = vi.argHome < 0 && vi.x < 0 && !vi.yValid;
        if (fresh) {
            if (vi.perm) {
                asm_.emit(Instr::makeRegs(Opcode::PutVariableY,
                                          static_cast<Reg>(vi.y), areg));
                vi.yValid = true;
                vi.unsafe = true;
            } else {
                Reg x = newTemp();
                asm_.emit(Instr::makeRegs(Opcode::PutVariableX, x, areg));
                vi.x = x;
                vi.heapSafe = true;
            }
            return;
        }
        if (vi.perm && vi.yValid) {
            if (is_last_call && vi.unsafe) {
                asm_.emit(Instr::makeRegs(Opcode::PutUnsafeValue,
                                          static_cast<Reg>(vi.y), areg));
                vi.unsafe = false;
                vi.heapSafe = true;
            } else {
                asm_.emit(Instr::makeRegs(Opcode::PutValueY,
                                          static_cast<Reg>(vi.y), areg));
            }
            return;
        }
        Reg home = homeReg(t);
        if (home != areg)
            asm_.emit(Instr::makeRegs(Opcode::PutValueX, home, areg));
        return;
      }
      case TermKind::Atom:
        if (t->isNil()) {
            asm_.emit(Instr::makeRegs(Opcode::PutNil, 0, areg));
        } else {
            asm_.emit(Instr::makeConstant(Opcode::PutConstant,
                                          constantWord(t), 0, areg));
        }
        return;
      case TermKind::Int:
      case TermKind::Float:
        asm_.emit(Instr::makeConstant(Opcode::PutConstant, constantWord(t),
                                      0, areg));
        return;
      case TermKind::Struct:
        buildCompound(t, areg);
        return;
    }
}

void
ClauseCompiler::buildCompound(const TermRef &t, Reg target)
{
    // Lists whose elements are all atomic or variables compile to a
    // unify_list chain: two instructions per statically-known cell
    // (§4.1), with no holder temporaries.
    if (t->isCons()) {
        bool chainable = true;
        {
            TermRef node = t;
            while (node->isCons()) {
                if (isCompound(node->arg(0))) {
                    chainable = false;
                    break;
                }
                node = node->arg(1);
            }
            if (chainable && isCompound(node))
                chainable = false;
        }
        if (chainable) {
            asm_.emit(Instr::makeRegs(Opcode::PutList, 0, target));
            TermRef head = t->arg(0);
            TermRef tail = t->arg(1);
            while (true) {
                emitUnifyChild(head);
                if (tail->isCons()) {
                    asm_.emit(Instr::makeRegs(Opcode::UnifyList, 0));
                    head = tail->arg(0);
                    tail = tail->arg(1);
                    continue;
                }
                if (tail->isNil())
                    asm_.emit(Instr::makeRegs(Opcode::UnifyNil, 0));
                else
                    emitUnifyChild(tail);
                return;
            }
        }
    }

    // Long list chains are built tail-first with O(1) temporaries
    // (naive recursion would need one holder per element).
    if (t->isCons()) {
        std::vector<TermRef> items;
        TermRef node = t;
        while (node->isCons()) {
            items.push_back(node->arg(0));
            node = node->arg(1);
        }
        const TermRef tail = node;

        // Register holding the list built so far (-1: tail is nil or
        // an atomic/variable handled inline per cell).
        int prev = -1;
        bool tail_is_nil = tail->isNil();
        if (!tail_is_nil && !items.empty()) {
            if (!(tail->isVar() || tail->isAtomic()))
                prev = termToReg(tail);
        }

        for (size_t i = items.size(); i-- > 0;) {
            const TermRef &item = items[i];
            int item_reg = -1;
            if (isCompound(item)) {
                Reg r = newTemp();
                buildCompound(item, r);
                item_reg = r;
            }
            Reg cur = i == 0 ? target : newTemp();
            asm_.emit(Instr::makeRegs(Opcode::PutList, 0, cur));
            if (item_reg >= 0) {
                asm_.emit(Instr::makeRegs(Opcode::UnifyValueX,
                                          static_cast<Reg>(item_reg)));
                releaseTemp(static_cast<Reg>(item_reg));
            } else {
                emitUnifyChild(item);
            }
            // The cell's tail.
            if (prev >= 0) {
                asm_.emit(Instr::makeRegs(Opcode::UnifyValueX,
                                          static_cast<Reg>(prev)));
                releaseTemp(static_cast<Reg>(prev));
            } else if (i + 1 < items.size()) {
                panic("list chain lost its link register");
            } else if (tail_is_nil) {
                asm_.emit(Instr::makeRegs(Opcode::UnifyNil, 0));
            } else {
                emitUnifyChild(tail);
            }
            prev = cur;
        }
        return;
    }

    // Build nested compounds bottom-up into temporaries first.
    std::vector<int> child_regs(t->arity(), -1);
    for (uint32_t i = 0; i < t->arity(); ++i) {
        if (isCompound(t->arg(i))) {
            Reg r = newTemp();
            buildCompound(t->arg(i), r);
            child_regs[i] = r;
        }
    }

    if (t->isCons()) {
        asm_.emit(Instr::makeRegs(Opcode::PutList, 0, target));
    } else {
        Word f = Word::makeFunctor(t->functorName(), t->arity());
        asm_.emit(Instr::makeConstant(Opcode::PutStructure, f, 0, target));
    }

    size_t i = 0;
    while (i < t->arity()) {
        if (child_regs[i] >= 0) {
            asm_.emit(Instr::makeRegs(Opcode::UnifyValueX,
                                      static_cast<Reg>(child_regs[i])));
            releaseTemp(static_cast<Reg>(child_regs[i]));
            ++i;
            continue;
        }
        const TermRef &child = t->arg(i);
        if (child->isVar() && info(child).occurrences == 1 &&
            !info(child).perm) {
            unsigned count = 0;
            while (i < t->arity() && child_regs[i] < 0 &&
                   t->arg(i)->isVar() &&
                   info(t->arg(i)).occurrences == 1 &&
                   !info(t->arg(i)).perm) {
                ++count;
                ++i;
            }
            asm_.emit(Instr::makeRegs(Opcode::UnifyVoid,
                                      static_cast<Reg>(count)));
            continue;
        }
        emitUnifyChild(child);
        ++i;
    }
}

Reg
ClauseCompiler::termToReg(const TermRef &t)
{
    switch (t->kind()) {
      case TermKind::Var: {
        VarInfo &vi = info(t);
        if (vi.argHome >= 0 || vi.x >= 0)
            return homeReg(t);
        if (vi.yValid) {
            // Load Y into a temp via put_value_y (target is a plain
            // register).
            Reg x = newTemp();
            asm_.emit(Instr::makeRegs(Opcode::PutValueY,
                                      static_cast<Reg>(vi.y), x));
            vi.x = x;
            return x;
        }
        // Fresh variable.
        if (vi.perm) {
            Reg x = newTemp();
            asm_.emit(Instr::makeRegs(Opcode::PutVariableY,
                                      static_cast<Reg>(vi.y), x));
            vi.yValid = true;
            vi.unsafe = true;
            vi.x = x;
            return x;
        }
        Reg x = newTemp();
        asm_.emit(Instr::makeRegs(Opcode::PutVariableX, x, x));
        vi.x = x;
        vi.heapSafe = true;
        return x;
      }
      case TermKind::Atom:
      case TermKind::Int:
      case TermKind::Float: {
        Reg x = newTemp();
        asm_.emit(
            Instr::makeConstant(Opcode::LoadImm, constantWord(t), x));
        return x;
      }
      case TermKind::Struct: {
        Reg x = newTemp();
        buildCompound(t, x);
        return x;
      }
    }
    panic("termToReg: unreachable");
}

// ----------------------------------------------------------- inline goals

void
ClauseCompiler::compileUnifyGoal(const TermRef &goal)
{
    const TermRef &lhs = goal->arg(0);
    const TermRef &rhs = goal->arg(1);

    // X = <term> with X fresh: just build the term into X's home.
    auto fresh_var = [&](const TermRef &t) {
        if (!t->isVar())
            return false;
        VarInfo &vi = info(t);
        return vi.argHome < 0 && vi.x < 0 && !vi.yValid && !vi.perm;
    };

    if (fresh_var(lhs)) {
        Reg r = termToReg(rhs);
        VarInfo &vi = info(lhs);
        vi.x = r;
        asm_.emit(Instr::make(Opcode::Noop));
        markLast();
        return;
    }
    if (fresh_var(rhs)) {
        Reg r = termToReg(lhs);
        VarInfo &vi = info(rhs);
        vi.x = r;
        asm_.emit(Instr::make(Opcode::Noop));
        markLast();
        return;
    }

    Reg ra = termToReg(lhs);
    Reg rb = termToReg(rhs);
    asm_.emit(Instr::makeRegs(Opcode::GetValueX, ra, rb));
    markLast();
}

Reg
ClauseCompiler::evalArith(const TermRef &expr)
{
    if (expr->isAtomic()) {
        // Numbers evaluate to themselves; atoms are loaded as-is and
        // make the consuming ALU operation fail at run time (an atom
        // is not a number).
        Reg x = newTemp();
        asm_.emit(
            Instr::makeConstant(Opcode::LoadImm, constantWord(expr), x));
        return x;
    }
    if (expr->isVar())
        return termToReg(expr);

    if (isArithOp(expr, "-", 1)) {
        Reg a = evalArith(expr->arg(0));
        Reg d = newTemp();
        asm_.emit(Instr::makeRegs(Opcode::NativeNeg, a, 0, d));
        return d;
    }
    if (isArithOp(expr, "+", 1))
        return evalArith(expr->arg(0));

    struct BinOp
    {
        const char *name;
        Opcode op;
    };
    static const BinOp ops[] = {
        {"+", Opcode::NativeAdd},   {"-", Opcode::NativeSub},
        {"*", Opcode::NativeMul},   {"//", Opcode::NativeDiv},
        {"/", Opcode::NativeDiv},   {"mod", Opcode::NativeMod},
    };
    for (const auto &bin : ops) {
        if (isArithOp(expr, bin.name, 2)) {
            Reg a = evalArith(expr->arg(0));
            Reg b = evalArith(expr->arg(1));
            Reg d = newTemp();
            asm_.emit(Instr::makeRegs(bin.op, a, b, d));
            return d;
        }
    }
    // An expression the native mode cannot evaluate (unknown functor):
    // the goal fails when reached, like any other type error.
    warn("arithmetic expression not supported in integer mode: ",
         writeTerm(expr), " (compiled as failure)");
    asm_.emit(Instr::make(Opcode::FailOp));
    Reg x = newTemp();
    asm_.emit(Instr::makeConstant(Opcode::LoadImm, Word::makeInt(0), x));
    return x;
}

void
ClauseCompiler::compileIsGoal(const TermRef &goal)
{
    const TermRef &target = goal->arg(0);
    size_t before = asm_.wordCount();
    Reg r = evalArith(goal->arg(1));
    if (asm_.wordCount() == before) {
        // "X is Y": the expression is already in a register; emit a
        // move so the goal exists as a countable instruction.
        Reg x = newTemp();
        emitMove(r, x);
        r = x;
    }
    markLast(); // the inference is counted on the final arith op

    if (target->isVar()) {
        VarInfo &vi = info(target);
        bool fresh = vi.argHome < 0 && vi.x < 0 && !vi.yValid;
        if (fresh && !vi.perm) {
            vi.x = r;
            return;
        }
        if (fresh && vi.perm) {
            asm_.emit(Instr::makeRegs(Opcode::GetVariableY,
                                      static_cast<Reg>(vi.y), r));
            vi.yValid = true;
            return;
        }
        if (vi.perm && vi.yValid) {
            asm_.emit(Instr::makeRegs(Opcode::GetValueY,
                                      static_cast<Reg>(vi.y), r));
            return;
        }
        asm_.emit(Instr::makeRegs(Opcode::GetValueX, homeReg(target), r));
        return;
    }
    // Non-var target: unify the result with the constant/compound.
    Reg rt = termToReg(target);
    asm_.emit(Instr::makeRegs(Opcode::GetValueX, rt, r));
}

void
ClauseCompiler::compileCompareGoal(const TermRef &goal)
{
    static const std::pair<const char *, Opcode> cmps[] = {
        {"<", Opcode::CmpLt},   {">", Opcode::CmpGt},
        {"=<", Opcode::CmpLe},  {">=", Opcode::CmpGe},
        {"=:=", Opcode::CmpEq}, {"=\\=", Opcode::CmpNe},
    };
    Reg a = evalArith(goal->arg(0));
    Reg b = evalArith(goal->arg(1));
    for (const auto &[name, op] : cmps) {
        if (goal->functorName() == internAtom(name)) {
            asm_.emit(Instr::makeRegs(op, a, b));
            markLast();
            return;
        }
    }
    panic("compileCompareGoal: not a comparison");
}

} // namespace kcm
