/**
 * @file
 * Clause code generation: one normalized clause to KCM instructions.
 *
 * The generated code respects the KCM execution model:
 *
 *  - Head unification and guard tests never modify the argument
 *    registers, so shallow backtracking (§3.1.5) can re-try the next
 *    clause without restoring them.
 *  - The neck instruction separating head+guard from the body is where
 *    a delayed choice point is materialized.
 *  - The environment is allocated after the neck; permanent variables
 *    captured during head unification are moved into their Y slots
 *    right after allocation.
 *  - Integer arithmetic compiles to native ALU instructions (the
 *    benchmark mode of §4); generic mode escapes to the host library.
 */

#ifndef KCM_COMPILER_CODEGEN_HH
#define KCM_COMPILER_CODEGEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/assembler.hh"
#include "compiler/normalize.hh"
#include "prolog/term.hh"

namespace kcm
{

struct CodegenOptions
{
    /** Compile is/2 and arithmetic comparisons to native ALU code. */
    bool integerArithmetic = true;
};

/** Per-clause facts the predicate emitter provides. */
struct ClauseContext
{
    uint32_t arity = 0;
    /** Predicate has other clauses: emit a neck instruction. */
    bool hasAlternatives = false;
};

/**
 * Compiles clause bodies into an Assembler. One instance per
 * compilation unit; per-clause state is reset in compileClause().
 */
class ClauseCompiler
{
  public:
    ClauseCompiler(Assembler &assembler, const CodegenOptions &options)
        : asm_(assembler), options_(options)
    {
    }

    /** Emit the code of @p clause at the current address. */
    void compileClause(const NormClause &clause, const ClauseContext &ctx);

    /**
     * Emit a query body: like a clause body, but every variable is
     * permanent (so bindings can be collected), last-call optimization
     * is disabled, and the code ends with the collect-solution escape
     * followed by halt. @p var_order receives the named variables in
     * Y-slot order.
     */
    void compileQuery(const std::vector<TermRef> &goals,
                      std::vector<TermRef> &var_order);

  private:
    // --- analysis ---

    struct VarInfo
    {
        int firstChunk = -1;
        int lastChunk = -1;
        int occurrences = 0;
        int lastGoal = -1; ///< index of last body goal mentioning it
        bool perm = false;
        int y = -1;
        int x = -1;       ///< temp register home (-1: none)
        int argHome = -1; ///< still lives in this argument register
        bool yValid = false;
        bool heapSafe = false; ///< known to reference the global stack
        bool unsafe = false;   ///< initialized by put_variable Y
    };

    enum class GoalClass
    {
        True,
        Fail,
        Cut,
        Unify,   ///< =/2
        Is,      ///< is/2 (inline when integerArithmetic)
        Compare, ///< </2 etc. (inline when integerArithmetic)
        Call,    ///< everything else (user predicate or escape stub)
    };

    GoalClass classify(const TermRef &goal) const;
    void analyze(const NormClause &clause, bool force_all_perm);
    void noteVars(const TermRef &t, int chunk, int goal_index);
    VarInfo &info(const TermRef &var);

    // --- register management ---

    Reg newTemp();
    /** Return a structure-holder temp to the pool for reuse. */
    void releaseTemp(Reg r);
    /** Register currently holding @p var; panics if it has none. */
    Reg homeReg(const TermRef &var);
    bool hasHome(const TermRef &var) const;

    // --- head ---

    void compileHead(const TermRef &head);
    void compileHeadArg(const TermRef &t, Reg areg);
    /** Emit unify_* instructions for subterms, breadth-first;
     *  cons levels chain through unify_list. */
    void compileUnifyArgs(const std::vector<TermRef> &args, bool is_cons);

    // --- body ---

    void compileBody(const NormClause &clause, bool query_mode);
    void compileCallGoal(const TermRef &goal, bool is_last, bool query_mode);
    void putGoalArgs(const TermRef &goal, bool is_last_call);
    void resolveConflicts(const TermRef &goal);
    void putArg(const TermRef &t, Reg areg, bool is_last_call,
                int goal_index);
    /** Build a compound term bottom-up into @p target. */
    void buildCompound(const TermRef &t, Reg target);
    void emitUnifyChild(const TermRef &child);
    /** Materialize any term into a register (for =/2 etc.). */
    Reg termToReg(const TermRef &t);

    // --- inline goals ---

    void compileUnifyGoal(const TermRef &goal);
    void compileIsGoal(const TermRef &goal);
    void compileCompareGoal(const TermRef &goal);
    Reg evalArith(const TermRef &expr);
    /** True if this goal may sit in the guard (before the neck). */
    bool guardSafe(const TermRef &goal, GoalClass klass) const;

    void emitMove(Reg from, Reg to);
    /** Mark the most recently emitted instruction as an inference. */
    void markLast();

    Assembler &asm_;
    CodegenOptions options_;

    // per-clause state
    std::map<const Term *, VarInfo> vars_;
    std::vector<TermRef> varOrder_; ///< first-occurrence order
    uint32_t arity_ = 0;
    unsigned tempBase_ = 0;
    unsigned nextTemp_ = 0;
    std::vector<Reg> freeTemps_;
    int permCount_ = 0;
    int cutLevelY_ = -1;
    int firstCallGoal_ = -1; ///< index of first Call-class body goal
    bool inHead_ = false;    ///< compiling head unification
};

} // namespace kcm

#endif // KCM_COMPILER_CODEGEN_HH
