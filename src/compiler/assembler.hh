/**
 * @file
 * Code emission with labels and link-time fixups.
 *
 * The compiler emits into an Assembler; predicate calls are recorded
 * as fixups against functors and patched once every predicate has an
 * address (static linking, as used for the paper's benchmarks).
 */

#ifndef KCM_COMPILER_ASSEMBLER_HH
#define KCM_COMPILER_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/code_image.hh"
#include "isa/instr.hh"

namespace kcm
{

/** A local label within the assembler. */
using Label = uint32_t;

class Assembler
{
  public:
    explicit Assembler(Addr base = 0x100) : base_(base) {}

    /** Current emission address. */
    Addr here() const { return base_ + static_cast<Addr>(words_.size()); }

    /** Emit one instruction; returns its address. */
    Addr emit(Instr instr);

    /** Emit a raw table word (switch tables). */
    Addr emitWord(Word word);

    /** Set the inference mark on the most recently emitted word. */
    void markLast();

    /** Create a fresh unbound label. */
    Label newLabel();

    /** Bind @p label to the current address. */
    void bind(Label label);

    /** Emit an instruction whose value field is @p label's address. */
    Addr emitWithLabel(Instr instr, Label label);

    /** Emit a CodePtr table word that will hold @p label's address. */
    Addr emitLabelWord(Label label);

    /**
     * Emit an instruction whose value field is the entry address of
     * @p callee, to be resolved at link time.
     */
    Addr emitCall(Instr instr, Functor callee);

    /** Emit a CodePtr table word resolved to @p callee at link time. */
    Addr emitCalleeWord(Functor callee);

    /** Number of instruction words emitted so far (tables excluded). */
    size_t instructionCount() const { return instructionCount_; }
    size_t wordCount() const { return words_.size(); }

    /**
     * Resolve all label fixups (predicate fixups are resolved by the
     * linker in Compiler); move the words into @p image.
     */
    void finalize(CodeImage &image);

    /** Unresolved predicate references: offset -> callee. */
    struct PredFixup
    {
        size_t index;   ///< word index within the assembler
        Functor callee;
        bool isTableWord; ///< patch a CodePtr word, not an instruction
    };

    const std::vector<PredFixup> &predFixups() const { return predFixups_; }

    Addr base() const { return base_; }

  private:
    void patchValue(size_t index, uint32_t value, bool is_table_word);

    struct LabelFixup
    {
        size_t index;
        Label label;
        bool isTableWord;
    };

    Addr base_;
    std::vector<uint64_t> words_;
    size_t instructionCount_ = 0;
    std::vector<Addr> labelAddrs_; // 0 = unbound
    std::vector<LabelFixup> labelFixups_;
    std::vector<PredFixup> predFixups_;
};

} // namespace kcm

#endif // KCM_COMPILER_ASSEMBLER_HH
