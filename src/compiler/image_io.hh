/**
 * @file
 * Code-image serialization: save a linked image to a file and load it
 * back — the paper's workflow of compiling/assembling/linking on the
 * host and downloading the result to KCM (§4: "The programs were
 * finally downloaded and run on KCM").
 *
 * The format is a self-contained text container: code words, the
 * symbol table, the atoms the code references (atom ids are
 * process-local, so they are re-interned on load and the constant
 * words referencing them are re-mapped).
 */

#ifndef KCM_COMPILER_IMAGE_IO_HH
#define KCM_COMPILER_IMAGE_IO_HH

#include <iosfwd>
#include <string>

#include "compiler/code_image.hh"

namespace kcm
{

/** Serialize @p image to @p out. */
void saveImage(const CodeImage &image, std::ostream &out);

/** Serialize to a file; fatal on I/O errors. */
void saveImageFile(const CodeImage &image, const std::string &path);

/** Load an image from @p in, re-interning atom references. */
CodeImage loadImage(std::istream &in);

/** Load from a file; fatal on I/O or format errors. */
CodeImage loadImageFile(const std::string &path);

} // namespace kcm

#endif // KCM_COMPILER_IMAGE_IO_HH
