#include "compiler/builtin_defs.hh"

#include "base/logging.hh"

namespace kcm
{

const std::vector<BuiltinDef> &
builtinTable()
{
    static const std::vector<BuiltinDef> table = {
        {"write", 1, BuiltinId::Write, 10},
        {"writeq", 1, BuiltinId::Writeq, 10},
        {"nl", 0, BuiltinId::Nl, 4},
        {"halt", 0, BuiltinId::Halt, 1},
        {"var", 1, BuiltinId::Var, 1},
        {"nonvar", 1, BuiltinId::NonVar, 1},
        {"atom", 1, BuiltinId::AtomP, 1},
        {"atomic", 1, BuiltinId::AtomicP, 1},
        {"integer", 1, BuiltinId::IntegerP, 1},
        {"float", 1, BuiltinId::FloatP, 1},
        {"number", 1, BuiltinId::NumberP, 1},
        {"compound", 1, BuiltinId::CompoundP, 1},
        {"functor", 3, BuiltinId::FunctorB, 6},
        {"arg", 3, BuiltinId::ArgB, 4},
        {"=..", 2, BuiltinId::Univ, 10},
        {"==", 2, BuiltinId::StructEq, 4},
        {"\\==", 2, BuiltinId::StructNe, 4},
        {"compare", 3, BuiltinId::CompareB, 6},
        {"@<", 2, BuiltinId::TermLt, 4},
        {"@>", 2, BuiltinId::TermGt, 4},
        {"@=<", 2, BuiltinId::TermLe, 4},
        {"@>=", 2, BuiltinId::TermGe, 4},
        {"is", 2, BuiltinId::IsGeneric, 8},
        {"<", 2, BuiltinId::CmpGenericLt, 6},
        {">", 2, BuiltinId::CmpGenericGt, 6},
        {"=<", 2, BuiltinId::CmpGenericLe, 6},
        {">=", 2, BuiltinId::CmpGenericGe, 6},
        {"=:=", 2, BuiltinId::CmpGenericEq, 6},
        {"=\\=", 2, BuiltinId::CmpGenericNe, 6},
        {"call", 1, BuiltinId::CallGoal, 4},
        {"$collect_solution", 0, BuiltinId::CollectSolution, 1},
        {"name", 2, BuiltinId::NameB, 10},
        {"atom_length", 2, BuiltinId::AtomLength, 4},
        {"tab", 1, BuiltinId::TabB, 4},
        {"write_canonical", 1, BuiltinId::WriteCanonical, 10},
        {"catch", 3, BuiltinId::CatchB, 4},
        {"throw", 1, BuiltinId::ThrowB, 4},
        {"$catch_fail", 0, BuiltinId::CatchFail, 1},
        {"asserta", 1, BuiltinId::AssertA, 10},
        {"assertz", 1, BuiltinId::AssertZ, 10},
        {"assert", 1, BuiltinId::AssertZ, 10},
        {"retract", 1, BuiltinId::Retract, 10},
        {"$dynamic_call", 0, BuiltinId::DynamicCall, 4},
        {"$dynamic_retry", 0, BuiltinId::DynamicRetry, 2},
    };
    return table;
}

std::optional<BuiltinDef>
findBuiltin(const Functor &f)
{
    for (const auto &def : builtinTable()) {
        if (internAtom(def.name) == f.name && def.arity == f.arity)
            return def;
    }
    return std::nullopt;
}

const BuiltinDef &
builtinById(BuiltinId id)
{
    for (const auto &def : builtinTable()) {
        if (def.id == id)
            return def;
    }
    panic("unknown builtin id ", static_cast<uint32_t>(id));
}

} // namespace kcm
