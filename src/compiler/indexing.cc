#include "compiler/indexing.hh"

#include <map>

#include "base/logging.hh"

namespace kcm
{

namespace
{

/** The four switch_on_term dispatch classes. */
enum class KeyClass
{
    Variable,
    Constant,
    ListKey,
    StructKey,
};

struct ClauseKey
{
    KeyClass klass = KeyClass::Variable;
    Word key; ///< constant word or functor word
};

ClauseKey
firstArgKey(const NormClause &clause)
{
    ClauseKey out;
    if (!clause.head->isStruct()) {
        out.klass = KeyClass::Variable; // arity 0: no indexing
        return out;
    }
    const TermRef &arg = clause.head->arg(0);
    switch (arg->kind()) {
      case TermKind::Var:
        out.klass = KeyClass::Variable;
        break;
      case TermKind::Atom:
        out.klass = KeyClass::Constant;
        out.key = arg->isNil() ? Word::makeNil()
                               : Word::makeAtom(arg->atom());
        break;
      case TermKind::Int:
        out.klass = KeyClass::Constant;
        out.key = Word::makeInt(static_cast<int32_t>(arg->intValue()));
        break;
      case TermKind::Float:
        out.klass = KeyClass::Constant;
        out.key = Word::makeFloat(static_cast<float>(arg->floatValue()));
        break;
      case TermKind::Struct:
        if (arg->isCons()) {
            out.klass = KeyClass::ListKey;
        } else {
            out.klass = KeyClass::StructKey;
            out.key = Word::makeFunctor(arg->functorName(), arg->arity());
        }
        break;
    }
    return out;
}

} // namespace

PredicateInfo
emitPredicate(Assembler &assembler, ClauseCompiler &codegen,
              const Functor &functor,
              const std::vector<NormClause> &clauses,
              const IndexingOptions &options, Label fail_label)
{
    PredicateInfo info;
    info.functor = functor;

    size_t instr_before = assembler.instructionCount();
    size_t words_before = assembler.wordCount();

    if (clauses.empty())
        panic("emitPredicate: no clauses");

    ClauseContext ctx;
    ctx.arity = functor.arity;
    ctx.hasAlternatives = clauses.size() > 1;

    if (clauses.size() == 1) {
        info.entry = assembler.here();
        codegen.compileClause(clauses[0], ctx);
        info.instructions = assembler.instructionCount() - instr_before;
        info.words = assembler.wordCount() - words_before;
        return info;
    }

    // Analyze first-argument keys.
    std::vector<ClauseKey> keys;
    keys.reserve(clauses.size());
    bool any_var_key = false;
    for (const auto &clause : clauses) {
        keys.push_back(firstArgKey(clause));
        if (keys.back().klass == KeyClass::Variable)
            any_var_key = true;
    }

    bool use_switch = options.enabled && functor.arity > 0;

    // Per-clause labels: Lhead[i] is the chain header (try/retry/
    // trust_me), Lbody[i] is the clause body (the indexed entry).
    std::vector<Label> body_labels(clauses.size());
    for (auto &label : body_labels)
        label = assembler.newLabel();
    Label chain_label = assembler.newLabel();

    // Bucket sets (indices in source order).
    auto bucket_of = [&](KeyClass klass) {
        std::vector<size_t> out;
        for (size_t i = 0; i < clauses.size(); ++i) {
            if (keys[i].klass == klass ||
                keys[i].klass == KeyClass::Variable) {
                out.push_back(i);
            }
        }
        return out;
    };

    std::vector<size_t> all_clauses(clauses.size());
    for (size_t i = 0; i < clauses.size(); ++i)
        all_clauses[i] = i;

    // Deferred try/retry/trust blocks: filled in after the chain.
    struct Block
    {
        Label label;
        std::vector<size_t> clauses;
    };
    std::vector<Block> blocks;

    // Resolve a bucket to a label: fail stub / single body / the full
    // chain / a dedicated block.
    auto bucket_label = [&](const std::vector<size_t> &bucket) -> Label {
        if (bucket.empty())
            return fail_label;
        if (bucket.size() == 1)
            return body_labels[bucket[0]];
        if (bucket == all_clauses)
            return chain_label;
        Label label = assembler.newLabel();
        blocks.push_back({label, bucket});
        return label;
    };

    if (use_switch) {
        // switch_on_term Lvar, Lconst, Llist, Lstruct (4 table words).
        assembler.emit(Instr::make(Opcode::SwitchOnTerm));
        assembler.emitLabelWord(chain_label);

        // Constant dispatch.
        std::map<uint64_t, std::vector<size_t>> const_buckets;
        std::vector<uint64_t> const_order;
        for (size_t i = 0; i < clauses.size(); ++i) {
            if (keys[i].klass == KeyClass::Constant) {
                if (!const_buckets.count(keys[i].key.raw()))
                    const_order.push_back(keys[i].key.raw());
                const_buckets[keys[i].key.raw()];
            }
        }
        for (uint64_t key : const_order) {
            for (size_t i = 0; i < clauses.size(); ++i) {
                if ((keys[i].klass == KeyClass::Constant &&
                     keys[i].key.raw() == key) ||
                    keys[i].klass == KeyClass::Variable) {
                    const_buckets[key].push_back(i);
                }
            }
        }

        Label const_label;
        if (const_order.empty()) {
            // No constant-keyed clause: constants see only var-keyed
            // clauses.
            const_label = bucket_label(bucket_of(KeyClass::Constant));
        } else {
            const_label = assembler.newLabel();
        }
        assembler.emitLabelWord(const_label);

        // List dispatch.
        assembler.emitLabelWord(bucket_label(bucket_of(KeyClass::ListKey)));

        // Structure dispatch.
        std::map<uint64_t, std::vector<size_t>> struct_buckets;
        std::vector<uint64_t> struct_order;
        for (size_t i = 0; i < clauses.size(); ++i) {
            if (keys[i].klass == KeyClass::StructKey) {
                if (!struct_buckets.count(keys[i].key.raw()))
                    struct_order.push_back(keys[i].key.raw());
            }
        }
        for (uint64_t key : struct_order) {
            for (size_t i = 0; i < clauses.size(); ++i) {
                if ((keys[i].klass == KeyClass::StructKey &&
                     keys[i].key.raw() == key) ||
                    keys[i].klass == KeyClass::Variable) {
                    struct_buckets[key].push_back(i);
                }
            }
        }

        Label struct_label;
        if (struct_order.empty()) {
            struct_label = bucket_label(bucket_of(KeyClass::StructKey));
        } else {
            struct_label = assembler.newLabel();
        }
        assembler.emitLabelWord(struct_label);

        // Emit the second-level switches now (before the chain so that
        // the entry block stays compact; labels make order free).
        if (!const_order.empty()) {
            assembler.bind(const_label);
            assembler.emit(Instr::makeValue(
                Opcode::SwitchOnConstant,
                static_cast<uint32_t>(const_order.size())));
            // Miss target: clauses with variable keys (or fail).
            // Encoded as the first table pair with a Ref-tagged key
            // would be ambiguous, so the miss target is the var-bucket
            // resolved at machine level: we append it as an extra pair
            // keyed by an impossible word (all ones).
            for (uint64_t key : const_order) {
                assembler.emitWord(Word(key));
                assembler.emitLabelWord(
                    bucket_label(const_buckets[key]));
            }
            // The machine uses the var bucket on a miss; store it in
            // the instruction's r-fields? Simpler: the machine falls
            // back to the switch_on_term var label on a miss is wrong
            // (it must not retry const clauses) — instead the machine
            // jumps to the address in the word following the table,
            // emitted here:
            std::vector<size_t> var_only;
            for (size_t i = 0; i < clauses.size(); ++i) {
                if (keys[i].klass == KeyClass::Variable)
                    var_only.push_back(i);
            }
            assembler.emitLabelWord(bucket_label(var_only));
        }
        if (!struct_order.empty()) {
            assembler.bind(struct_label);
            assembler.emit(Instr::makeValue(
                Opcode::SwitchOnStructure,
                static_cast<uint32_t>(struct_order.size())));
            for (uint64_t key : struct_order) {
                assembler.emitWord(Word(key));
                assembler.emitLabelWord(
                    bucket_label(struct_buckets[key]));
            }
            std::vector<size_t> var_only;
            for (size_t i = 0; i < clauses.size(); ++i) {
                if (keys[i].klass == KeyClass::Variable)
                    var_only.push_back(i);
            }
            assembler.emitLabelWord(bucket_label(var_only));
        }
        (void)any_var_key;
    }

    // The sequential chain.
    assembler.bind(chain_label);
    if (!use_switch)
        info.entry = assembler.here();
    else
        info.entry = assembler.base() + (words_before);

    for (size_t i = 0; i < clauses.size(); ++i) {
        if (i == 0) {
            Label next = assembler.newLabel();
            assembler.emitWithLabel(
                Instr::makeValue(Opcode::TryMeElse, 0,
                                 static_cast<Reg>(functor.arity)),
                next);
            assembler.bind(body_labels[i]);
            codegen.compileClause(clauses[i], ctx);
            assembler.bind(next);
        } else if (i + 1 < clauses.size()) {
            Label next = assembler.newLabel();
            assembler.emitWithLabel(
                Instr::makeValue(Opcode::RetryMeElse, 0), next);
            assembler.bind(body_labels[i]);
            codegen.compileClause(clauses[i], ctx);
            assembler.bind(next);
        } else {
            assembler.emit(Instr::make(Opcode::TrustMe));
            assembler.bind(body_labels[i]);
            codegen.compileClause(clauses[i], ctx);
        }
    }

    // Deferred try/retry/trust blocks.
    for (const auto &block : blocks) {
        assembler.bind(block.label);
        for (size_t k = 0; k < block.clauses.size(); ++k) {
            size_t ci = block.clauses[k];
            if (k == 0) {
                assembler.emitWithLabel(
                    Instr::makeValue(Opcode::Try, 0,
                                     static_cast<Reg>(functor.arity)),
                    body_labels[ci]);
            } else if (k + 1 < block.clauses.size()) {
                assembler.emitWithLabel(
                    Instr::makeValue(Opcode::Retry, 0), body_labels[ci]);
            } else {
                assembler.emitWithLabel(
                    Instr::makeValue(Opcode::Trust, 0), body_labels[ci]);
            }
        }
    }

    info.instructions = assembler.instructionCount() - instr_before;
    info.words = assembler.wordCount() - words_before;
    return info;
}

} // namespace kcm
