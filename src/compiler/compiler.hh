/**
 * @file
 * The top-level Prolog-to-KCM compiler: parses program text, runs the
 * normalizer and clause compiler over every predicate, emits runtime
 * stubs, compiles the query, and statically links the result into a
 * CodeImage ready for the loader (the paper's benchmarks were compiled
 * and statically linked on the host, §4).
 */

#ifndef KCM_COMPILER_COMPILER_HH
#define KCM_COMPILER_COMPILER_HH

#include <string>
#include <vector>

#include "compiler/code_image.hh"
#include "compiler/codegen.hh"
#include "compiler/indexing.hh"
#include "compiler/normalize.hh"
#include "prolog/operators.hh"

namespace kcm
{

struct CompilerOptions
{
    /** Compile arithmetic to native ALU instructions (the benchmark
     *  mode of §4; false = generic arithmetic through escapes). */
    bool integerArithmetic = true;
    /** Compile write/1, nl/0, tab/1 as unit clauses costing exactly
     *  the 5-cycle call/return sequence, as done for Table 2. */
    bool ioAsUnitClauses = false;
    /** Emit first-argument indexing. */
    bool indexing = true;
};

class Compiler
{
  public:
    explicit Compiler(const CompilerOptions &options = {});

    /** Parse and add program source text. */
    void addProgram(const std::string &source);

    /** Same, but the predicates are marked as runtime library (they
     *  are excluded from Table 1 program sizes). */
    void addLibrary(const std::string &source);

    /** Set the query to compile ("goal" or "?- goal."). */
    void setQuery(const std::string &source);

    /** Compile everything into a linked image. */
    CodeImage compile();

    OperatorTable &operators() { return ops_; }

  private:
    void addSource(const std::string &source, bool library);

    CompilerOptions options_;
    OperatorTable ops_;
    std::vector<ReadClause> clauses_;
    std::vector<bool> clauseIsLibrary_;
    std::string querySource_;
};

} // namespace kcm

#endif // KCM_COMPILER_COMPILER_HH
