#include "baseline/interp.hh"

#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "base/logging.hh"
#include "compiler/builtin_defs.hh"
#include "prolog/writer.hh"

namespace kcm::baseline
{

namespace
{

/** Dereference a cell through its binding chain. */
Cell *
deref(Cell *c)
{
    while (c->kind == Cell::Kind::Var && c->ref)
        c = c->ref;
    return c;
}

/** A thrown Prolog ball. The payload is an exported copy taken at
 *  throw time (ISO: throw/1 copies its argument), so it survives the
 *  trail unwinding that happens while the exception propagates. */
struct PrologThrow
{
    TermRef ball;
};

/** halt/0: abandon the search, unwinding every solver frame. */
struct PrologHalt
{
};

} // namespace

std::string
InterpSolution::toString() const
{
    std::string out;
    bool first = true;
    for (const auto &[name, term] : bindings) {
        if (!first)
            out += ", ";
        out += name + " = " + writeTerm(term);
        first = false;
    }
    if (bindings.empty())
        out = "true";
    return out;
}

struct Interpreter::Impl
{
    // --- storage ---

    std::deque<Cell> arena;
    std::vector<Cell *> trail;
    OperatorTable ops;

    struct StoredClause
    {
        TermRef head;
        TermRef body; ///< null for facts
    };
    std::map<Functor, std::vector<StoredClause>> database;

    /** Dynamic (assert/retract) predicates live here, not in
     *  `database`, sharing index structure and update semantics with
     *  the machine cores. */
    std::shared_ptr<db::ClauseStore> dynDb =
        std::make_shared<db::ClauseStore>();

    uint64_t inferences = 0;
    std::string output;

    /** Arena-byte ceiling (0 = unlimited), the interpreter's mirror
     *  of ResourceGovernor::memoryBudgetBytes: crossing it throws a
     *  catchable resource_error(memory) ball from the allocation
     *  point. Once tripped the budget is waived for the rest of the
     *  query (the arena never shrinks, so the catch/3 recovery goal
     *  must still be able to allocate — the machine analog frees
     *  memory by unwinding instead). */
    uint64_t memoryBudgetBytes = 0;
    bool memBudgetTripped = false;
    /** Monotone id per call-like region (predicate invocation,
     *  disjunction, negation); used to scope cuts. */
    uint64_t nextCallId = 1;
    /** Id of the region whose alternatives a fired cut prunes
     *  (UINT64_MAX = no cut pending). */
    uint64_t cutBarrier = UINT64_MAX;
    size_t maxSolutions = 1;
    std::vector<InterpSolution> solutions;
    std::vector<std::pair<std::string, Cell *>> queryVars;

    // --- cell building ---

    Cell *
    newCell()
    {
        if (memoryBudgetBytes && !memBudgetTripped &&
            arena.size() * sizeof(Cell) >= memoryBudgetBytes) {
            memBudgetTripped = true;
            throw PrologThrow{Term::makeStruct(
                "resource_error", {Term::makeAtom("memory")})};
        }
        arena.emplace_back();
        return &arena.back();
    }

    Cell *
    newVar()
    {
        Cell *c = newCell();
        c->kind = Cell::Kind::Var;
        return c;
    }

    /** Instantiate a source term with a per-activation variable map. */
    Cell *
    instantiate(const TermRef &t,
                std::unordered_map<const Term *, Cell *> &vars)
    {
        switch (t->kind()) {
          case TermKind::Var: {
            auto it = vars.find(t.get());
            if (it != vars.end())
                return it->second;
            Cell *v = newVar();
            vars.emplace(t.get(), v);
            return v;
          }
          case TermKind::Atom: {
            Cell *c = newCell();
            c->kind = Cell::Kind::Atom;
            c->functor = t->atom();
            return c;
          }
          case TermKind::Int: {
            Cell *c = newCell();
            c->kind = Cell::Kind::Int;
            c->intValue = t->intValue();
            return c;
          }
          case TermKind::Float: {
            Cell *c = newCell();
            c->kind = Cell::Kind::Float;
            c->floatValue = t->floatValue();
            return c;
          }
          case TermKind::Struct: {
            Cell *c = newCell();
            c->kind = Cell::Kind::Struct;
            c->functor = t->functorName();
            for (const auto &arg : t->args())
                c->args.push_back(instantiate(arg, vars));
            return c;
          }
        }
        panic("instantiate: unreachable");
    }

    /** Convert a runtime cell back into a source term. */
    TermRef
    exportCell(Cell *c, std::unordered_map<Cell *, TermRef> &vars,
               int depth = 0)
    {
        if (depth > 4000)
            return Term::makeAtom("...");
        c = deref(c);
        switch (c->kind) {
          case Cell::Kind::Var: {
            auto it = vars.find(c);
            if (it != vars.end())
                return it->second;
            // Distinct cells get distinct printed names: the clause
            // store canonicalizes variables by name on insert, so an
            // asserted p(X, Y) must not export as p(_B, _B).
            TermRef v = Term::makeVar("_B" + std::to_string(vars.size()));
            vars.emplace(c, v);
            return v;
          }
          case Cell::Kind::Atom:
            return Term::makeAtom(c->functor);
          case Cell::Kind::Int:
            return Term::makeInt(c->intValue);
          case Cell::Kind::Float:
            return Term::makeFloat(c->floatValue);
          case Cell::Kind::Struct: {
            std::vector<TermRef> args;
            for (Cell *arg : c->args)
                args.push_back(exportCell(arg, vars, depth + 1));
            return Term::makeStruct(c->functor, std::move(args));
          }
        }
        panic("exportCell: unreachable");
    }

    // --- unification ---

    void
    bindVar(Cell *var, Cell *value)
    {
        var->ref = value;
        trail.push_back(var);
    }

    size_t trailMark() const { return trail.size(); }

    void
    undoTrail(size_t mark)
    {
        while (trail.size() > mark) {
            trail.back()->ref = nullptr;
            trail.pop_back();
        }
    }

    bool
    unify(Cell *a, Cell *b)
    {
        a = deref(a);
        b = deref(b);
        if (a == b)
            return true;
        if (a->kind == Cell::Kind::Var) {
            bindVar(a, b);
            return true;
        }
        if (b->kind == Cell::Kind::Var) {
            bindVar(b, a);
            return true;
        }
        if (a->kind != b->kind)
            return false;
        switch (a->kind) {
          case Cell::Kind::Atom:
            return a->functor == b->functor;
          case Cell::Kind::Int:
            return a->intValue == b->intValue;
          case Cell::Kind::Float:
            return a->floatValue == b->floatValue;
          case Cell::Kind::Struct:
            if (a->functor != b->functor ||
                a->args.size() != b->args.size()) {
                return false;
            }
            for (size_t i = 0; i < a->args.size(); ++i) {
                if (!unify(a->args[i], b->args[i]))
                    return false;
            }
            return true;
          default:
            return false;
        }
    }

    // --- arithmetic ---

    bool
    evalArith(Cell *c, double &out, bool &is_float)
    {
        c = deref(c);
        switch (c->kind) {
          case Cell::Kind::Int:
            out = double(c->intValue);
            return true;
          case Cell::Kind::Float:
            out = c->floatValue;
            is_float = true;
            return true;
          case Cell::Kind::Struct:
            break;
          default:
            return false;
        }
        const std::string &name = atomText(c->functor);
        if (c->args.size() == 1) {
            double a;
            if (!evalArith(c->args[0], a, is_float))
                return false;
            if (name == "-") { out = -a; return true; }
            if (name == "+") { out = a; return true; }
            if (name == "abs") { out = std::fabs(a); return true; }
            return false;
        }
        if (c->args.size() == 2) {
            double a;
            double b;
            if (!evalArith(c->args[0], a, is_float) ||
                !evalArith(c->args[1], b, is_float)) {
                return false;
            }
            if (name == "+") { out = a + b; return true; }
            if (name == "-") { out = a - b; return true; }
            if (name == "*") { out = a * b; return true; }
            if (name == "//" || (name == "/" && !is_float)) {
                if (int64_t(b) == 0)
                    return false;
                out = double(int64_t(a) / int64_t(b));
                return true;
            }
            if (name == "/") {
                if (b == 0)
                    return false;
                out = a / b;
                return true;
            }
            if (name == "mod") {
                if (int64_t(b) == 0)
                    return false;
                out = double(int64_t(a) % int64_t(b));
                return true;
            }
            if (name == "min") { out = std::min(a, b); return true; }
            if (name == "max") { out = std::max(a, b); return true; }
            return false;
        }
        return false;
    }

    Cell *
    arithCell(double v, bool is_float)
    {
        Cell *c = newCell();
        if (is_float) {
            c->kind = Cell::Kind::Float;
            c->floatValue = v;
        } else {
            c->kind = Cell::Kind::Int;
            c->intValue = int64_t(v);
        }
        return c;
    }

    // --- structural comparison ---

    int
    compareCells(Cell *a, Cell *b)
    {
        a = deref(a);
        b = deref(b);
        auto klass = [](Cell *c) {
            switch (c->kind) {
              case Cell::Kind::Var: return 0;
              case Cell::Kind::Int:
              case Cell::Kind::Float: return 1;
              case Cell::Kind::Atom: return 2;
              default: return 3;
            }
        };
        int ka = klass(a);
        int kb = klass(b);
        if (ka != kb)
            return ka < kb ? -1 : 1;
        switch (ka) {
          case 0:
            return a == b ? 0 : (a < b ? -1 : 1);
          case 1: {
            double va = a->kind == Cell::Kind::Int ? double(a->intValue)
                                                   : a->floatValue;
            double vb = b->kind == Cell::Kind::Int ? double(b->intValue)
                                                   : b->floatValue;
            return va == vb ? 0 : (va < vb ? -1 : 1);
          }
          case 2: {
            int c = atomText(a->functor).compare(atomText(b->functor));
            return c < 0 ? -1 : c > 0 ? 1 : 0;
          }
          default: {
            if (a->args.size() != b->args.size())
                return a->args.size() < b->args.size() ? -1 : 1;
            int c = atomText(a->functor).compare(atomText(b->functor));
            if (c)
                return c < 0 ? -1 : 1;
            for (size_t i = 0; i < a->args.size(); ++i) {
                int r = compareCells(a->args[i], b->args[i]);
                if (r)
                    return r;
            }
            return 0;
          }
        }
    }

    // --- dynamic clause database (src/db) ---

    /** First-argument index key a dereferenced cell selects,
     *  mirroring the machine's argKeyOf word for word (integers
     *  narrowed to the machine's 32-bit int word, floats keyed on the
     *  32-bit float pattern) so both engines touch the same index
     *  nodes. */
    db::ArgKey
    argKeyOfCell(Cell *c)
    {
        db::ArgKey k;
        switch (c->kind) {
          case Cell::Kind::Var:
            break;
          case Cell::Kind::Int:
            k.kind = db::ArgKey::Kind::Int;
            k.a = static_cast<uint64_t>(static_cast<int64_t>(
                static_cast<int32_t>(c->intValue)));
            break;
          case Cell::Kind::Float: {
            float f = static_cast<float>(c->floatValue);
            uint32_t bits;
            std::memcpy(&bits, &f, sizeof bits);
            k.kind = db::ArgKey::Kind::Float;
            k.a = bits;
            break;
          }
          case Cell::Kind::Atom:
            k.kind = db::ArgKey::Kind::Atom;
            k.a = c->functor;
            break;
          case Cell::Kind::Struct:
            k.kind = db::ArgKey::Kind::Functor;
            k.a = c->functor;
            k.b = c->args.size();
            break;
        }
        return k;
    }

    /** True when assert/retract on @p f must raise
     *  permission_error(modify, static_procedure, _): consulted
     *  static predicates, escape builtins, and the control constructs
     *  this solver realizes inline (the compiler realizes the same
     *  set as a static support library). */
    bool
    isStaticProcedure(const Functor &f) const
    {
        if (database.count(f))
            return true;
        if (findBuiltin(f).has_value())
            return true;
        const std::string &name = atomText(f.name);
        if (f.arity == 2 && (name == "," || name == ";" || name == "->"))
            return true;
        if (f.arity == 1 && name == "\\+")
            return true;
        return false;
    }

    [[noreturn]] void
    throwStaticProcedure(const Functor &f)
    {
        throw PrologThrow{Term::makeStruct(
            "permission_error",
            {Term::makeAtom("modify"), Term::makeAtom("static_procedure"),
             Term::makeStruct("/", {Term::makeAtom(f.name),
                                    Term::makeInt(f.arity)})})};
    }

    /** asserta/1, assertz/1, assert/1: validate like the machine's
     *  execAssert (identical error balls), then insert. */
    void
    assertCell(Cell *goal_arg, bool at_front)
    {
        Cell *c = deref(goal_arg);
        if (c->kind == Cell::Kind::Var)
            throw PrologThrow{Term::makeAtom("instantiation_error")};
        std::unordered_map<Cell *, TermRef> vars;
        TermRef term = exportCell(c, vars);
        TermRef head = term;
        TermRef body = nullptr;
        if (term->isStruct() && term->arity() == 2 &&
            atomText(term->functorName()) == ":-") {
            head = term->arg(0);
            body = term->arg(1);
        }
        if (head->isVar())
            throw PrologThrow{Term::makeAtom("instantiation_error")};
        if (!head->isAtom() && !head->isStruct()) {
            throw PrologThrow{Term::makeStruct(
                "type_error", {Term::makeAtom("callable"), head})};
        }
        Functor f = head->functor();
        if (f.arity > db::maxDynamicArity) {
            throw PrologThrow{Term::makeStruct(
                "representation_error", {Term::makeAtom("max_arity")})};
        }
        if (isStaticProcedure(f))
            throwStaticProcedure(f);
        dynDb->assertClause(f, head, body, at_front);
    }

    /**
     * retract/1: semidet, like the machine — the first clause whose
     * head and body unify with the pattern is erased and the bindings
     * stand; no choice point is left behind (a deliberate deviation
     * from ISO re-satisfaction, shared by both engines; DESIGN.md).
     */
    bool
    retractCell(Cell *goal_arg)
    {
        Cell *c = deref(goal_arg);
        if (c->kind == Cell::Kind::Var)
            throw PrologThrow{Term::makeAtom("instantiation_error")};
        Cell *head = c;
        Cell *body = trueCell(); // bodyless pattern matches facts and
                                 // true-bodied clauses
        if (c->kind == Cell::Kind::Struct && c->args.size() == 2 &&
            atomText(c->functor) == ":-") {
            head = deref(c->args[0]);
            body = c->args[1];
        }
        if (head->kind == Cell::Kind::Var)
            throw PrologThrow{Term::makeAtom("instantiation_error")};
        if (head->kind != Cell::Kind::Atom &&
            head->kind != Cell::Kind::Struct) {
            std::unordered_map<Cell *, TermRef> vars;
            throw PrologThrow{Term::makeStruct(
                "type_error",
                {Term::makeAtom("callable"), exportCell(head, vars)})};
        }
        Functor f{head->functor, uint32_t(head->args.size())};
        if (isStaticProcedure(f))
            throwStaticProcedure(f);
        if (!dynDb->isKnown(f))
            return false;
        uint64_t gen = dynDb->generation();
        db::ArgKey key =
            f.arity ? argKeyOfCell(deref(head->args[0])) : db::ArgKey{};
        int64_t cursor = 0;
        bool have_cursor = false;
        for (;;) {
            db::ClauseStore::LookupResult res =
                have_cursor ? dynDb->next(f, key, gen, cursor)
                            : dynDb->first(f, key, gen);
            if (!res.clause)
                return false;
            cursor = res.clause->seq;
            have_cursor = true;
            size_t mark = trailMark();
            std::unordered_map<const Term *, Cell *> vars;
            Cell *cand_head = instantiate(res.clause->head, vars);
            Cell *cand_body = res.clause->body
                                  ? instantiate(res.clause->body, vars)
                                  : trueCell();
            bool ok = unify(head, cand_head) && unify(body, cand_body);
            if (ok) {
                dynDb->eraseClause(f, res.clause->seq);
                return true;
            }
            undoTrail(mark);
        }
    }

    Cell *
    trueCell()
    {
        Cell *c = newCell();
        c->kind = Cell::Kind::Atom;
        c->functor = internAtom("true");
        return c;
    }

    // --- the solver ---

    /** Continuation: returns true to stop the whole search. */
    using Cont = std::function<bool()>;

    /**
     * After a region (call id @p my_id) finished exploring one
     * alternative, decide whether a fired cut prunes the remaining
     * ones. Returns true if the loop must stop.
     */
    bool
    cutPrunes(uint64_t my_id)
    {
        if (cutBarrier == UINT64_MAX)
            return false;
        if (cutBarrier == my_id) {
            cutBarrier = UINT64_MAX; // consumed at its own region
            return true;
        }
        return cutBarrier < my_id; // keep propagating outwards
    }

    /**
     * Solve @p goal then continue with @p k.
     * @param cut_id the call id of the enclosing clause's predicate
     *        invocation — the region a '!' in this goal prunes.
     * @return true to stop the whole search (enough solutions).
     */
    bool
    solve(Cell *goal, uint64_t cut_id, const Cont &k)
    {
        goal = deref(goal);

        // ISO call errors, mirroring the machine's metaCall.
        if (goal->kind == Cell::Kind::Var)
            throw PrologThrow{Term::makeAtom("instantiation_error")};
        if (goal->kind != Cell::Kind::Atom &&
            goal->kind != Cell::Kind::Struct) {
            std::unordered_map<Cell *, TermRef> vars;
            throw PrologThrow{Term::makeStruct(
                "type_error",
                {Term::makeAtom("callable"), exportCell(goal, vars)})};
        }

        const std::string &name = atomText(goal->functor);
        size_t arity = goal->args.size();
        auto arg = [&](size_t i) { return goal->args[i]; };

        ++inferences;

        // Control constructs.
        if (name == "true" && arity == 0)
            return k();
        if ((name == "fail" || name == "false") && arity == 0)
            return false;
        if (name == "!" && arity == 0) {
            if (k())
                return true;
            // Backtracking into the cut prunes everything up to the
            // enclosing clause's invocation.
            cutBarrier = std::min(cutBarrier, cut_id);
            return false;
        }
        if (name == "," && arity == 2) {
            --inferences; // conjunctions are not goals
            return solve(arg(0), cut_id, [&]() {
                return solve(arg(1), cut_id, k);
            });
        }
        if (name == ";" && arity == 2) {
            --inferences;
            Cell *lhs = deref(arg(0));
            uint64_t my_id = nextCallId++;
            if (lhs->kind == Cell::Kind::Struct &&
                atomText(lhs->functor) == "->" && lhs->args.size() == 2) {
                // If-then-else: commit to the first solution of the
                // condition.
                size_t mark = trailMark();
                bool cond_ok = false;
                solve(lhs->args[0], my_id, [&]() {
                    cond_ok = true;
                    return true; // keep bindings, stop the search
                });
                if (cond_ok)
                    return solve(lhs->args[1], my_id, k);
                undoTrail(mark);
                return solve(arg(1), my_id, k);
            }
            // Note: like the KCM compiler (which realizes control
            // constructs as auxiliary predicates), a cut inside a
            // disjunction is local to the disjunction.
            size_t mark = trailMark();
            bool stop = solve(arg(0), my_id, k);
            if (stop)
                return true;
            if (cutPrunes(my_id))
                return false;
            undoTrail(mark);
            return solve(arg(1), my_id, k);
        }
        if (name == "->" && arity == 2) {
            --inferences;
            size_t mark = trailMark();
            uint64_t my_id = nextCallId++;
            bool cond_ok = false;
            solve(arg(0), my_id, [&]() {
                cond_ok = true;
                return true;
            });
            if (cond_ok)
                return solve(arg(1), my_id, k);
            undoTrail(mark);
            return false;
        }
        if (name == "\\+" && arity == 1) {
            size_t mark = trailMark();
            uint64_t my_id = nextCallId++;
            bool found = false;
            solve(arg(0), my_id, [&]() {
                found = true;
                return true;
            });
            undoTrail(mark);
            return found ? false : k();
        }
        if (name == "call" && arity == 1) {
            uint64_t my_id = nextCallId++;
            return solve(arg(0), my_id, k);
        }
        if (name == "throw" && arity == 1) {
            Cell *ball = deref(arg(0));
            if (ball->kind == Cell::Kind::Var)
                throw PrologThrow{Term::makeAtom("instantiation_error")};
            std::unordered_map<Cell *, TermRef> vars;
            throw PrologThrow{exportCell(ball, vars)};
        }
        if (name == "catch" && arity == 3) {
            size_t mark = trailMark();
            uint64_t my_id = nextCallId++;
            try {
                return solve(arg(0), my_id, k);
            } catch (const PrologThrow &thrown) {
                // Undo the Goal's bindings (the machine does this with
                // its trail-driven unwind), then offer the ball to the
                // catcher.
                undoTrail(mark);
                std::unordered_map<const Term *, Cell *> vars;
                Cell *ball = instantiate(thrown.ball, vars);
                size_t ball_mark = trailMark();
                if (!unify(ball, arg(1))) {
                    undoTrail(ball_mark);
                    throw; // no match: rethrow to the enclosing catch/3
                }
                return solve(arg(2), my_id, k);
            }
        }
        if (name == "halt" && arity == 0)
            throw PrologHalt{};

        // Builtins.
        if (name == "=" && arity == 2) {
            size_t mark = trailMark();
            if (unify(arg(0), arg(1))) {
                if (k())
                    return true;
            }
            undoTrail(mark);
            return false;
        }
        if (name == "is" && arity == 2) {
            double v;
            bool is_float = false;
            if (!evalArith(arg(1), v, is_float))
                return false;
            size_t mark = trailMark();
            if (unify(arg(0), arithCell(v, is_float)) && k())
                return true;
            undoTrail(mark);
            return false;
        }
        {
            static const std::map<std::string, int> cmps = {
                {"<", 0}, {">", 1}, {"=<", 2},
                {">=", 3}, {"=:=", 4}, {"=\\=", 5}};
            auto it = cmps.find(name);
            if (it != cmps.end() && arity == 2) {
                double a;
                double b;
                bool fa = false;
                bool fb = false;
                if (!evalArith(arg(0), a, fa) || !evalArith(arg(1), b, fb))
                    return false;
                bool ok = false;
                switch (it->second) {
                  case 0: ok = a < b; break;
                  case 1: ok = a > b; break;
                  case 2: ok = a <= b; break;
                  case 3: ok = a >= b; break;
                  case 4: ok = a == b; break;
                  case 5: ok = a != b; break;
                }
                return ok ? k() : false;
            }
        }
        if (name == "==" && arity == 2)
            return compareCells(arg(0), arg(1)) == 0 ? k() : false;
        if (name == "\\==" && arity == 2)
            return compareCells(arg(0), arg(1)) != 0 ? k() : false;
        if (name == "@<" && arity == 2)
            return compareCells(arg(0), arg(1)) < 0 ? k() : false;
        if (name == "@>" && arity == 2)
            return compareCells(arg(0), arg(1)) > 0 ? k() : false;
        if (name == "@=<" && arity == 2)
            return compareCells(arg(0), arg(1)) <= 0 ? k() : false;
        if (name == "@>=" && arity == 2)
            return compareCells(arg(0), arg(1)) >= 0 ? k() : false;
        if (name == "var" && arity == 1)
            return deref(arg(0))->kind == Cell::Kind::Var ? k() : false;
        if (name == "nonvar" && arity == 1)
            return deref(arg(0))->kind != Cell::Kind::Var ? k() : false;
        if (name == "atom" && arity == 1)
            return deref(arg(0))->kind == Cell::Kind::Atom ? k() : false;
        if (name == "integer" && arity == 1)
            return deref(arg(0))->kind == Cell::Kind::Int ? k() : false;
        if (name == "float" && arity == 1)
            return deref(arg(0))->kind == Cell::Kind::Float ? k() : false;
        if (name == "number" && arity == 1) {
            Cell *c = deref(arg(0));
            return (c->kind == Cell::Kind::Int ||
                    c->kind == Cell::Kind::Float)
                       ? k()
                       : false;
        }
        if (name == "atomic" && arity == 1) {
            Cell *c = deref(arg(0));
            return (c->kind != Cell::Kind::Var &&
                    c->kind != Cell::Kind::Struct)
                       ? k()
                       : false;
        }
        if (name == "compound" && arity == 1)
            return deref(arg(0))->kind == Cell::Kind::Struct ? k() : false;
        if ((name == "write" || name == "writeq" || name == "print") &&
            arity == 1) {
            std::unordered_map<Cell *, TermRef> vars;
            WriteOptions options;
            options.quoted = name == "writeq";
            output += writeTerm(exportCell(arg(0), vars), ops, options);
            return k();
        }
        if (name == "nl" && arity == 0) {
            output += "\n";
            return k();
        }
        if (name == "functor" && arity == 3) {
            Cell *t = deref(arg(0));
            if (t->kind != Cell::Kind::Var) {
                Cell *nm = newCell();
                Cell *ar = newCell();
                ar->kind = Cell::Kind::Int;
                if (t->kind == Cell::Kind::Struct) {
                    nm->kind = Cell::Kind::Atom;
                    nm->functor = t->functor;
                    ar->intValue = int64_t(t->args.size());
                } else {
                    *nm = *t;
                    ar->intValue = 0;
                }
                size_t mark = trailMark();
                if (unify(arg(1), nm) && unify(arg(2), ar) && k())
                    return true;
                undoTrail(mark);
                return false;
            }
            Cell *nm = deref(arg(1));
            Cell *ar = deref(arg(2));
            if (ar->kind != Cell::Kind::Int)
                return false;
            Cell *built;
            if (ar->intValue == 0) {
                built = nm;
            } else {
                if (nm->kind != Cell::Kind::Atom)
                    return false;
                built = newCell();
                built->kind = Cell::Kind::Struct;
                built->functor = nm->functor;
                for (int64_t i = 0; i < ar->intValue; ++i)
                    built->args.push_back(newVar());
            }
            size_t mark = trailMark();
            if (unify(t, built) && k())
                return true;
            undoTrail(mark);
            return false;
        }
        if ((name == "asserta" || name == "assertz" || name == "assert") &&
            arity == 1) {
            assertCell(arg(0), name == "asserta");
            return k();
        }
        if (name == "retract" && arity == 1) {
            size_t mark = trailMark();
            if (retractCell(arg(0))) {
                if (k())
                    return true;
                // Semidet: the bindings are undone on backtracking
                // but the erasure stands (a side effect).
                undoTrail(mark);
            }
            return false;
        }
        if (name == "arg" && arity == 3) {
            Cell *n = deref(arg(0));
            Cell *t = deref(arg(1));
            if (n->kind != Cell::Kind::Int ||
                t->kind != Cell::Kind::Struct) {
                return false;
            }
            if (n->intValue < 1 ||
                size_t(n->intValue) > t->args.size()) {
                return false;
            }
            size_t mark = trailMark();
            if (unify(arg(2), t->args[size_t(n->intValue) - 1]) && k())
                return true;
            undoTrail(mark);
            return false;
        }

        // User predicates.
        Functor f{goal->functor, uint32_t(arity)};
        auto it = database.find(f);
        if (it == database.end()) {
            if (dynDb->isKnown(f))
                return solveDynamic(goal, f, k);
            warn("baseline: undefined predicate ", name, "/", arity);
            return false;
        }

        uint64_t my_id = nextCallId++;
        for (const auto &clause : it->second) {
            size_t mark = trailMark();
            std::unordered_map<const Term *, Cell *> vars;
            Cell *head = instantiate(clause.head, vars);
            bool heads_match = true;
            if (goal->kind == Cell::Kind::Struct) {
                for (size_t i = 0; i < arity && heads_match; ++i)
                    heads_match = unify(arg(i), head->args[i]);
            }
            if (heads_match) {
                bool stop;
                if (clause.body) {
                    Cell *body = instantiate(clause.body, vars);
                    stop = solve(body, my_id, k);
                } else {
                    stop = k();
                }
                if (stop)
                    return true;
            }
            undoTrail(mark);
            if (cutPrunes(my_id))
                return false;
        }
        return false;
    }

    /**
     * Solve a dynamic-predicate goal against the clause store under
     * the ISO logical update view: the generation captured here fixes
     * the visible clause set for the whole iteration, so asserts and
     * retracts performed by the clause bodies (or by backtracked-into
     * siblings) do not disturb it.
     */
    bool
    solveDynamic(Cell *goal, const Functor &f, const Cont &k)
    {
        uint64_t my_id = nextCallId++;
        uint64_t gen = dynDb->generation();
        db::ArgKey key =
            f.arity ? argKeyOfCell(deref(goal->args[0])) : db::ArgKey{};
        int64_t cursor = 0;
        bool have_cursor = false;
        for (;;) {
            db::ClauseStore::LookupResult res =
                have_cursor ? dynDb->next(f, key, gen, cursor)
                            : dynDb->first(f, key, gen);
            if (!res.clause)
                return false;
            cursor = res.clause->seq;
            have_cursor = true;
            size_t mark = trailMark();
            std::unordered_map<const Term *, Cell *> vars;
            Cell *head = instantiate(res.clause->head, vars);
            bool heads_match = true;
            for (size_t i = 0; i < f.arity && heads_match; ++i)
                heads_match = unify(goal->args[i], head->args[i]);
            if (heads_match) {
                bool stop;
                if (res.clause->body) {
                    Cell *body = instantiate(res.clause->body, vars);
                    stop = solve(body, my_id, k);
                } else {
                    stop = k();
                }
                if (stop)
                    return true;
            }
            undoTrail(mark);
            if (cutPrunes(my_id))
                return false;
        }
    }
};

Interpreter::Interpreter() : impl_(std::make_unique<Impl>()) {}

Interpreter::~Interpreter() = default;

namespace
{

/** Collect F/N functors from a dynamic/1 specification: one
 *  indicator, a comma chain, or a list (mirrors the compiler's
 *  normalize pass). */
void
collectDynamicSpec(const TermRef &spec, std::vector<Functor> &out)
{
    TermRef t = spec;
    if (!t)
        return;
    if (t->isStruct() && t->arity() == 2) {
        const std::string &name = atomText(t->functorName());
        if (name == ",") {
            collectDynamicSpec(t->arg(0), out);
            collectDynamicSpec(t->arg(1), out);
            return;
        }
        if (name == ".") {
            collectDynamicSpec(t->arg(0), out);
            collectDynamicSpec(t->arg(1), out);
            return;
        }
        if (name == "/" && t->arg(0)->isAtom() && t->arg(1)->isInt()) {
            out.push_back(Functor{t->arg(0)->atom(),
                                  uint32_t(t->arg(1)->intValue())});
            return;
        }
    }
}

} // namespace

void
Interpreter::consult(const std::string &source)
{
    Parser parser(source, impl_->ops);
    ReadClause read;
    std::vector<TermRef> terms;
    while (parser.readClause(read))
        terms.push_back(read.term);

    // First pass: dynamic/1 declarations, so clauses of a dynamic
    // predicate route to the store regardless of their position
    // relative to the directive (mirrors the compiler's two-pass
    // normalize).
    for (const TermRef &term : terms) {
        if (term->isStruct() && term->arity() == 1 &&
            (atomText(term->functorName()) == ":-" ||
             atomText(term->functorName()) == "?-")) {
            const TermRef &dir = term->arg(0);
            if (dir->isStruct() && dir->arity() == 1 &&
                atomText(dir->functorName()) == "dynamic") {
                std::vector<Functor> specs;
                collectDynamicSpec(dir->arg(0), specs);
                for (const Functor &f : specs)
                    impl_->dynDb->declareDynamic(f);
            }
        }
    }

    for (const TermRef &term : terms) {
        if (term->isStruct() && term->arity() == 1 &&
            (atomText(term->functorName()) == ":-" ||
             atomText(term->functorName()) == "?-")) {
            continue; // directives: op/3 handled by the reader
        }
        Impl::StoredClause clause;
        if (term->isStruct() && term->arity() == 2 &&
            atomText(term->functorName()) == ":-") {
            clause.head = term->arg(0);
            clause.body = term->arg(1);
        } else {
            clause.head = term;
        }
        Functor f = clause.head->functor();
        if (impl_->dynDb->isKnown(f)) {
            // Source clauses of dynamic predicates seed the store in
            // source order, exactly like the machine's image
            // `dynamicInit` section.
            impl_->dynDb->assertClause(f, clause.head, clause.body,
                                       false);
            continue;
        }
        impl_->database[f].push_back(clause);
    }
}

void
Interpreter::attachDynamicDb(std::shared_ptr<db::ClauseStore> store)
{
    impl_->dynDb = std::move(store);
}

void
Interpreter::setMemoryBudgetBytes(uint64_t bytes)
{
    impl_->memoryBudgetBytes = bytes;
}

const std::shared_ptr<db::ClauseStore> &
Interpreter::dynamicDb() const
{
    return impl_->dynDb;
}

InterpResult
Interpreter::query(const std::string &goal, size_t max_solutions)
{
    Parser parser(goal + " .", impl_->ops);
    ReadClause read;
    if (!parser.readClause(read))
        fatal("baseline: empty query");

    impl_->inferences = 0;
    impl_->output.clear();
    impl_->solutions.clear();
    impl_->maxSolutions = max_solutions;
    impl_->memBudgetTripped = false;

    std::unordered_map<const Term *, Cell *> vars;
    Cell *body = impl_->instantiate(read.term, vars);

    std::vector<std::pair<std::string, Cell *>> named;
    for (const auto &[name, var] : read.varNames)
        named.emplace_back(name, vars.at(var.get()));

    auto start = std::chrono::steady_clock::now();
    impl_->cutBarrier = UINT64_MAX;
    uint64_t top_id = impl_->nextCallId++;
    bool halted = false;
    std::string error;
    try {
        impl_->solve(body, top_id, [&]() {
            InterpSolution solution;
            std::unordered_map<Cell *, TermRef> export_vars;
            for (const auto &[name, cell] : named) {
                solution.bindings.emplace_back(
                    name, impl_->exportCell(cell, export_vars));
            }
            impl_->solutions.push_back(std::move(solution));
            return impl_->solutions.size() >= impl_->maxSolutions;
        });
    } catch (const PrologThrow &thrown) {
        error = "unhandled_exception(" + writeTermQuoted(thrown.ball) + ")";
    } catch (const PrologHalt &) {
        halted = true;
    }
    auto end = std::chrono::steady_clock::now();

    InterpResult result;
    result.success = !impl_->solutions.empty();
    result.halted = halted;
    result.error = error;
    result.solutions = std::move(impl_->solutions);
    result.output = impl_->output;
    result.inferences = impl_->inferences;
    result.seconds = std::chrono::duration<double>(end - start).count();
    return result;
}

} // namespace kcm::baseline
