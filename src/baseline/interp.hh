/**
 * @file
 * Reference Prolog interpreter (the software baseline).
 *
 * A straightforward structure-copying SLD-resolution interpreter over
 * the front end's term representation. It plays two roles:
 *
 *  - a differential-testing oracle: the KCM simulator and this
 *    interpreter must agree on every solution;
 *  - a "portable software system on a general-purpose CPU" comparison
 *    point, measured in wall-clock time (the role QUINTUS/SUN3 plays
 *    in Table 3).
 *
 * It is deliberately *not* a WAM: no compilation, no argument
 * registers, no clause indexing — just clause renaming, unification
 * with a trail, and chronological backtracking.
 */

#ifndef KCM_BASELINE_INTERP_HH
#define KCM_BASELINE_INTERP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/clause_store.hh"
#include "prolog/operators.hh"
#include "prolog/parser.hh"
#include "prolog/term.hh"

namespace kcm::baseline
{

/** A runtime term cell. Variables are mutable bindable cells. */
struct Cell
{
    enum class Kind
    {
        Var,
        Atom,
        Int,
        Float,
        Struct,
    };

    Kind kind = Kind::Var;
    Cell *ref = nullptr; ///< Var: binding (null = unbound)
    AtomId functor = 0;  ///< Atom / Struct
    int64_t intValue = 0;
    double floatValue = 0;
    std::vector<Cell *> args;
};

/** One solution from the interpreter. */
struct InterpSolution
{
    std::vector<std::pair<std::string, TermRef>> bindings;

    std::string toString() const;
};

struct InterpResult
{
    bool success = false;
    std::vector<InterpSolution> solutions;
    std::string output;

    /** True when the program executed halt/0 (search abandoned). */
    bool halted = false;

    /** Uncaught throw/1 ball, formatted exactly like the KCM
     *  machine's diagnosis: "unhandled_exception(<ball>)" with the
     *  ball in writeq notation. Empty on a clean run. */
    std::string error;

    uint64_t inferences = 0;
    double seconds = 0; ///< wall-clock
};

/** The interpreter: consult sources, then run queries. */
class Interpreter
{
  public:
    Interpreter();
    ~Interpreter();

    void consult(const std::string &source);

    /** Run @p goal; collect up to @p max_solutions. */
    InterpResult query(const std::string &goal, size_t max_solutions = 1);

    /** Replace the dynamic clause store (e.g. to share a preloaded or
     *  snapshot-restored store with a Machine under differential
     *  test). The interpreter owns one of its own by default. */
    void attachDynamicDb(std::shared_ptr<db::ClauseStore> store);

    /**
     * Arena-byte ceiling (0 = unlimited), mirroring the machine
     * governor's memoryBudgetBytes: exceeding it throws a catchable
     * resource_error(memory) ball, the same term all three engines
     * raise for memory exhaustion. The scale differs from the
     * machine's zone accounting (interpreter cells vs simulated
     * words); the contract is the identical ball, not an identical
     * byte count.
     */
    void setMemoryBudgetBytes(uint64_t bytes);

    /** The store backing dynamic/1 predicates for this interpreter. */
    const std::shared_ptr<db::ClauseStore> &dynamicDb() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace kcm::baseline

#endif // KCM_BASELINE_INTERP_HH
