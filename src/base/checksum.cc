#include "base/checksum.hh"

namespace kcm
{

uint64_t
fnv1a64(const void *data, size_t size, uint64_t basis)
{
    uint64_t hash = basis;
    fnvMix(hash, data, size);
    return hash;
}

void
fnvMix(uint64_t &h, const void *data, size_t size)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
}

void
fnvMixStr(uint64_t &h, const std::string &s)
{
    fnvMix(h, s.data(), s.size());
    // Length separator: distinguishes ("ab","c") from ("a","bc").
    uint64_t len = s.size();
    fnvMix(h, &len, sizeof len);
}

} // namespace kcm
