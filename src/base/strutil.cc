#include "base/strutil.hh"

#include <cctype>
#include <cstdio>

namespace kcm
{

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::string
padLeft(const std::string &s, size_t w)
{
    if (s.size() >= w)
        return s;
    return std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t w)
{
    if (s.size() >= w)
        return s;
    return s + std::string(w - s.size(), ' ');
}

std::string
fixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

} // namespace kcm
