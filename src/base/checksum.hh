#ifndef KCM_BASE_CHECKSUM_HH
#define KCM_BASE_CHECKSUM_HH

#include <cstddef>
#include <cstdint>
#include <string>

/**
 * FNV-1a-64 checksum helpers shared by every on-disk container and
 * content-hash key in the tree (KCMSNAP2 snapshot sections, the
 * image-template cache key, the clause-store journal).
 *
 * Two offset bases are exposed:
 *
 *  - fnvOffsetBasis: the standard FNV-1a-64 offset basis. New formats
 *    and keys use this.
 *  - fnvLegacyBasis: the basis the KCMSNAP2 container and the clause
 *    store's ArgKey hash shipped with (a historical truncation of the
 *    standard constant). It is load-bearing: changing it would
 *    invalidate every existing snapshot checksum, so it is preserved
 *    verbatim and documented here instead of silently duplicated.
 */

namespace kcm
{

constexpr uint64_t fnvOffsetBasis = 14695981039346656037ull;
constexpr uint64_t fnvLegacyBasis = 1469598103934665603ull;
constexpr uint64_t fnvPrime = 1099511628211ull;

/** One-shot FNV-1a-64 over a byte range, from the given basis. */
uint64_t fnv1a64(const void *data, size_t size,
                 uint64_t basis = fnvOffsetBasis);

/** Incremental mix of raw bytes into a running hash. */
void fnvMix(uint64_t &h, const void *data, size_t size);

/** Mix a string plus a length separator (distinguishes ("ab","c")
 *  from ("a","bc") in multi-field keys). */
void fnvMixStr(uint64_t &h, const std::string &s);

/** Mix a trivially copyable value by its object representation. */
template <typename T>
void
fnvMixPod(uint64_t &h, const T &v)
{
    fnvMix(h, &v, sizeof v);
}

} // namespace kcm

#endif // KCM_BASE_CHECKSUM_HH
