/**
 * @file
 * Small string helpers shared by the front end and the table printers.
 */

#ifndef KCM_BASE_STRUTIL_HH
#define KCM_BASE_STRUTIL_HH

#include <string>
#include <vector>

namespace kcm
{

/** True if @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Split @p s on character @p sep (empty pieces kept). */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Left-pad @p s with spaces to width @p w. */
std::string padLeft(const std::string &s, size_t w);

/** Right-pad @p s with spaces to width @p w. */
std::string padRight(const std::string &s, size_t w);

/** Format a double with @p digits decimal places. */
std::string fixed(double value, int digits);

} // namespace kcm

#endif // KCM_BASE_STRUTIL_HH
