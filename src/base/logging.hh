/**
 * @file
 * Error reporting and status messages.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this codebase); fatal() is for conditions caused
 * by user input (bad programs, bad configuration); warn()/inform() are
 * non-terminating status channels.
 */

#ifndef KCM_BASE_LOGGING_HH
#define KCM_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace kcm
{

/** Thrown by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user's input or configuration is unusable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    detail::formatInto(os, rest...);
}

} // namespace detail

/** Concatenate the arguments into a std::string via operator<<. */
template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    detail::formatInto(os, args...);
    return os.str();
}

/**
 * Report an internal error that should never happen regardless of user
 * input. Throws PanicError so tests can assert on misbehaviour instead
 * of aborting the process.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(cat("panic: ", args...));
}

/** Report an unrecoverable user-level error (bad program, bad config). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(cat("fatal: ", args...));
}

/** Emit a warning to stderr; execution continues. */
void warnMessage(const std::string &msg);

/** Emit an informational message to stderr; execution continues. */
void informMessage(const std::string &msg);

/** Globally enable/disable warn()/inform() output (quiet benchmarks). */
void setLoggingEnabled(bool enabled);

template <typename... Args>
void
warn(const Args &...args)
{
    warnMessage(cat(args...));
}

template <typename... Args>
void
inform(const Args &...args)
{
    informMessage(cat(args...));
}

} // namespace kcm

#endif // KCM_BASE_LOGGING_HH
