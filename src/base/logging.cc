#include "base/logging.hh"

#include <iostream>

namespace kcm
{

namespace
{
bool loggingEnabled = true;
} // namespace

void
setLoggingEnabled(bool enabled)
{
    loggingEnabled = enabled;
}

void
warnMessage(const std::string &msg)
{
    if (loggingEnabled)
        std::cerr << "warn: " << msg << std::endl;
}

void
informMessage(const std::string &msg)
{
    if (loggingEnabled)
        std::cerr << "info: " << msg << std::endl;
}

} // namespace kcm
