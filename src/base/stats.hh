/**
 * @file
 * Lightweight statistics counters.
 *
 * Every hardware unit in the simulator owns a StatGroup and registers
 * named counters in it. Groups nest, so the Machine can dump one tree
 * of every statistic in the system (cache hits, trail pushes, choice
 * points created, pipeline breaks, ...).
 */

#ifndef KCM_BASE_STATS_HH
#define KCM_BASE_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace kcm
{

/** A single named 64-bit event counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++_value; }
    void operator++(int) { ++_value; }
    void operator+=(uint64_t n) { _value += n; }

    uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    uint64_t _value = 0;
};

/**
 * A named collection of counters and sub-groups. Non-owning: the
 * counters live inside the component objects; the group only holds
 * pointers for enumeration and reset.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    /** Register a counter under this group. */
    void
    add(const std::string &name, Counter &counter)
    {
        entries_.push_back({name, &counter});
    }

    /** Register a child group (e.g. machine -> dcache). */
    void addChild(StatGroup &child) { children_.push_back(&child); }

    /** Reset every counter in this group and all children. */
    void reset();

    /** Dump "group.counter value" lines, one per counter. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Find a counter value by dotted path ("dcache.readHits"). */
    uint64_t lookup(const std::string &path) const;

    const std::string &name() const { return _name; }

  private:
    struct Entry
    {
        std::string name;
        Counter *counter;
    };

    std::string _name;
    std::vector<Entry> entries_;
    std::vector<StatGroup *> children_;
};

} // namespace kcm

#endif // KCM_BASE_STATS_HH
