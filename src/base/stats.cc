#include "base/stats.hh"

#include "base/logging.hh"

namespace kcm
{

void
StatGroup::reset()
{
    for (auto &entry : entries_)
        entry.counter->reset();
    for (auto *child : children_)
        child->reset();
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    std::string here = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &entry : entries_)
        os << here << "." << entry.name << " " << entry.counter->value()
           << "\n";
    for (const auto *child : children_)
        child->dump(os, here);
}

uint64_t
StatGroup::lookup(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &entry : entries_) {
            if (entry.name == path)
                return entry.counter->value();
        }
        fatal("no such statistic: ", _name, ".", path);
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto *child : children_) {
        if (child->name() == head)
            return child->lookup(rest);
    }
    fatal("no such statistic group: ", _name, ".", head);
}

} // namespace kcm
