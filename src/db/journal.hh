/**
 * @file
 * Append-only write-ahead journal for ClauseStore mutations.
 *
 * One journal file (`<dir>/journal.kcmj`) makes one clause store
 * durable: every committed transaction (the TxnOp batch of one query)
 * is appended as a checksummed record *before* the service
 * acknowledges the query, and periodic snapshot records bound replay
 * time. Recovery replays the newest snapshot plus the commit suffix;
 * because TxnOp replay reallocates the same sequence numbers and
 * generation counters and skiplist heights are pure functions of
 * those, the recovered store is bit-identical to the lost one — same
 * saveTo() bytes, same `scanned` counts on every engine.
 *
 * On-disk format (all integers little-endian):
 *
 *   file header: magic "KCMJRNL1", u32 version (1), u32 reserved
 *   record:      u32 type, u32 reserved, u64 payload length,
 *                u64 FNV-1a-64 checksum (standard basis, payload
 *                only), payload bytes
 *
 * Record types: 1 = commit (u64 commit id, then a ClauseStore
 * encodeOps() batch), 2 = snapshot (u64 last-applied commit id, then
 * a full ClauseStore saveTo() payload). Commit ids are strictly
 * sequential from 1; a snapshot record supersedes everything before
 * it, so recovery starts at the last valid snapshot.
 *
 * Torn-tail vs corruption: a record that runs off the end of the file
 * is the expected signature of a crash mid-append ("torn_tail") and
 * is truncated silently-in-the-protocol sense but loudly in the logs;
 * a checksum or structure failure *before* the end ("corrupt_record")
 * means bit rot or tampering — it is reported with its offset and the
 * valid prefix is kept, never the suspect suffix. Neither case is
 * ever silently swallowed: open() warns, kcm_dbck exits nonzero.
 *
 * Durability model (documented honestly): records are write()n to the
 * OS before the query is acknowledged, so a SIGKILL of the daemon
 * can never lose an acknowledged commit in *any* sync mode — the
 * page cache survives the process. fsync policy only matters for
 * kernel crashes and power loss: `always` syncs every record,
 * `group` batches fsyncs within a group-commit window (at most one
 * window of acknowledged commits is exposed to power loss), `none`
 * syncs only on drain/close.
 */

#ifndef KCM_DB_JOURNAL_HH
#define KCM_DB_JOURNAL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/clause_store.hh"

namespace kcm::db
{

enum class JournalSync
{
    Always, ///< fdatasync after every record
    Group,  ///< fdatasync at most once per group-commit window
    None,   ///< fdatasync only on flush()/close()
};

struct JournalOptions
{
    JournalSync sync = JournalSync::Group;
    /** Group-commit window: under JournalSync::Group, consecutive
     *  records within this many milliseconds of the last fdatasync
     *  share it. */
    uint64_t groupWindowMs = 5;
    /** Append a snapshot record every N commits (0 = never), bounding
     *  recovery replay to one snapshot load + N commit batches. */
    uint64_t snapshotEvery = 1024;
};

/** Result of scanning (and optionally replaying) a journal file. */
struct JournalScan
{
    uint64_t records = 0;   ///< valid records seen
    uint64_t commits = 0;   ///< ... of which commit records
    uint64_t snapshots = 0; ///< ... of which snapshot records
    uint64_t ops = 0;       ///< mutations across all valid commits
    uint64_t lastCommitId = 0;
    uint64_t commitsSinceSnapshot = 0;
    uint64_t fileBytes = 0; ///< file size when scanned
    uint64_t goodBytes = 0; ///< end of the last valid record
    /** Start offset of every valid record (for dbck --dump and the
     *  chaos harness's targeted bit flips). */
    std::vector<uint64_t> recordOffsets;
    bool torn = false;    ///< partial tail record (crash signature)
    bool corrupt = false; ///< checksum/structure failure mid-file
    std::string reason;   ///< one-line detail when torn or corrupt

    bool clean() const { return !torn && !corrupt; }

    /** Stable classification label: "clean", "torn_tail" or
     *  "corrupt_record" (corruption wins when both apply). */
    const char *
    classification() const
    {
        if (corrupt)
            return "corrupt_record";
        if (torn)
            return "torn_tail";
        return "clean";
    }
};

class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open (creating directory and file as needed) and recover:
     * scan the file, replay it into @p store (which must be empty),
     * truncate a torn or corrupt tail with a warning, and leave the
     * journal positioned to append. @p scan receives the recovery
     * report. Throws FatalError on I/O errors or a foreign file.
     */
    void open(const std::string &dir, const JournalOptions &opts,
              ClauseStore &store, JournalScan &scan);

    bool isOpen() const { return fd_ >= 0; }

    /** Append one commit record (the caller's responsibility: the ops
     *  must already be applied to the store). Returns the commit id.
     *  Sync policy per JournalOptions. Throws FatalError on I/O
     *  failure — the caller must then roll the store back. */
    uint64_t commit(const std::vector<TxnOp> &ops);

    /** Append a snapshot record of @p store's current contents and
     *  reset the commits-since-snapshot counter. */
    void appendSnapshot(const ClauseStore &store);

    /** fdatasync if any record since the last sync. */
    void flush();

    /** flush() and close the descriptor. */
    void close();

    uint64_t nextCommitId() const { return nextCommitId_; }
    uint64_t commitsSinceSnapshot() const { return commitsSinceSnapshot_; }
    uint64_t bytesAppended() const { return bytesAppended_; }
    uint64_t syncsPerformed() const { return syncs_; }
    const std::string &path() const { return path_; }

    /** `<dir>/journal.kcmj`; a path that is not a directory is
     *  returned unchanged (dbck accepts either). */
    static std::string journalFilePath(const std::string &dir_or_file);

    /**
     * Offline scan: validate every record, classify the tail, and —
     * when @p replay_into is non-null — replay into it (must be
     * empty; receives the surviving prefix even when the tail is
     * bad). Never modifies the file. Throws FatalError only when the
     * file cannot be read at all or is not a KCM journal.
     */
    static JournalScan scanFile(const std::string &path,
                                ClauseStore *replay_into);

    /** Truncate @p path at @p good_bytes (a record boundary from
     *  scanFile); a prefix shorter than the file header is rewritten
     *  as a fresh empty journal. */
    static void truncateFile(const std::string &path, uint64_t good_bytes);

    /**
     * Rewrite the journal as header + one snapshot record holding the
     * surviving prefix's store (replayed with @p config), preserving
     * the last commit id. Atomic: writes `<path>.tmp`, fsyncs,
     * renames. Returns the pre-compaction scan.
     */
    static JournalScan compactFile(const std::string &path,
                                   const DynDbConfig &config);

  private:
    void appendRecord(uint32_t type, const std::vector<uint8_t> &payload);
    void syncNow();

    int fd_ = -1;
    std::string path_;
    JournalOptions opts_;
    uint64_t nextCommitId_ = 1;
    uint64_t commitsSinceSnapshot_ = 0;
    uint64_t bytesAppended_ = 0;
    uint64_t syncs_ = 0;
    bool dirty_ = false;
    std::chrono::steady_clock::time_point lastSync_{};
};

/**
 * A ClauseStore bound to its journal plus the mutex that serializes
 * durable mutators. The service layer shares one of these across all
 * worker sessions: a durable query locks mutex(), runs against
 * store() inside a transaction, and on success journals the op batch
 * via commit() *before* the reply is written (commit-before-ack).
 * Live counters are atomics so the stats endpoint can read them
 * without the mutex.
 */
class JournaledStore
{
  public:
    JournaledStore(const std::string &dir, const JournalOptions &opts,
                   DynDbConfig db_config);
    ~JournaledStore();

    std::mutex &mutex() { return mutex_; }
    ClauseStore &store() { return *store_; }
    const std::shared_ptr<ClauseStore> &storePtr() const { return store_; }

    /** What open-time recovery found (immutable after construction). */
    const JournalScan &recoveryReport() const { return recovery_; }

    /** Journal an applied op batch; auto-snapshots every
     *  JournalOptions::snapshotEvery commits. Caller holds mutex().
     *  Returns the commit id. */
    uint64_t commit(const std::vector<TxnOp> &ops);

    void flush();

    uint64_t commitsWritten() const { return commits_.load(); }
    uint64_t opsWritten() const { return ops_.load(); }
    uint64_t snapshotsWritten() const { return snapshots_.load(); }
    uint64_t bytesWritten() const { return bytes_.load(); }
    const std::string &path() const { return journal_.path(); }

  private:
    std::mutex mutex_;
    std::shared_ptr<ClauseStore> store_;
    Journal journal_;
    JournalScan recovery_;
    JournalOptions opts_;
    std::atomic<uint64_t> commits_{0};
    std::atomic<uint64_t> ops_{0};
    std::atomic<uint64_t> snapshots_{0};
    std::atomic<uint64_t> bytes_{0};
};

} // namespace kcm::db

#endif // KCM_DB_JOURNAL_HH
