/**
 * @file
 * Runtime dynamic clause store with first-argument deep indexing.
 *
 * One store instance backs `dynamic/1` predicates for one engine
 * (Machine or baseline Interpreter). Clauses live in per-predicate
 * lists ordered by a signed sequence number (asserta allocates below
 * the minimum, assertz above the maximum), threaded through a
 * deterministic skiplist so ordered traversal, ordered retract and
 * seek-past-cursor are O(log n). On top of the sequence order sits a
 * first-argument index: clauses whose head's first argument is a
 * constant or a functor hash into per-key buckets (each bucket its own
 * skiplist over the same sequence numbers), clauses with a variable
 * first argument go to a separate always-consulted list, and a lookup
 * with a bound first argument merges its key bucket with the variable
 * list in sequence order. Both index layers can be disabled
 * independently (DynDbConfig) for the EXPERIMENTS.md ablation:
 * hash off degrades lookup to a master-list scan, skiplist off
 * degrades every seek to a level-0 linear walk.
 *
 * ISO logical update view: the store keeps a generation counter
 * bumped by every assert/retract; a clause is visible to a goal that
 * captured generation G iff `birth <= G < death`. Retract never
 * unlinks — it stamps the death generation — so the visible set at
 * any captured G is immutable and cursors survive arbitrary
 * concurrent-in-the-Prolog-sense mutation (retract while iterating,
 * assert during backtracking).
 *
 * Determinism contract: lookups report how many index nodes they
 * touched (`LookupResult::scanned`) and the engines charge simulated
 * cycles per touched node, so indexing shows up in simulated KLIPS.
 * Skiplist node height is a pure function of the node's sequence
 * number (not of insertion order or any PRNG state), so a store
 * rebuilt from a KCMSNAP2 snapshot reproduces the exact node heights
 * — and therefore the exact scanned counts and cycles — of the
 * original. Instances are not thread-safe; each session owns its own.
 */

#ifndef KCM_DB_CLAUSE_STORE_HH
#define KCM_DB_CLAUSE_STORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/checksum.hh"
#include "prolog/atom_table.hh"
#include "prolog/term.hh"

namespace kcm::db
{

/** Hard cap on dynamic-predicate arity: the machine parks its clause
 *  iterator (generation, cursor seq, functor) in the three X registers
 *  after the arguments, so arity + 3 must fit the register file. Both
 *  engines raise representation_error(max_arity) above this. */
constexpr uint32_t maxDynamicArity = 45;

/** Index ablation toggles + the simulated cost model, part of
 *  MachineConfig so the image cache keys on it. */
struct DynDbConfig
{
    /** First-argument hash buckets. Off: every lookup scans the
     *  predicate's master sequence list. */
    bool hashIndex = true;

    /** Skiplist express lanes above level 0. Off: every seek walks
     *  the level-0 chain linearly. */
    bool skiplist = true;

    /** Simulated cycles charged per index node touched during a
     *  store lookup (the "microcoded clause-selection step" of the
     *  dynamic-dispatch firmware; see DESIGN.md). */
    unsigned scanCycles = 2;

    /** Simulated cycles charged per assert/retract for the
     *  incremental re-index write. */
    unsigned updateCycles = 8;
};

/** First-argument index key. `Any` covers variable first arguments,
 *  arity-0 predicates, and (on lookup) an unbound caller argument. */
struct ArgKey
{
    enum class Kind : uint8_t
    {
        Any,
        Int,     ///< payload a = int64 value
        Float,   ///< payload a = bit pattern of float(value)
        Atom,    ///< payload a = AtomId ([] keys as the nil atom)
        Functor, ///< payload a = name AtomId, b = arity ('.'/2 = lists)
    };

    Kind kind = Kind::Any;
    uint64_t a = 0;
    uint64_t b = 0;

    bool
    operator==(const ArgKey &o) const
    {
        return kind == o.kind && a == o.a && b == o.b;
    }

    bool isAny() const { return kind == Kind::Any; }

    /** Key under which a clause head files: first argument of @p head
     *  (Any when the head has no arguments or a variable first one).
     *  Floats key on the bit pattern of the value narrowed to float,
     *  matching the machine's 32-bit float words. */
    static ArgKey forHead(const TermRef &head);

    /** Key a caller's (dereferenced) first argument selects. */
    static ArgKey forTerm(const TermRef &arg);
};

struct ArgKeyHash
{
    size_t
    operator()(const ArgKey &k) const
    {
        uint64_t h = fnvLegacyBasis;
        auto mix = [&h](uint64_t v) {
            h ^= v;
            h *= fnvPrime;
        };
        mix(static_cast<uint64_t>(k.kind));
        mix(k.a);
        mix(k.b);
        return static_cast<size_t>(h);
    }
};

/** One stored clause. `body` is null for facts. Head and body share
 *  variables by TermRef pointer *and* by printed name (the store
 *  canonicalizes on insert), so both the machine's importTerm and the
 *  baseline's instantiate see the same sharing. */
struct StoredClause
{
    int64_t seq = 0;      ///< ordering key (asserta < 0 side, assertz > 0)
    uint64_t birth = 0;   ///< generation the clause became visible
    uint64_t death = ~0ull; ///< generation it stopped being visible
    TermRef head;
    TermRef body;         ///< null for facts

    bool
    visibleAt(uint64_t gen) const
    {
        return birth <= gen && gen < death;
    }
};

/**
 * One recorded mutation. Produced by the transaction machinery below
 * (and by the journal's record decoder): replaying a TxnOp sequence
 * against an empty store via assertClause()/eraseClause() rebuilds
 * the exact original — same sequence numbers, same generation
 * counters, same skiplist heights, same scanned counts.
 */
struct TxnOp
{
    enum class Kind : uint8_t
    {
        AssertZ = 0,
        AssertA = 1,
        Erase = 2,
    };

    Kind kind = Kind::AssertZ;
    Functor f{};
    TermRef head;  ///< asserts only (store-canonicalized)
    TermRef body;  ///< asserts only; null = fact
    /** Sequence number the op touched — allocated by assert, target
     *  of erase. Replay verifies asserts land on the same seq. */
    int64_t seq = 0;
    /** Txn-internal: this assert interned the predicate, so rollback
     *  must drop the Pred entirely (isKnown() and the serialized
     *  payload would otherwise diverge). Not serialized. */
    bool createdPred = false;
};

class ClauseStore
{
  public:
    explicit ClauseStore(DynDbConfig config = {});
    ~ClauseStore();

    ClauseStore(const ClauseStore &) = delete;
    ClauseStore &operator=(const ClauseStore &) = delete;

    const DynDbConfig &config() const { return config_; }

    /** Mark @p f dynamic (idempotent). Asserting also marks. */
    void declareDynamic(const Functor &f);

    /** True when @p f was declared dynamic or has ever been asserted
     *  to — i.e. calls should dispatch into the store, not report an
     *  undefined predicate. */
    bool isKnown(const Functor &f) const;

    /** Current generation (bumped by every assert/retract). A goal
     *  captures this once at call time and passes it to every
     *  first()/next() it performs. */
    uint64_t generation() const { return generation_; }

    /**
     * Insert a clause (head :- body; null @p body = fact) at the
     * front (@p at_front, asserta) or back (assertz) of @p f's
     * chain. Bumps the generation; the new clause is visible only to
     * goals that start after this call. Variables are canonicalized
     * to fresh shared-by-name-and-pointer nodes.
     */
    const StoredClause &assertClause(const Functor &f, const TermRef &head,
                                     const TermRef &body, bool at_front);

    /** Stamp clause @p seq of @p f dead at a fresh generation
     *  (retract). The node stays in every index as a tombstone so
     *  older goals still see it. No-op if already dead or absent. */
    void eraseClause(const Functor &f, int64_t seq);

    struct LookupResult
    {
        const StoredClause *clause = nullptr;
        /** Index nodes touched: skiplist seek hops + level-0 scan
         *  steps across every list consulted. The engines charge
         *  `scanCycles * scanned` simulated cycles. */
        uint64_t scanned = 0;
    };

    /** First clause of @p f visible at @p gen whose head can match a
     *  first argument selecting @p key (bucket ∪ variable-head list,
     *  merged in sequence order; Any or hash-off consults the master
     *  list). */
    LookupResult first(const Functor &f, const ArgKey &key,
                       uint64_t gen) const;

    /** Next candidate after sequence number @p after_seq. Stateless:
     *  re-seeks past the cursor, so callers only persist the seq. */
    LookupResult next(const Functor &f, const ArgKey &key, uint64_t gen,
                      int64_t after_seq) const;

    /** Live-clause count of @p f at the current generation (0 when
     *  unknown). Linear in the chain; for tests and stats. */
    uint64_t liveClauseCount(const Functor &f) const;

    /** Predicates known to the store, name/arity ordered. */
    std::vector<Functor> knownPredicates() const;

    /** Total asserts + retracts performed (for stats/tests). */
    uint64_t updateCount() const { return updates_; }

    // -- serialization (KCMSNAP2 section payload) -------------------
    //
    // Binary, byte-stable: predicates in first-intern order, clauses
    // in sequence order, terms encoded structurally (floats by bit
    // pattern — no text round-trip). loadFrom() rebuilds the indexes
    // node by node; the deterministic height function guarantees the
    // rebuilt skiplists match the originals hop for hop.

    void saveTo(std::vector<uint8_t> &out) const;
    /** Replace the whole store contents. Throws FatalError on a
     *  malformed payload, leaving the store cleared. */
    void loadFrom(const uint8_t *data, size_t size);

    /** Drop everything (predicates, clauses, generation). */
    void clear();

    // -- transactions (journal support) -----------------------------
    //
    // A transaction records every assert/erase between beginTxn() and
    // commitTxn()/rollbackTxn() as a TxnOp. Rollback undoes the ops
    // in reverse order *exactly*: sequence counters, generation and
    // update counters, skiplist links and predicate interning all
    // return to their pre-transaction state bit for bit (verified by
    // saveTo() byte comparison in the tests). declareDynamic() is not
    // covered — durable flows never declare mid-transaction.

    /** Start recording. It is a fatal error if one is active. */
    void beginTxn();

    bool inTxn() const { return txnActive_; }

    /** Ops recorded so far (empty when no mutation ran). */
    const std::vector<TxnOp> &txnOps() const { return txn_; }

    /** Keep the mutations: stop recording and return the op list
     *  (for the journal). */
    std::vector<TxnOp> commitTxn();

    /** Undo every recorded op in reverse order and stop recording. */
    void rollbackTxn();

    // -- op-batch codec (journal record payloads) -------------------
    //
    // Same structural term encoding as saveTo()/loadFrom(), with a
    // per-batch atom pool: byte-stable across processes, floats by
    // bit pattern. decodeOps() throws FatalError on malformed input.

    static void encodeOps(const std::vector<TxnOp> &ops,
                          std::vector<uint8_t> &out);
    static std::vector<TxnOp> decodeOps(const uint8_t *data, size_t size);

    /** Apply a decoded op. Asserts must land on the recorded sequence
     *  number — a divergence throws FatalError (the journal does not
     *  match the store it is being replayed into). */
    void applyOp(const TxnOp &op);

  private:
    struct Pred;
    struct SeqList;

    Pred &internPred(const Functor &f);
    const Pred *findPred(const Functor &f) const;

    DynDbConfig config_;
    uint64_t generation_ = 0;
    uint64_t updates_ = 0;
    std::map<Functor, std::unique_ptr<Pred>> preds_;
    bool txnActive_ = false;
    std::vector<TxnOp> txn_;
};

} // namespace kcm::db

#endif // KCM_DB_CLAUSE_STORE_HH
