#include "db/journal.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/checksum.hh"
#include "base/logging.hh"

namespace kcm::db
{

namespace
{

constexpr char kMagic[8] = {'K', 'C', 'M', 'J', 'R', 'N', 'L', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 16; // magic + u32 version + u32 reserved
constexpr size_t kRecordHeaderBytes = 24; // type, reserved, length, checksum
/** Sanity bound on one record: a 1M-fact snapshot is tens of MB; a
 *  length beyond this is a corrupt header, not a real record. */
constexpr uint64_t kMaxRecordBytes = 1ull << 31;

enum : uint32_t
{
    recCommit = 1,
    recSnapshot = 2,
};

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
readU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
readU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

void
writeAll(int fd, const uint8_t *data, size_t size, const std::string &path)
{
    while (size > 0) {
        ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("journal: write ", path, ": ", std::strerror(errno));
        }
        data += n;
        size -= static_cast<size_t>(n);
    }
}

std::vector<uint8_t>
readWholeFile(const std::string &path, bool &exists)
{
    std::vector<uint8_t> bytes;
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT) {
            exists = false;
            return bytes;
        }
        fatal("journal: open ", path, ": ", std::strerror(errno));
    }
    exists = true;
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        fatal("journal: stat ", path, ": ", std::strerror(err));
    }
    bytes.resize(static_cast<size_t>(st.st_size));
    size_t got = 0;
    while (got < bytes.size()) {
        ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            fatal("journal: read ", path, ": ", std::strerror(err));
        }
        if (n == 0)
            break;
        got += static_cast<size_t>(n);
    }
    bytes.resize(got);
    ::close(fd);
    return bytes;
}

std::vector<uint8_t>
fileHeader()
{
    std::vector<uint8_t> h(kMagic, kMagic + sizeof kMagic);
    putU32(h, kVersion);
    putU32(h, 0);
    return h;
}

void
fsyncOrDie(int fd, const std::string &path)
{
    if (::fdatasync(fd) != 0)
        fatal("journal: fdatasync ", path, ": ", std::strerror(errno));
}

} // namespace

// ---------------------------------------------------------------------
// Offline scan / repair / compact

std::string
Journal::journalFilePath(const std::string &dir_or_file)
{
    struct stat st{};
    if (::stat(dir_or_file.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
        return dir_or_file + "/journal.kcmj";
    // Nonexistent paths are treated as directories (open() creates
    // them) unless they already name a .kcmj file.
    if (dir_or_file.size() >= 5 &&
        dir_or_file.compare(dir_or_file.size() - 5, 5, ".kcmj") == 0)
        return dir_or_file;
    return dir_or_file + "/journal.kcmj";
}

JournalScan
Journal::scanFile(const std::string &path, ClauseStore *replay_into)
{
    JournalScan scan;
    bool exists = false;
    std::vector<uint8_t> bytes = readWholeFile(path, exists);
    scan.fileBytes = bytes.size();
    if (!exists || bytes.empty())
        return scan; // fresh journal: clean, goodBytes 0
    if (bytes.size() < kHeaderBytes) {
        // Only a crash during initial creation leaves a partial
        // header; recover as an empty journal.
        scan.torn = true;
        scan.reason = "partial file header";
        return scan;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
        fatal("journal: ", path, " is not a KCM journal (bad magic)");
    if (uint32_t v = readU32(bytes.data() + 8); v != kVersion)
        fatal("journal: ", path, ": unsupported version ", v);

    if (replay_into && replay_into->generation() != 0)
        fatal("journal: replay target store is not empty");

    size_t pos = kHeaderBytes;
    scan.goodBytes = pos;
    uint64_t expect_id = 1;
    auto bad = [&](bool torn, std::string why) {
        scan.torn = torn;
        scan.corrupt = !torn;
        scan.reason = std::move(why);
    };
    while (pos < bytes.size()) {
        const size_t remaining = bytes.size() - pos;
        if (remaining < kRecordHeaderBytes) {
            bad(true, cat("partial record header at offset ", pos));
            break;
        }
        const uint8_t *h = bytes.data() + pos;
        const uint32_t type = readU32(h);
        const uint64_t len = readU64(h + 8);
        const uint64_t sum = readU64(h + 16);
        if (type != recCommit && type != recSnapshot) {
            bad(false, cat("bad record type ", type, " at offset ", pos));
            break;
        }
        if (len > kMaxRecordBytes) {
            bad(false,
                cat("implausible record length ", len, " at offset ", pos));
            break;
        }
        if (remaining - kRecordHeaderBytes < len) {
            bad(true, cat("partial record payload at offset ", pos));
            break;
        }
        const uint8_t *payload = h + kRecordHeaderBytes;
        if (fnv1a64(payload, size_t(len)) != sum) {
            bad(false, cat("checksum mismatch at offset ", pos));
            break;
        }
        if (len < 8) {
            bad(false, cat("short record payload at offset ", pos));
            break;
        }
        const uint64_t id_field = readU64(payload);
        if (type == recCommit) {
            if (id_field != expect_id) {
                bad(false, cat("commit id ", id_field, " at offset ", pos,
                               ", expected ", expect_id));
                break;
            }
            std::vector<TxnOp> ops;
            try {
                ops = ClauseStore::decodeOps(payload + 8, size_t(len - 8));
                if (replay_into) {
                    for (const TxnOp &op : ops)
                        replay_into->applyOp(op);
                }
            } catch (const FatalError &err) {
                bad(false, cat("commit ", id_field, " at offset ", pos,
                               ": ", err.what()));
                break;
            }
            scan.ops += ops.size();
            ++scan.commits;
            ++scan.commitsSinceSnapshot;
            scan.lastCommitId = id_field;
            expect_id = id_field + 1;
        } else {
            // Snapshot: supersedes everything before it. A snapshot's
            // id is the last commit applied to it.
            try {
                if (replay_into) {
                    replay_into->loadFrom(payload + 8, size_t(len - 8));
                } else {
                    // Validate structure even when not replaying.
                    ClauseStore probe;
                    probe.loadFrom(payload + 8, size_t(len - 8));
                }
            } catch (const FatalError &err) {
                bad(false, cat("snapshot at offset ", pos, ": ",
                               err.what()));
                break;
            }
            ++scan.snapshots;
            scan.commitsSinceSnapshot = 0;
            scan.lastCommitId = id_field;
            expect_id = id_field + 1;
        }
        scan.recordOffsets.push_back(pos);
        ++scan.records;
        pos += kRecordHeaderBytes + size_t(len);
        scan.goodBytes = pos;
    }
    return scan;
}

void
Journal::truncateFile(const std::string &path, uint64_t good_bytes)
{
    if (good_bytes < kHeaderBytes) {
        // Nothing salvageable: rewrite as a fresh empty journal.
        int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
        if (fd < 0)
            fatal("journal: open ", path, ": ", std::strerror(errno));
        std::vector<uint8_t> h = fileHeader();
        writeAll(fd, h.data(), h.size(), path);
        fsyncOrDie(fd, path);
        ::close(fd);
        return;
    }
    if (::truncate(path.c_str(), static_cast<off_t>(good_bytes)) != 0)
        fatal("journal: truncate ", path, ": ", std::strerror(errno));
}

JournalScan
Journal::compactFile(const std::string &path, const DynDbConfig &config)
{
    ClauseStore store(config);
    JournalScan scan = scanFile(path, &store);

    std::vector<uint8_t> out = fileHeader();
    std::vector<uint8_t> payload;
    putU64(payload, scan.lastCommitId);
    store.saveTo(payload);
    putU32(out, recSnapshot);
    putU32(out, 0);
    putU64(out, payload.size());
    putU64(out, fnv1a64(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());

    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0)
        fatal("journal: open ", tmp, ": ", std::strerror(errno));
    writeAll(fd, out.data(), out.size(), tmp);
    fsyncOrDie(fd, tmp);
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("journal: rename ", tmp, " -> ", path, ": ",
              std::strerror(errno));
    return scan;
}

// ---------------------------------------------------------------------
// Live journal

Journal::~Journal()
{
    if (fd_ >= 0) {
        // Destructor path (no throw): best-effort sync.
        if (dirty_)
            ::fdatasync(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

void
Journal::open(const std::string &dir, const JournalOptions &opts,
              ClauseStore &store, JournalScan &scan)
{
    if (fd_ >= 0)
        fatal("journal: already open");
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("journal: mkdir ", dir, ": ", std::strerror(errno));
    opts_ = opts;
    path_ = journalFilePath(dir);

    // Take the writer lock before looking at the file: two daemons
    // appending to one journal would interleave records and corrupt
    // it silently, and even the recovery scan below must not race a
    // live writer's truncate/compact. flock() is advisory but every
    // writer goes through here; the lock dies with the process, so a
    // SIGKILL never leaves a stale lock behind.
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        fatal("journal: open ", path_, ": ", std::strerror(errno));
    if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
        int err = errno;
        ::close(fd_);
        fd_ = -1;
        if (err == EWOULDBLOCK)
            fatal("journal: ", path_,
                  ": locked by another process — refusing to share a "
                  "journal between two live daemons");
        fatal("journal: lock ", path_, ": ", std::strerror(err));
    }

    scan = scanFile(path_, &store);
    if (!scan.clean()) {
        warn("journal: ", path_, ": ", scan.classification(), " — ",
             scan.reason, "; keeping ", scan.commits,
             " committed record(s), truncating ",
             scan.fileBytes - scan.goodBytes, " byte(s)");
        truncateFile(path_, scan.goodBytes);
    }

    struct stat st{};
    if (::fstat(fd_, &st) != 0)
        fatal("journal: stat ", path_, ": ", std::strerror(errno));
    if (st.st_size < static_cast<off_t>(kHeaderBytes)) {
        std::vector<uint8_t> h = fileHeader();
        writeAll(fd_, h.data(), h.size(), path_);
        fsyncOrDie(fd_, path_);
    }
    nextCommitId_ = scan.lastCommitId + 1;
    commitsSinceSnapshot_ = scan.commitsSinceSnapshot;
    dirty_ = false;
    lastSync_ = std::chrono::steady_clock::now();
}

void
Journal::appendRecord(uint32_t type, const std::vector<uint8_t> &payload)
{
    if (fd_ < 0)
        fatal("journal: append on a closed journal");
    std::vector<uint8_t> rec;
    rec.reserve(kRecordHeaderBytes + payload.size());
    putU32(rec, type);
    putU32(rec, 0);
    putU64(rec, payload.size());
    putU64(rec, fnv1a64(payload.data(), payload.size()));
    rec.insert(rec.end(), payload.begin(), payload.end());
    writeAll(fd_, rec.data(), rec.size(), path_);
    bytesAppended_ += rec.size();
    dirty_ = true;

    switch (opts_.sync) {
      case JournalSync::Always:
        syncNow();
        break;
      case JournalSync::Group: {
        auto now = std::chrono::steady_clock::now();
        if (now - lastSync_ >=
            std::chrono::milliseconds(opts_.groupWindowMs))
            syncNow();
        break;
      }
      case JournalSync::None:
        break;
    }
}

void
Journal::syncNow()
{
    fsyncOrDie(fd_, path_);
    ++syncs_;
    dirty_ = false;
    lastSync_ = std::chrono::steady_clock::now();
}

uint64_t
Journal::commit(const std::vector<TxnOp> &ops)
{
    std::vector<uint8_t> payload;
    putU64(payload, nextCommitId_);
    ClauseStore::encodeOps(ops, payload);
    appendRecord(recCommit, payload);
    ++commitsSinceSnapshot_;
    return nextCommitId_++;
}

void
Journal::appendSnapshot(const ClauseStore &store)
{
    std::vector<uint8_t> payload;
    putU64(payload, nextCommitId_ - 1);
    store.saveTo(payload);
    appendRecord(recSnapshot, payload);
    commitsSinceSnapshot_ = 0;
}

void
Journal::flush()
{
    if (fd_ >= 0 && dirty_)
        syncNow();
}

void
Journal::close()
{
    if (fd_ < 0)
        return;
    flush();
    ::close(fd_);
    fd_ = -1;
}

// ---------------------------------------------------------------------
// JournaledStore

JournaledStore::JournaledStore(const std::string &dir,
                               const JournalOptions &opts,
                               DynDbConfig db_config)
    : store_(std::make_shared<ClauseStore>(db_config)), opts_(opts)
{
    journal_.open(dir, opts, *store_, recovery_);
    bytes_.store(0);
    if (recovery_.records > 0) {
        inform("journal: ", journal_.path(), ": recovered ",
               recovery_.commits, " commit(s), ", recovery_.snapshots,
               " snapshot(s), ", recovery_.ops, " op(s); last commit id ",
               recovery_.lastCommitId);
    }
}

JournaledStore::~JournaledStore()
{
    journal_.close();
}

uint64_t
JournaledStore::commit(const std::vector<TxnOp> &ops)
{
    uint64_t id = journal_.commit(ops);
    commits_.fetch_add(1);
    ops_.fetch_add(ops.size());
    if (opts_.snapshotEvery &&
        journal_.commitsSinceSnapshot() >= opts_.snapshotEvery) {
        journal_.appendSnapshot(*store_);
        snapshots_.fetch_add(1);
    }
    bytes_.store(journal_.bytesAppended());
    return id;
}

void
JournaledStore::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    journal_.flush();
}

} // namespace kcm::db
