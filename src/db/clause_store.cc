#include "db/clause_store.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "base/logging.hh"

namespace kcm::db
{

namespace
{

/** Height ceiling: comfortable for ~1M clauses (expected height
 *  log2 n with p = 1/2). */
constexpr int kMaxLevel = 20;

/** Deterministic node height: a pure mix of the sequence number
 *  (splitmix64 finalizer), then count-trailing-ones with p = 1/2.
 *  Never depends on insertion order or PRNG state, so a store rebuilt
 *  from a snapshot reproduces identical towers — and identical
 *  scanned counts — to the original. */
int
towerHeight(int64_t seq)
{
    uint64_t h = static_cast<uint64_t>(seq) + 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    h ^= h >> 31;
    int level = 1;
    while ((h & 1) && level < kMaxLevel) {
        h >>= 1;
        ++level;
    }
    return level;
}

/**
 * Rebuild a term with canonical variable nodes shared by pointer and
 * by printed name. Producers differ: the reader and the baseline's
 * exportCell share repeated variables by pointer, the machine's
 * exportTerm only by printed name ("_G<addr>") — after this pass both
 * invariants hold, so importTerm (name-keyed) and the baseline's
 * instantiate (pointer-keyed) agree on head/body sharing.
 */
struct VarCanon
{
    std::unordered_map<const Term *, TermRef> byPtr;
    std::unordered_map<std::string, TermRef> byName;

    TermRef
    rename(const TermRef &t)
    {
        if (!t)
            return nullptr;
        switch (t->kind()) {
          case TermKind::Var: {
            auto pit = byPtr.find(t.get());
            if (pit != byPtr.end())
                return pit->second;
            auto nit = byName.find(t->varName());
            if (nit != byName.end()) {
                byPtr.emplace(t.get(), nit->second);
                return nit->second;
            }
            TermRef fresh = Term::makeVar(t->varName());
            byPtr.emplace(t.get(), fresh);
            byName.emplace(t->varName(), fresh);
            return fresh;
          }
          case TermKind::Struct: {
            std::vector<TermRef> args;
            args.reserve(t->arity());
            bool changed = false;
            for (const auto &a : t->args()) {
                TermRef r = rename(a);
                changed |= r != a;
                args.push_back(std::move(r));
            }
            if (!changed)
                return t;
            return Term::makeStruct(t->functorName(), std::move(args));
          }
          default:
            return t;
        }
    }
};

} // namespace

ArgKey
ArgKey::forTerm(const TermRef &arg)
{
    ArgKey k;
    if (!arg)
        return k;
    switch (arg->kind()) {
      case TermKind::Var:
        break;
      case TermKind::Int:
        // Narrowed to the machine's 32-bit integer word: the machine
        // unifies on the narrowed value, and an index key must never
        // be finer than unification (that would hide candidates) —
        // coarser only costs a filtered-out candidate.
        k.kind = Kind::Int;
        k.a = static_cast<uint64_t>(
            static_cast<int64_t>(static_cast<int32_t>(arg->intValue())));
        break;
      case TermKind::Float: {
        // Key on the machine's 32-bit float word so both engines and
        // the Word-side key builder agree bit for bit.
        float f = static_cast<float>(arg->floatValue());
        uint32_t bits;
        std::memcpy(&bits, &f, sizeof bits);
        k.kind = Kind::Float;
        k.a = bits;
        break;
      }
      case TermKind::Atom:
        k.kind = Kind::Atom;
        k.a = arg->atom();
        break;
      case TermKind::Struct:
        k.kind = Kind::Functor;
        k.a = arg->functorName();
        k.b = arg->arity();
        break;
    }
    return k;
}

ArgKey
ArgKey::forHead(const TermRef &head)
{
    if (!head || !head->isStruct() || head->arity() == 0)
        return ArgKey{};
    return forTerm(head->arg(0));
}

/** One skiplist over clause sequence numbers. The sentinel head has a
 *  full-height tower; node towers are `towerHeight(seq)` tall. */
struct ClauseStore::SeqList
{
    struct Node
    {
        const StoredClause *clause = nullptr;
        int64_t seq = 0;
        int level = 1;
        std::array<Node *, kMaxLevel> next{};
    };

    Node head;
    std::deque<Node> nodes;

    SeqList()
    {
        head.seq = std::numeric_limits<int64_t>::min();
        head.level = kMaxLevel;
        head.next.fill(nullptr);
    }

    void
    insert(const StoredClause *c)
    {
        Node *update[kMaxLevel];
        Node *x = &head;
        for (int i = kMaxLevel - 1; i >= 0; --i) {
            while (x->next[i] && x->next[i]->seq < c->seq)
                x = x->next[i];
            update[i] = x;
        }
        nodes.emplace_back();
        Node *n = &nodes.back();
        n->clause = c;
        n->seq = c->seq;
        n->level = towerHeight(c->seq);
        for (int i = 0; i < n->level; ++i) {
            n->next[i] = update[i]->next[i];
            update[i]->next[i] = n;
        }
    }

    /**
     * First node with seq >= @p target. With the express lanes the
     * descent costs O(log n) horizontal hops; without (the skiplist
     * ablation) it is a level-0 walk. Every horizontal hop and the
     * landing node are counted into @p scanned — the unit the engines
     * convert to simulated cycles.
     */
    const Node *
    seekGE(int64_t target, bool use_skiplist, uint64_t &scanned) const
    {
        const Node *x = &head;
        const int top = use_skiplist ? kMaxLevel - 1 : 0;
        for (int i = top; i >= 0; --i) {
            while (x->next[i] && x->next[i]->seq < target) {
                x = x->next[i];
                ++scanned;
            }
        }
        const Node *landed = x->next[0];
        if (landed)
            ++scanned;
        return landed;
    }

    /** First clause with seq >= @p from visible at @p gen (tombstones
     *  and future births are stepped over, each step counted). */
    const StoredClause *
    firstVisibleGE(int64_t from, uint64_t gen, bool use_skiplist,
                   uint64_t &scanned) const
    {
        const Node *n = seekGE(from, use_skiplist, scanned);
        while (n && !n->clause->visibleAt(gen)) {
            n = n->next[0];
            if (n)
                ++scanned;
        }
        return n ? n->clause : nullptr;
    }

    /** Unlink the most recently inserted node, which must be @p c's.
     *  Transaction rollback only: ops are undone newest-first and
     *  per-list insertion order is chronological, so the node to
     *  remove is always nodes.back() — making removal O(log n) with
     *  no tombstone or reindex. */
    void
    removeLast(const StoredClause *c)
    {
        if (nodes.empty() || nodes.back().clause != c)
            panic("skiplist removeLast: node is not the newest insert");
        Node *target = &nodes.back();
        Node *x = &head;
        for (int i = kMaxLevel - 1; i >= 0; --i) {
            while (x->next[i] && x->next[i] != target &&
                   x->next[i]->seq < target->seq)
                x = x->next[i];
            if (x->next[i] == target)
                x->next[i] = target->next[i];
        }
        nodes.pop_back();
    }
};

struct ClauseStore::Pred
{
    Functor f{};
    bool declared = false;
    int64_t minSeq = 0; ///< lowest seq ever allocated (asserta side)
    int64_t maxSeq = 0; ///< highest seq ever allocated (assertz side)
    std::deque<StoredClause> clauses;
    std::unordered_map<int64_t, StoredClause *> bySeq;
    SeqList master;
    SeqList varList;
    std::unordered_map<ArgKey, std::unique_ptr<SeqList>, ArgKeyHash> buckets;
};

ClauseStore::ClauseStore(DynDbConfig config) : config_(config) {}

ClauseStore::~ClauseStore() = default;

ClauseStore::Pred &
ClauseStore::internPred(const Functor &f)
{
    auto &slot = preds_[f];
    if (!slot) {
        slot = std::make_unique<Pred>();
        slot->f = f;
    }
    return *slot;
}

const ClauseStore::Pred *
ClauseStore::findPred(const Functor &f) const
{
    auto it = preds_.find(f);
    return it == preds_.end() ? nullptr : it->second.get();
}

void
ClauseStore::declareDynamic(const Functor &f)
{
    internPred(f).declared = true;
}

bool
ClauseStore::isKnown(const Functor &f) const
{
    return findPred(f) != nullptr;
}

const StoredClause &
ClauseStore::assertClause(const Functor &f, const TermRef &head,
                          const TermRef &body, bool at_front)
{
    const bool created = txnActive_ && preds_.find(f) == preds_.end();
    Pred &p = internPred(f);
    VarCanon canon;
    StoredClause c;
    if (f.arity > maxDynamicArity) {
        fatal("dynamic predicate arity ", f.arity,
              " exceeds the supported maximum ", maxDynamicArity);
    }
    c.head = canon.rename(head);
    // A `true` body is a fact; storing it as null keeps the
    // fact-vs-rule distinction cheap for both engines.
    c.body = (body && !body->isAtomNamed(AtomTable::instance().trueAtom))
                 ? canon.rename(body)
                 : nullptr;
    c.seq = at_front ? --p.minSeq : ++p.maxSeq;
    c.birth = ++generation_;
    ++updates_;

    p.clauses.push_back(std::move(c));
    StoredClause *stored = &p.clauses.back();
    p.bySeq.emplace(stored->seq, stored);
    p.master.insert(stored);
    ArgKey key = ArgKey::forHead(stored->head);
    if (key.isAny()) {
        p.varList.insert(stored);
    } else {
        auto &bucket = p.buckets[key];
        if (!bucket)
            bucket = std::make_unique<SeqList>();
        bucket->insert(stored);
    }
    if (txnActive_) {
        TxnOp op;
        op.kind = at_front ? TxnOp::Kind::AssertA : TxnOp::Kind::AssertZ;
        op.f = f;
        op.head = stored->head;
        op.body = stored->body;
        op.seq = stored->seq;
        op.createdPred = created;
        txn_.push_back(std::move(op));
    }
    return *stored;
}

void
ClauseStore::eraseClause(const Functor &f, int64_t seq)
{
    auto it = preds_.find(f);
    if (it == preds_.end())
        return;
    auto cit = it->second->bySeq.find(seq);
    if (cit == it->second->bySeq.end())
        return;
    StoredClause *c = cit->second;
    if (c->death != ~0ull)
        return; // already a tombstone
    c->death = ++generation_;
    ++updates_;
    if (txnActive_) {
        TxnOp op;
        op.kind = TxnOp::Kind::Erase;
        op.f = f;
        op.seq = seq;
        txn_.push_back(std::move(op));
    }
}

ClauseStore::LookupResult
ClauseStore::first(const Functor &f, const ArgKey &key, uint64_t gen) const
{
    return next(f, key, gen, std::numeric_limits<int64_t>::min());
}

ClauseStore::LookupResult
ClauseStore::next(const Functor &f, const ArgKey &key, uint64_t gen,
                  int64_t after_seq) const
{
    LookupResult out;
    const Pred *p = findPred(f);
    if (!p)
        return out;
    const int64_t from = after_seq == std::numeric_limits<int64_t>::min()
                             ? after_seq
                             : after_seq + 1;
    const bool sl = config_.skiplist;
    auto consider = [&](const SeqList *list) {
        if (!list)
            return;
        const StoredClause *c =
            list->firstVisibleGE(from, gen, sl, out.scanned);
        if (c && (!out.clause || c->seq < out.clause->seq))
            out.clause = c;
    };
    if (!config_.hashIndex || key.isAny()) {
        consider(&p->master);
    } else {
        auto bit = p->buckets.find(key);
        consider(bit == p->buckets.end() ? nullptr : bit->second.get());
        consider(&p->varList);
    }
    return out;
}

uint64_t
ClauseStore::liveClauseCount(const Functor &f) const
{
    const Pred *p = findPred(f);
    if (!p)
        return 0;
    uint64_t n = 0;
    for (const auto &c : p->clauses)
        n += c.visibleAt(generation_);
    return n;
}

std::vector<Functor>
ClauseStore::knownPredicates() const
{
    std::vector<Functor> out;
    out.reserve(preds_.size());
    for (const auto &[f, p] : preds_)
        out.push_back(f);
    return out;
}

void
ClauseStore::clear()
{
    preds_.clear();
    generation_ = 0;
    updates_ = 0;
    txnActive_ = false;
    txn_.clear();
}

// ---------------------------------------------------------------------
// Transactions. Every mutation between beginTxn() and commit/rollback
// is recorded as a TxnOp; rollback replays the record newest-first and
// restores the exact pre-transaction state. The exactness argument:
// per-predicate containers (clauses deque, each SeqList's nodes deque)
// append in chronological order, so undoing the globally newest op
// always pops the newest element of every container it touched, and
// the sequence/generation/update counters — each bumped exactly once
// per op — are restored by one decrement per op.

void
ClauseStore::beginTxn()
{
    if (txnActive_)
        fatal("clause store: beginTxn with a transaction already active");
    txn_.clear();
    txnActive_ = true;
}

std::vector<TxnOp>
ClauseStore::commitTxn()
{
    if (!txnActive_)
        fatal("clause store: commitTxn without beginTxn");
    std::vector<TxnOp> ops = std::move(txn_);
    txn_.clear();
    txnActive_ = false;
    return ops;
}

void
ClauseStore::rollbackTxn()
{
    if (!txnActive_)
        fatal("clause store: rollbackTxn without beginTxn");
    for (auto it = txn_.rbegin(); it != txn_.rend(); ++it) {
        const TxnOp &op = *it;
        auto pit = preds_.find(op.f);
        if (pit == preds_.end())
            panic("transaction rollback: predicate vanished");
        Pred &p = *pit->second;
        if (op.kind == TxnOp::Kind::Erase) {
            auto cit = p.bySeq.find(op.seq);
            if (cit == p.bySeq.end())
                panic("transaction rollback: erased clause vanished");
            cit->second->death = ~0ull;
        } else {
            if (p.clauses.empty() || p.clauses.back().seq != op.seq)
                panic("transaction rollback: out-of-order assert undo");
            StoredClause *c = &p.clauses.back();
            ArgKey key = ArgKey::forHead(c->head);
            if (key.isAny()) {
                p.varList.removeLast(c);
            } else {
                auto bit = p.buckets.find(key);
                if (bit == p.buckets.end())
                    panic("transaction rollback: missing index bucket");
                bit->second->removeLast(c);
                if (bit->second->nodes.empty())
                    p.buckets.erase(bit);
            }
            p.master.removeLast(c);
            p.bySeq.erase(op.seq);
            if (op.kind == TxnOp::Kind::AssertA)
                ++p.minSeq;
            else
                --p.maxSeq;
            p.clauses.pop_back();
            if (op.createdPred)
                preds_.erase(pit);
        }
        --generation_;
        --updates_;
    }
    txn_.clear();
    txnActive_ = false;
}

// ---------------------------------------------------------------------
// Serialization. Canonical form: predicates in functor order, clauses
// in sequence order (a master-list walk), atoms through a payload-local
// string table, floats by bit pattern. Canonical ordering makes
// save(load(save(x))) byte-identical to save(x) regardless of the
// original insertion order.

namespace
{

constexpr uint32_t kMagic = 0x4B434D44; // "KCMD"
constexpr uint32_t kVersion = 1;

enum : uint8_t
{
    tVar = 0,
    tAtom = 1,
    tInt = 2,
    tFloat = 3,
    tStruct = 4,
};

void
putU8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putI64(std::vector<uint8_t> &out, int64_t v)
{
    putU64(out, static_cast<uint64_t>(v));
}

void
putStr(std::vector<uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

struct PayloadReader
{
    const uint8_t *p;
    const uint8_t *end;

    void
    need(size_t n) const
    {
        if (static_cast<size_t>(end - p) < n)
            fatal("clause store payload truncated");
    }

    uint8_t
    u8()
    {
        need(1);
        return *p++;
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(*p++) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(*p++) << (8 * i);
        return v;
    }

    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }
};

struct AtomPool
{
    std::vector<AtomId> atoms;
    std::unordered_map<AtomId, uint32_t> index;

    uint32_t
    intern(AtomId a)
    {
        auto [it, fresh] = index.emplace(a, atoms.size());
        if (fresh)
            atoms.push_back(a);
        return it->second;
    }

    void
    collect(const TermRef &t)
    {
        if (!t)
            return;
        switch (t->kind()) {
          case TermKind::Atom:
            intern(t->atom());
            break;
          case TermKind::Struct:
            intern(t->functorName());
            for (const auto &a : t->args())
                collect(a);
            break;
          default:
            break;
        }
    }
};

void
encodeTerm(std::vector<uint8_t> &out, const TermRef &t, AtomPool &pool,
           std::unordered_map<const Term *, uint32_t> &var_ids)
{
    switch (t->kind()) {
      case TermKind::Var: {
        auto [it, fresh] = var_ids.emplace(t.get(), var_ids.size());
        putU8(out, tVar);
        putU32(out, it->second);
        (void)fresh;
        break;
      }
      case TermKind::Atom:
        putU8(out, tAtom);
        putU32(out, pool.intern(t->atom()));
        break;
      case TermKind::Int:
        putU8(out, tInt);
        putI64(out, t->intValue());
        break;
      case TermKind::Float: {
        double d = t->floatValue();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof bits);
        putU8(out, tFloat);
        putU64(out, bits);
        break;
      }
      case TermKind::Struct:
        putU8(out, tStruct);
        putU32(out, pool.intern(t->functorName()));
        putU32(out, t->arity());
        for (const auto &a : t->args())
            encodeTerm(out, a, pool, var_ids);
        break;
    }
}

TermRef
decodeTerm(PayloadReader &r, const std::vector<AtomId> &atoms,
           std::vector<TermRef> &vars, int depth = 0)
{
    if (depth > 100000)
        fatal("clause store payload: term nesting too deep");
    auto atomAt = [&atoms](uint32_t i) {
        if (i >= atoms.size())
            fatal("clause store payload: atom index ", i, " out of range");
        return atoms[i];
    };
    switch (r.u8()) {
      case tVar: {
        uint32_t id = r.u32();
        if (id >= vars.size())
            vars.resize(id + 1);
        if (!vars[id])
            vars[id] = Term::makeVar(cat("_D", id));
        return vars[id];
      }
      case tAtom:
        return Term::makeAtom(atomAt(r.u32()));
      case tInt:
        return Term::makeInt(r.i64());
      case tFloat: {
        uint64_t bits = r.u64();
        double d;
        std::memcpy(&d, &bits, sizeof d);
        return Term::makeFloat(d);
      }
      case tStruct: {
        AtomId name = atomAt(r.u32());
        uint32_t arity = r.u32();
        if (arity > 0xFF)
            fatal("clause store payload: arity ", arity, " out of range");
        std::vector<TermRef> args;
        args.reserve(arity);
        for (uint32_t i = 0; i < arity; ++i)
            args.push_back(decodeTerm(r, atoms, vars, depth + 1));
        return Term::makeStruct(name, std::move(args));
      }
      default:
        fatal("clause store payload: bad term tag");
    }
    return nullptr; // unreachable
}

} // namespace

void
ClauseStore::saveTo(std::vector<uint8_t> &out) const
{
    // Pass 1: the atom pool, in first-appearance order of the same
    // walk the encoder performs.
    AtomPool pool;
    for (const auto &[f, p] : preds_) {
        pool.intern(f.name);
        for (const SeqList::Node *n = p->master.head.next[0]; n;
             n = n->next[0]) {
            pool.collect(n->clause->head);
            pool.collect(n->clause->body);
        }
    }

    putU32(out, kMagic);
    putU32(out, kVersion);
    putU64(out, generation_);
    putU64(out, updates_);
    putU32(out, static_cast<uint32_t>(pool.atoms.size()));
    for (AtomId a : pool.atoms)
        putStr(out, atomText(a));
    putU32(out, static_cast<uint32_t>(preds_.size()));
    for (const auto &[f, p] : preds_) {
        putU32(out, pool.index.at(f.name));
        putU32(out, f.arity);
        putU8(out, p->declared ? 1 : 0);
        putI64(out, p->minSeq);
        putI64(out, p->maxSeq);
        putU64(out, p->clauses.size());
        for (const SeqList::Node *n = p->master.head.next[0]; n;
             n = n->next[0]) {
            const StoredClause *c = n->clause;
            putI64(out, c->seq);
            putU64(out, c->birth);
            putU64(out, c->death);
            putU8(out, c->body ? 1 : 0);
            std::unordered_map<const Term *, uint32_t> var_ids;
            encodeTerm(out, c->head, pool, var_ids);
            if (c->body)
                encodeTerm(out, c->body, pool, var_ids);
        }
    }
}

void
ClauseStore::loadFrom(const uint8_t *data, size_t size)
{
    clear();
    PayloadReader r{data, data + size};
    if (r.u32() != kMagic)
        fatal("clause store payload: bad magic");
    if (uint32_t v = r.u32(); v != kVersion)
        fatal("clause store payload: unsupported version ", v);
    generation_ = r.u64();
    updates_ = r.u64();

    uint32_t natoms = r.u32();
    std::vector<AtomId> atoms;
    atoms.reserve(natoms);
    for (uint32_t i = 0; i < natoms; ++i)
        atoms.push_back(internAtom(r.str()));

    uint32_t npreds = r.u32();
    for (uint32_t pi = 0; pi < npreds; ++pi) {
        uint32_t name_idx = r.u32();
        if (name_idx >= atoms.size())
            fatal("clause store payload: pred atom index out of range");
        Functor f{atoms[name_idx], r.u32()};
        Pred &p = internPred(f);
        p.declared = r.u8() != 0;
        p.minSeq = r.i64();
        p.maxSeq = r.i64();
        uint64_t nclauses = r.u64();
        for (uint64_t ci = 0; ci < nclauses; ++ci) {
            StoredClause c;
            c.seq = r.i64();
            c.birth = r.u64();
            c.death = r.u64();
            bool has_body = r.u8() != 0;
            std::vector<TermRef> vars;
            c.head = decodeTerm(r, atoms, vars);
            if (has_body)
                c.body = decodeTerm(r, atoms, vars);
            p.clauses.push_back(std::move(c));
            StoredClause *stored = &p.clauses.back();
            p.bySeq.emplace(stored->seq, stored);
            p.master.insert(stored);
            ArgKey key = ArgKey::forHead(stored->head);
            if (key.isAny()) {
                p.varList.insert(stored);
            } else {
                auto &bucket = p.buckets[key];
                if (!bucket)
                    bucket = std::make_unique<SeqList>();
                bucket->insert(stored);
            }
        }
    }
    if (r.p != r.end)
        fatal("clause store payload: trailing bytes");
}

// ---------------------------------------------------------------------
// Op-batch codec: the payload of one journal commit record. Reuses the
// structural term encoding above with a per-batch atom pool, so the
// bytes are stable across processes (atoms travel as text, floats by
// bit pattern) and a batch re-encoded from a decode is byte-identical.

void
ClauseStore::encodeOps(const std::vector<TxnOp> &ops,
                       std::vector<uint8_t> &out)
{
    // Pass 1: atom pool in first-appearance order of the encoder walk.
    AtomPool pool;
    for (const TxnOp &op : ops) {
        pool.intern(op.f.name);
        if (op.kind != TxnOp::Kind::Erase) {
            pool.collect(op.head);
            pool.collect(op.body);
        }
    }
    putU32(out, static_cast<uint32_t>(pool.atoms.size()));
    for (AtomId a : pool.atoms)
        putStr(out, atomText(a));
    putU32(out, static_cast<uint32_t>(ops.size()));
    for (const TxnOp &op : ops) {
        putU8(out, static_cast<uint8_t>(op.kind));
        putU32(out, pool.index.at(op.f.name));
        putU32(out, op.f.arity);
        putI64(out, op.seq);
        if (op.kind == TxnOp::Kind::Erase)
            continue;
        putU8(out, op.body ? 1 : 0);
        std::unordered_map<const Term *, uint32_t> var_ids;
        encodeTerm(out, op.head, pool, var_ids);
        if (op.body)
            encodeTerm(out, op.body, pool, var_ids);
    }
}

std::vector<TxnOp>
ClauseStore::decodeOps(const uint8_t *data, size_t size)
{
    PayloadReader r{data, data + size};
    uint32_t natoms = r.u32();
    if (natoms > size)
        fatal("op batch payload: atom count ", natoms, " exceeds payload");
    std::vector<AtomId> atoms;
    atoms.reserve(natoms);
    for (uint32_t i = 0; i < natoms; ++i)
        atoms.push_back(internAtom(r.str()));
    uint32_t nops = r.u32();
    if (nops > size)
        fatal("op batch payload: op count ", nops, " exceeds payload");
    std::vector<TxnOp> ops;
    ops.reserve(nops);
    for (uint32_t i = 0; i < nops; ++i) {
        TxnOp op;
        uint8_t kind = r.u8();
        if (kind > static_cast<uint8_t>(TxnOp::Kind::Erase))
            fatal("op batch payload: bad op kind ", unsigned(kind));
        op.kind = static_cast<TxnOp::Kind>(kind);
        uint32_t name_idx = r.u32();
        if (name_idx >= atoms.size())
            fatal("op batch payload: atom index out of range");
        op.f = Functor{atoms[name_idx], r.u32()};
        op.seq = r.i64();
        if (op.kind != TxnOp::Kind::Erase) {
            bool has_body = r.u8() != 0;
            std::vector<TermRef> vars;
            op.head = decodeTerm(r, atoms, vars);
            if (has_body)
                op.body = decodeTerm(r, atoms, vars);
        }
        ops.push_back(std::move(op));
    }
    if (r.p != r.end)
        fatal("op batch payload: trailing bytes");
    return ops;
}

void
ClauseStore::applyOp(const TxnOp &op)
{
    if (op.kind == TxnOp::Kind::Erase) {
        const uint64_t before = updates_;
        eraseClause(op.f, op.seq);
        if (updates_ == before) {
            fatal("journal replay diverged: retract of ",
                  atomText(op.f.name), "/", op.f.arity, " seq ", op.seq,
                  " found no live clause");
        }
        return;
    }
    const StoredClause &c = assertClause(op.f, op.head, op.body,
                                         op.kind == TxnOp::Kind::AssertA);
    if (c.seq != op.seq) {
        fatal("journal replay diverged: assert to ", atomText(op.f.name),
              "/", op.f.arity, " landed on seq ", c.seq,
              " but the record says ", op.seq);
    }
}

} // namespace kcm::db
