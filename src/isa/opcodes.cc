#include "isa/opcodes.hh"

#include "base/logging.hh"

namespace kcm
{

namespace
{

// Base cycle costs reflect the paper's calibration points: most data
// manipulation executes in one cycle (§3.1.1); immediate jumps and
// calls take two (§3.1.3); a minimal call/return pair costs five
// (§4.2), which we split call=2 / proceed=3 (the return refills the
// prefetch pipeline through P).
const OpcodeInfo infoTable[] = {
    // name               format               extra base
    {"halt",              InstrFormat::None,   0, 1},
    {"noop",              InstrFormat::None,   0, 1},
    {"jump",              InstrFormat::ValueB, 0, 2},
    {"call",              InstrFormat::ValueB, 0, 2},
    {"execute",           InstrFormat::ValueB, 0, 2},
    {"proceed",           InstrFormat::None,   0, 3},
    {"allocate",          InstrFormat::RegA,   0, 1},
    {"deallocate",        InstrFormat::RegA,   0, 1},
    {"fail",              InstrFormat::None,   0, 1},

    {"try_me_else",       InstrFormat::ValueB, 0, 1},
    {"retry_me_else",     InstrFormat::ValueB, 0, 1},
    {"trust_me",          InstrFormat::RegA,   0, 1},
    {"try",               InstrFormat::ValueB, 0, 2},
    {"retry",             InstrFormat::ValueB, 0, 2},
    {"trust",             InstrFormat::ValueB, 0, 2},
    {"neck",              InstrFormat::RegA,   0, 1},
    {"cut",               InstrFormat::RegA,   0, 1},
    {"get_level",         InstrFormat::RegA,   0, 1},
    {"cut_y",             InstrFormat::RegA,   0, 1},

    {"switch_on_term",    InstrFormat::ValueB, 4, 2},
    {"switch_on_constant", InstrFormat::ValueB, 0, 4},
    {"switch_on_structure", InstrFormat::ValueB, 0, 4},

    {"get_variable_x",    InstrFormat::RegA,   0, 1},
    {"get_variable_y",    InstrFormat::RegA,   0, 1},
    {"get_value_x",       InstrFormat::RegA,   0, 1},
    {"get_value_y",       InstrFormat::RegA,   0, 1},
    {"get_constant",      InstrFormat::ValueB, 0, 1},
    {"get_nil",           InstrFormat::RegA,   0, 1},
    {"get_list",          InstrFormat::RegA,   0, 1},
    {"get_structure",     InstrFormat::ValueB, 0, 1},

    {"put_variable_x",    InstrFormat::RegA,   0, 1},
    {"put_variable_y",    InstrFormat::RegA,   0, 1},
    {"put_value_x",       InstrFormat::RegA,   0, 1},
    {"put_value_y",       InstrFormat::RegA,   0, 1},
    {"put_unsafe_value",  InstrFormat::RegA,   0, 1},
    {"put_constant",      InstrFormat::ValueB, 0, 1},
    {"put_nil",           InstrFormat::RegA,   0, 1},
    {"put_list",          InstrFormat::RegA,   0, 1},
    {"put_structure",     InstrFormat::ValueB, 0, 1},

    {"unify_variable_x",  InstrFormat::RegA,   0, 1},
    {"unify_variable_y",  InstrFormat::RegA,   0, 1},
    {"unify_value_x",     InstrFormat::RegA,   0, 1},
    {"unify_value_y",     InstrFormat::RegA,   0, 1},
    {"unify_local_value_x", InstrFormat::RegA, 0, 1},
    {"unify_local_value_y", InstrFormat::RegA, 0, 1},
    {"unify_constant",    InstrFormat::ValueB, 0, 1},
    {"unify_nil",         InstrFormat::RegA,   0, 1},
    {"unify_list",        InstrFormat::RegA,   0, 1},
    {"unify_void",        InstrFormat::RegA,   0, 1},

    // Arithmetic base costs cover issue/decode; the operation's own
    // latency (int multiply/divide are multi-cycle, §3.1.1; the FPU
    // beats the integer path on multiply/divide, §4.2) is charged by
    // the execution unit.
    {"add",               InstrFormat::RegA,   0, 1},
    {"sub",               InstrFormat::RegA,   0, 1},
    {"mul",               InstrFormat::RegA,   0, 1},
    {"div",               InstrFormat::RegA,   0, 1},
    {"mod",               InstrFormat::RegA,   0, 1},
    {"neg",               InstrFormat::RegA,   0, 1},

    {"cmp_lt",            InstrFormat::RegA,   0, 1},
    {"cmp_gt",            InstrFormat::RegA,   0, 1},
    {"cmp_le",            InstrFormat::RegA,   0, 1},
    {"cmp_ge",            InstrFormat::RegA,   0, 1},
    {"cmp_eq",            InstrFormat::RegA,   0, 1},
    {"cmp_ne",            InstrFormat::RegA,   0, 1},

    {"escape",            InstrFormat::ValueB, 0, 3},

    {"move2",             InstrFormat::RegA,   0, 1},
    {"load",              InstrFormat::RegA,   0, 1},
    {"store",             InstrFormat::RegA,   0, 1},
    {"load_imm",          InstrFormat::ValueB, 0, 1},
    {"swap_tv",           InstrFormat::RegA,   0, 1},
};

static_assert(sizeof(infoTable) / sizeof(infoTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opcode info table out of sync");

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    if (idx >= static_cast<size_t>(Opcode::NumOpcodes))
        panic("bad opcode ", idx);
    return infoTable[idx];
}

std::string
opcodeName(Opcode op)
{
    return opcodeInfo(op).name;
}

} // namespace kcm
