/**
 * @file
 * The superinstruction catalog for the predecoded fast core.
 *
 * Hot WAM idioms — head-argument save runs after allocate, get/unify
 * chains over list cells, put+call goal setup, deallocate+execute
 * last-call pairs — are recognized by a predecode peephole
 * (core/predecode.cc) and their head instruction's dispatch token is
 * rewritten to a fused token, so the token-threaded core executes the
 * whole sequence with a single dispatch. Fusion is a host-side
 * routing change only: the fused handlers run the same per-opcode
 * microcode with the full per-instruction boundary (fetch prologue,
 * accounting epilogue, stop checks) between constituents, so
 * simulated cycles, memory traffic and trap semantics are
 * bit-identical to the unfused sequence (tests/test_fusion.cc holds
 * both cores to that).
 *
 * The catalog is one X-macro so the dispatch table, the handler
 * bodies, the peephole matcher and the profile-guided selector are
 * generated from a single list:
 *
 *  - F2(name, A, B):     fuse the sequential pair A;B
 *  - F3(name, A, B, C):  fuse the sequential triple A;B;C
 *  - FJ(name, A, B):     "likely target" pair — A transfers control
 *    through a dispatch table (switch_on_term); the fused handler
 *    runs A, and if the dynamic target turns out to be a B, executes
 *    it inline without re-dispatching.
 *
 * Entries are matched longest-first at each code position (the macro
 * lists triples before their pair prefixes), and selection is
 * controlled by MachineConfig::fusion: Static enables the whole
 * catalog, Profiled only the entries chosen from the profiler's
 * pair/triple histogram.
 */

#ifndef KCM_ISA_FUSION_HH
#define KCM_ISA_FUSION_HH

#include <array>
#include <cstdint>

#include "isa/decoded.hh"
#include "isa/opcodes.hh"

namespace kcm
{

// clang-format off
#define KCM_FUSION_CATALOG(F2, F3, FJ)                                  \
    /* environment setup: allocate + permanent-var saves */             \
    F3(alloc_gvy_gvy,   Allocate,      GetVariableY,   GetVariableY)    \
    F2(alloc_gvy,       Allocate,      GetVariableY)                    \
    F2(gvy_gvy,         GetVariableY,  GetVariableY)                    \
    /* list/structure head unification chains */                        \
    F3(glist_uvx_uvx,   GetList,       UnifyVariableX, UnifyVariableX)  \
    F3(glist_uvalx_uvx, GetList,       UnifyValueX,    UnifyVariableX)  \
    F2(glist_uvx,       GetList,       UnifyVariableX)                  \
    F2(glist_uvlx,      GetList,       UnifyValueX)                     \
    F2(gstruct_uvx,     GetStructure,  UnifyVariableX)                  \
    F2(uvx_uvx,         UnifyVariableX, UnifyVariableX)                 \
    F2(uvalx_uvx,       UnifyValueX,   UnifyVariableX)                  \
    /* head end: unify run into the neck, neck into goal setup */      \
    F2(uvx_neck,        UnifyVariableX, Neck)                           \
    F3(neck_pvalx_pvalx, Neck,         PutValueX,      PutValueX)       \
    F2(neck_pvalx,      Neck,          PutValueX)                       \
    /* goal construction + call */                                      \
    F3(plist_uvalx_uvx, PutList,       UnifyValueX,    UnifyVariableX)  \
    F3(pvalx_pvalx_exec, PutValueX,    PutValueX,      Execute)         \
    F2(plist_uvalx,     PutList,       UnifyValueX)                     \
    F2(pvx_call,        PutVariableX,  Call)                           \
    F2(pvalx_call,      PutValueX,     Call)                           \
    F2(pvaly_call,      PutValueY,     Call)                           \
    F2(pvalx_pvalx,     PutValueX,     PutValueX)                       \
    F2(pvalx_exec,      PutValueX,     Execute)                         \
    F2(pvaly_pvaly,     PutValueY,     PutValueY)                       \
    /* last-call pairs */                                               \
    F2(dealloc_exec,    Deallocate,    Execute)                         \
    F2(dealloc_proceed, Deallocate,    Proceed)                         \
    /* control transfers whose dynamic target is predictable: the
       procedure entry an execute lands on is almost always its
       switch_on_term, and a list-recursive predicate's switch sends
       the hot (list) case straight to a get_list clause head */       \
    FJ(exec_switch,     Execute,       SwitchOnTerm)                    \
    FJ(switch_glist,    SwitchOnTerm,  GetList)                         \
    FJ(switch_try,      SwitchOnTerm,  Try)
// clang-format on

/** One catalog entry. */
struct FusedSeq
{
    const char *name;   ///< short mnemonic (bench/test reporting)
    uint8_t length;     ///< number of constituent instructions (2 or 3)
    /** FJ entry: the second constituent is reached through a control
     *  transfer (dispatch table), not sequentially; the handler tests
     *  the dynamic target instead of the static next word. */
    bool likelyTarget;
    Opcode ops[3];      ///< constituents (ops[2] unused for pairs)
};

#define KCM_FUSION_COUNT_(...) +1
constexpr unsigned numFusedSeqs = 0 KCM_FUSION_CATALOG(
    KCM_FUSION_COUNT_, KCM_FUSION_COUNT_, KCM_FUSION_COUNT_);
#undef KCM_FUSION_COUNT_

/** Dispatch table size with every superinstruction token. */
constexpr unsigned numDispatchTokens = numOpcodeTokens + numFusedSeqs;
static_assert(numDispatchTokens <= 256,
              "dispatch tokens must fit the DecodedInstr::tok byte");

/** Dispatch token of catalog entry @p index. */
constexpr uint8_t
fusedToken(unsigned index)
{
    return static_cast<uint8_t>(numOpcodeTokens + index);
}

/** The catalog, in X-macro order (index == token - numOpcodeTokens). */
const std::array<FusedSeq, numFusedSeqs> &fusionCatalog();

} // namespace kcm

#endif // KCM_ISA_FUSION_HH
