/**
 * @file
 * The predecoded instruction form used by the host-fast execution
 * core.
 *
 * A raw 64-bit code word is decoded once — opcode validated into a
 * dense dispatch token, operand fields extracted, the Format B
 * constant materialized, and the opcode's base cycle cost copied in —
 * so the execution loop never touches the encoding again. The machine
 * translates the whole linked image into a flat vector of these after
 * load(); the decode-per-step oracle path builds one on the fly per
 * fetch. Both paths execute the same handler code over this struct,
 * which is what makes them cycle-for-cycle identical by construction.
 *
 * Predecoding is purely a host-side representation change: the
 * simulated machine still fetches every word through the code cache
 * and prefetch pipeline, so cache statistics and miss penalties are
 * unaffected.
 */

#ifndef KCM_ISA_DECODED_HH
#define KCM_ISA_DECODED_HH

#include "isa/instr.hh"
#include "isa/opcodes.hh"
#include "isa/word.hh"

namespace kcm
{

/** A fully decoded instruction word. */
struct DecodedInstr
{
    uint64_t raw = 0;  ///< original code word (trace / disassembly)
    Word constant;     ///< the Format B tagged constant, prebuilt
    uint32_t value = 0;
    int16_t offset = 0;
    /** Dense opcode token: the opcode if valid, otherwise
     *  numOpcodeTokens - 1 (the bad-instruction handler). Never
     *  rewritten — handlers that re-examine the instruction
     *  (execUnifyClass, get_nil vs get_constant) rely on it. */
    uint8_t op = 0;
    /**
     * Dispatch token: equal to op after plain decoding; the fusion
     * peephole rewrites it at the head of a recognized sequence to a
     * superinstruction token (>= numOpcodeTokens) so the threaded
     * core executes the whole sequence with one dispatch. Purely a
     * host-side routing byte: simulated semantics come from op.
     */
    uint8_t tok = 0;
    uint8_t r1 = 0, r2 = 0, r3 = 0, r4 = 0;
    uint8_t baseCycles = 0;
    bool inferenceMark = false;

    Opcode opcode() const { return Opcode(op); }
};

/** Dispatch table size: every opcode plus the invalid-word token. */
constexpr unsigned numOpcodeTokens =
    static_cast<unsigned>(Opcode::NumOpcodes) + 1;
constexpr uint8_t invalidOpcodeToken =
    static_cast<uint8_t>(Opcode::NumOpcodes);

/** Decode one raw code word. Never traps: words that are not valid
 *  instructions (switch tables, data) get the invalid token and only
 *  fault if control actually reaches them. */
inline DecodedInstr
decodeInstr(uint64_t raw)
{
    Instr in(raw);
    DecodedInstr d;
    d.raw = raw;
    uint8_t op = static_cast<uint8_t>((raw >> 56) & 0xFF);
    if (op < static_cast<uint8_t>(Opcode::NumOpcodes)) {
        d.op = op;
        d.baseCycles =
            static_cast<uint8_t>(opcodeInfo(Opcode(op)).baseCycles);
    } else {
        d.op = invalidOpcodeToken;
        d.baseCycles = 0;
    }
    d.tok = d.op;
    d.constant = in.constant();
    d.value = in.value();
    d.offset = in.offset();
    d.r1 = in.r1();
    d.r2 = in.r2();
    d.r3 = in.r3();
    d.r4 = in.r4();
    d.inferenceMark = in.inferenceMark();
    return d;
}

} // namespace kcm

#endif // KCM_ISA_DECODED_HH
