/**
 * @file
 * Disassembler for encoded KCM code.
 */

#ifndef KCM_ISA_DISASM_HH
#define KCM_ISA_DISASM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instr.hh"

namespace kcm
{

/**
 * Number of code words occupied by the instruction at @p index
 * (1 + any trailing table words).
 */
size_t instrLength(const std::vector<uint64_t> &code, size_t index);

/** Render the instruction at @p index as one line of assembly. */
std::string disasmOne(const std::vector<uint64_t> &code, size_t index);

/** Render [begin, end) as addressed assembly lines. */
std::string disasmRange(const std::vector<uint64_t> &code, size_t begin,
                        size_t end);

} // namespace kcm

#endif // KCM_ISA_DISASM_HH
