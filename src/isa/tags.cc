#include "isa/tags.hh"

namespace kcm
{

std::string
tagName(Tag tag)
{
    switch (tag) {
      case Tag::Ref: return "ref";
      case Tag::List: return "list";
      case Tag::Struct: return "struct";
      case Tag::Nil: return "nil";
      case Tag::Atom: return "atom";
      case Tag::Int: return "int";
      case Tag::Float: return "float";
      case Tag::FunctorWord: return "functor";
      case Tag::DataPtr: return "dataptr";
      case Tag::CodePtr: return "codeptr";
    }
    return "tag" + std::to_string(static_cast<int>(tag));
}

std::string
zoneName(Zone zone)
{
    switch (zone) {
      case Zone::None: return "none";
      case Zone::Global: return "global";
      case Zone::Local: return "local";
      case Zone::Control: return "control";
      case Zone::TrailZ: return "trail";
      case Zone::Static: return "static";
      case Zone::Heap: return "heap";
      case Zone::System: return "system";
    }
    return "zone" + std::to_string(static_cast<int>(zone));
}

} // namespace kcm
