#include "isa/disasm.hh"

#include <sstream>

#include "base/logging.hh"

namespace kcm
{

namespace
{

/** True if this opcode's tables double their entry count (key+addr). */
bool
hasPairTable(Opcode op)
{
    return op == Opcode::SwitchOnConstant || op == Opcode::SwitchOnStructure;
}

} // namespace

size_t
instrLength(const std::vector<uint64_t> &code, size_t index)
{
    if (index >= code.size())
        panic("instrLength: index out of range");
    Instr instr(code[index]);
    const OpcodeInfo &info = opcodeInfo(instr.opcode());
    size_t extra = info.fixedExtraWords;
    // Pair tables carry N (key, target) pairs plus a trailing miss
    // target word.
    if (hasPairTable(instr.opcode()))
        extra = 2 * instr.value() + 1;
    return 1 + extra;
}

std::string
disasmOne(const std::vector<uint64_t> &code, size_t index)
{
    Instr instr(code[index]);
    Opcode op = instr.opcode();
    const OpcodeInfo &info = opcodeInfo(op);
    std::ostringstream os;
    os << info.name;

    auto reg = [](Reg r) { return cat("x", int(r)); };

    switch (op) {
      case Opcode::Call:
      case Opcode::Execute:
      case Opcode::Try:
        os << " 0x" << std::hex << instr.value() << std::dec << "/"
           << int(instr.r1());
        break;
      case Opcode::Jump:
      case Opcode::Retry:
      case Opcode::Trust:
      case Opcode::RetryMeElse:
        os << " 0x" << std::hex << instr.value() << std::dec;
        break;
      case Opcode::TryMeElse:
        os << " 0x" << std::hex << instr.value() << std::dec << " arity "
           << int(instr.r1());
        break;
      case Opcode::Allocate:
      case Opcode::UnifyVoid:
      case Opcode::TrustMe:
        os << " " << int(instr.r1());
        break;
      case Opcode::GetConstant:
      case Opcode::PutConstant:
      case Opcode::UnifyConstant:
      case Opcode::LoadImm:
        os << " " << instr.constant().toString();
        if (op != Opcode::UnifyConstant)
            os << ", " << reg(instr.r2());
        break;
      case Opcode::GetStructure:
      case Opcode::PutStructure: {
        Word f = instr.constant();
        os << " " << atomTextSafe(f.functorName()) << "/"
           << f.functorArity() << ", " << reg(instr.r2());
        break;
      }
      case Opcode::Escape:
        os << " #" << instr.value() << "/" << int(instr.r1());
        break;
      case Opcode::SwitchOnTerm: {
        // A truncated or corrupt image may end mid-instruction; never
        // read table words past the code vector.
        if (index + 4 >= code.size()) {
            os << " <truncated>";
            break;
        }
        os << " var=0x" << std::hex << (code[index + 1] & 0xFFFFFFFF)
           << " const=0x" << (code[index + 2] & 0xFFFFFFFF) << " list=0x"
           << (code[index + 3] & 0xFFFFFFFF) << " struct=0x"
           << (code[index + 4] & 0xFFFFFFFF) << std::dec;
        break;
      }
      case Opcode::SwitchOnConstant:
      case Opcode::SwitchOnStructure: {
        unsigned n = instr.value();
        os << " [" << n << " entries]";
        for (unsigned i = 0; i < n && i < 8; ++i) {
            if (index + 2 + 2 * i >= code.size()) {
                os << " <truncated>";
                break;
            }
            Word key(code[index + 1 + 2 * i]);
            Word target(code[index + 2 + 2 * i]);
            os << " " << key.toString() << "->0x" << std::hex
               << target.addr() << std::dec;
        }
        break;
      }
      default:
        if (info.format == InstrFormat::RegA) {
            os << " " << reg(instr.r1());
            if (instr.r2() || instr.r3() || instr.r4())
                os << ", " << reg(instr.r2());
            if (instr.r3() || instr.r4())
                os << ", " << reg(instr.r3());
            if (instr.r4())
                os << ", " << reg(instr.r4());
            if (instr.offset())
                os << ", " << instr.offset();
        } else if (info.format == InstrFormat::ValueB) {
            os << " 0x" << std::hex << instr.value() << std::dec;
        }
        break;
    }
    return os.str();
}

std::string
disasmRange(const std::vector<uint64_t> &code, size_t begin, size_t end)
{
    std::ostringstream os;
    size_t index = begin;
    while (index < end && index < code.size()) {
        os << "0x" << std::hex << index << std::dec << ":\t"
           << disasmOne(code, index) << "\n";
        index += instrLength(code, index);
    }
    return os.str();
}

} // namespace kcm
