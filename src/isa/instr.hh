/**
 * @file
 * 64-bit instruction word encoding/decoding (Fig. 3).
 *
 * Field layout (bit positions within the 64-bit word):
 *
 *   63..56  opcode
 *   55..52  type field (constant tag, e.g. for get_constant)
 *   51..48  reserved
 *   47..42  r1
 *   41..36  r2
 *
 * Format A value half:
 *   31..26  r3
 *   25..20  r4
 *   15..0   signed 16-bit offset
 *
 * Format B value half:
 *   31..0   value (constant / absolute code address)
 */

#ifndef KCM_ISA_INSTR_HH
#define KCM_ISA_INSTR_HH

#include <cstdint>

#include "isa/opcodes.hh"
#include "isa/word.hh"

namespace kcm
{

/** A register number in the 64 x 64-bit register file. */
using Reg = uint8_t;

/** X (argument/temporary) registers available to compiled code; the
 *  remaining file entries hold machine state and shadow registers. */
constexpr unsigned numXRegs = 48;

/** An encoded KCM instruction word. */
class Instr
{
  public:
    constexpr Instr() = default;
    constexpr explicit Instr(uint64_t raw) : raw_(raw) {}

    constexpr uint64_t raw() const { return raw_; }

    constexpr Opcode opcode() const { return Opcode((raw_ >> 56) & 0xFF); }
    constexpr Tag typeField() const { return Tag((raw_ >> 52) & 0xF); }
    constexpr Reg r1() const { return (raw_ >> 42) & 0x3F; }
    constexpr Reg r2() const { return (raw_ >> 36) & 0x3F; }
    constexpr Reg r3() const { return (raw_ >> 26) & 0x3F; }
    constexpr Reg r4() const { return (raw_ >> 20) & 0x3F; }
    constexpr uint32_t value() const { return uint32_t(raw_); }
    constexpr int16_t offset() const { return int16_t(raw_ & 0xFFFF); }

    /**
     * Inference-count mark (bit 48, reserved in both formats): set by
     * the compiler on the instruction realizing each source-level goal
     * invocation, so the machine can report Klips with the paper's
     * implementation-independent definition of an inference (§4.2).
     */
    constexpr bool inferenceMark() const { return (raw_ >> 48) & 1; }

    constexpr Instr
    withMark() const
    {
        return Instr(raw_ | (1ULL << 48));
    }

    /** The constant word a Format B instruction denotes. */
    constexpr Word
    constant() const
    {
        return Word::make(typeField(), Zone::None, value());
    }

    // --- Builders ---

    static constexpr Instr
    make(Opcode op)
    {
        return Instr(uint64_t(static_cast<uint8_t>(op)) << 56);
    }

    static constexpr Instr
    makeRegs(Opcode op, Reg r1, Reg r2 = 0, Reg r3 = 0, Reg r4 = 0,
             int16_t offset = 0)
    {
        return Instr((uint64_t(static_cast<uint8_t>(op)) << 56) |
                     (uint64_t(r1 & 0x3F) << 42) |
                     (uint64_t(r2 & 0x3F) << 36) |
                     (uint64_t(r3 & 0x3F) << 26) |
                     (uint64_t(r4 & 0x3F) << 20) |
                     uint64_t(uint16_t(offset)));
    }

    static constexpr Instr
    makeValue(Opcode op, uint32_t value, Reg r1 = 0, Reg r2 = 0,
              Tag type = Tag::Ref)
    {
        return Instr((uint64_t(static_cast<uint8_t>(op)) << 56) |
                     (uint64_t(static_cast<uint8_t>(type) & 0xF) << 52) |
                     (uint64_t(r1 & 0x3F) << 42) |
                     (uint64_t(r2 & 0x3F) << 36) | uint64_t(value));
    }

    /** Format B with a full tagged constant. */
    static constexpr Instr
    makeConstant(Opcode op, Word constant, Reg r1 = 0, Reg r2 = 0)
    {
        return makeValue(op, constant.value(), r1, r2, constant.tag());
    }

    /** Re-encode with a different 32-bit value (used by the linker to
     *  patch branch targets). */
    constexpr Instr
    withValue(uint32_t value) const
    {
        return Instr((raw_ & 0xFFFFFFFF00000000ULL) | value);
    }

    constexpr bool operator==(const Instr &other) const = default;

  private:
    uint64_t raw_ = 0;
};

static_assert(sizeof(Instr) == 8, "KCM instructions are 64-bit");

} // namespace kcm

#endif // KCM_ISA_INSTR_HH
