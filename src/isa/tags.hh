/**
 * @file
 * KCM data types and memory zones.
 *
 * The paper's word format (§2.3, Fig. 2 and §3.2.2, Fig. 7) dedicates
 * 4 bits to a type field (16 possible types such as integer, floating
 * point, variable, list, data pointer, code pointer) and 4 bits to a
 * zone field mapping stacks and data areas of the virtual space.
 */

#ifndef KCM_ISA_TAGS_HH
#define KCM_ISA_TAGS_HH

#include <cstdint>
#include <string>

namespace kcm
{

/**
 * The 16 data types encoded in bits 51..48 of a KCM word.
 *
 * Ref/List/Struct are the WAM pointer types; DataPtr is an untyped
 * pointer used for control structures (environments, choice points);
 * CodePtr addresses the code space; FunctorWord is the descriptor word
 * stored at the head of a structure.
 */
enum class Tag : uint8_t
{
    Ref = 0,        ///< reference / unbound variable (self reference)
    List = 1,       ///< pointer to a cons pair on the global stack
    Struct = 2,     ///< pointer to functor word + arguments
    Nil = 3,        ///< the empty list constant
    Atom = 4,       ///< interned atom constant
    Int = 5,        ///< 32-bit signed integer
    Float = 6,      ///< 32-bit IEEE float (stored in the value part)
    FunctorWord = 7, ///< structure descriptor: atom id + arity
    DataPtr = 8,    ///< plain data pointer (control structures, trail)
    CodePtr = 9,    ///< address in the code space
    // 10..15 reserved (strings, dbrefs, ... in the full SEPIA system)
};

/** Number of encodable tags. */
constexpr unsigned numTags = 16;

/**
 * Memory zones (bits 55..52). Stacks, heaps and other data areas are
 * mapped to zones; the data cache selects one of its 8 sections by the
 * low 3 bits of the zone (§3.2.4), so the active zones live in 0..7.
 */
enum class Zone : uint8_t
{
    None = 0,    ///< non-address data (numbers, atoms)
    Global = 1,  ///< global stack: lists and structures
    Local = 2,   ///< local stack: environments (split-stack model)
    Control = 3, ///< choice point stack (split-stack model)
    TrailZ = 4,  ///< trail stack
    Static = 5,  ///< static data area
    Heap = 6,    ///< general heap (code-space bookkeeping, symbol data)
    System = 7,  ///< system/scratch area
};

/** Number of zones with dedicated cache sections. */
constexpr unsigned numZones = 8;

/** Printable tag name. */
std::string tagName(Tag tag);

/** Printable zone name. */
std::string zoneName(Zone zone);

/** True if a word with this tag addresses the data space. */
constexpr bool
tagIsDataAddress(Tag tag)
{
    return tag == Tag::Ref || tag == Tag::List || tag == Tag::Struct ||
           tag == Tag::DataPtr;
}

/** True if the tag is an atomic constant (no pointer part). */
constexpr bool
tagIsAtomic(Tag tag)
{
    return tag == Tag::Nil || tag == Tag::Atom || tag == Tag::Int ||
           tag == Tag::Float;
}

} // namespace kcm

#endif // KCM_ISA_TAGS_HH
