/**
 * @file
 * The KCM instruction set.
 *
 * A WAM-derived, fixed-width 64-bit instruction set (§2.3, Fig. 3).
 * Two basic formats are used:
 *
 *  - Format A (register format): opcode, up to four 6-bit register
 *    fields (two sources, two destinations — the four-address format
 *    of §3.1.1) and a 16-bit signed offset.
 *  - Format B (value format): opcode, two 6-bit register fields, a
 *    4-bit type field and a full 32-bit value (constant / absolute
 *    code address — all branch targets are absolute, §3.1.3).
 *
 * The switch instructions are the only multi-word instructions (§4.1):
 * their dispatch tables follow the instruction word in the code space.
 */

#ifndef KCM_ISA_OPCODES_HH
#define KCM_ISA_OPCODES_HH

#include <cstdint>
#include <string>

namespace kcm
{

enum class Opcode : uint8_t
{
    // Control
    Halt = 0,       ///< stop the machine (success end of a query)
    Noop,
    Jump,           ///< absolute jump (2 cycles: pipeline break)
    Call,           ///< call predicate: value = entry, r1 = arity
    Execute,        ///< last-call: tail jump to predicate
    Proceed,        ///< return through CP
    Allocate,       ///< push environment, r1 = #permanent vars
    Deallocate,     ///< pop environment
    FailOp,         ///< explicit failure (backtrack)

    // Choice points and shallow backtracking (§3.1.5)
    TryMeElse,      ///< value = alternative addr, r1 = arity
    RetryMeElse,    ///< value = alternative addr
    TrustMe,        ///< last alternative
    Try,            ///< indexed block: value = clause addr, r1 = arity
    Retry,          ///< indexed block: value = clause addr
    Trust,          ///< indexed block: value = clause addr
    Neck,           ///< end of head+guard: materialize delayed choice point
    Cut,            ///< cut to the clause's entry choice point
    GetLevel,       ///< Yn := current cut barrier (for deep cuts)
    CutY,           ///< cut to barrier saved in Yn

    // Indexing (multi-word, §4.1)
    SwitchOnTerm,      ///< 4 table words follow: var/const/list/struct
    SwitchOnConstant,  ///< value = #entries; pairs follow
    SwitchOnStructure, ///< value = #entries; pairs follow

    // Head unification (get)
    GetVariableX,   ///< Xr1 := Ar2
    GetVariableY,   ///< Yr1 := Ar2
    GetValueX,      ///< unify Xr1, Ar2
    GetValueY,      ///< unify Yr1, Ar2
    GetConstant,    ///< unify constant(type,value), Ar2
    GetNil,         ///< unify [], Ar2
    GetList,        ///< unify list, Ar2; sets read/write mode
    GetStructure,   ///< unify struct f/n (value = functor), Ar2

    // Goal argument construction (put)
    PutVariableX,   ///< new heap var; Xr1 and Ar2 point at it
    PutVariableY,   ///< init Yr1 unbound; Ar2 := ref(Yr1)
    PutValueX,      ///< Ar2 := Xr1
    PutValueY,      ///< Ar2 := Yr1
    PutUnsafeValue, ///< Ar2 := globalized Yr1
    PutConstant,    ///< Ar2 := constant(type,value)
    PutNil,         ///< Ar2 := []
    PutList,        ///< Ar2 := list(H); write mode
    PutStructure,   ///< Ar2 := struct; push functor; write mode

    // Subterm unification (mode flag selects read/write, §3.1.4)
    UnifyVariableX,
    UnifyVariableY,
    UnifyValueX,
    UnifyValueY,
    UnifyLocalValueX,
    UnifyLocalValueY,
    UnifyConstant,
    UnifyNil,
    UnifyList,      ///< chain: next subterm is a cons at S/H
    UnifyVoid,      ///< r1 = count

    // Native (integer-arithmetic mode) operations; operate on tagged
    // words through the ALU/FPU (§3.1.1); sources are dereferenced.
    NativeAdd,      ///< Xr3 := Xr1 + Xr2
    NativeSub,
    NativeMul,
    NativeDiv,
    NativeMod,
    NativeNeg,      ///< Xr3 := -Xr1

    // Inline arithmetic comparisons: conditional branches on the ALU
    // status bits (1 cycle untaken / 4 taken, §3.1.3). Failure of the
    // comparison triggers backtracking.
    CmpLt,
    CmpGt,
    CmpLe,
    CmpGe,
    CmpEq,
    CmpNe,

    // Escape to a host/runtime builtin (§2.1): value = builtin id.
    Escape,

    // Basic data manipulation (§3.1.1, §3.1.2) — used by the runtime
    // library and available to assembler programmers.
    Move2,          ///< Xr3 := Xr1 and Xr4 := Xr2, one cycle
    Load,           ///< Xr3 := mem[Xr1 + offset]; Xr2 := Xr1 + offset
    Store,          ///< mem[Xr1 + offset] := Xr3; Xr2 := Xr1 + offset
    LoadImm,        ///< Xr1 := constant(type,value)
    SwapTV,         ///< TVM: Xr3 := swap tag/value of Xr1

    NumOpcodes,
};

/** Which encoding format an opcode uses. */
enum class InstrFormat : uint8_t
{
    None,   ///< no operands
    RegA,   ///< format A: register fields + offset
    ValueB, ///< format B: registers + type + 32-bit value
};

/** Static description of one opcode. */
struct OpcodeInfo
{
    const char *name;
    InstrFormat format;
    /** Fixed number of table words following the instruction
     *  (switch_on_term); variable-length tables encode their length
     *  in the value field. */
    unsigned fixedExtraWords;
    /** Base microcode cost in cycles; dynamic costs (dereferencing,
     *  trailing loops, pipeline breaks) are added by the machine. */
    unsigned baseCycles;
};

/** Lookup the static info of @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Opcode mnemonic. */
std::string opcodeName(Opcode op);

} // namespace kcm

#endif // KCM_ISA_OPCODES_HH
