#include "isa/word.hh"

#include <sstream>

namespace kcm
{

std::string
Word::toString() const
{
    std::ostringstream os;
    switch (tag()) {
      case Tag::Int:
        os << "int:" << intValue();
        break;
      case Tag::Float:
        os << "float:" << floatValue();
        break;
      case Tag::Atom:
        os << "atom:" << atomTextSafe(atom());
        break;
      case Tag::Nil:
        os << "[]";
        break;
      case Tag::FunctorWord:
        os << "functor:" << atomTextSafe(functorName()) << "/"
           << functorArity();
        break;
      default:
        os << tagName(tag()) << ":" << zoneName(zone()) << ":0x" << std::hex
           << addr();
        break;
    }
    return os.str();
}

} // namespace kcm
