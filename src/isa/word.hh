/**
 * @file
 * The 64-bit tagged KCM data word (§2.3 Fig. 2, §3.2.2 Fig. 7).
 *
 * Layout:
 *   bits 63..56  GC / mark bits (manipulated by the TVM)
 *   bits 55..52  zone
 *   bits 51..48  type
 *   bits 47..32  unused
 *   bits 31..0   value (integer, float bits, atom id, or word address)
 */

#ifndef KCM_ISA_WORD_HH
#define KCM_ISA_WORD_HH

#include <cstdint>
#include <cstring>
#include <string>

#include "isa/tags.hh"
#include "prolog/atom_table.hh"

namespace kcm
{

/** A word address in one of KCM's virtual spaces (28 bits used). */
using Addr = uint32_t;

/** Mask of the implemented virtual address bits (§3.2.2). */
constexpr Addr addrMask = 0x0FFFFFFF;

/**
 * One 64-bit tagged word. Trivially copyable; the raw 64-bit image is
 * what lives in the simulated memory.
 */
class Word
{
  public:
    constexpr Word() = default;
    constexpr explicit Word(uint64_t raw) : raw_(raw) {}

    /** Assemble from fields. */
    static constexpr Word
    make(Tag tag, Zone zone, uint32_t value)
    {
        return Word((uint64_t(static_cast<uint8_t>(zone) & 0xF) << 52) |
                    (uint64_t(static_cast<uint8_t>(tag) & 0xF) << 48) |
                    uint64_t(value));
    }

    // --- Constructors for the common word kinds ---

    static constexpr Word
    makeInt(int32_t v)
    {
        return make(Tag::Int, Zone::None, static_cast<uint32_t>(v));
    }

    static Word
    makeFloat(float f)
    {
        uint32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        return make(Tag::Float, Zone::None, bits);
    }

    static constexpr Word
    makeAtom(AtomId atom)
    {
        return make(Tag::Atom, Zone::None, atom);
    }

    static constexpr Word
    makeNil()
    {
        return make(Tag::Nil, Zone::None, 0);
    }

    /** Unbound variable at @p addr: a self-reference. */
    static constexpr Word
    makeUnbound(Zone zone, Addr addr)
    {
        return make(Tag::Ref, zone, addr);
    }

    static constexpr Word
    makeRef(Zone zone, Addr addr)
    {
        return make(Tag::Ref, zone, addr);
    }

    static constexpr Word
    makeList(Zone zone, Addr addr)
    {
        return make(Tag::List, zone, addr);
    }

    static constexpr Word
    makeStruct(Zone zone, Addr addr)
    {
        return make(Tag::Struct, zone, addr);
    }

    static constexpr Word
    makeDataPtr(Zone zone, Addr addr)
    {
        return make(Tag::DataPtr, zone, addr);
    }

    static constexpr Word
    makeCodePtr(Addr addr)
    {
        return make(Tag::CodePtr, Zone::None, addr);
    }

    /** Structure descriptor word: functor name + arity in the value. */
    static constexpr Word
    makeFunctor(AtomId name, uint32_t arity)
    {
        return make(Tag::FunctorWord, Zone::None,
                    ((name & 0x00FFFFFF) << 8) | (arity & 0xFF));
    }

    // --- Field accessors ---

    constexpr uint64_t raw() const { return raw_; }
    constexpr Tag tag() const { return Tag((raw_ >> 48) & 0xF); }
    constexpr Zone zone() const { return Zone((raw_ >> 52) & 0xF); }
    constexpr uint32_t value() const { return uint32_t(raw_); }
    constexpr uint8_t gcBits() const { return uint8_t(raw_ >> 56); }

    constexpr Addr addr() const { return value() & addrMask; }

    constexpr int32_t intValue() const
    {
        return static_cast<int32_t>(value());
    }

    float
    floatValue() const
    {
        float f;
        uint32_t bits = value();
        std::memcpy(&f, &bits, sizeof(f));
        return f;
    }

    constexpr AtomId atom() const { return value(); }

    constexpr AtomId functorName() const { return (value() >> 8) & 0xFFFFFF; }
    constexpr uint32_t functorArity() const { return value() & 0xFF; }

    // --- Predicates ---

    constexpr bool isRef() const { return tag() == Tag::Ref; }
    constexpr bool isList() const { return tag() == Tag::List; }
    constexpr bool isStruct() const { return tag() == Tag::Struct; }
    constexpr bool isNil() const { return tag() == Tag::Nil; }
    constexpr bool isAtom() const { return tag() == Tag::Atom; }
    constexpr bool isInt() const { return tag() == Tag::Int; }
    constexpr bool isFloat() const { return tag() == Tag::Float; }
    constexpr bool isFunctorWord() const
    {
        return tag() == Tag::FunctorWord;
    }
    constexpr bool isDataPtr() const { return tag() == Tag::DataPtr; }
    constexpr bool isCodePtr() const { return tag() == Tag::CodePtr; }
    constexpr bool isNumber() const { return isInt() || isFloat(); }
    constexpr bool isAtomic() const { return tagIsAtomic(tag()); }
    constexpr bool isDataAddress() const { return tagIsDataAddress(tag()); }

    /** An unbound variable is a Ref whose value points at itself; the
     *  machine checks that externally (needs the address it sits at). */

    /** TVM operations (§3.1.1): swap tag and value halves. */
    constexpr Word
    swapped() const
    {
        return Word((raw_ << 32) | (raw_ >> 32));
    }

    /** TVM operation: replace the GC bits. */
    constexpr Word
    withGcBits(uint8_t bits) const
    {
        return Word((raw_ & 0x00FFFFFFFFFFFFFFULL) | (uint64_t(bits) << 56));
    }

    constexpr bool operator==(const Word &other) const = default;

    /** Debug rendering: "tag:zone:value". */
    std::string toString() const;

  private:
    uint64_t raw_ = 0;
};

static_assert(sizeof(Word) == 8, "KCM words are 64-bit");

} // namespace kcm

#endif // KCM_ISA_WORD_HH
