#include "isa/fusion.hh"

namespace kcm
{

const std::array<FusedSeq, numFusedSeqs> &
fusionCatalog()
{
#define KCM_FUSION_ENTRY2_(nm, A, B)                                    \
    FusedSeq{#nm, 2, false, {Opcode::A, Opcode::B, Opcode::Halt}},
#define KCM_FUSION_ENTRY3_(nm, A, B, C)                                 \
    FusedSeq{#nm, 3, false, {Opcode::A, Opcode::B, Opcode::C}},
#define KCM_FUSION_ENTRYJ_(nm, A, B)                                    \
    FusedSeq{#nm, 2, true, {Opcode::A, Opcode::B, Opcode::Halt}},

    static const std::array<FusedSeq, numFusedSeqs> catalog = {{
        KCM_FUSION_CATALOG(KCM_FUSION_ENTRY2_, KCM_FUSION_ENTRY3_,
                           KCM_FUSION_ENTRYJ_)
    }};

#undef KCM_FUSION_ENTRY2_
#undef KCM_FUSION_ENTRY3_
#undef KCM_FUSION_ENTRYJ_

    return catalog;
}

} // namespace kcm
