/**
 * @file
 * Escape builtins: the predicates served by the runtime library and
 * the host (Fig. 1 — the host acts as an I/O and service processor
 * for the back end).
 */

#include <algorithm>
#include <functional>

#include "base/logging.hh"
#include "core/machine.hh"
#include "prolog/writer.hh"

namespace kcm
{

namespace
{

/** Standard order class of a dereferenced word. */
int
orderClass(Word w)
{
    if (w.isRef())
        return 0;
    if (w.isNumber())
        return 1;
    if (w.isNil() || w.isAtom())
        return 2;
    return 3; // compound
}

} // namespace

void
Machine::execEscape(const DecodedInstr &instr)
{
    BuiltinId id = static_cast<BuiltinId>(instr.value);
    const BuiltinDef &def = builtinById(id);
    cycles_ += def.extraCycles;

    auto unify_or_fail = [&](Word a, Word b) {
        if (!unify(a, b))
            fail();
    };

    // Untimed recursive helpers used by the structural builtins. Their
    // cost is modelled by the flat extraCycles of the builtin.
    std::function<int(Word, Word)> compare_terms = [&](Word a,
                                                       Word b) -> int {
        Word da = deref(a);
        Word db = deref(b);
        int ca = orderClass(da);
        int cb = orderClass(db);
        if (ca != cb)
            return ca < cb ? -1 : 1;
        switch (ca) {
          case 0: // variables: by cell address
            if (da.addr() != db.addr())
                return da.addr() < db.addr() ? -1 : 1;
            return 0;
          case 1: { // numbers
            double va = da.isInt() ? da.intValue() : da.floatValue();
            double vb = db.isInt() ? db.intValue() : db.floatValue();
            if (va != vb)
                return va < vb ? -1 : 1;
            return 0;
          }
          case 2: { // atoms: alphabetical
            const std::string &ta =
                da.isNil() ? atomText(AtomTable::instance().nil)
                           : atomText(da.atom());
            const std::string &tb =
                db.isNil() ? atomText(AtomTable::instance().nil)
                           : atomText(db.atom());
            int c = ta.compare(tb);
            return c < 0 ? -1 : c > 0 ? 1 : 0;
          }
          default: { // compounds: arity, then name, then args
            AtomId na;
            AtomId nb;
            uint32_t aa;
            uint32_t ab;
            Addr base_a;
            Addr base_b;
            if (da.isList()) {
                na = AtomTable::instance().dot;
                aa = 2;
                base_a = da.addr() - 1; // args at base+1, base+2
            } else {
                Word f = readData(Word::makeDataPtr(da.zone(), da.addr()));
                na = f.functorName();
                aa = f.functorArity();
                base_a = da.addr();
            }
            if (db.isList()) {
                nb = AtomTable::instance().dot;
                ab = 2;
                base_b = db.addr() - 1;
            } else {
                Word f = readData(Word::makeDataPtr(db.zone(), db.addr()));
                nb = f.functorName();
                ab = f.functorArity();
                base_b = db.addr();
            }
            if (aa != ab)
                return aa < ab ? -1 : 1;
            if (na != nb)
                return atomText(na) < atomText(nb) ? -1 : 1;
            for (uint32_t i = 1; i <= aa; ++i) {
                Word ua = readData(
                    Word::makeDataPtr(da.zone(), base_a + i));
                Word ub = readData(
                    Word::makeDataPtr(db.zone(), base_b + i));
                int c = compare_terms(ua, ub);
                if (c)
                    return c;
            }
            return 0;
          }
        }
    };

    // Generic arithmetic evaluation over heap terms.
    std::function<bool(Word, double &, bool &)> eval_generic =
        [&](Word w, double &out, bool &is_float) -> bool {
        Word d = deref(w);
        if (d.isInt()) {
            out = d.intValue();
            return true;
        }
        if (d.isFloat()) {
            out = d.floatValue();
            is_float = true;
            return true;
        }
        if (!d.isStruct())
            return false;
        Word f = readData(Word::makeDataPtr(d.zone(), d.addr()));
        const std::string &name = atomText(f.functorName());
        uint32_t n = f.functorArity();
        auto arg = [&](uint32_t i) {
            return readData(Word::makeDataPtr(d.zone(), d.addr() + i));
        };
        if (n == 1) {
            double a;
            if (!eval_generic(arg(1), a, is_float))
                return false;
            if (name == "-") {
                out = -a;
                return true;
            }
            if (name == "+") {
                out = a;
                return true;
            }
            if (name == "abs") {
                out = a < 0 ? -a : a;
                return true;
            }
            return false;
        }
        if (n == 2) {
            double a;
            double b;
            if (!eval_generic(arg(1), a, is_float) ||
                !eval_generic(arg(2), b, is_float)) {
                return false;
            }
            if (name == "+") { out = a + b; return true; }
            if (name == "-") { out = a - b; return true; }
            if (name == "*") { out = a * b; return true; }
            if (name == "//" || name == "/") {
                if (b == 0)
                    return false;
                if (!is_float && name == "//") {
                    out = double(int64_t(a) / int64_t(b));
                    return true;
                }
                if (name == "/") {
                    if (is_float) {
                        out = a / b;
                        return true;
                    }
                    out = double(int64_t(a) / int64_t(b));
                    return true;
                }
                out = a / b;
                return true;
            }
            if (name == "mod") {
                if (int64_t(b) == 0)
                    return false;
                out = double(int64_t(a) % int64_t(b));
                return true;
            }
            if (name == "min") { out = std::min(a, b); return true; }
            if (name == "max") { out = std::max(a, b); return true; }
            return false;
        }
        return false;
    };

    auto arith_result_word = [&](double v, bool is_float) {
        if (is_float)
            return Word::makeFloat(static_cast<float>(v));
        return Word::makeInt(static_cast<int32_t>(v));
    };

    auto generic_compare = [&](auto cmp) {
        double a;
        double b;
        bool fa = false;
        bool fb = false;
        if (!eval_generic(x_[0], a, fa) || !eval_generic(x_[1], b, fb)) {
            fail();
            return;
        }
        if (!cmp(a, b))
            fail();
    };

    switch (id) {
      case BuiltinId::Write:
      case BuiltinId::Writeq:
      case BuiltinId::WriteCanonical: {
        TermRef t = exportTerm(x_[0]);
        WriteOptions options;
        options.quoted = id != BuiltinId::Write;
        options.ignoreOps = id == BuiltinId::WriteCanonical;
        static OperatorTable ops;
        hostWrite(writeTerm(t, ops, options));
        break;
      }
      case BuiltinId::Nl:
        hostWrite("\n");
        break;
      case BuiltinId::TabB: {
        Word w = deref(x_[0]);
        if (!w.isInt()) {
            fail();
            break;
        }
        hostWrite(std::string(static_cast<size_t>(
                                  std::max<int32_t>(0, w.intValue())),
                              ' '));
        break;
      }
      case BuiltinId::Halt:
        halted_ = true;
        break;

      case BuiltinId::Var:
        if (!deref(x_[0]).isRef())
            fail();
        break;
      case BuiltinId::NonVar:
        if (deref(x_[0]).isRef())
            fail();
        break;
      case BuiltinId::AtomP: {
        Word w = deref(x_[0]);
        if (!w.isAtom() && !w.isNil())
            fail();
        break;
      }
      case BuiltinId::AtomicP: {
        Word w = deref(x_[0]);
        if (!w.isAtomic())
            fail();
        break;
      }
      case BuiltinId::IntegerP:
        if (!deref(x_[0]).isInt())
            fail();
        break;
      case BuiltinId::FloatP:
        if (!deref(x_[0]).isFloat())
            fail();
        break;
      case BuiltinId::NumberP:
        if (!deref(x_[0]).isNumber())
            fail();
        break;
      case BuiltinId::CompoundP: {
        Word w = deref(x_[0]);
        if (!w.isList() && !w.isStruct())
            fail();
        break;
      }

      case BuiltinId::FunctorB: {
        Word t = deref(x_[0]);
        if (!t.isRef()) {
            Word name;
            Word arity;
            if (t.isList()) {
                name = Word::makeAtom(AtomTable::instance().dot);
                arity = Word::makeInt(2);
            } else if (t.isStruct()) {
                Word f = readData(Word::makeDataPtr(t.zone(), t.addr()));
                name = Word::makeAtom(f.functorName());
                arity = Word::makeInt(
                    static_cast<int32_t>(f.functorArity()));
            } else {
                name = t;
                arity = Word::makeInt(0);
            }
            if (!unify(x_[1], name) || !unify(x_[2], arity))
                fail();
            break;
        }
        // Construct: functor(T, name, arity) with T unbound.
        Word name = deref(x_[1]);
        Word arity = deref(x_[2]);
        if (!arity.isInt() || arity.intValue() < 0 ||
            (!name.isAtom() && !name.isNil() && !name.isNumber())) {
            fail();
            break;
        }
        int32_t n = arity.intValue();
        if (n == 0) {
            unify_or_fail(t, name);
            break;
        }
        if (!name.isAtom()) {
            fail();
            break;
        }
        Word built;
        if (name.atom() == AtomTable::instance().dot && n == 2) {
            built = Word::makeList(Zone::Global, h_);
            newHeapVar();
            newHeapVar();
        } else {
            built = Word::makeStruct(Zone::Global, h_);
            pushHeapCell(Word::makeFunctor(name.atom(),
                                           static_cast<uint32_t>(n)));
            for (int32_t i = 0; i < n; ++i)
                newHeapVar();
        }
        unify_or_fail(t, built);
        break;
      }

      case BuiltinId::ArgB: {
        Word n = deref(x_[0]);
        Word t = deref(x_[1]);
        if (!n.isInt()) {
            fail();
            break;
        }
        int32_t i = n.intValue();
        if (t.isList()) {
            if (i < 1 || i > 2) {
                fail();
                break;
            }
            Word cell = readData(
                Word::makeDataPtr(t.zone(), t.addr() + (i - 1)));
            unify_or_fail(x_[2], cell);
            break;
        }
        if (!t.isStruct()) {
            fail();
            break;
        }
        Word f = readData(Word::makeDataPtr(t.zone(), t.addr()));
        if (i < 1 || uint32_t(i) > f.functorArity()) {
            fail();
            break;
        }
        Word cell = readData(Word::makeDataPtr(t.zone(), t.addr() + i));
        unify_or_fail(x_[2], cell);
        break;
      }

      case BuiltinId::Univ: {
        Word t = deref(x_[0]);
        if (!t.isRef()) {
            // Decompose into a list.
            std::vector<Word> items;
            if (t.isList()) {
                items.push_back(
                    Word::makeAtom(AtomTable::instance().dot));
                items.push_back(
                    readData(Word::makeDataPtr(t.zone(), t.addr())));
                items.push_back(readData(
                    Word::makeDataPtr(t.zone(), t.addr() + 1)));
            } else if (t.isStruct()) {
                Word f = readData(Word::makeDataPtr(t.zone(), t.addr()));
                items.push_back(Word::makeAtom(f.functorName()));
                for (uint32_t i = 1; i <= f.functorArity(); ++i)
                    items.push_back(readData(
                        Word::makeDataPtr(t.zone(), t.addr() + i)));
            } else {
                items.push_back(t);
            }
            // Build the list back-to-front on the heap.
            Word list = Word::makeNil();
            for (auto it = items.rbegin(); it != items.rend(); ++it) {
                Addr cell = h_;
                pushHeapCell(*it);
                pushHeapCell(list);
                list = Word::makeList(Zone::Global, cell);
            }
            unify_or_fail(x_[1], list);
            break;
        }
        // Construct from a list.
        Word list = deref(x_[1]);
        std::vector<Word> items;
        while (list.isList()) {
            items.push_back(
                readData(Word::makeDataPtr(list.zone(), list.addr())));
            list = deref(readData(
                Word::makeDataPtr(list.zone(), list.addr() + 1)));
        }
        if (!list.isNil() || items.empty()) {
            fail();
            break;
        }
        Word head = deref(items[0]);
        if (items.size() == 1) {
            unify_or_fail(t, head);
            break;
        }
        if (!head.isAtom()) {
            fail();
            break;
        }
        uint32_t n = static_cast<uint32_t>(items.size() - 1);
        Word built;
        if (head.atom() == AtomTable::instance().dot && n == 2) {
            Addr cell = h_;
            pushHeapCell(items[1]);
            pushHeapCell(items[2]);
            built = Word::makeList(Zone::Global, cell);
        } else {
            Addr cell = h_;
            pushHeapCell(Word::makeFunctor(head.atom(), n));
            for (uint32_t i = 1; i <= n; ++i)
                pushHeapCell(items[i]);
            built = Word::makeStruct(Zone::Global, cell);
        }
        unify_or_fail(t, built);
        break;
      }

      case BuiltinId::StructEq:
        if (compare_terms(x_[0], x_[1]) != 0)
            fail();
        break;
      case BuiltinId::StructNe:
        if (compare_terms(x_[0], x_[1]) == 0)
            fail();
        break;
      case BuiltinId::TermLt:
        if (compare_terms(x_[0], x_[1]) >= 0)
            fail();
        break;
      case BuiltinId::TermGt:
        if (compare_terms(x_[0], x_[1]) <= 0)
            fail();
        break;
      case BuiltinId::TermLe:
        if (compare_terms(x_[0], x_[1]) > 0)
            fail();
        break;
      case BuiltinId::TermGe:
        if (compare_terms(x_[0], x_[1]) < 0)
            fail();
        break;
      case BuiltinId::CompareB: {
        int c = compare_terms(x_[1], x_[2]);
        Word order = Word::makeAtom(
            internAtom(c < 0 ? "<" : c > 0 ? ">" : "="));
        unify_or_fail(x_[0], order);
        break;
      }

      case BuiltinId::IsGeneric: {
        double v;
        bool is_float = false;
        if (!eval_generic(x_[1], v, is_float)) {
            fail();
            break;
        }
        unify_or_fail(x_[0], arith_result_word(v, is_float));
        break;
      }
      case BuiltinId::CmpGenericLt:
        generic_compare([](double a, double b) { return a < b; });
        break;
      case BuiltinId::CmpGenericGt:
        generic_compare([](double a, double b) { return a > b; });
        break;
      case BuiltinId::CmpGenericLe:
        generic_compare([](double a, double b) { return a <= b; });
        break;
      case BuiltinId::CmpGenericGe:
        generic_compare([](double a, double b) { return a >= b; });
        break;
      case BuiltinId::CmpGenericEq:
        generic_compare([](double a, double b) { return a == b; });
        break;
      case BuiltinId::CmpGenericNe:
        generic_compare([](double a, double b) { return a != b; });
        break;

      case BuiltinId::CallGoal:
        metaCall(x_[0]);
        break;

      case BuiltinId::CatchB:
        // catch/3 (X0=Goal, X1=Catcher, X2=Recovery): push a marker
        // choice point whose alternative is the transparent
        // $catch_fail stub; its saved argument block is the recorded
        // catcher frame (Catcher in the ball slot, Recovery beside
        // it), revived by throw/1 through the ordinary RAC restore.
        // Then meta-call the protected Goal.
        pushChoicePoint(image_.catchFailEntry, 3, h_, tr_, cpCont_);
        cpFlag_ = true;
        shallowFlag_ = false;
        metaCall(x_[0]);
        break;

      case BuiltinId::ThrowB: {
        Word ball = deref(x_[0]);
        if (ball.isRef()) {
            raiseBall(Term::makeAtom("instantiation_error"));
            break;
        }
        // ISO: the ball is a copy taken before any unwinding.
        raiseBall(exportTerm(ball));
        break;
      }

      case BuiltinId::CatchFail:
        // Backtracked into a catch/3 marker: the protected goal is
        // out of alternatives. Pop the barrier and keep failing —
        // catch/3 is transparent to backtracking.
        popChoicePoint();
        fail();
        break;

      case BuiltinId::CollectSolution: {
        solution_.bindings.clear();
        for (const auto &[name, slot] : image_.querySolutionSlots) {
            Word w = mem_->peekData(e_ + 2 + slot);
            solution_.bindings.emplace_back(name, exportTerm(w));
        }
        solutionReady_ = true;
        break;
      }

      case BuiltinId::NameB: {
        Word w = deref(x_[0]);
        if (!w.isRef()) {
            std::string text;
            if (w.isAtom())
                text = atomText(w.atom());
            else if (w.isNil())
                text = "[]";
            else if (w.isInt())
                text = std::to_string(w.intValue());
            else {
                fail();
                break;
            }
            Word list = Word::makeNil();
            for (auto it = text.rbegin(); it != text.rend(); ++it) {
                Addr cell = h_;
                pushHeapCell(Word::makeInt(
                    static_cast<unsigned char>(*it)));
                pushHeapCell(list);
                list = Word::makeList(Zone::Global, cell);
            }
            unify_or_fail(x_[1], list);
            break;
        }
        // Construct the atom from a code list.
        Word list = deref(x_[1]);
        std::string text;
        while (list.isList()) {
            Word code = deref(
                readData(Word::makeDataPtr(list.zone(), list.addr())));
            if (!code.isInt()) {
                fail();
                return;
            }
            text += static_cast<char>(code.intValue());
            list = deref(readData(
                Word::makeDataPtr(list.zone(), list.addr() + 1)));
        }
        if (!list.isNil()) {
            fail();
            break;
        }
        unify_or_fail(w, Word::makeAtom(internAtom(text)));
        break;
      }

      case BuiltinId::DynamicCall: {
        // Indexed-dispatch stub of a dynamic predicate: the escape's
        // own address keys the functor (P still holds it here).
        auto it = image_.dynStubs.find(p_);
        if (it == image_.dynStubs.end())
            panic("DynamicCall escape at unregistered address ", p_);
        execDynamicCall(it->second);
        break;
      }
      case BuiltinId::DynamicRetry:
        execDynamicRetry();
        break;
      case BuiltinId::AssertA:
        execAssert(true);
        break;
      case BuiltinId::AssertZ:
        execAssert(false);
        break;
      case BuiltinId::Retract:
        execRetract();
        break;

      case BuiltinId::AtomLength: {
        Word w = deref(x_[0]);
        if (!w.isAtom() && !w.isNil()) {
            fail();
            break;
        }
        std::string text = w.isNil() ? "[]" : atomText(w.atom());
        unify_or_fail(x_[1], Word::makeInt(
                                 static_cast<int32_t>(text.size())));
        break;
      }

      default:
        panic("unimplemented builtin id ", instr.value);
    }
}

} // namespace kcm
