/**
 * @file
 * The KCM machine: a cycle-level simulator of the processor described
 * in §3 — 64 x 64-bit register file, microcoded execution unit with
 * MWAC-style dispatch on type pairs, trail comparators working in
 * parallel with dereferencing, delayed (shallow-backtracking) choice
 * points, split local/control stacks, and the two logical caches.
 *
 * Timing model: every instruction is charged its opcode's base cycles
 * (calibrated to the paper's published figures — 1 cycle for most data
 * manipulation, 2 for jumps/calls, 5 for a minimal call/return pair);
 * microcode loops (choice point save/restore at one register per
 * cycle via the RAC, reference-chain following at one reference per
 * cycle, unification sub-steps) and cache-miss penalties are added
 * dynamically. Trail checks are free: the trail comparators run in
 * parallel with dereferencing (§3.1.5).
 */

#ifndef KCM_CORE_MACHINE_HH
#define KCM_CORE_MACHINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/stats.hh"
#include "compiler/builtin_defs.hh"
#include "compiler/code_image.hh"
#include "core/machine_config.hh"
#include "core/prefetch.hh"
#include "core/profiler.hh"
#include "isa/decoded.hh"
#include "isa/instr.hh"
#include "mem/mem_system.hh"
#include "prolog/term.hh"

namespace kcm
{

/** Why run() returned. */
enum class RunStatus
{
    SolutionFound, ///< query reached the collect-solution escape
    Failed,        ///< query exhausted all alternatives
    Halted,        ///< executed halt after a solution
    CycleLimit,    ///< maxCycles exceeded
    Trapped,       ///< a machine trap was taken (see lastTrap())
};

/** One solution: bindings of the named query variables. */
struct Solution
{
    std::vector<std::pair<std::string, TermRef>> bindings;

    std::string toString() const;
};

class Machine
{
  public:
    explicit Machine(const MachineConfig &config = {});
    ~Machine();

    /** Load a linked image and reset the machine to run its query.
     *  @param cold_caches invalidate both caches after the download
     *         (a first run after download); pass false to measure a
     *         warm re-run, as in the paper's best-of-4 protocol. */
    void load(const CodeImage &image, bool cold_caches = true);

    /**
     * Run until a solution, failure, halt, the cycle limit, or a
     * trap. A MachineTrap never escapes this method: it is converted
     * into RunStatus::Trapped with the diagnosis in lastTrap(), the
     * counters rolled back to the last completed instruction
     * boundary, and the machine left valid — it accepts load() (full
     * reset) or, after a resumable trap, resume().
     */
    RunStatus run();

    /** Backtrack into the query and run to the next solution. */
    RunStatus nextSolution();

    /**
     * Continue after RunStatus::Trapped. Only TrapKind::Abort (cycle
     * budget) is resumable from here: the trap was taken at an
     * instruction boundary, so raising the budget (setCycleBudget)
     * and resuming continues the query exactly where it stopped.
     * (StackOverflow is served in-line by firmware stack growth and
     * only surfaces when the ceiling is exhausted; at that point the
     * faulting instruction was partially issued and cannot be
     * replayed.) Resuming any other trap returns Trapped again with
     * lastTrap() unchanged.
     */
    RunStatus resume();

    /** Whether the most recent run()/resume() trapped. */
    bool trapped() const { return trapped_; }

    /** Whether the program executed halt/0 (RunStatus::Halted). */
    bool halted() const { return halted_; }

    /** Diagnosis of the most recent trap (valid while trapped()). */
    const TrapInfo &lastTrap() const { return lastTrap_; }

    /** Raise (or lower) the governor's cycle budget; takes effect on
     *  the next run()/nextSolution()/resume(). */
    void setCycleBudget(uint64_t budget)
    {
        config_.governor.cycleBudget = budget;
        budgetWaived_ = false;
    }

    /**
     * Arm a host-side run slice: execution stops with a resumable
     * Abort trap when cycles() first reaches @p absolute_cycle
     * (0 disarms). Unlike the governor's cycle budget, a slice stop is
     * pure host machinery — it is never delivered to the program as a
     * catchable resource_error ball and is not counted in trapsTaken,
     * so slicing a run (for wall-clock watchdogs or checkpointing at
     * run-loop boundaries) leaves every simulated metric identical to
     * an unsliced run. Takes effect on the next
     * run()/nextSolution()/resume().
     */
    void setSliceStop(uint64_t absolute_cycle) { sliceStop_ = absolute_cycle; }

    /** Whether the most recent Trapped status was a slice stop (valid
     *  while trapped(); always an Abort, resumable via resume()). */
    bool sliceExpired() const { return sliceExpired_; }

    /**
     * Drop every not-yet-applied FaultPlan action. A supervisor that
     * restores a checkpoint taken before a scripted fault calls this
     * to model the fault as transient: the retried execution runs
     * clean instead of deterministically re-injecting it.
     */
    void
    dismissPendingFaults()
    {
        faultCursor_ = config_.faultPlan.actions.size();
        faultsPending_ = false;
    }

    /** Convenience: run and collect up to @p max solutions. */
    std::vector<Solution> solutions(size_t max = SIZE_MAX);

    /**
     * Attach an externally built dynamic clause store. load() then
     * leaves it untouched instead of creating a fresh store seeded
     * from the image's dynamic declarations/clauses — the bench
     * harness uses this to share one pre-loaded million-fact store
     * across queries. The store's own DynDbConfig governs index
     * behaviour; pass a store built with the same config as this
     * machine for reproducible cycle counts.
     */
    void
    attachDynamicDb(std::shared_ptr<db::ClauseStore> store)
    {
        db_ = std::move(store);
        dbAttached_ = true;
    }

    /** The dynamic clause store (created by load(), or attached). */
    const std::shared_ptr<db::ClauseStore> &dynamicDb() const { return db_; }

    /** Bindings recorded by the most recent SolutionFound. */
    const Solution &lastSolution() const { return solution_; }

    // --- measurements ---

    uint64_t cycles() const { return cycles_; }
    uint64_t instructions() const { return instructions_; }
    uint64_t inferences() const { return inferences_; }
    double seconds() const { return double(cycles_) * cycleSeconds; }
    /** Kilo logical inferences per (simulated) second, §4.2. */
    double klips() const;

    /** Reset cycle/inference counters and memory statistics (to
     *  measure a region excluding setup). */
    void resetMeasurement();

    /** Captured output of write/1 and friends. */
    const std::string &output() const { return hostOutput_; }
    void clearOutput() { hostOutput_.clear(); }

    /**
     * Run a sliding mark-compact collection of the global stack
     * (using the word format's GC bits). Safe between instructions.
     * @return the number of words reclaimed.
     */
    uint64_t collectGarbage();

    /** Current global-stack usage in words. */
    Addr
    heapWords() const
    {
        return h_ - mem_->layout().globalStart;
    }

    /** Governed data-zone footprint in bytes: words from each data
     *  zone's start to its current soft limit (full span for zones
     *  without a quota). The quantity the governor's
     *  memoryBudgetBytes ceiling bounds at growth boundaries. */
    uint64_t residentZoneBytes() const;

    /** Re-impose the governor's zone quotas. A snapshot restore
     *  overwrites the zone table with the snapshotted limits; a
     *  warm-template restore under a *different* governor (per-query
     *  memory budget) calls this to put the session's quotas back —
     *  the resulting state matches a fresh load() under that config.
     *  No-op when the governor sets none. */
    void reapplyQuotas() { applyQuotas(); }

    /** The profiler (meaningful when config().profile is set). */
    const Profiler &profiler() const { return profiler_; }

    /**
     * Superinstruction dispatches taken by the fast core since
     * load(): executed fused-sequence heads (isa/fusion.hh). A pure
     * host-side metric — not simulated state, not serialized in
     * snapshots — reported by the dispatch benches.
     */
    uint64_t fusedDispatches() const { return fusedDispatches_; }

    /** Constituents executed inline inside a fused handler beyond the
     *  head — i.e. dispatches the fusion layer avoided. */
    uint64_t fusedInlineSteps() const { return fusedInlineSteps_; }

    /** Host dispatch operations performed by the execution core:
     *  every instruction costs one except fused-inline constituents. */
    uint64_t
    dispatches() const
    {
        return instructions_ - fusedInlineSteps_;
    }

    /** Fused heads per catalog entry in the current predecoded image
     *  (empty for the oracle / fusion off). */
    std::vector<uint64_t> fusedHeadProfile() const;

    /** The instruction prefetch unit's pipeline statistics (§3.1.3). */
    const PrefetchUnit &prefetch() const { return prefetch_; }

    /** Disassembled trace of the most recently executed instructions
     *  (newest last) — a debugging aid for trap analysis. */
    std::string recentTrace(size_t max_entries = 32) const;

    /** One-line dump of the machine state registers. */
    std::string stateString() const;

    MemSystem &mem() { return *mem_; }
    StatGroup &stats() { return stats_; }
    const CodeImage &image() const { return image_; }
    const MachineConfig &config() const { return config_; }

    // Event counters (registered in stats()).
    Counter choicePointsCreated;
    Counter choicePointsAvoided; ///< neck reached with no CP needed
    Counter shallowFails;
    Counter deepFails;
    Counter trailPushes;
    Counter derefSteps;
    Counter bindOps;
    Counter unifyCalls;
    Counter envAllocs;
    Counter cpWordsWritten; ///< words stored saving choice points
    Counter cpWordsRead;    ///< words loaded restoring choice points
    Counter gcRuns;           ///< garbage collections performed
    Counter gcWordsReclaimed; ///< global-stack words reclaimed
    Counter trapsTaken;       ///< traps surfaced as RunStatus::Trapped
    Counter stackZoneGrowths; ///< StackOverflows served by firmware growth

  private:
    friend class BuiltinContext;
    friend struct SnapshotAccess;

    // --- memory helpers (timed) ---
    // Inline: every simulated data access funnels through these two,
    // so they must collapse into MemSystem's inlined hit paths. The
    // cold branches (watchpoint hit, stack-overflow growth/retry)
    // live out of line in machine.cc.
    Word
    readData(Word addr_word)
    {
        return mem_->readData(addr_word, penalty_);
    }

    void
    writeData(Word addr_word, Word value)
    {
        if (watchAddr_ && addr_word.addr() == watchAddr_) [[unlikely]]
            debugWatchWrite(addr_word, value);
        // §3.2.3 firmware handling of the stack-overflow trap: the
        // zone check rejects the access before any state changes,
        // firmware grows the zone (charged its cycle cost), and the
        // access is retried — execution resumes as if the trap never
        // unwound. Only when growth is off or the ceiling is
        // exhausted does the trap escape to the run-loop boundary.
        try {
            mem_->writeData(addr_word, value, penalty_);
        } catch (const MachineTrap &trap) {
            if (trap.kind() != TrapKind::StackOverflow ||
                !growStackZone(addr_word.zone()))
                throw;
            writeDataRetry(addr_word, value);
        }
    }

    /** Retry loop of writeData after a first served StackOverflow. */
    void writeDataRetry(Word addr_word, Word value);
    /** KCM_WATCH_ADDR debug hook (cold). */
    [[gnu::cold, gnu::noinline]] void debugWatchWrite(Word addr_word,
                                                      Word value);
    /** Zone of a data address per the configured layout. */
    Zone zoneOf(Addr a) const;
    Word dataPtr(Addr a) const { return Word::makeDataPtr(zoneOf(a), a); }

    // --- core WAM operations ---
    Word deref(Word w);
    void bind(Word ref_word, Word value);
    void trailIfNeeded(Word ref_word);
    void unwindTrail(Addr target_tr);
    bool unify(Word a, Word b);
    /** Globalize an unbound local variable (returns heap ref). */
    Word globalize(Word ref_word);

    // --- control ---
    void fail();
    void pushChoicePoint(Addr alt, uint32_t arity, Addr saved_h,
                         Addr saved_tr, Addr saved_cp);
    void restoreFromChoicePoint();
    /** Discard the topmost choice point (Trust-style: reload the B
     *  chain through its prevB link). */
    void popChoicePoint();
    void cutTo(Addr target_b);
    void doCall(Addr target, bool is_execute);

    // --- ISO exceptions (catch/3, throw/1) ---
    /** Meta-call dispatch shared by call/1, catch/3 and the recovery
     *  continuation of a delivered ball: tail-jump into the predicate
     *  named by @p goal. Raises instantiation_error /
     *  type_error(callable, Culprit) as Prolog balls; an undefined
     *  predicate warns and fails (consistent with static calls). */
    void metaCall(Word goal);
    /** metaCall with an explicit cut barrier: `!` inside @p goal cuts
     *  alternatives back to @p barrier instead of the B current at
     *  dispatch. Used for dynamic clause bodies, whose cut must prune
     *  the clause-iteration choice point (ISO 7.8.9.1). */
    void metaCallWithBarrier(Word goal, Addr barrier);
    /**
     * Unwind to the innermost catch/3 marker choice point (alt ==
     * image_.catchFailEntry), unify @p ball with the revived Catcher
     * and meta-call the Recovery goal. A failed catcher unification
     * rethrows to the next enclosing marker.
     * @return false when no marker accepts the ball (the caller turns
     *         that into an UnhandledException trap).
     */
    bool deliverBall(const TermRef &ball);
    /** deliverBall or, if uncaught, throw the UnhandledException
     *  MachineTrap carrying the quoted ball text. */
    void raiseBall(const TermRef &ball);
    /** Copy a host term onto the global stack (timed writes); the
     *  inverse of exportTerm. Variables sharing a printed name share
     *  a fresh heap cell. */
    Word importTerm(const TermRef &term);
    /**
     * Serve a resource trap (StackOverflow past the ceiling, Abort on
     * budget exhaustion) caught at the run()/nextSolution() boundary
     * by delivering a resource_error ball to an enclosing catch/3.
     * @return true when a marker accepted the ball and execution can
     *         re-enter the run loop; false surfaces the trap as
     *         RunStatus::Trapped exactly as before.
     */
    bool convertResourceTrap(const MachineTrap &trap);

    // --- heap building ---
    Word pushHeapCell(Word value);
    Word newHeapVar();

    // --- dynamic clause database (src/db) ---
    /** load()-time store setup: fresh store seeded from the image's
     *  dynamic declarations and clauses, unless one is attached. */
    void seedDynamicDb();
    /** First-argument index key of the (dereferenced) word @p w. */
    db::ArgKey argKeyOf(Word w);
    /** DynamicCall escape / meta-call fallback: dispatch @p f through
     *  the clause store (choice-point-based clause iteration). */
    void execDynamicCall(const Functor &f);
    /** DynamicRetry escape: resume clause iteration after a fail. */
    void execDynamicRetry();
    /** Run one store candidate: import it, unify the head arguments
     *  with X0..Xn-1, meta-call a rule body with @p barrier as the
     *  cut barrier. Facts fall through to the stub's Proceed. */
    void runDynamicClause(const db::StoredClause &clause, uint32_t arity,
                          Addr barrier);
    /** asserta/1 (at_front) and assertz/1. */
    void execAssert(bool at_front);
    /** retract/1 (semidet; see DESIGN.md for the ISO deviation). */
    void execRetract();

    // --- instruction execution ---
    void step();
    /** Dispatch-core selection inside the run-loop trap boundary. */
    RunStatus runLoop();
    /** The token-threaded run loop over the predecoded image
     *  (exec_threaded.cc); falls back to switch dispatch on
     *  toolchains without computed goto. */
    RunStatus runFast();

    // --- trap delivery and the resource governor ---
    /** Convert a trap caught at the run-loop boundary into
     *  RunStatus::Trapped: roll the counters back to the last
     *  instruction boundary and fill lastTrap(). */
    RunStatus recordTrap(const MachineTrap &trap);
    /** Recompute the effective cycle stop and fault arming from the
     *  configuration (run()-entry). */
    void armGovernor();
    /** Impose the governor's zone quotas (load()-time; also public
     *  via reapplyQuotas() for warm-template restores). */
    void applyQuotas();
    /** Serve a StackOverflow on @p zone by firmware growth; charges
     *  the documented cycle cost. @return false if not growable or
     *  the ceiling is exhausted. */
    bool growStackZone(Zone zone);
    /** Apply every FaultPlan action whose cycle has arrived. */
    void applyDueFaults();
    /** Cycle budget exhausted: throw the Abort trap (cold). */
    [[noreturn, gnu::cold, gnu::noinline]] void trapCycleBudget();
    /** Fetch + decode the instruction at P: per-step prologue shared
     *  by the oracle and fast paths (GC check, prefetch accounting,
     *  code-cache fetch, trace, profiler). */
    const DecodedInstr &fetchDecoded();
    /** Per-step epilogue shared by both paths: instruction/cycle/
     *  inference accounting and the PC advance. */
    void finishStep(const DecodedInstr &instr);
    void execInstr(const DecodedInstr &instr);
    /** Statically-dispatched single-opcode step: the constituent
     *  executor of the fused superinstruction handlers
     *  (exec_ops.hh); routes grouped opcodes to their microcode
     *  unit exactly like the execInstr switch. */
    template <Opcode OP> void execOne(const DecodedInstr &instr);
    void execUnifyClass(const DecodedInstr &instr);
    void execIndex(const DecodedInstr &instr);
    void execArith(const DecodedInstr &instr);
    void execEscape(const DecodedInstr &instr);

    // Per-opcode handlers (exec_ops.hh), shared verbatim between the
    // oracle switch (execInstr) and the threaded core (runFast).
    void opHalt(const DecodedInstr &);
    void opJump(const DecodedInstr &);
    void opCall(const DecodedInstr &);
    void opExecute(const DecodedInstr &);
    void opProceed(const DecodedInstr &);
    void opAllocate(const DecodedInstr &);
    void opDeallocate(const DecodedInstr &);
    void opGetVariableX(const DecodedInstr &);
    void opGetVariableY(const DecodedInstr &);
    void opGetValueX(const DecodedInstr &);
    void opGetValueY(const DecodedInstr &);
    void opGetConstant(const DecodedInstr &); ///< also get_nil
    void opGetList(const DecodedInstr &);
    void opGetStructure(const DecodedInstr &);
    void opPutVariableX(const DecodedInstr &);
    void opPutVariableY(const DecodedInstr &);
    void opPutValueX(const DecodedInstr &);
    void opPutValueY(const DecodedInstr &);
    void opPutUnsafeValue(const DecodedInstr &);
    void opPutConstant(const DecodedInstr &);
    void opPutNil(const DecodedInstr &);
    void opPutList(const DecodedInstr &);
    void opPutStructure(const DecodedInstr &);
    void opMove2(const DecodedInstr &);
    void opLoadImm(const DecodedInstr &);
    void opSwapTV(const DecodedInstr &);
    void opLoad(const DecodedInstr &);
    void opStore(const DecodedInstr &);
    [[noreturn]] void opBadInstruction(const DecodedInstr &);

    /** Unify-with-mode subterm access. */
    Word nextSubterm();

    // --- term exchange with the host ---
    TermRef exportTerm(Word w, int depth = 0);
    void hostWrite(const std::string &text);

    // --- state ---
    MachineConfig config_;
    std::unique_ptr<MemSystem> mem_;
    CodeImage image_;

    /** Dynamic clause store (logical update view; src/db). Host-side
     *  state: lookups charge simulated scan cycles, but the store
     *  itself lives outside the simulated memory map. */
    std::shared_ptr<db::ClauseStore> db_;
    /** An external store was attached; load() leaves it alone. */
    bool dbAttached_ = false;

    // Register file: X registers (argument/temporary).
    Word x_[numXRegs];

    // Machine state registers.
    Addr p_ = 0;       ///< program counter (code space)
    Addr nextP_ = 0;   ///< address of the following instruction
    Addr cpCont_ = 0;  ///< continuation code pointer
    Addr h_ = 0;       ///< top of global stack
    Addr hb_ = 0;      ///< heap backtrack boundary
    Addr s_ = 0;       ///< structure pointer
    Addr tr_ = 0;      ///< top of trail
    Addr e_ = 0;       ///< current environment
    Addr lt_ = 0;      ///< top of local stack
    Addr lb_ = 0;      ///< local backtrack boundary
    Addr b_ = 0;       ///< current choice point
    Addr ct_ = 0;      ///< top of control stack
    Addr b0_ = 0;      ///< cut barrier of the current call
    bool writeMode_ = false;

    // Shallow backtracking state (§3.1.5).
    bool shallowFlag_ = false;
    bool cpFlag_ = false;
    Addr shadowH_ = 0, shadowTR_ = 0, shadowCP_ = 0;
    Addr pendingAlt_ = 0;
    uint32_t pendingArity_ = 0;

    // Counters and run bookkeeping.
    uint64_t cycles_ = 0;
    uint64_t instructions_ = 0;
    uint64_t inferences_ = 0;
    unsigned penalty_ = 0; ///< per-step memory penalty accumulator
    Addr watchAddr_ = 0;   ///< KCM_WATCH_ADDR debug watchpoint (0 = off)
    Addr expectedNextP_ = 0; ///< the prefetcher's streamed target
    bool halted_ = false;
    bool haltFailed_ = false;
    bool solutionReady_ = false;
    Solution solution_;
    std::string hostOutput_;

    // Trap delivery and governor state.
    /** cycles_ at the last instruction boundary: a trap thrown
     *  mid-instruction rolls back to this, so a trapped run reports
     *  the identical cycle count from both dispatch cores. */
    uint64_t stepStartCycles_ = 0;
    /** What an expired cycle stop means: the informational CycleLimit
     *  status, the governor's Abort trap, or a host slice stop (an
     *  Abort trap that is never converted into a resource_error
     *  ball and never counted in trapsTaken). */
    enum class StopKind : uint8_t { Limit, Budget, Slice };
    /** Effective cycle stop: min of maxCycles, the governor's budget
     *  and the armed slice stop (0 = none); stopKind_ picks the
     *  behaviour when it fires. */
    uint64_t stopCycles_ = 0;
    StopKind stopKind_ = StopKind::Limit;
    /** Armed slice stop (absolute cycle; 0 = off). */
    uint64_t sliceStop_ = 0;
    /** The most recent trap was a slice stop (valid while trapped_). */
    bool sliceExpired_ = false;
    /** A caught resource_error(abort) spends the budget for the rest
     *  of this query: armGovernor() stops re-arming it, so
     *  backtracking after the recovery goal does not re-trap. Cleared
     *  by load() and setCycleBudget(). */
    bool budgetWaived_ = false;
    bool trapped_ = false;
    TrapInfo lastTrap_;
    size_t faultCursor_ = 0;    ///< next unapplied FaultPlan action
    bool faultsPending_ = false;

    // Execution trace ring buffer (debugging).
    static constexpr size_t traceSize = 128;
    struct TraceEntry
    {
        Addr p = 0;
        uint64_t raw = 0;
    };
    TraceEntry trace_[traceSize];
    size_t traceHead_ = 0;

    Profiler profiler_;
    PrefetchUnit prefetch_;

    /** Fused-sequence dispatches since load() (host-side metric). */
    uint64_t fusedDispatches_ = 0;
    /** Constituents run inline off a fused head (host-side metric). */
    uint64_t fusedInlineSteps_ = 0;

    /** The predecoded image (index i = address image_.base + i);
     *  empty unless config_.fastDispatch. */
    std::vector<DecodedInstr> decoded_;
    /** Decode-per-step scratch slot for the oracle path and for
     *  fetches outside the predecoded image. */
    DecodedInstr scratchDecoded_;

    /**
     * Host-side table of environment bases to their Y counts (debug
     * information for the garbage collector). A flat array indexed by
     * (base - localStart), grown on demand, so the Allocate fast path
     * is a bounds check plus one store — no ordered-map insert.
     */
    std::vector<uint32_t> envSizes_;

    /** Record that the environment at @p e has @p n permanent vars. */
    void
    noteEnvSize(Addr e, uint32_t n)
    {
        size_t idx = size_t(e) - mem_->layout().localStart;
        if (idx >= envSizes_.size()) [[unlikely]]
            envSizes_.resize(idx + 1, 0);
        envSizes_[idx] = n;
    }

    /** Y count recorded for environment base @p e (0 if unknown). */
    uint32_t
    envSizeOf(Addr e) const
    {
        size_t idx = size_t(e) - mem_->layout().localStart;
        return idx < envSizes_.size() ? envSizes_[idx] : 0;
    }

    StatGroup stats_;
};

// Per-step prologue/epilogue, inline so both the oracle loop
// (machine.cc) and the threaded core (exec_threaded.cc) compile them
// into their dispatch loops. Any change here changes both paths —
// which is the point: the two must stay cycle-for-cycle identical.

inline const DecodedInstr &
Machine::fetchDecoded()
{
    // Instruction boundary: the roll-back anchor for trap-safe
    // counter reporting, and the deterministic point where scripted
    // faults are injected (identically on both dispatch cores).
    stepStartCycles_ = cycles_;
    if (faultsPending_) [[unlikely]]
        applyDueFaults();
    if (config_.gcThresholdWords &&
        h_ - mem_->layout().globalStart > config_.gcThresholdWords) {
        collectGarbage();
    }
    penalty_ = 0;
    prefetch_.onFetch(p_, expectedNextP_);
    const DecodedInstr *d;
    size_t idx = size_t(p_) - image_.base;
    if (idx < decoded_.size()) [[likely]] {
        // Predecoded: the code cache is still consulted for timing
        // and statistics, but the word needs no re-decode.
        mem_->touchCode(p_, penalty_);
        d = &decoded_[idx];
    } else {
        scratchDecoded_ = decodeInstr(mem_->fetchCode(p_, penalty_));
        d = &scratchDecoded_;
    }
    nextP_ = p_ + 1;

    trace_[traceHead_] = {p_, d->raw};
    traceHead_ = (traceHead_ + 1) % traceSize;

    if (config_.profile) [[unlikely]] {
        Opcode op = d->opcode();
        bool is_call = op == Opcode::Call || op == Opcode::Execute;
        profiler_.record(op, is_call ? d->value : 0);
    }
    return *d;
}

inline void
Machine::finishStep(const DecodedInstr &instr)
{
    ++instructions_;
    cycles_ += instr.baseCycles;
    if (config_.timeMemory)
        cycles_ += penalty_;
    if (instr.inferenceMark)
        ++inferences_;

    // The prefetcher would have streamed p_+1 (or, for a multi-word
    // switch, the word after its table) next.
    expectedNextP_ = p_ + 1;
    p_ = nextP_;
}

// The per-access core operations below run several times per
// simulated instruction from the opcode handlers (exec_ops.hh), which
// are compiled into both machine.cc and exec_threaded.cc — inline
// here so each core folds them into MemSystem's inlined hit paths
// instead of paying a cross-object call per dereference step.

inline Zone
Machine::zoneOf(Addr a) const
{
    const DataLayout &layout = mem_->layout();
    if (a >= layout.globalStart && a < layout.globalEnd)
        return Zone::Global;
    if (a >= layout.localStart && a < layout.localEnd)
        return Zone::Local;
    if (a >= layout.controlStart && a < layout.controlEnd)
        return Zone::Control;
    if (a >= layout.trailStart && a < layout.trailEnd)
        return Zone::TrailZ;
    if (a >= layout.staticStart && a < layout.staticEnd)
        return Zone::Static;
    return Zone::None;
}

inline Word
Machine::deref(Word w)
{
    // The data cache starts a dereferencing operation speculatively
    // during the instruction's own access cycle (§3.1.4), so the
    // first step of a chain is free; further references cost one
    // cycle each.
    bool first = true;
    while (w.isRef()) {
        Word v = readData(w);
        ++derefSteps;
        if (!first)
            ++cycles_; // one reference per cycle (§3.1.4)
        if (!config_.fastDereference)
            ++cycles_; // no speculative start: request + read
        first = false;
        if (v.raw() == w.raw())
            return w; // unbound: self reference
        if (!v.isRef())
            return v;
        w = v;
    }
    return w;
}

inline void
Machine::trailIfNeeded(Word ref_word)
{
    // The trail comparators work in parallel with dereferencing
    // (§3.1.5): no cycle cost for the check itself.
    Addr a = ref_word.addr();
    bool need;
    bool shallow_pending =
        config_.shallowBacktracking && shallowFlag_ && !cpFlag_;
    if (ref_word.zone() == Zone::Global) {
        Addr boundary = shallow_pending ? shadowH_ : hb_;
        need = a < boundary;
    } else {
        Addr boundary = shallow_pending ? lt_ : lb_;
        need = a < boundary;
    }
    if (!config_.parallelTrailCheck)
        cycles_ += 2; // serialized boundary comparisons
    if (need) {
        writeData(dataPtr(tr_), ref_word);
        ++tr_;
        ++trailPushes;
    }
}

inline void
Machine::bind(Word ref_word, Word value)
{
    trailIfNeeded(ref_word);
    writeData(ref_word, value);
    ++bindOps;
}

inline Word
Machine::newHeapVar()
{
    Word var = Word::makeRef(Zone::Global, h_);
    writeData(var, var);
    ++h_;
    return var;
}

inline Word
Machine::pushHeapCell(Word value)
{
    Word addr_word = Word::makeDataPtr(Zone::Global, h_);
    writeData(addr_word, value);
    ++h_;
    return addr_word;
}

inline Word
Machine::globalize(Word ref_word)
{
    Word hv = newHeapVar();
    bind(ref_word, hv);
    return hv;
}

} // namespace kcm

#endif // KCM_CORE_MACHINE_HH
