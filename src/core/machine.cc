#include "core/machine.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "base/logging.hh"
#include "core/predecode.hh"
#include "isa/disasm.hh"
#include "prolog/parser.hh"
#include "prolog/writer.hh"

namespace kcm
{

/**
 * Choice point record layout on the control stack (§3.1.5). B points
 * at the base; the record is 9 words plus the saved argument
 * registers, matching the paper's "typical size is about 10 words".
 */
namespace cpfield
{
constexpr unsigned prevB = 0;
constexpr unsigned alt = 1;
constexpr unsigned e = 2;
constexpr unsigned cpCont = 3;
constexpr unsigned b0 = 4;
constexpr unsigned h = 5;
constexpr unsigned tr = 6;
constexpr unsigned lt = 7;
constexpr unsigned arity = 8;
constexpr unsigned args = 9;
} // namespace cpfield

std::string
Solution::toString() const
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[name, term] : bindings) {
        if (!first)
            os << ", ";
        os << name << " = " << writeTerm(term);
        first = false;
    }
    if (bindings.empty())
        os << "true";
    return os.str();
}

Machine::Machine(const MachineConfig &config)
    : config_(config), stats_("machine")
{
    mem_ = std::make_unique<MemSystem>(config_.mem);
    if (const char *env = getenv("KCM_WATCH_ADDR"))
        watchAddr_ = static_cast<Addr>(strtoul(env, nullptr, 16));
    stats_.add("choicePointsCreated", choicePointsCreated);
    stats_.add("choicePointsAvoided", choicePointsAvoided);
    stats_.add("shallowFails", shallowFails);
    stats_.add("deepFails", deepFails);
    stats_.add("trailPushes", trailPushes);
    stats_.add("derefSteps", derefSteps);
    stats_.add("bindOps", bindOps);
    stats_.add("unifyCalls", unifyCalls);
    stats_.add("envAllocs", envAllocs);
    stats_.add("cpWordsWritten", cpWordsWritten);
    stats_.add("cpWordsRead", cpWordsRead);
    stats_.add("gcRuns", gcRuns);
    stats_.add("gcWordsReclaimed", gcWordsReclaimed);
    stats_.add("trapsTaken", trapsTaken);
    stats_.add("stackZoneGrowths", stackZoneGrowths);
    stats_.addChild(prefetch_.stats());
    stats_.addChild(mem_->stats());
}

Machine::~Machine() = default;

double
Machine::klips() const
{
    double secs = seconds();
    if (secs <= 0)
        return 0;
    return double(inferences_) / secs / 1000.0;
}

void
Machine::resetMeasurement()
{
    cycles_ = 0;
    instructions_ = 0;
    inferences_ = 0;
    fusedDispatches_ = 0;
    fusedInlineSteps_ = 0;
    stats_.reset();
}

void
Machine::debugWatchWrite(Word addr_word, Word value)
{
    fprintf(stderr, "WATCH write [%s] <- %s\n  state %s\n  trace:\n%s\n",
            addr_word.toString().c_str(), value.toString().c_str(),
            stateString().c_str(), recentTrace(8).c_str());
}

void
Machine::writeDataRetry(Word addr_word, Word value)
{
    for (;;) {
        try {
            mem_->writeData(addr_word, value, penalty_);
            return;
        } catch (const MachineTrap &trap) {
            if (trap.kind() != TrapKind::StackOverflow ||
                !growStackZone(addr_word.zone()))
                throw;
        }
    }
}

void
Machine::load(const CodeImage &image, bool cold_caches)
{
    image_ = image;

    // Download the code image (host loader; untimed).
    for (size_t i = 0; i < image_.words.size(); ++i)
        mem_->pokeCode(image_.base + static_cast<Addr>(i), image_.words[i]);

    if (config_.profile) {
        profiler_.attach(image_);
        profiler_.enableSequences(config_.profileSequences);
        profiler_.reset();
    }

    // Predecode the image for the fast core, fusing superinstruction
    // heads per the configuration. The oracle keeps decoded_ empty so
    // every fetch takes the decode-per-step path.
    decoded_.clear();
    if (config_.fastDispatch)
        predecodeImage(image_.words, config_.fusion, decoded_);
    fusedDispatches_ = 0;
    fusedInlineSteps_ = 0;

    // The download wrote through the code cache; a first run starts
    // cold, as the real machine does after a download from the host.
    if (cold_caches) {
        mem_->codeCache().invalidateAll();
        mem_->dataCache().invalidateAll();
    }

    const DataLayout &layout = mem_->layout();

    for (auto &reg : x_)
        reg = Word::makeInt(0);

    h_ = layout.globalStart;
    hb_ = h_;
    tr_ = layout.trailStart;
    s_ = h_;
    writeMode_ = false;

    // Bottom environment.
    envSizes_.clear();
    e_ = layout.localStart;
    noteEnvSize(e_, 0);
    mem_->pokeData(e_ + 0, Word::makeDataPtr(Zone::Local, e_));
    mem_->pokeData(e_ + 1, Word::makeCodePtr(image_.haltFailEntry));
    lt_ = e_ + 2;
    lb_ = lt_;

    // Bottom choice point: its alternative halts the query as failed.
    b_ = layout.controlStart;
    auto put = [&](unsigned field, Word w) {
        mem_->pokeData(b_ + field, w);
    };
    put(cpfield::prevB, Word::makeDataPtr(Zone::Control, b_));
    put(cpfield::alt, Word::makeCodePtr(image_.haltFailEntry));
    put(cpfield::e, Word::makeDataPtr(Zone::Local, e_));
    put(cpfield::cpCont, Word::makeCodePtr(image_.haltFailEntry));
    put(cpfield::b0, Word::makeDataPtr(Zone::Control, b_));
    put(cpfield::h, Word::makeDataPtr(Zone::Global, h_));
    put(cpfield::tr, Word::makeDataPtr(Zone::TrailZ, tr_));
    put(cpfield::lt, Word::makeDataPtr(Zone::Local, lt_));
    put(cpfield::arity, Word::makeInt(0));
    ct_ = b_ + cpfield::args;
    b0_ = b_;

    cpCont_ = image_.haltFailEntry;
    p_ = image_.queryEntry ? image_.queryEntry : image_.haltFailEntry;
    nextP_ = p_;
    prefetch_.reset(p_);
    expectedNextP_ = p_;

    shallowFlag_ = false;
    cpFlag_ = false;
    pendingAlt_ = 0;
    pendingArity_ = 0;

    halted_ = false;
    haltFailed_ = false;
    solutionReady_ = false;
    solution_ = Solution{};
    cycles_ = 0;
    instructions_ = 0;
    inferences_ = 0;

    // Trap/governor state: a fresh load re-arms the machine — quotas
    // return to their configured size (undoing any firmware growth)
    // and any recorded trap is cleared. The fault script does NOT
    // rewind: each scripted fault fires once per machine lifetime, so
    // a reload after an injected fault runs clean.
    trapped_ = false;
    lastTrap_ = TrapInfo{};
    stepStartCycles_ = 0;
    budgetWaived_ = false;
    sliceStop_ = 0; // host slices are per-run; re-arm via setSliceStop

    // Per-load dynamic clause store, seeded from the image's dynamic
    // declarations and source clauses — unless the host attached one.
    if (!dbAttached_)
        seedDynamicDb();

    applyQuotas();
    armGovernor();
}

void
Machine::seedDynamicDb()
{
    db_ = std::make_shared<db::ClauseStore>(config_.dyndb);
    for (const Functor &f : image_.dynamicDecls)
        db_->declareDynamic(f);
    if (image_.dynamicInit.empty())
        return;
    // dynamicInit holds canonical (quoted, ignore-ops) clause texts;
    // they parse against any operator table.
    OperatorTable ops;
    AtomId neck = AtomTable::instance().neck;
    for (const std::string &text : image_.dynamicInit) {
        Parser parser(text + " .", ops);
        ReadClause read;
        if (!parser.readClause(read))
            fatal("dynamic init: unreadable clause: ", text);
        TermRef term = read.term;
        TermRef head = term;
        TermRef body = nullptr;
        if (term->isStruct() && term->arity() == 2 &&
            term->functorName() == neck) {
            head = term->arg(0);
            body = term->arg(1);
        }
        if (!head->isAtom() && !head->isStruct())
            fatal("dynamic init: bad clause head in: ", text);
        db_->assertClause(head->functor(), head, body, false);
    }
}

std::vector<uint64_t>
Machine::fusedHeadProfile() const
{
    return fusedHeadCounts(decoded_);
}

// ------------------------------------------------------------- core ops

void
Machine::unwindTrail(Addr target_tr)
{
    while (tr_ > target_tr) {
        --tr_;
        Word entry = readData(dataPtr(tr_));
        // Restore the cell to an unbound self-reference.
        writeData(entry, Word::makeRef(entry.zone(), entry.addr()));
        ++cycles_;
    }
}

bool
Machine::unify(Word a, Word b)
{
    ++unifyCalls;
    std::vector<std::pair<Word, Word>> pdl;
    pdl.emplace_back(a, b);

    bool first = true;
    while (!pdl.empty()) {
        auto [u, v] = pdl.back();
        pdl.pop_back();
        if (!first)
            ++cycles_; // PDL pop in the general unification microcode
        first = false;

        Word du = deref(u);
        Word dv = deref(v);
        if (du.raw() == dv.raw())
            continue;

        bool u_unbound = du.isRef();
        bool v_unbound = dv.isRef();

        if (u_unbound && v_unbound) {
            // Bind local to global, else younger to older, so that no
            // global-stack cell ever references the local stack.
            bool u_local = du.zone() == Zone::Local;
            bool v_local = dv.zone() == Zone::Local;
            if (u_local && !v_local) {
                bind(du, dv);
            } else if (v_local && !u_local) {
                bind(dv, du);
            } else if (du.addr() >= dv.addr()) {
                bind(du, dv);
            } else {
                bind(dv, du);
            }
            continue;
        }
        if (u_unbound) {
            if (dv.isList() || dv.isStruct() || du.zone() != Zone::Local) {
                bind(du, dv);
            } else {
                bind(du, dv);
            }
            continue;
        }
        if (v_unbound) {
            bind(dv, du);
            continue;
        }

        // Both bound: the MWAC selects the case from the two type
        // fields without extra test cycles (§3.1.4).
        if (du.tag() != dv.tag())
            return false;
        switch (du.tag()) {
          case Tag::Nil:
            break;
          case Tag::Atom:
          case Tag::Int:
          case Tag::Float:
            if (du.value() != dv.value())
                return false;
            break;
          case Tag::List: {
            Word u_head = readData(Word::makeDataPtr(du.zone(), du.addr()));
            Word v_head = readData(Word::makeDataPtr(dv.zone(), dv.addr()));
            Word u_tail =
                readData(Word::makeDataPtr(du.zone(), du.addr() + 1));
            Word v_tail =
                readData(Word::makeDataPtr(dv.zone(), dv.addr() + 1));
            cycles_ += 4;
            pdl.emplace_back(u_tail, v_tail);
            pdl.emplace_back(u_head, v_head);
            break;
          }
          case Tag::Struct: {
            Word uf = readData(Word::makeDataPtr(du.zone(), du.addr()));
            Word vf = readData(Word::makeDataPtr(dv.zone(), dv.addr()));
            cycles_ += 2;
            if (uf.raw() != vf.raw())
                return false;
            uint32_t n = uf.functorArity();
            for (uint32_t i = n; i > 0; --i) {
                Word ua = readData(
                    Word::makeDataPtr(du.zone(), du.addr() + i));
                Word va = readData(
                    Word::makeDataPtr(dv.zone(), dv.addr() + i));
                cycles_ += 2;
                pdl.emplace_back(ua, va);
            }
            break;
          }
          default:
            return false;
        }
    }
    return true;
}

// -------------------------------------------------------------- control

void
Machine::pushChoicePoint(Addr alt, uint32_t arity, Addr saved_h,
                         Addr saved_tr, Addr saved_cp)
{
    Addr base = ct_;
    // The protected local-stack boundary: everything the previous
    // choice point protected plus the currently live frames. LT alone
    // is not enough — a deallocate may have lowered it below frames
    // that an older choice point will revive.
    Addr protected_lt = std::max(lt_, lb_);
    auto put = [&](unsigned field, Word w) {
        writeData(Word::makeDataPtr(Zone::Control, base + field), w);
    };
    put(cpfield::prevB, Word::makeDataPtr(Zone::Control, b_));
    put(cpfield::alt, Word::makeCodePtr(alt));
    put(cpfield::e, Word::makeDataPtr(Zone::Local, e_));
    put(cpfield::cpCont, Word::makeCodePtr(saved_cp));
    put(cpfield::b0, Word::makeDataPtr(Zone::Control, b0_));
    put(cpfield::h, Word::makeDataPtr(Zone::Global, saved_h));
    put(cpfield::tr, Word::makeDataPtr(Zone::TrailZ, saved_tr));
    put(cpfield::lt, Word::makeDataPtr(Zone::Local, protected_lt));
    put(cpfield::arity, Word::makeInt(static_cast<int32_t>(arity)));
    for (uint32_t i = 0; i < arity; ++i)
        put(cpfield::args + i, x_[i]);

    // One register per cycle through the RAC (§3.1.5); the first write
    // is covered by the instruction's base cost.
    cycles_ += cpfield::args + arity - 1;
    if (!config_.racBlockMoves)
        cycles_ += cpfield::args + arity; // address setup per word

    b_ = base;
    ct_ = base + cpfield::args + arity;
    hb_ = saved_h;
    lb_ = protected_lt;
    cpWordsWritten += cpfield::args + arity;
    ++choicePointsCreated;
}

void
Machine::restoreFromChoicePoint()
{
    auto get = [&](unsigned field) {
        return readData(Word::makeDataPtr(Zone::Control, b_ + field));
    };
    Word alt = get(cpfield::alt);
    Word e = get(cpfield::e);
    Word cp = get(cpfield::cpCont);
    Word b0 = get(cpfield::b0);
    Word h = get(cpfield::h);
    Word tr = get(cpfield::tr);
    Word lt = get(cpfield::lt);
    Word arity = get(cpfield::arity);

    uint32_t n = static_cast<uint32_t>(arity.intValue());
    for (uint32_t i = 0; i < n; ++i)
        x_[i] = get(cpfield::args + i);

    cycles_ += cpfield::args + n - 1;
    if (!config_.racBlockMoves)
        cycles_ += cpfield::args + n;
    cpWordsRead += cpfield::args + n;

    unwindTrail(tr.addr());
    h_ = h.addr();
    hb_ = h.addr();
    e_ = e.addr();
    lt_ = lt.addr();
    lb_ = lt.addr();
    cpCont_ = cp.addr();
    b0_ = b0.addr();
    ct_ = b_ + cpfield::args + n;
    p_ = alt.addr();
    nextP_ = p_;

    cpFlag_ = true;
    shallowFlag_ = false;
}

void
Machine::fail()
{
    if (config_.shallowBacktracking && shallowFlag_ && !cpFlag_) {
        // Shallow backtracking: restore the three shadow registers,
        // undo head bindings, and jump to the alternative. Argument
        // registers were never modified (compiler guarantee).
        ++shallowFails;
        ++choicePointsAvoided;
        h_ = shadowH_;
        unwindTrail(shadowTR_);
        cpCont_ = shadowCP_;
        p_ = pendingAlt_;
        nextP_ = p_;
        cycles_ += 3; // restore + refetch
        return;
    }
    ++deepFails;
    cycles_ += 3;
    restoreFromChoicePoint();
}

void
Machine::cutTo(Addr target_b)
{
    if (config_.shallowBacktracking && shallowFlag_ && !cpFlag_) {
        shallowFlag_ = false;
        ++choicePointsAvoided;
    }
    if (target_b < b_) {
        b_ = target_b;
        Word arity =
            readData(Word::makeDataPtr(Zone::Control, b_ + cpfield::arity));
        Word h = readData(Word::makeDataPtr(Zone::Control, b_ + cpfield::h));
        Word lt =
            readData(Word::makeDataPtr(Zone::Control, b_ + cpfield::lt));
        cycles_ += 2;
        ct_ = b_ + cpfield::args +
              static_cast<uint32_t>(arity.intValue());
        hb_ = h.addr();
        lb_ = lt.addr();
    }
    cpFlag_ = false;
}

void
Machine::popChoicePoint()
{
    Word prev =
        readData(Word::makeDataPtr(Zone::Control, b_ + cpfield::prevB));
    ++cycles_;
    cutTo(prev.addr());
}

void
Machine::doCall(Addr target, bool is_execute)
{
    b0_ = b_;
    shallowFlag_ = false;
    cpFlag_ = false;
    if (!is_execute)
        cpCont_ = nextP_;
    nextP_ = target;
}

// -------------------------------------------- ISO exceptions (catch/throw)

void
Machine::metaCall(Word goal_word)
{
    metaCallWithBarrier(goal_word, b_);
}

void
Machine::metaCallWithBarrier(Word goal_word, Addr barrier)
{
    Word goal = deref(goal_word);
    Functor f;
    if (goal.isAtom()) {
        // Control atoms are served inline: every meta-call site is an
        // escape followed by Proceed, so plain return means success.
        AtomTable &atoms = AtomTable::instance();
        if (goal.atom() == atoms.trueAtom)
            return;
        if (goal.atom() == atoms.failAtom ||
            goal.atom() == internAtom("false")) {
            fail();
            return;
        }
        if (goal.atom() == atoms.cutAtom) {
            cutTo(barrier);
            return;
        }
        f = Functor{goal.atom(), 0};
    } else if (goal.isStruct()) {
        Word fw = readData(Word::makeDataPtr(goal.zone(), goal.addr()));
        f = Functor{fw.functorName(), fw.functorArity()};
        for (uint32_t i = 0; i < f.arity; ++i)
            x_[i] = readData(
                Word::makeDataPtr(goal.zone(), goal.addr() + 1 + i));
    } else if (goal.isList()) {
        f = Functor{AtomTable::instance().dot, 2};
        x_[0] = readData(Word::makeDataPtr(goal.zone(), goal.addr()));
        x_[1] = readData(Word::makeDataPtr(goal.zone(), goal.addr() + 1));
    } else if (goal.isRef()) {
        raiseBall(Term::makeAtom("instantiation_error"));
        return;
    } else {
        raiseBall(Term::makeStruct(
            "type_error",
            {Term::makeAtom("callable"), exportTerm(goal)}));
        return;
    }
    const PredicateInfo *info = image_.find(f);
    if (!info) {
        if (db_ && db_->isKnown(f) && image_.dynRetryEntry) {
            // Runtime-asserted predicate without a compiled stub: the
            // arguments are already in X, dispatch through the store.
            shallowFlag_ = false;
            cpFlag_ = false;
            b0_ = barrier;
            execDynamicCall(f);
            return;
        }
        warn("call/1: undefined predicate ", atomText(f.name), "/",
             f.arity);
        fail();
        return;
    }
    // Tail-jump into the predicate; the callee's proceed returns to
    // our caller.
    b0_ = barrier;
    shallowFlag_ = false;
    cpFlag_ = false;
    nextP_ = info->entry;
}

Word
Machine::importTerm(const TermRef &term)
{
    // Variables sharing a printed name (exportTerm names unbound cells
    // "_G<addr>") share one fresh heap cell, preserving what sharing
    // the exported ball recorded.
    std::map<std::string, Word> vars;
    std::function<Word(const TermRef &)> imp =
        [&](const TermRef &t) -> Word {
        switch (t->kind()) {
          case TermKind::Var: {
            auto [it, fresh] = vars.emplace(t->varName(), Word());
            if (fresh)
                it->second = newHeapVar();
            return it->second;
          }
          case TermKind::Atom:
            return t->isNil() ? Word::makeNil()
                              : Word::makeAtom(t->atom());
          case TermKind::Int:
            return Word::makeInt(static_cast<int32_t>(t->intValue()));
          case TermKind::Float:
            return Word::makeFloat(static_cast<float>(t->floatValue()));
          case TermKind::Struct: {
            if (t->isCons()) {
                Word head = imp(t->arg(0));
                Word tail = imp(t->arg(1));
                Addr cell = h_;
                pushHeapCell(head);
                pushHeapCell(tail);
                return Word::makeList(Zone::Global, cell);
            }
            std::vector<Word> args;
            for (const auto &a : t->args())
                args.push_back(imp(a));
            Addr cell = h_;
            pushHeapCell(Word::makeFunctor(t->functorName(), t->arity()));
            for (Word a : args)
                pushHeapCell(a);
            return Word::makeStruct(Zone::Global, cell);
          }
        }
        panic("importTerm: unreachable term kind");
    };
    return imp(term);
}

// ------------------------------------------- dynamic clause database

db::ArgKey
Machine::argKeyOf(Word w)
{
    using K = db::ArgKey;
    K key;
    if (w.isRef())
        return key; // unbound: Any (every clause is a candidate)
    switch (w.tag()) {
      case Tag::Int:
        key.kind = K::Kind::Int;
        key.a = static_cast<uint64_t>(
            static_cast<int64_t>(w.intValue()));
        break;
      case Tag::Float: {
        float f = w.floatValue();
        uint32_t bits;
        memcpy(&bits, &f, sizeof bits);
        key.kind = K::Kind::Float;
        key.a = bits;
        break;
      }
      case Tag::Atom:
        key.kind = K::Kind::Atom;
        key.a = w.atom();
        break;
      case Tag::Nil:
        key.kind = K::Kind::Atom;
        key.a = AtomTable::instance().nil;
        break;
      case Tag::List:
        key.kind = K::Kind::Functor;
        key.a = AtomTable::instance().dot;
        key.b = 2;
        break;
      case Tag::Struct: {
        Word f = readData(Word::makeDataPtr(w.zone(), w.addr()));
        key.kind = K::Kind::Functor;
        key.a = f.functorName();
        key.b = f.functorArity();
        break;
      }
      default:
        break; // non-indexable word: fall back to Any
    }
    return key;
}

void
Machine::execDynamicCall(const Functor &f)
{
    if (!db_) {
        fail();
        return;
    }
    uint32_t n = f.arity;
    uint64_t gen = db_->generation();
    db::ArgKey key = n ? argKeyOf(deref(x_[0])) : db::ArgKey{};
    db::ClauseStore::LookupResult res = db_->first(f, key, gen);
    cycles_ += config_.dyndb.scanCycles * res.scanned;
    if (!res.clause) {
        fail();
        return;
    }
    // Cut barrier of the clause bodies: the B current before any
    // iterator choice point — `!` in an asserted body prunes the
    // remaining clauses of this predicate (ISO 7.8.9.1).
    Addr barrier = b_;
    // Look ahead: an iterator choice point is pushed only when a
    // further candidate exists (the WAM try/trust distinction).
    db::ClauseStore::LookupResult ahead =
        db_->next(f, key, gen, res.clause->seq);
    cycles_ += config_.dyndb.scanCycles * ahead.scanned;
    if (ahead.clause) {
        // Iterator state rides in the X registers after the
        // arguments, saved and revived by the ordinary choice-point
        // RAC block moves: captured generation, cursor sequence
        // number, and the predicate's functor word.
        x_[n] = Word::makeInt(static_cast<int32_t>(gen));
        x_[n + 1] = Word::makeInt(static_cast<int32_t>(res.clause->seq));
        x_[n + 2] = Word::makeFunctor(f.name, f.arity);
        pushChoicePoint(image_.dynRetryEntry, n + 3, h_, tr_, cpCont_);
        cpFlag_ = true;
        shallowFlag_ = false;
    }
    runDynamicClause(*res.clause, n, barrier);
}

void
Machine::execDynamicRetry()
{
    // Entered through a deep fail: B is the iterator choice point and
    // the X registers (arguments + iterator slots) are restored.
    uint32_t total = static_cast<uint32_t>(
        readData(Word::makeDataPtr(Zone::Control, b_ + cpfield::arity))
            .intValue());
    uint32_t n = total - 3;
    uint64_t gen = static_cast<uint64_t>(x_[n].intValue());
    int64_t after = x_[n + 1].intValue();
    Word fw = x_[n + 2];
    Functor f{fw.functorName(), fw.functorArity()};
    db::ArgKey key = n ? argKeyOf(deref(x_[0])) : db::ArgKey{};
    db::ClauseStore::LookupResult res = db_->next(f, key, gen, after);
    cycles_ += config_.dyndb.scanCycles * res.scanned;
    if (!res.clause) {
        // Only reachable when the image was reloaded around a
        // snapshot boundary; the lookahead otherwise guarantees a
        // candidate. Drop the iterator and keep failing.
        popChoicePoint();
        fail();
        return;
    }
    db::ClauseStore::LookupResult ahead =
        db_->next(f, key, gen, res.clause->seq);
    cycles_ += config_.dyndb.scanCycles * ahead.scanned;
    Addr barrier;
    if (ahead.clause) {
        // Advance the cursor in place (register and saved CP slot);
        // the iterator choice point stays for the next retry.
        Word cursor = Word::makeInt(static_cast<int32_t>(res.clause->seq));
        x_[n + 1] = cursor;
        writeData(Word::makeDataPtr(Zone::Control,
                                    b_ + cpfield::args + n + 1),
                  cursor);
        barrier =
            readData(
                Word::makeDataPtr(Zone::Control, b_ + cpfield::prevB))
                .addr();
    } else {
        popChoicePoint(); // last candidate: trust — drop the iterator
        barrier = b_;
    }
    runDynamicClause(*res.clause, n, barrier);
}

void
Machine::runDynamicClause(const db::StoredClause &clause, uint32_t arity,
                          Addr barrier)
{
    bool is_rule = clause.body != nullptr;
    Word head_w;
    Word body_w;
    if (is_rule) {
        // Import head and body as one term so the variables they
        // share (by printed name, per importTerm's contract) land in
        // shared heap cells.
        TermRef whole = Term::makeStruct(AtomTable::instance().neck,
                                         {clause.head, clause.body});
        Word w = importTerm(whole);
        head_w = readData(Word::makeDataPtr(w.zone(), w.addr() + 1));
        body_w = readData(Word::makeDataPtr(w.zone(), w.addr() + 2));
    } else if (arity > 0) {
        head_w = importTerm(clause.head);
    } else {
        return; // arity-0 fact: trivially true
    }
    if (arity > 0) {
        Word hd = deref(head_w);
        for (uint32_t i = 0; i < arity; ++i) {
            Word a =
                readData(Word::makeDataPtr(hd.zone(), hd.addr() + 1 + i));
            ++cycles_; // head-argument fetch
            if (!unify(x_[i], a)) {
                fail();
                return;
            }
        }
    }
    if (is_rule)
        metaCallWithBarrier(body_w, barrier);
    // Facts fall through to the stub's Proceed.
}

void
Machine::execAssert(bool at_front)
{
    Word w = deref(x_[0]);
    if (w.isRef()) {
        raiseBall(Term::makeAtom("instantiation_error"));
        return;
    }
    TermRef term = exportTerm(w);
    AtomId neck = AtomTable::instance().neck;
    TermRef head = term;
    TermRef body = nullptr;
    if (term->isStruct() && term->arity() == 2 &&
        term->functorName() == neck) {
        head = term->arg(0);
        body = term->arg(1);
    }
    if (head->isVar()) {
        raiseBall(Term::makeAtom("instantiation_error"));
        return;
    }
    if (!head->isAtom() && !head->isStruct()) {
        raiseBall(Term::makeStruct(
            "type_error", {Term::makeAtom("callable"), head}));
        return;
    }
    Functor f = head->functor();
    if (f.arity > db::maxDynamicArity) {
        raiseBall(Term::makeStruct("representation_error",
                                   {Term::makeAtom("max_arity")}));
        return;
    }
    const PredicateInfo *info = image_.find(f);
    bool is_static =
        (info && !image_.isDynamic(f)) || findBuiltin(f).has_value();
    if (is_static) {
        raiseBall(Term::makeStruct(
            "permission_error",
            {Term::makeAtom("modify"), Term::makeAtom("static_procedure"),
             Term::makeStruct("/",
                              {Term::makeAtom(f.name),
                               Term::makeInt(f.arity)})}));
        return;
    }
    if (!db_) {
        fail();
        return;
    }
    db_->assertClause(f, head, body, at_front);
    cycles_ += config_.dyndb.updateCycles;
}

void
Machine::execRetract()
{
    Word w = deref(x_[0]);
    if (w.isRef()) {
        raiseBall(Term::makeAtom("instantiation_error"));
        return;
    }
    AtomId neck = AtomTable::instance().neck;
    Word head_w = w;
    Word body_w = Word::makeAtom(AtomTable::instance().trueAtom);
    if (w.isStruct()) {
        Word fw = readData(Word::makeDataPtr(w.zone(), w.addr()));
        if (fw.functorName() == neck && fw.functorArity() == 2) {
            head_w = deref(
                readData(Word::makeDataPtr(w.zone(), w.addr() + 1)));
            body_w = readData(Word::makeDataPtr(w.zone(), w.addr() + 2));
        }
    }
    Functor f;
    if (head_w.isRef()) {
        raiseBall(Term::makeAtom("instantiation_error"));
        return;
    } else if (head_w.isAtom()) {
        f = Functor{head_w.atom(), 0};
    } else if (head_w.isStruct()) {
        Word fw =
            readData(Word::makeDataPtr(head_w.zone(), head_w.addr()));
        f = Functor{fw.functorName(), fw.functorArity()};
    } else if (head_w.isList()) {
        f = Functor{AtomTable::instance().dot, 2};
    } else {
        raiseBall(Term::makeStruct(
            "type_error",
            {Term::makeAtom("callable"), exportTerm(head_w)}));
        return;
    }
    const PredicateInfo *info = image_.find(f);
    bool is_static =
        (info && !image_.isDynamic(f)) || findBuiltin(f).has_value();
    if (is_static) {
        raiseBall(Term::makeStruct(
            "permission_error",
            {Term::makeAtom("modify"), Term::makeAtom("static_procedure"),
             Term::makeStruct("/",
                              {Term::makeAtom(f.name),
                               Term::makeInt(f.arity)})}));
        return;
    }
    if (!db_ || !db_->isKnown(f)) {
        fail();
        return;
    }
    uint64_t gen = db_->generation();
    db::ArgKey key;
    if (f.arity) {
        Word first =
            head_w.isList()
                ? readData(
                      Word::makeDataPtr(head_w.zone(), head_w.addr()))
                : readData(Word::makeDataPtr(head_w.zone(),
                                             head_w.addr() + 1));
        key = argKeyOf(deref(first));
    }
    Word true_w = Word::makeAtom(AtomTable::instance().trueAtom);
    int64_t cursor = 0;
    bool have_cursor = false;
    for (;;) {
        db::ClauseStore::LookupResult res =
            have_cursor ? db_->next(f, key, gen, cursor)
                        : db_->first(f, key, gen);
        cycles_ += config_.dyndb.scanCycles * res.scanned;
        if (!res.clause) {
            fail();
            return;
        }
        cursor = res.clause->seq;
        have_cursor = true;
        // Trial unification against the candidate. Force the trail
        // boundaries so every binding into a pre-existing cell is
        // recorded, letting a mismatch be undone precisely; the
        // shallow-backtracking shortcut must not bypass that.
        Addr h0 = h_;
        Addr tr0 = tr_;
        Addr hb0 = hb_;
        Addr lb0 = lb_;
        bool shallow0 = shallowFlag_;
        shallowFlag_ = false;
        hb_ = h0;
        lb_ = lt_;
        Word cand_head;
        Word cand_body = true_w;
        if (res.clause->body) {
            TermRef whole =
                Term::makeStruct(AtomTable::instance().neck,
                                 {res.clause->head, res.clause->body});
            Word cw = importTerm(whole);
            cand_head =
                readData(Word::makeDataPtr(cw.zone(), cw.addr() + 1));
            cand_body =
                readData(Word::makeDataPtr(cw.zone(), cw.addr() + 2));
        } else {
            cand_head = importTerm(res.clause->head);
        }
        bool ok = unify(head_w, cand_head) && unify(body_w, cand_body);
        hb_ = hb0;
        lb_ = lb0;
        shallowFlag_ = shallow0;
        if (ok) {
            // The pattern stays unified with the removed clause (ISO);
            // the imported cells above h0 are part of the bindings.
            db_->eraseClause(f, res.clause->seq);
            cycles_ += config_.dyndb.updateCycles;
            return;
        }
        unwindTrail(tr0);
        h_ = h0;
    }
}

bool
Machine::deliverBall(const TermRef &ball)
{
    if (!image_.catchFailEntry)
        return false; // image without the catch machinery (raw tests)

    for (;;) {
        // Scan the B chain for the innermost catch/3 marker. Only
        // live choice points are linked (cut unlinks discarded ones),
        // so any marker found is a valid catcher. Each inspected
        // frame is charged the alt-field control-stack read plus the
        // marker comparator.
        Addr marker = 0;
        Addr cp = b_;
        for (;;) {
            cycles_ += config_.catchUnwindCycles;
            Word alt = mem_->peekData(cp + cpfield::alt);
            if (alt.addr() == image_.catchFailEntry) {
                marker = cp;
                break;
            }
            Word prev = mem_->peekData(cp + cpfield::prevB);
            if (prev.addr() == cp)
                return false; // bottom choice point: uncaught
            cp = prev.addr();
        }

        // RAC block restore at the marker — the ordinary deep-fail
        // data path: revives X0..X2 (Goal, Catcher, Recovery), undoes
        // bindings through the trail, resets H/E/LT/CP. Then pop the
        // marker: the catcher frame is consumed whether or not it
        // accepts the ball.
        b_ = marker;
        restoreFromChoicePoint();
        popChoicePoint();

        // Copy the ball onto the unwound heap and unify it with the
        // revived Catcher. Ball cells are above HB, so undoing a
        // failed unification is the trail suffix made since here.
        Addr mark = tr_;
        Word ball_word = importTerm(ball);
        if (unify(ball_word, x_[1])) {
            metaCall(x_[2]); // run Recovery in the catcher's context
            return true;
        }
        unwindTrail(mark);
        // No match: rethrow to the next enclosing marker.
    }
}

void
Machine::raiseBall(const TermRef &ball)
{
    if (deliverBall(ball))
        return;
    throw MachineTrap(TrapKind::UnhandledException, writeTermQuoted(ball));
}

// ------------------------------------------------------------- run loop

RunStatus
Machine::run()
{
    armGovernor();
    for (;;) {
        try {
            return runLoop();
        } catch (const MachineTrap &trap) {
            // Governor exhaustion with an enclosing catch/3 becomes a
            // catchable resource_error ball; anything else (or no
            // catcher) surfaces as RunStatus::Trapped, as before. A
            // slice stop is host machinery, never a program event.
            if (!sliceExpired_ && convertResourceTrap(trap))
                continue;
            return recordTrap(trap);
        }
    }
}

RunStatus
Machine::runLoop()
{
    if (config_.fastDispatch)
        return runFast();
    while (true) {
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {
            if (stopKind_ != StopKind::Limit)
                trapCycleBudget();
            return RunStatus::CycleLimit;
        }
        step();
        if (solutionReady_) {
            solutionReady_ = false;
            return RunStatus::SolutionFound;
        }
        if (haltFailed_)
            return RunStatus::Failed;
        if (halted_)
            return RunStatus::Halted;
    }
}

RunStatus
Machine::nextSolution()
{
    armGovernor();
    halted_ = false;
    stepStartCycles_ = cycles_;
    bool backtracked = false;
    for (;;) {
        try {
            if (!backtracked) {
                backtracked = true;
                fail();
                cycles_ += penalty_;
                penalty_ = 0;
            }
            return runLoop();
        } catch (const MachineTrap &trap) {
            if (!sliceExpired_ && convertResourceTrap(trap))
                continue;
            return recordTrap(trap);
        }
    }
}

RunStatus
Machine::resume()
{
    if (!trapped_)
        fatal("resume() without a pending trap");
    if (lastTrap_.kind != TrapKind::Abort)
        return RunStatus::Trapped; // not resumable; lastTrap() stands
    trapped_ = false;
    return run();
}

// ------------------------------------- trap delivery and the governor

RunStatus
Machine::recordTrap(const MachineTrap &trap)
{
    // Roll the cycle counter back to the last completed instruction
    // boundary: a trap aborts its instruction, so partial charges
    // (deref steps, unify sub-steps, firmware growth attempts) are
    // discarded and both dispatch cores report the identical count.
    // instructions_/inferences_ only advance at finishStep, so they
    // are already boundary-consistent.
    cycles_ = stepStartCycles_;
    penalty_ = 0;

    lastTrap_.kind = trap.kind();
    lastTrap_.message = trap.what();
    lastTrap_.faultAddr = trap.faultAddr();
    lastTrap_.pc = p_;
    lastTrap_.cycle = cycles_;
    lastTrap_.instructions = instructions_;
    lastTrap_.state = stateString();
    trapped_ = true;
    // Slice stops are host machinery (watchdogs, checkpointing): not
    // counting them keeps the counter identical between a sliced and
    // an unsliced run of the same query.
    if (!sliceExpired_)
        ++trapsTaken;
    return RunStatus::Trapped;
}

bool
Machine::convertResourceTrap(const MachineTrap &trap)
{
    if (!trapIsResource(trap.kind()) || !image_.catchFailEntry)
        return false;
    // Roll back the aborted instruction's partial charges exactly as
    // recordTrap would, then deliver resource_error(<kind>) to an
    // enclosing catch/3 marker, if any.
    cycles_ = stepStartCycles_;
    penalty_ = 0;
    TermRef ball = Term::makeStruct(
        "resource_error", {Term::makeAtom(trapKindName(trap.kind()))});
    try {
        if (!deliverBall(ball))
            return false;
    } catch (const MachineTrap &) {
        // A second trap while unwinding (e.g. the ball import crossing
        // an exhausted quota): surface the original condition.
        return false;
    }
    // Delivery ran between instructions (finishStep will not run for
    // it): account its memory penalties and advance P into the
    // recovery continuation set up by deliverBall.
    if (config_.timeMemory)
        cycles_ += penalty_;
    penalty_ = 0;
    p_ = nextP_;
    if (trap.kind() == TrapKind::Abort && stopKind_ == StopKind::Budget) {
        // The cycle budget is spent; waive it for the rest of this
        // query so the recovery goal (and backtracking after it) runs
        // bounded by maxCycles alone. load() re-arms the configured
        // budget.
        stopCycles_ = config_.maxCycles;
        stopKind_ = StopKind::Limit;
        budgetWaived_ = true;
    }
    return true;
}

void
Machine::armGovernor()
{
    uint64_t budget = config_.governor.cycleBudget;
    uint64_t max = config_.maxCycles;
    if (budget && !budgetWaived_ && (!max || budget <= max)) {
        stopCycles_ = budget;
        stopKind_ = StopKind::Budget;
    } else {
        stopCycles_ = max;
        stopKind_ = StopKind::Limit;
    }
    // A slice stop below the budget/limit preempts it; on a tie the
    // budget wins (the genuine, program-visible condition).
    if (sliceStop_ && (!stopCycles_ || sliceStop_ < stopCycles_)) {
        stopCycles_ = sliceStop_;
        stopKind_ = StopKind::Slice;
    }
    sliceExpired_ = false;
    faultsPending_ = faultCursor_ < config_.faultPlan.actions.size();
}

void
Machine::applyQuotas()
{
    const ResourceGovernor &gov = config_.governor;
    const DataLayout &layout = mem_->layout();
    ZoneChecker &checker = mem_->zoneChecker();
    // Under a byte budget every zone needs a growth boundary: a zone
    // with no explicit quota starts at one growth step and is grown by
    // firmware on demand, with the aggregate footprint checked at each
    // growth (growStackZone).
    uint64_t default_words =
        gov.memoryBudgetBytes ? gov.growthStepWords : 0;
    auto quota = [&](Zone zone, Addr start, Addr end, uint64_t words) {
        if (!words)
            words = default_words;
        if (!words)
            return;
        Addr span = static_cast<Addr>(
            std::min<uint64_t>(words, end - start));
        checker.setQuota(zone, start + span);
    };
    quota(Zone::Global, layout.globalStart, layout.globalEnd,
          gov.globalQuotaWords);
    quota(Zone::Local, layout.localStart, layout.localEnd,
          gov.localQuotaWords);
    quota(Zone::Control, layout.controlStart, layout.controlEnd,
          gov.controlQuotaWords);
    quota(Zone::TrailZ, layout.trailStart, layout.trailEnd,
          gov.trailQuotaWords);
}

uint64_t
Machine::residentZoneBytes() const
{
    // The governed footprint: words between each data zone's start and
    // its current soft limit. Zones without a quota (not growable)
    // count their full span — they are committed address space either
    // way.
    const ZoneChecker &checker = mem_->zoneChecker();
    uint64_t words = 0;
    for (Zone zone : {Zone::Global, Zone::Local, Zone::Control,
                      Zone::TrailZ}) {
        const ZoneInfo &zi = checker.info(zone);
        Addr limit = zi.growable ? zi.softLimit : zi.end;
        words += limit - zi.start;
    }
    return words * sizeof(Word);
}

bool
Machine::growStackZone(Zone zone)
{
    const ResourceGovernor &gov = config_.governor;
    if (!gov.growStacks)
        return false;
    ZoneChecker &checker = mem_->zoneChecker();
    const ZoneInfo &zi = checker.info(zone);
    if (!zi.growable)
        return false;
    Addr ceiling = 0;
    if (gov.zoneCeilingWords) {
        Addr span = static_cast<Addr>(std::min<uint64_t>(
            gov.zoneCeilingWords, zi.end - zi.start));
        ceiling = zi.start + span;
    }
    if (gov.memoryBudgetBytes) {
        // Aggregate resident-byte ceiling, checked at the growth
        // boundary: a step that would push the summed zone footprint
        // past the budget is refused as a resource condition of its
        // own, catchable as resource_error(memory).
        uint64_t resident = residentZoneBytes();
        uint64_t step = gov.growthStepWords * sizeof(Word);
        if (resident + step > gov.memoryBudgetBytes)
            throw MachineTrap(
                TrapKind::MemoryBudget,
                cat("memory budget exhausted (", resident,
                    " resident + ", step, " growth > budget ",
                    gov.memoryBudgetBytes, " bytes)"));
    }
    if (!checker.growSoftLimit(zone,
                               static_cast<Addr>(gov.growthStepWords),
                               ceiling))
        return false;
    // The firmware's trap service cost (§3.2.3): charged to the
    // simulated clock identically by both dispatch cores, since both
    // route every data write through this path.
    cycles_ += gov.stackGrowCycles;
    ++stackZoneGrowths;
    return true;
}

void
Machine::applyDueFaults()
{
    const auto &actions = config_.faultPlan.actions;
    while (faultCursor_ < actions.size() &&
           cycles_ >= actions[faultCursor_].cycle) {
        const FaultAction &action = actions[faultCursor_++];
        switch (action.kind) {
          case FaultKind::InjectPageFault:
            mem_->mmu().injectPageFault();
            break;
          case FaultKind::TightenZone: {
            const ZoneInfo &zi =
                mem_->zoneChecker().info(action.zone);
            mem_->zoneChecker().setLimits(action.zone, zi.start,
                                          action.limit);
            break;
          }
          case FaultKind::CorruptWord:
            mem_->pokeData(action.addr, Word(action.raw));
            break;
        }
    }
    faultsPending_ = faultCursor_ < actions.size();
}

void
Machine::trapCycleBudget()
{
    // Taken between instructions: nothing to roll back, and p_ is
    // the next instruction — resume() continues exactly here.
    stepStartCycles_ = cycles_;
    if (stopKind_ == StopKind::Slice) {
        sliceExpired_ = true;
        throw MachineTrap(TrapKind::Abort,
                          cat("run slice expired (", cycles_,
                              " cycles >= slice stop ", stopCycles_, ")"));
    }
    throw MachineTrap(TrapKind::Abort,
                      cat("cycle budget exhausted (", cycles_,
                          " cycles >= budget ", stopCycles_, ")"));
}

std::vector<Solution>
Machine::solutions(size_t max)
{
    std::vector<Solution> out;
    RunStatus status = run();
    while (status == RunStatus::SolutionFound) {
        out.push_back(solution_);
        if (out.size() >= max)
            break;
        status = nextSolution();
    }
    return out;
}

void
Machine::step()
{
    const DecodedInstr &instr = fetchDecoded();
    execInstr(instr);
    finishStep(instr);
}

std::string
Machine::recentTrace(size_t max_entries) const
{
    std::ostringstream os;
    size_t count = std::min(max_entries, traceSize);
    for (size_t i = 0; i < count; ++i) {
        size_t idx = (traceHead_ + traceSize - count + i) % traceSize;
        const TraceEntry &entry = trace_[idx];
        if (entry.raw == 0 && entry.p == 0)
            continue;
        std::vector<uint64_t> one{entry.raw};
        os << "0x" << std::hex << entry.p << std::dec << ":\t"
           << disasmOne(one, 0) << "\n";
    }
    return os.str();
}

std::string
Machine::stateString() const
{
    std::ostringstream os;
    os << std::hex << "P=0x" << p_ << " CP=0x" << cpCont_ << " E=0x" << e_
       << " LT=0x" << lt_ << " LB=0x" << lb_ << " B=0x" << b_ << " CT=0x"
       << ct_ << " B0=0x" << b0_ << " H=0x" << h_ << " HB=0x" << hb_
       << " TR=0x" << tr_ << std::dec << " shallow=" << shallowFlag_
       << " cpFlag=" << cpFlag_;
    return os.str();
}

void
Machine::hostWrite(const std::string &text)
{
    if (config_.captureOutput)
        hostOutput_ += text;
    else
        fputs(text.c_str(), stdout);
}

TermRef
Machine::exportTerm(Word w, int depth)
{
    if (depth > 4000)
        return Term::makeAtom("...");

    // Untimed dereference through the debug interface.
    while (w.isRef()) {
        Word v = mem_->peekData(w.addr());
        if (v.raw() == w.raw())
            return Term::makeVar(cat("_G", w.addr()));
        w = v;
    }

    switch (w.tag()) {
      case Tag::Nil:
        return Term::makeAtom(AtomTable::instance().nil);
      case Tag::Atom:
        return Term::makeAtom(w.atom());
      case Tag::Int:
        return Term::makeInt(w.intValue());
      case Tag::Float:
        return Term::makeFloat(w.floatValue());
      case Tag::List: {
        TermRef head = exportTerm(mem_->peekData(w.addr()), depth + 1);
        TermRef tail = exportTerm(mem_->peekData(w.addr() + 1), depth + 1);
        return Term::makeCons(head, tail);
      }
      case Tag::Struct: {
        Word f = mem_->peekData(w.addr());
        std::vector<TermRef> args;
        for (uint32_t i = 1; i <= f.functorArity(); ++i)
            args.push_back(exportTerm(mem_->peekData(w.addr() + i),
                                      depth + 1));
        return Term::makeStruct(f.functorName(), std::move(args));
      }
      default:
        return Term::makeAtom(cat("<", tagName(w.tag()), ">"));
    }
}

} // namespace kcm
