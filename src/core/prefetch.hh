/**
 * @file
 * The instruction prefetch unit (§3.1.3, Fig. 6).
 *
 * A three-stage pipeline: register P holds the address of instruction
 * n+2, IB/SP hold instruction n+1 and its address, IR/TP hold the
 * executing instruction n and its address. During sequential execution
 * P increments every cycle and instructions stream at 1/cycle; an
 * immediate jump or call switches the P multiplexer to IB (2 cycles);
 * a taken conditional branch costs 4.
 *
 * In this simulator the *timing* of breaks is charged through the
 * opcode base costs (so the numbers stay calibrated); this unit models
 * the pipeline state itself and accounts for how the machine actually
 * fetched: sequential streams, immediate branches, taken/untaken
 * conditionals, and the refills after failure. Its statistics feed the
 * §5 evaluation of the prefetcher.
 */

#ifndef KCM_CORE_PREFETCH_HH
#define KCM_CORE_PREFETCH_HH

#include <cstdint>

#include "base/stats.hh"
#include "isa/word.hh"

namespace kcm
{

class PrefetchUnit
{
  public:
    PrefetchUnit() : stats_("prefetch")
    {
        stats_.add("sequentialFetches", sequentialFetches);
        stats_.add("pipelineBreaks", pipelineBreaks);
        stats_.add("takenBranches", takenBranches);
        stats_.add("untakenBranches", untakenBranches);
    }

    /** Reset pipeline state (machine load). */
    void
    reset(Addr entry)
    {
        tp_ = entry;
        sp_ = entry;
        p_ = entry;
        primed_ = false;
    }

    /**
     * Account for the fetch of the instruction at @p addr. Detects
     * whether the pipeline streamed (addr == expected next) or broke.
     */
    void
    onFetch(Addr addr, Addr expected_next)
    {
        if (primed_ && addr == expected_next) {
            ++sequentialFetches;
        } else if (primed_) {
            ++pipelineBreaks;
        }
        // Shift the pipeline: IR <- IB <- (P).
        tp_ = sp_;
        sp_ = p_;
        p_ = addr + 2;
        lastAddr_ = addr;
        primed_ = true;
    }

    /** A conditional branch resolved. */
    void
    onConditional(bool taken)
    {
        if (taken)
            ++takenBranches;
        else
            ++untakenBranches;
    }

    /** Fraction of fetches that streamed at one per cycle. */
    double
    sequentialRate() const
    {
        uint64_t total = sequentialFetches.value() + pipelineBreaks.value();
        return total ? double(sequentialFetches.value()) / total : 1.0;
    }

    StatGroup &stats() { return stats_; }

    Counter sequentialFetches;
    Counter pipelineBreaks;
    Counter takenBranches;
    Counter untakenBranches;

  private:
    friend struct SnapshotAccess;

    Addr tp_ = 0; ///< address of the executing instruction (TP)
    Addr sp_ = 0; ///< address of the buffered instruction (SP)
    Addr p_ = 0;  ///< prefetch address register (P)
    Addr lastAddr_ = 0;
    bool primed_ = false;

    StatGroup stats_;
};

} // namespace kcm

#endif // KCM_CORE_PREFETCH_HH
