/**
 * @file
 * Per-opcode instruction handlers over the predecoded form.
 *
 * Each handler is the body of one (former) execInstr switch case,
 * shared verbatim between the oracle dispatcher (exec_instr.cc,
 * switch) and the token-threaded core (exec_threaded.cc, computed
 * goto). Keeping a single definition of every opcode's semantics is
 * what guarantees the two dispatch paths stay cycle-for-cycle
 * identical. Opcode groups with their own microcode units keep their
 * grouped handlers (execIndex, execUnifyClass, execArith,
 * execEscape).
 */

#ifndef KCM_CORE_EXEC_OPS_HH
#define KCM_CORE_EXEC_OPS_HH

#include <algorithm>

#include "base/logging.hh"
#include "core/machine.hh"

namespace kcm
{

namespace exec_detail
{

/** Env slot address of Y register @p y under environment @p e. */
constexpr Addr
yAddr(Addr e, Reg y)
{
    return e + 2 + y;
}

/** Out-of-line trap formatting: the hot handlers carry only the
 *  test and a call; the message string is built when (and only
 *  when) the trap actually fires. */
[[noreturn, gnu::cold, gnu::noinline]] inline void
trapDeallocCorruptCE(Addr e, Word ce)
{
    throw MachineTrap(TrapKind::ZoneViolation,
                      cat("DEALLOC corrupt CE at E=0x", std::hex, e,
                          " ce=", ce.toString()));
}

[[noreturn, gnu::cold, gnu::noinline]] inline void
trapBadInstruction(Addr p)
{
    throw MachineTrap(TrapKind::BadInstruction,
                      cat("undecodable opcode at 0x", std::hex, p));
}

} // namespace exec_detail

// ------------------------------------------------------------ control

inline void
Machine::opHalt(const DecodedInstr &instr)
{
    if (instr.value == 0)
        halted_ = true;
    else
        haltFailed_ = true;
}

inline void
Machine::opJump(const DecodedInstr &instr)
{
    nextP_ = instr.value;
}

inline void
Machine::opCall(const DecodedInstr &instr)
{
    doCall(instr.value, false);
}

inline void
Machine::opExecute(const DecodedInstr &instr)
{
    doCall(instr.value, true);
}

inline void
Machine::opProceed(const DecodedInstr &)
{
    nextP_ = cpCont_;
}

inline void
Machine::opAllocate(const DecodedInstr &instr)
{
    // The new environment goes above both the current local top
    // and the region protected by the current choice point (after
    // a deallocate, LT may sit below frames that backtracking will
    // revive — the split-stack analogue of the WAM's
    // E := max(E, B) rule).
    Addr new_e = std::max(lt_, lb_);
    writeData(Word::makeDataPtr(Zone::Local, new_e),
              Word::makeDataPtr(Zone::Local, e_));
    writeData(Word::makeDataPtr(Zone::Local, new_e + 1),
              Word::makeCodePtr(cpCont_));
    e_ = new_e;
    lt_ = new_e + 2 + instr.r1;
    noteEnvSize(new_e, instr.r1); // GC debug info (host side)
    ++cycles_; // two stack writes
    ++envAllocs;
}

inline void
Machine::opDeallocate(const DecodedInstr &)
{
    cpCont_ = readData(Word::makeDataPtr(Zone::Local, e_ + 1)).addr();
    Addr old_e = e_;
    Word ce = readData(Word::makeDataPtr(Zone::Local, e_));
    if (ce.zone() != Zone::Local) [[unlikely]]
        exec_detail::trapDeallocCorruptCE(e_, ce);
    e_ = ce.addr();
    lt_ = old_e;
    ++cycles_; // two stack reads
}

// ------------------------------------------------------------ get/put

inline void
Machine::opGetVariableX(const DecodedInstr &instr)
{
    x_[instr.r1] = x_[instr.r2];
    if (!config_.dualPortRegisterFile)
        ++cycles_;
}

inline void
Machine::opGetVariableY(const DecodedInstr &instr)
{
    writeData(Word::makeDataPtr(Zone::Local,
                                exec_detail::yAddr(e_, instr.r1)),
              x_[instr.r2]);
}

inline void
Machine::opGetValueX(const DecodedInstr &instr)
{
    if (!unify(x_[instr.r1], x_[instr.r2]))
        fail();
}

inline void
Machine::opGetValueY(const DecodedInstr &instr)
{
    Word y = readData(Word::makeDataPtr(Zone::Local,
                                        exec_detail::yAddr(e_, instr.r1)));
    if (!unify(y, x_[instr.r2]))
        fail();
}

inline void
Machine::opGetConstant(const DecodedInstr &instr)
{
    Word want = instr.opcode() == Opcode::GetNil ? Word::makeNil()
                                                 : instr.constant;
    Word w = deref(x_[instr.r2]);
    if (w.isRef()) {
        bind(w, want);
    } else if (w.tag() != want.tag() || w.value() != want.value()) {
        fail();
    }
}

inline void
Machine::opGetList(const DecodedInstr &instr)
{
    Word w = deref(x_[instr.r2]);
    if (w.isRef()) {
        bind(w, Word::makeList(Zone::Global, h_));
        writeMode_ = true;
    } else if (w.isList()) {
        s_ = w.addr();
        writeMode_ = false;
    } else {
        fail();
    }
}

inline void
Machine::opGetStructure(const DecodedInstr &instr)
{
    Word f = instr.constant;
    Word w = deref(x_[instr.r2]);
    if (w.isRef()) {
        bind(w, Word::makeStruct(Zone::Global, h_));
        pushHeapCell(f);
        writeMode_ = true;
    } else if (w.isStruct()) {
        Word actual = readData(Word::makeDataPtr(w.zone(), w.addr()));
        ++cycles_;
        if (actual.raw() != f.raw()) {
            fail();
            return;
        }
        s_ = w.addr() + 1;
        writeMode_ = false;
    } else {
        fail();
    }
}

inline void
Machine::opPutVariableX(const DecodedInstr &instr)
{
    Word v = newHeapVar();
    x_[instr.r1] = v;
    x_[instr.r2] = v;
}

inline void
Machine::opPutVariableY(const DecodedInstr &instr)
{
    Addr a = exec_detail::yAddr(e_, instr.r1);
    Word v = Word::makeRef(Zone::Local, a);
    writeData(v, v);
    x_[instr.r2] = v;
}

inline void
Machine::opPutValueX(const DecodedInstr &instr)
{
    x_[instr.r2] = x_[instr.r1];
    if (!config_.dualPortRegisterFile)
        ++cycles_;
}

inline void
Machine::opPutValueY(const DecodedInstr &instr)
{
    x_[instr.r2] = readData(Word::makeDataPtr(
        Zone::Local, exec_detail::yAddr(e_, instr.r1)));
}

inline void
Machine::opPutUnsafeValue(const DecodedInstr &instr)
{
    Word w = deref(readData(Word::makeDataPtr(
        Zone::Local, exec_detail::yAddr(e_, instr.r1))));
    if (w.isRef() && w.zone() == Zone::Local && w.addr() >= e_) {
        // Unbound variable in the environment being discarded:
        // globalize it.
        x_[instr.r2] = globalize(w);
    } else {
        x_[instr.r2] = w;
    }
}

inline void
Machine::opPutConstant(const DecodedInstr &instr)
{
    x_[instr.r2] = instr.constant;
}

inline void
Machine::opPutNil(const DecodedInstr &instr)
{
    x_[instr.r2] = Word::makeNil();
}

inline void
Machine::opPutList(const DecodedInstr &instr)
{
    x_[instr.r2] = Word::makeList(Zone::Global, h_);
    writeMode_ = true;
}

inline void
Machine::opPutStructure(const DecodedInstr &instr)
{
    x_[instr.r2] = Word::makeStruct(Zone::Global, h_);
    pushHeapCell(instr.constant);
    writeMode_ = true;
}

// ------------------------------------------------------ data movement

inline void
Machine::opMove2(const DecodedInstr &instr)
{
    x_[instr.r3] = x_[instr.r1];
    x_[instr.r4] = x_[instr.r2];
    if (!config_.dualPortRegisterFile)
        ++cycles_; // two moves need two file cycles
}

inline void
Machine::opLoadImm(const DecodedInstr &instr)
{
    x_[instr.r1] = instr.constant;
}

inline void
Machine::opSwapTV(const DecodedInstr &instr)
{
    x_[instr.r3] = x_[instr.r1].swapped();
}

inline void
Machine::opLoad(const DecodedInstr &instr)
{
    // Xr3 := mem[Xr1 + offset]; Xr2 := Xr1 + offset (§3.1.2).
    // Pointers materialized by load_imm carry no zone (the
    // instruction format has no zone field); re-derive it from
    // the layout, as the assembler's address calculator does.
    Word base = x_[instr.r1];
    Addr a = base.addr() + instr.offset;
    Zone zone = base.zone() == Zone::None ? zoneOf(a) : base.zone();
    Word addr_word = Word::make(base.tag(), zone, a);
    x_[instr.r2] = addr_word;
    x_[instr.r3] = readData(addr_word);
}

inline void
Machine::opStore(const DecodedInstr &instr)
{
    Word base = x_[instr.r1];
    Addr a = base.addr() + instr.offset;
    Zone zone = base.zone() == Zone::None ? zoneOf(a) : base.zone();
    Word addr_word = Word::make(base.tag(), zone, a);
    x_[instr.r2] = addr_word;
    writeData(addr_word, x_[instr.r3]);
}

inline void
Machine::opBadInstruction(const DecodedInstr &)
{
    exec_detail::trapBadInstruction(p_);
}

// ------------------------------------------- static single-op dispatch

/**
 * Execute exactly one opcode, selected at compile time — the
 * constituent step of the fused superinstruction handlers
 * (exec_threaded.cc). The routing below mirrors the execInstr switch
 * case for case (grouped opcodes go to their microcode unit), so a
 * fused constituent runs the very same handler the generic dispatch
 * would have picked.
 */
template <Opcode OP>
inline void
Machine::execOne(const DecodedInstr &instr)
{
    if constexpr (OP == Opcode::Halt)
        opHalt(instr);
    else if constexpr (OP == Opcode::Noop)
        (void)instr;
    else if constexpr (OP == Opcode::Jump)
        opJump(instr);
    else if constexpr (OP == Opcode::Call)
        opCall(instr);
    else if constexpr (OP == Opcode::Execute)
        opExecute(instr);
    else if constexpr (OP == Opcode::Proceed)
        opProceed(instr);
    else if constexpr (OP == Opcode::Allocate)
        opAllocate(instr);
    else if constexpr (OP == Opcode::Deallocate)
        opDeallocate(instr);
    else if constexpr (OP == Opcode::FailOp)
        fail();
    else if constexpr (OP >= Opcode::TryMeElse &&
                       OP <= Opcode::SwitchOnStructure)
        execIndex(instr);
    else if constexpr (OP == Opcode::GetVariableX)
        opGetVariableX(instr);
    else if constexpr (OP == Opcode::GetVariableY)
        opGetVariableY(instr);
    else if constexpr (OP == Opcode::GetValueX)
        opGetValueX(instr);
    else if constexpr (OP == Opcode::GetValueY)
        opGetValueY(instr);
    else if constexpr (OP == Opcode::GetConstant || OP == Opcode::GetNil)
        opGetConstant(instr);
    else if constexpr (OP == Opcode::GetList)
        opGetList(instr);
    else if constexpr (OP == Opcode::GetStructure)
        opGetStructure(instr);
    else if constexpr (OP == Opcode::PutVariableX)
        opPutVariableX(instr);
    else if constexpr (OP == Opcode::PutVariableY)
        opPutVariableY(instr);
    else if constexpr (OP == Opcode::PutValueX)
        opPutValueX(instr);
    else if constexpr (OP == Opcode::PutValueY)
        opPutValueY(instr);
    else if constexpr (OP == Opcode::PutUnsafeValue)
        opPutUnsafeValue(instr);
    else if constexpr (OP == Opcode::PutConstant)
        opPutConstant(instr);
    else if constexpr (OP == Opcode::PutNil)
        opPutNil(instr);
    else if constexpr (OP == Opcode::PutList)
        opPutList(instr);
    else if constexpr (OP == Opcode::PutStructure)
        opPutStructure(instr);
    else if constexpr (OP >= Opcode::UnifyVariableX &&
                       OP <= Opcode::UnifyVoid)
        execUnifyClass(instr);
    else if constexpr (OP >= Opcode::NativeAdd && OP <= Opcode::CmpNe)
        execArith(instr);
    else if constexpr (OP == Opcode::Escape)
        execEscape(instr);
    else if constexpr (OP == Opcode::Move2)
        opMove2(instr);
    else if constexpr (OP == Opcode::Load)
        opLoad(instr);
    else if constexpr (OP == Opcode::Store)
        opStore(instr);
    else if constexpr (OP == Opcode::LoadImm)
        opLoadImm(instr);
    else if constexpr (OP == Opcode::SwapTV)
        opSwapTV(instr);
    else
        static_assert(OP != OP, "execOne: unhandled opcode");
}

} // namespace kcm

#endif // KCM_CORE_EXEC_OPS_HH
