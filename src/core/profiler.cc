#include "core/profiler.hh"

#include <algorithm>
#include <sstream>

#include "base/strutil.hh"

namespace kcm
{

void
Profiler::attach(const CodeImage &image)
{
    entryBase_ = 0;
    entryIndex_.clear();
    predicateNames_.clear();
    predicateCounts_.clear();
    if (image.predicates.empty())
        return;

    Addr lo = UINT32_MAX, hi = 0;
    for (const auto &[functor, info] : image.predicates) {
        lo = std::min(lo, info.entry);
        hi = std::max(hi, info.entry);
    }
    entryBase_ = lo;
    entryIndex_.assign(size_t(hi) - lo + 1, -1);
    for (const auto &[functor, info] : image.predicates) {
        entryIndex_[size_t(info.entry) - lo] =
            int32_t(predicateNames_.size());
        predicateNames_.push_back(atomText(functor.name) + "/" +
                                  std::to_string(functor.arity));
    }
    predicateCounts_.assign(predicateNames_.size(), 0);
}

void
Profiler::enableSequences(bool on)
{
    sequences_ = on;
    if (on) {
        pairCounts_.assign(size_t(numOpcodeTokens) * numOpcodeTokens, 0);
        tripleCounts_.assign(size_t(numOpcodeTokens) * numOpcodeTokens *
                                 numOpcodeTokens,
                             0);
    } else {
        pairCounts_.clear();
        pairCounts_.shrink_to_fit();
        tripleCounts_.clear();
        tripleCounts_.shrink_to_fit();
    }
    hasPrev_ = hasPrev2_ = false;
}

void
Profiler::reset()
{
    for (auto &count : opcodeCounts_)
        count = 0;
    std::fill(predicateCounts_.begin(), predicateCounts_.end(), 0);
    std::fill(pairCounts_.begin(), pairCounts_.end(), 0);
    std::fill(tripleCounts_.begin(), tripleCounts_.end(), 0);
    hasPrev_ = hasPrev2_ = false;
}

std::vector<std::pair<Opcode, uint64_t>>
Profiler::opcodeHistogram() const
{
    std::vector<std::pair<Opcode, uint64_t>> out;
    for (size_t i = 0; i < static_cast<size_t>(Opcode::NumOpcodes); ++i) {
        if (opcodeCounts_[i])
            out.emplace_back(Opcode(i), opcodeCounts_[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

std::vector<std::pair<std::string, uint64_t>>
Profiler::predicateProfile() const
{
    std::vector<std::pair<std::string, uint64_t>> out;
    for (size_t i = 0; i < predicateNames_.size(); ++i) {
        if (predicateCounts_[i])
            out.emplace_back(predicateNames_[i], predicateCounts_[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

std::vector<std::pair<std::array<Opcode, 2>, uint64_t>>
Profiler::topPairs(size_t n) const
{
    std::vector<std::pair<std::array<Opcode, 2>, uint64_t>> out;
    for (size_t a = 0; a < numOpcodeTokens; ++a) {
        for (size_t b = 0; b < numOpcodeTokens; ++b) {
            uint64_t c = pairCounts_.empty()
                             ? 0
                             : pairCounts_[a * numOpcodeTokens + b];
            if (c)
                out.push_back({{Opcode(a), Opcode(b)}, c});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto &x, const auto &y) {
                  return x.second > y.second;
              });
    if (out.size() > n)
        out.resize(n);
    return out;
}

std::vector<std::pair<std::array<Opcode, 3>, uint64_t>>
Profiler::topTriples(size_t n) const
{
    std::vector<std::pair<std::array<Opcode, 3>, uint64_t>> out;
    for (size_t i = 0; i < tripleCounts_.size(); ++i) {
        if (!tripleCounts_[i])
            continue;
        size_t c = i % numOpcodeTokens;
        size_t b = (i / numOpcodeTokens) % numOpcodeTokens;
        size_t a = i / (size_t(numOpcodeTokens) * numOpcodeTokens);
        out.push_back({{Opcode(a), Opcode(b), Opcode(c)},
                       tripleCounts_[i]});
    }
    std::sort(out.begin(), out.end(),
              [](const auto &x, const auto &y) {
                  return x.second > y.second;
              });
    if (out.size() > n)
        out.resize(n);
    return out;
}

std::string
Profiler::report(size_t top) const
{
    std::ostringstream os;
    uint64_t total = totalInstructions();
    os << "=== macrocode monitor (opcode histogram, " << total
       << " instructions) ===\n";
    size_t shown = 0;
    for (const auto &[op, count] : opcodeHistogram()) {
        if (shown++ >= top)
            break;
        os << "  " << padRight(opcodeName(op), 22) << padLeft(
               std::to_string(count), 10)
           << "  " << fixed(total ? 100.0 * count / total : 0, 1)
           << "%\n";
    }
    os << "=== Prolog-level monitor (calls per predicate) ===\n";
    shown = 0;
    for (const auto &[name, count] : predicateProfile()) {
        if (shown++ >= top)
            break;
        os << "  " << padRight(name, 22)
           << padLeft(std::to_string(count), 10) << "\n";
    }
    if (sequences_) {
        os << "=== sequence monitor (dynamic opcode pairs) ===\n";
        for (const auto &[ops, count] : topPairs(top)) {
            os << "  " << padRight(opcodeName(ops[0]) + ";" +
                                       opcodeName(ops[1]),
                                   34)
               << padLeft(std::to_string(count), 10) << "\n";
        }
        os << "=== sequence monitor (dynamic opcode triples) ===\n";
        for (const auto &[ops, count] : topTriples(top)) {
            os << "  " << padRight(opcodeName(ops[0]) + ";" +
                                       opcodeName(ops[1]) + ";" +
                                       opcodeName(ops[2]),
                                   34)
               << padLeft(std::to_string(count), 10) << "\n";
        }
    }
    return os.str();
}

} // namespace kcm
