#include "core/profiler.hh"

#include <algorithm>
#include <sstream>

#include "base/strutil.hh"

namespace kcm
{

void
Profiler::attach(const CodeImage &image)
{
    entryToPredicate_.clear();
    predicateCalls_.clear();
    for (const auto &[functor, info] : image.predicates) {
        entryToPredicate_[info.entry] =
            atomText(functor.name) + "/" + std::to_string(functor.arity);
    }
}

void
Profiler::reset()
{
    for (auto &count : opcodeCounts_)
        count = 0;
    predicateCalls_.clear();
}

std::vector<std::pair<Opcode, uint64_t>>
Profiler::opcodeHistogram() const
{
    std::vector<std::pair<Opcode, uint64_t>> out;
    for (size_t i = 0; i < static_cast<size_t>(Opcode::NumOpcodes); ++i) {
        if (opcodeCounts_[i])
            out.emplace_back(Opcode(i), opcodeCounts_[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

std::vector<std::pair<std::string, uint64_t>>
Profiler::predicateProfile() const
{
    std::vector<std::pair<std::string, uint64_t>> out(
        predicateCalls_.begin(), predicateCalls_.end());
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    return out;
}

std::string
Profiler::report(size_t top) const
{
    std::ostringstream os;
    uint64_t total = totalInstructions();
    os << "=== macrocode monitor (opcode histogram, " << total
       << " instructions) ===\n";
    size_t shown = 0;
    for (const auto &[op, count] : opcodeHistogram()) {
        if (shown++ >= top)
            break;
        os << "  " << padRight(opcodeName(op), 22) << padLeft(
               std::to_string(count), 10)
           << "  " << fixed(total ? 100.0 * count / total : 0, 1)
           << "%\n";
    }
    os << "=== Prolog-level monitor (calls per predicate) ===\n";
    shown = 0;
    for (const auto &[name, count] : predicateProfile()) {
        if (shown++ >= top)
            break;
        os << "  " << padRight(name, 22)
           << padLeft(std::to_string(count), 10) << "\n";
    }
    return os.str();
}

} // namespace kcm
