#include "core/snapshot.hh"

#include <array>
#include <cstring>
#include <sstream>

#include "base/checksum.hh"
#include "base/logging.hh"
#include "compiler/image_io.hh"
#include "core/machine.hh"
#include "core/predecode.hh"

namespace kcm
{

namespace
{

/**
 * Container format (version 2 — hardened against corrupt blobs):
 *
 *   magic "KCMSNAP2"
 *   u32   section count (== 3)
 *   per section: u32 id, u64 payload length, u64 FNV-1a checksum,
 *                payload bytes
 *
 * Sections, in order: the code image (its textual container), the
 * processor state (registers, counters, prefetch pipeline), the
 * memory system (main memory, MMU, caches, zones), and the dynamic
 * clause store (assert/retract database; absent in pre-dynamic
 * snapshots, which restore with three sections). The memory payload
 * leads with a geometry header (memory size, page-table size, cache
 * cell counts) so a snapshot taken on a differently configured
 * machine is rejected up front. restoreSnapshot() validates the whole
 * container — structure, lengths, every checksum, geometry — before
 * mutating one word of the target machine: a truncated or bit-flipped
 * blob is reported with a diagnostic and the target stays untouched.
 */
constexpr char snapshotMagic[8] = {'K', 'C', 'M', 'S', 'N', 'A', 'P', '2'};

enum : uint32_t
{
    secImage = 1,
    secCpu = 2,
    secMem = 3,
    secDb = 4,
};

constexpr uint32_t sectionOrder[] = {secImage, secCpu, secMem, secDb};
constexpr size_t numSections = 4;
/** Snapshots written before the dynamic clause store existed carry
 *  three sections; they restore with an empty store. */
constexpr size_t numLegacySections = 3;

/** KCMSNAP2 section checksum: FNV-1a-64 from the container's
 *  historical (legacy) offset basis — see base/checksum.hh. */
uint64_t
fnv1a64(const uint8_t *data, size_t size)
{
    return kcm::fnv1a64(data, size, fnvLegacyBasis);
}

/** Little-endian byte-stream writer. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<uint8_t> &bytes) : bytes_(bytes) {}

    void
    u8(uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        u8(uint8_t(v));
        u8(uint8_t(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        u16(uint16_t(v));
        u16(uint16_t(v >> 16));
    }

    void
    u64(uint64_t v)
    {
        u32(uint32_t(v));
        u32(uint32_t(v >> 32));
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void boolean(bool v) { u8(v ? 1 : 0); }
    void word(Word w) { u64(w.raw()); }
    void counter(const Counter &c) { u64(c.value()); }

  private:
    std::vector<uint8_t> &bytes_;
};

/** Bounds-checked reader over one section's payload. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size) : data_(data), size_(size)
    {
    }

    uint8_t
    u8()
    {
        if (pos_ >= size_)
            fatal("snapshot: truncated section payload");
        return data_[pos_++];
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        return uint16_t(lo | (uint16_t(u8()) << 8));
    }

    uint32_t
    u32()
    {
        uint32_t lo = u16();
        return lo | (uint32_t(u16()) << 16);
    }

    uint64_t
    u64()
    {
        uint64_t lo = u32();
        return lo | (uint64_t(u32()) << 32);
    }

    std::string
    str()
    {
        uint64_t n = u64();
        if (n > size_ - pos_)
            fatal("snapshot: truncated string");
        std::string s(data_ + pos_, data_ + pos_ + n);
        pos_ += size_t(n);
        return s;
    }

    bool boolean() { return u8() != 0; }
    Word word() { return Word(u64()); }

    void
    counter(Counter &c)
    {
        c.reset();
        c += u64();
    }

    bool atEnd() const { return pos_ == size_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

struct SectionView
{
    uint32_t id = 0;
    const uint8_t *data = nullptr;
    size_t size = 0;

    ByteReader reader() const { return ByteReader(data, size); }
};

/**
 * Phase one of restoreSnapshot(): parse the container, bounds-check
 * every length, verify every checksum. Throws FatalError with a
 * diagnostic on the first problem; nothing has been mutated yet.
 */
std::vector<SectionView>
parseAndVerify(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < 8 ||
        std::memcmp(bytes.data(), snapshotMagic, 8) != 0) {
        fatal("snapshot: bad magic (not a KCMSNAP2 image)");
    }

    size_t pos = 8;
    auto need = [&](size_t n, const char *what) {
        if (n > bytes.size() - pos)
            fatal("snapshot: truncated image (", what, ")");
    };
    auto read_u32 = [&]() {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(bytes[pos++]) << (8 * i);
        return v;
    };
    auto read_u64 = [&]() {
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(bytes[pos++]) << (8 * i);
        return v;
    };

    need(4, "section count");
    uint32_t count = read_u32();
    if (count != numSections && count != numLegacySections)
        fatal("snapshot: unexpected section count ", count);

    std::vector<SectionView> sections(count);
    for (size_t s = 0; s < count; ++s) {
        need(4 + 8 + 8, "section header");
        uint32_t id = read_u32();
        uint64_t length = read_u64();
        uint64_t checksum = read_u64();
        if (id != sectionOrder[s])
            fatal("snapshot: section ", s, " has id ", id, ", expected ",
                  sectionOrder[s]);
        need(size_t(length), "section payload");
        const uint8_t *payload = bytes.data() + pos;
        uint64_t actual = fnv1a64(payload, size_t(length));
        if (actual != checksum) {
            fatal("snapshot: checksum mismatch in section ", id,
                  " (stored ", checksum, ", computed ", actual,
                  ") — corrupt or bit-flipped image rejected");
        }
        sections[s] = SectionView{id, payload, size_t(length)};
        pos += size_t(length);
    }
    if (pos != bytes.size())
        fatal("snapshot: ", bytes.size() - pos, " trailing bytes");
    return sections;
}

} // namespace

/**
 * The one friend of every serialized hardware unit. All field access
 * is concentrated here so the save and restore sides read as one
 * field-for-field mirror — a field added to a unit but not to both
 * methods below is a snapshot bug, so keep them in lockstep.
 */
struct SnapshotAccess
{
    /** The memory payload's geometry header, written first so restore
     *  can reject a mismatched machine before mutating anything. */
    static void
    saveMemGeometry(MemSystem &mem, ByteWriter &w)
    {
        w.u64(mem.memory().sizeWords());
        w.u64(mem.mmu().table_.size());
        w.u64(mem.dataCache().cells_.size());
        w.u64(mem.codeCache().cells_.size());
    }

    /** Validate the geometry header against @p mem (phase one; throws
     *  without mutating). */
    static void
    checkMemGeometry(MemSystem &mem, ByteReader &r)
    {
        uint64_t mm_words = r.u64();
        if (mm_words != mem.memory().sizeWords())
            fatal("snapshot: main-memory size mismatch (image ", mm_words,
                  " words, machine ", mem.memory().sizeWords(), ")");
        uint64_t table = r.u64();
        if (table != mem.mmu().table_.size())
            fatal("snapshot: page-table size mismatch (image ", table,
                  ", machine ", mem.mmu().table_.size(), ")");
        uint64_t dcells = r.u64();
        if (dcells != mem.dataCache().cells_.size())
            fatal("snapshot: data-cache geometry mismatch (image ", dcells,
                  " cells, machine ", mem.dataCache().cells_.size(), ")");
        uint64_t ccells = r.u64();
        if (ccells != mem.codeCache().cells_.size())
            fatal("snapshot: code-cache geometry mismatch (image ", ccells,
                  " cells, machine ", mem.codeCache().cells_.size(), ")");
    }

    static void
    saveMem(MemSystem &mem, ByteWriter &w)
    {
        saveMemGeometry(mem, w);

        // Main memory, sparse: only nonzero words are recorded (the
        // board is zero-initialized, and restore clears it first).
        MainMemory &mm = mem.memory();
        size_t nonzero = 0;
        for (size_t a = 0; a < mm.sizeWords(); ++a) {
            if (mm.peek(PhysAddr(a)))
                ++nonzero;
        }
        w.u64(nonzero);
        for (size_t a = 0; a < mm.sizeWords(); ++a) {
            uint64_t v = mm.peek(PhysAddr(a));
            if (v) {
                w.u64(a);
                w.u64(v);
            }
        }
        w.counter(mm.readWords);
        w.counter(mm.writtenWords);
        w.counter(mm.transactions);

        // Page table.
        Mmu &mmu = mem.mmu();
        for (const PageEntry &e : mmu.table_)
            w.u16(e.raw);
        w.u16(mmu.nextPhysPage_);
        w.boolean(mmu.injectFault_);
        w.counter(mmu.translations);
        w.counter(mmu.demandFaults);

        // Data cache array (tags, data, dirty bits).
        DataCache &dc = mem.dataCache();
        for (const auto &c : dc.cells_) {
            w.boolean(c.valid);
            w.boolean(c.dirty);
            w.u64(c.vaddr);
            w.u64(c.data);
        }
        w.counter(dc.readHits);
        w.counter(dc.readMisses);
        w.counter(dc.writeHits);
        w.counter(dc.writeMisses);
        w.counter(dc.writeBacks);

        // Code cache array.
        CodeCache &cc = mem.codeCache();
        for (const auto &c : cc.cells_) {
            w.boolean(c.valid);
            w.u64(c.vaddr);
            w.u64(c.data);
        }
        w.counter(cc.readHits);
        w.counter(cc.readMisses);
        w.counter(cc.writes);

        // Zone checker: limits move at run time (quotas, firmware
        // stack growth), so the full zone table is state.
        ZoneChecker &zc = mem.zoneChecker();
        for (const ZoneInfo &z : zc.zones_) {
            w.u64(z.start);
            w.u64(z.end);
            w.u64(z.softLimit);
            w.u16(z.allowedTags);
            w.boolean(z.writeProtected);
            w.boolean(z.enabled);
            w.boolean(z.growable);
        }
        w.boolean(zc.enabled_);
        w.counter(zc.checksPerformed);
    }

    static void
    restoreMem(MemSystem &mem, ByteReader &r)
    {
        // Geometry already validated in phase one; skip the header.
        for (int i = 0; i < 4; ++i)
            r.u64();

        MainMemory &mm = mem.memory();
        // Clear, then apply the recorded nonzero words.
        for (size_t a = 0; a < mm.sizeWords(); ++a) {
            if (mm.peek(PhysAddr(a)))
                mm.poke(PhysAddr(a), 0);
        }
        uint64_t nonzero = r.u64();
        for (uint64_t i = 0; i < nonzero; ++i) {
            uint64_t a = r.u64();
            if (a >= mm.sizeWords())
                fatal("snapshot: memory word address out of range");
            mm.poke(PhysAddr(a), r.u64());
        }
        r.counter(mm.readWords);
        r.counter(mm.writtenWords);
        r.counter(mm.transactions);

        Mmu &mmu = mem.mmu();
        for (PageEntry &e : mmu.table_)
            e.raw = r.u16();
        mmu.nextPhysPage_ = r.u16();
        mmu.injectFault_ = r.boolean();
        r.counter(mmu.translations);
        r.counter(mmu.demandFaults);

        DataCache &dc = mem.dataCache();
        for (auto &c : dc.cells_) {
            c.valid = r.boolean();
            c.dirty = r.boolean();
            c.vaddr = Addr(r.u64());
            c.data = r.u64();
        }
        r.counter(dc.readHits);
        r.counter(dc.readMisses);
        r.counter(dc.writeHits);
        r.counter(dc.writeMisses);
        r.counter(dc.writeBacks);

        CodeCache &cc = mem.codeCache();
        for (auto &c : cc.cells_) {
            c.valid = r.boolean();
            c.vaddr = Addr(r.u64());
            c.data = r.u64();
        }
        r.counter(cc.readHits);
        r.counter(cc.readMisses);
        r.counter(cc.writes);

        ZoneChecker &zc = mem.zoneChecker();
        for (ZoneInfo &z : zc.zones_) {
            z.start = Addr(r.u64());
            z.end = Addr(r.u64());
            z.softLimit = Addr(r.u64());
            z.allowedTags = r.u16();
            z.writeProtected = r.boolean();
            z.enabled = r.boolean();
            z.growable = r.boolean();
        }
        zc.enabled_ = r.boolean();
        r.counter(zc.checksPerformed);
    }

    static void
    saveImageSection(Machine &m, ByteWriter &w)
    {
        // The linked image, in its own self-contained container (it
        // carries the symbol table metaCall resolves against and the
        // entry stubs, and it is what the predecoded core is rebuilt
        // from on restore).
        std::ostringstream image_text;
        saveImage(m.image_, image_text);
        w.str(image_text.str());
    }

    static void
    saveCpu(Machine &m, ByteWriter &w)
    {
        // Register file and state registers.
        for (const Word &x : m.x_)
            w.word(x);
        w.u64(m.p_);
        w.u64(m.nextP_);
        w.u64(m.cpCont_);
        w.u64(m.h_);
        w.u64(m.hb_);
        w.u64(m.s_);
        w.u64(m.tr_);
        w.u64(m.e_);
        w.u64(m.lt_);
        w.u64(m.lb_);
        w.u64(m.b_);
        w.u64(m.ct_);
        w.u64(m.b0_);
        w.boolean(m.writeMode_);

        // Shallow-backtracking shadow registers.
        w.boolean(m.shallowFlag_);
        w.boolean(m.cpFlag_);
        w.u64(m.shadowH_);
        w.u64(m.shadowTR_);
        w.u64(m.shadowCP_);
        w.u64(m.pendingAlt_);
        w.u32(m.pendingArity_);

        // Counters and run bookkeeping.
        w.u64(m.cycles_);
        w.u64(m.instructions_);
        w.u64(m.inferences_);
        w.u32(m.penalty_);
        w.u64(m.expectedNextP_);
        w.boolean(m.halted_);
        w.boolean(m.haltFailed_);
        w.boolean(m.solutionReady_);
        w.str(m.hostOutput_);

        // Trap delivery and governor state.
        w.u64(m.stepStartCycles_);
        w.u64(m.stopCycles_);
        w.u8(uint8_t(m.stopKind_));
        w.u64(m.sliceStop_);
        w.boolean(m.sliceExpired_);
        w.boolean(m.budgetWaived_);
        w.boolean(m.trapped_);
        w.u8(uint8_t(m.lastTrap_.kind));
        w.str(m.lastTrap_.message);
        w.u32(m.lastTrap_.pc);
        w.u32(m.lastTrap_.faultAddr);
        w.u64(m.lastTrap_.cycle);
        w.u64(m.lastTrap_.instructions);
        w.str(m.lastTrap_.state);
        w.u64(m.faultCursor_);
        w.boolean(m.faultsPending_);

        // Trace ring buffer (so recentTrace() survives a restore).
        for (const auto &t : m.trace_) {
            w.u64(t.p);
            w.u64(t.raw);
        }
        w.u64(m.traceHead_);

        // Environment-size debug table (GC metadata).
        w.u64(m.envSizes_.size());
        for (uint32_t n : m.envSizes_)
            w.u32(n);

        // Event counters.
        w.counter(m.choicePointsCreated);
        w.counter(m.choicePointsAvoided);
        w.counter(m.shallowFails);
        w.counter(m.deepFails);
        w.counter(m.trailPushes);
        w.counter(m.derefSteps);
        w.counter(m.bindOps);
        w.counter(m.unifyCalls);
        w.counter(m.envAllocs);
        w.counter(m.cpWordsWritten);
        w.counter(m.cpWordsRead);
        w.counter(m.gcRuns);
        w.counter(m.gcWordsReclaimed);
        w.counter(m.trapsTaken);
        w.counter(m.stackZoneGrowths);

        // Prefetch pipeline.
        PrefetchUnit &pf = m.prefetch_;
        w.u64(pf.tp_);
        w.u64(pf.sp_);
        w.u64(pf.p_);
        w.u64(pf.lastAddr_);
        w.boolean(pf.primed_);
        w.counter(pf.sequentialFetches);
        w.counter(pf.pipelineBreaks);
        w.counter(pf.takenBranches);
        w.counter(pf.untakenBranches);
    }

    static void
    restoreImageSection(Machine &m, ByteReader &r)
    {
        std::istringstream image_text(r.str());
        m.image_ = loadImage(image_text);

        // Rebuild the predecoded image per the *target's* dispatch
        // core and fusion mode: a snapshot is portable between the
        // oracle and the threaded core, and across fusion on/off
        // (all cycle-identical by construction — fusion rewrites
        // dispatch tokens only, never simulated state).
        m.decoded_.clear();
        if (m.config_.fastDispatch)
            predecodeImage(m.image_.words, m.config_.fusion, m.decoded_);
        if (m.config_.profile) {
            m.profiler_.attach(m.image_);
            m.profiler_.enableSequences(m.config_.profileSequences);
            m.profiler_.reset();
        }
    }

    static void
    restoreCpu(Machine &m, ByteReader &r)
    {
        for (Word &x : m.x_)
            x = r.word();
        m.p_ = Addr(r.u64());
        m.nextP_ = Addr(r.u64());
        m.cpCont_ = Addr(r.u64());
        m.h_ = Addr(r.u64());
        m.hb_ = Addr(r.u64());
        m.s_ = Addr(r.u64());
        m.tr_ = Addr(r.u64());
        m.e_ = Addr(r.u64());
        m.lt_ = Addr(r.u64());
        m.lb_ = Addr(r.u64());
        m.b_ = Addr(r.u64());
        m.ct_ = Addr(r.u64());
        m.b0_ = Addr(r.u64());
        m.writeMode_ = r.boolean();

        m.shallowFlag_ = r.boolean();
        m.cpFlag_ = r.boolean();
        m.shadowH_ = Addr(r.u64());
        m.shadowTR_ = Addr(r.u64());
        m.shadowCP_ = Addr(r.u64());
        m.pendingAlt_ = Addr(r.u64());
        m.pendingArity_ = r.u32();

        m.cycles_ = r.u64();
        m.instructions_ = r.u64();
        m.inferences_ = r.u64();
        m.penalty_ = r.u32();
        m.expectedNextP_ = Addr(r.u64());
        m.halted_ = r.boolean();
        m.haltFailed_ = r.boolean();
        m.solutionReady_ = r.boolean();
        m.hostOutput_ = r.str();
        // Host-side solution terms are not serialized; the bindings
        // live in machine memory and are re-exported on the next
        // SolutionFound.
        m.solution_ = Solution{};

        m.stepStartCycles_ = r.u64();
        m.stopCycles_ = r.u64();
        m.stopKind_ = Machine::StopKind(r.u8());
        m.sliceStop_ = r.u64();
        m.sliceExpired_ = r.boolean();
        m.budgetWaived_ = r.boolean();
        m.trapped_ = r.boolean();
        m.lastTrap_.kind = TrapKind(r.u8());
        m.lastTrap_.message = r.str();
        m.lastTrap_.pc = r.u32();
        m.lastTrap_.faultAddr = r.u32();
        m.lastTrap_.cycle = r.u64();
        m.lastTrap_.instructions = r.u64();
        m.lastTrap_.state = r.str();
        m.faultCursor_ = size_t(r.u64());
        m.faultsPending_ = r.boolean();

        for (auto &t : m.trace_) {
            t.p = Addr(r.u64());
            t.raw = r.u64();
        }
        m.traceHead_ = size_t(r.u64());

        m.envSizes_.assign(size_t(r.u64()), 0);
        for (uint32_t &n : m.envSizes_)
            n = r.u32();

        r.counter(m.choicePointsCreated);
        r.counter(m.choicePointsAvoided);
        r.counter(m.shallowFails);
        r.counter(m.deepFails);
        r.counter(m.trailPushes);
        r.counter(m.derefSteps);
        r.counter(m.bindOps);
        r.counter(m.unifyCalls);
        r.counter(m.envAllocs);
        r.counter(m.cpWordsWritten);
        r.counter(m.cpWordsRead);
        r.counter(m.gcRuns);
        r.counter(m.gcWordsReclaimed);
        r.counter(m.trapsTaken);
        r.counter(m.stackZoneGrowths);

        PrefetchUnit &pf = m.prefetch_;
        pf.tp_ = Addr(r.u64());
        pf.sp_ = Addr(r.u64());
        pf.p_ = Addr(r.u64());
        pf.lastAddr_ = Addr(r.u64());
        pf.primed_ = r.boolean();
        r.counter(pf.sequentialFetches);
        r.counter(pf.pipelineBreaks);
        r.counter(pf.takenBranches);
        r.counter(pf.untakenBranches);
    }

    /** The dynamic clause store, via its own byte-stable payload
     *  (ClauseStore::saveTo). The deterministic skiplist heights make
     *  a restored store index-identical to the original, so scanned
     *  counts — and simulated cycles — replay exactly. */
    static void
    saveDb(Machine &m, ByteWriter &w)
    {
        w.boolean(m.db_ != nullptr);
        if (!m.db_)
            return;
        std::vector<uint8_t> blob;
        m.db_->saveTo(blob);
        w.str(std::string(blob.begin(), blob.end()));
    }

    static void
    restoreDb(Machine &m, ByteReader &r)
    {
        bool present = r.boolean();
        if (!present) {
            // The snapshotted machine had no store (never loaded an
            // image). Mirror that; an attached store is shared with
            // the session, so clear it rather than detach.
            if (m.dbAttached_)
                m.db_->clear();
            else
                m.db_ = nullptr;
            return;
        }
        std::string blob = r.str();
        if (!m.db_)
            m.db_ = std::make_shared<db::ClauseStore>(m.config_.dyndb);
        m.db_->loadFrom(reinterpret_cast<const uint8_t *>(blob.data()),
                        blob.size());
    }

    static MemSystem &mem(Machine &m) { return *m.mem_; }
};

Snapshot
takeSnapshot(Machine &machine)
{
    // Serialize each section into its own payload, then assemble the
    // checksummed container.
    std::array<std::vector<uint8_t>, numSections> payloads;
    {
        ByteWriter w(payloads[0]);
        SnapshotAccess::saveImageSection(machine, w);
    }
    {
        ByteWriter w(payloads[1]);
        SnapshotAccess::saveCpu(machine, w);
    }
    {
        payloads[2].reserve(64 * 1024);
        ByteWriter w(payloads[2]);
        SnapshotAccess::saveMem(SnapshotAccess::mem(machine), w);
    }
    {
        ByteWriter w(payloads[3]);
        SnapshotAccess::saveDb(machine, w);
    }

    Snapshot snap;
    size_t total = 8 + 4;
    for (const auto &p : payloads)
        total += 4 + 8 + 8 + p.size();
    snap.bytes.reserve(total);
    for (char c : snapshotMagic)
        snap.bytes.push_back(uint8_t(c));
    ByteWriter container(snap.bytes);
    container.u32(numSections);
    for (size_t s = 0; s < numSections; ++s) {
        container.u32(sectionOrder[s]);
        container.u64(payloads[s].size());
        container.u64(fnv1a64(payloads[s].data(), payloads[s].size()));
        snap.bytes.insert(snap.bytes.end(), payloads[s].begin(),
                          payloads[s].end());
    }
    return snap;
}

bool
validateSnapshot(const Snapshot &snapshot, std::string *why)
{
    try {
        parseAndVerify(snapshot.bytes);
        return true;
    } catch (const FatalError &e) {
        if (why)
            *why = e.what();
        return false;
    }
}

void
restoreSnapshot(Machine &machine, const Snapshot &snapshot)
{
    // Phase one: validate everything — container structure, section
    // lengths, checksums, memory geometry — before touching the
    // target. A rejected image leaves the machine exactly as it was.
    auto sections = parseAndVerify(snapshot.bytes);
    {
        ByteReader geom = sections[2].reader();
        SnapshotAccess::checkMemGeometry(SnapshotAccess::mem(machine),
                                         geom);
    }

    // Phase two: apply. Each section's payload is checksummed and was
    // produced by the writer mirrored above, so these parses cannot
    // run past their bounds on any input that passed phase one.
    {
        ByteReader r = sections[0].reader();
        SnapshotAccess::restoreImageSection(machine, r);
        if (!r.atEnd())
            fatal("snapshot: trailing bytes in image section");
    }
    {
        ByteReader r = sections[1].reader();
        SnapshotAccess::restoreCpu(machine, r);
        if (!r.atEnd())
            fatal("snapshot: trailing bytes in processor section");
    }
    {
        ByteReader r = sections[2].reader();
        SnapshotAccess::restoreMem(SnapshotAccess::mem(machine), r);
        if (!r.atEnd())
            fatal("snapshot: trailing bytes in memory section");
    }
    if (sections.size() > 3) {
        ByteReader r = sections[3].reader();
        SnapshotAccess::restoreDb(machine, r);
        if (!r.atEnd())
            fatal("snapshot: trailing bytes in clause-store section");
    } else if (machine.dynamicDb()) {
        // Legacy three-section snapshot: the dynamic store did not
        // exist when it was taken, so restore to empty.
        machine.dynamicDb()->clear();
    }
}

} // namespace kcm
