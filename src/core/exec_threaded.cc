/**
 * @file
 * The token-threaded run loop over the predecoded image.
 *
 * Under GCC/Clang each dispatch token indexes a computed-goto label
 * table and every handler tail re-dispatches directly (classic
 * token threading, as in B-Prolog's TOAM emulator loop); elsewhere
 * a plain switch loop is used. Either way the per-step work is
 * fetchDecoded() + the shared opcode handler + finishStep() — the
 * exact sequence the oracle step() performs — so cycles, instruction
 * counts and cache statistics cannot diverge between the paths.
 *
 * Superinstructions: the predecode peephole (core/predecode.cc)
 * rewrites the dispatch token at the head of a hot sequence
 * (isa/fusion.hh) to a fused token whose handler executes every
 * constituent with a single dispatch. The full per-instruction
 * boundary still runs between constituents — finishStep accounting,
 * the run-loop stop flags, the cycle-stop check, and the
 * fetchDecoded prologue (fault injection, GC threshold, prefetch and
 * code-cache accounting, trace, profiler) — so a trap, fault, or
 * stop anywhere inside a fused sequence behaves bit-identically to
 * the unfused execution. If a constituent transfers control away
 * from the straight line (call, jump, failure), the handler bails
 * back to generic dispatch at the exact same boundary the unfused
 * path would take.
 */

#include "core/exec_ops.hh"

#include "core/machine.hh"
#include "isa/fusion.hh"

namespace kcm
{

// The label table below is written in Opcode declaration order;
// anchor a few positions so a reordered enum fails to compile
// instead of dispatching the wrong handler.
static_assert(static_cast<int>(Opcode::FailOp) == 8);
static_assert(static_cast<int>(Opcode::SwitchOnTerm) == 19);
static_assert(static_cast<int>(Opcode::GetVariableX) == 22);
static_assert(static_cast<int>(Opcode::PutVariableX) == 30);
static_assert(static_cast<int>(Opcode::UnifyVariableX) == 39);
static_assert(static_cast<int>(Opcode::NativeAdd) == 49);
static_assert(static_cast<int>(Opcode::Escape) == 61);
static_assert(static_cast<int>(Opcode::SwapTV) == 66);
static_assert(static_cast<int>(Opcode::NumOpcodes) == 67);

RunStatus
Machine::runFast()
{
    // -DKCM_FORCE_SWITCH_DISPATCH builds the portable switch loop
    // even under GCC/Clang, so CI can exercise the fallback that
    // non-computed-goto toolchains get. Both loops must produce
    // bit-identical simulated metrics; only host dispatch differs.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(KCM_FORCE_SWITCH_DISPATCH)

    // Token-threaded dispatch. One table entry per opcode plus the
    // invalid-word token plus one per superinstruction; grouped
    // opcodes (indexing, unify class, arithmetic) share a label and
    // re-dispatch inside their microcode unit, exactly as the oracle
    // switch does.
#define KCM_FUSED_LABEL2_(nm, A, B) &&l_f_##nm,
#define KCM_FUSED_LABEL3_(nm, A, B, C) &&l_f_##nm,
    static const void *const table[numDispatchTokens] = {
        &&l_halt, &&l_noop, &&l_jump, &&l_call, &&l_execute,
        &&l_proceed, &&l_allocate, &&l_deallocate, &&l_fail,
        // choice points / indexing
        &&l_index, &&l_index, &&l_index, &&l_index, &&l_index,
        &&l_index, &&l_index, &&l_index, &&l_index, &&l_index,
        &&l_index, &&l_index, &&l_index,
        // get
        &&l_get_variable_x, &&l_get_variable_y, &&l_get_value_x,
        &&l_get_value_y, &&l_get_constant, &&l_get_constant,
        &&l_get_list, &&l_get_structure,
        // put
        &&l_put_variable_x, &&l_put_variable_y, &&l_put_value_x,
        &&l_put_value_y, &&l_put_unsafe_value, &&l_put_constant,
        &&l_put_nil, &&l_put_list, &&l_put_structure,
        // unify class
        &&l_unify, &&l_unify, &&l_unify, &&l_unify, &&l_unify,
        &&l_unify, &&l_unify, &&l_unify, &&l_unify, &&l_unify,
        // arithmetic + comparisons
        &&l_arith, &&l_arith, &&l_arith, &&l_arith, &&l_arith,
        &&l_arith, &&l_arith, &&l_arith, &&l_arith, &&l_arith,
        &&l_arith, &&l_arith,
        &&l_escape,
        // data movement
        &&l_move2, &&l_load, &&l_store, &&l_load_imm, &&l_swap_tv,
        // invalid-word token
        &&l_bad,
        // superinstructions, in catalog order (isa/fusion.hh)
        KCM_FUSION_CATALOG(KCM_FUSED_LABEL2_, KCM_FUSED_LABEL3_,
                           KCM_FUSED_LABEL2_)
    };
#undef KCM_FUSED_LABEL2_
#undef KCM_FUSED_LABEL3_

    const DecodedInstr *d;

    // Per-step prologue: cycle-stop check (maxCycles or the
    // governor's budget — trapCycleBudget throws the Abort trap to
    // the run-loop boundary in run()), then fetch + dispatch.
#define KCM_DISPATCH()                                                  \
    do {                                                                \
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {       \
            if (stopKind_ != StopKind::Limit)                           \
                trapCycleBudget();                                      \
            return RunStatus::CycleLimit;                               \
        }                                                               \
        d = &fetchDecoded();                                            \
        goto *table[d->tok];                                            \
    } while (0)

    // Per-step epilogue: accounting, stop-flag test (the run() exit
    // order: solution, halt-failed, halted), then the next step.
#define KCM_NEXT()                                                      \
    do {                                                                \
        finishStep(*d);                                                 \
        if (solutionReady_ || haltFailed_ || halted_) [[unlikely]]      \
            goto l_stopped;                                             \
        KCM_DISPATCH();                                                 \
    } while (0)

    // Boundary between fused constituents: the identical epilogue +
    // prologue sequence, minus the indirect dispatch. If the
    // constituent moved P off the straight line (call, jump,
    // failure, shallow backtrack), fall back to generic dispatch —
    // which re-fetches at the transfer target exactly as the unfused
    // path would. Otherwise the next word is the statically verified
    // constituent and execution falls through into its handler.
#define KCM_FUSE_NEXT()                                                 \
    do {                                                                \
        finishStep(*d);                                                 \
        if (solutionReady_ || haltFailed_ || halted_) [[unlikely]]      \
            goto l_stopped;                                             \
        if (p_ != expectedNextP_) [[unlikely]]                          \
            KCM_DISPATCH();                                             \
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {       \
            if (stopKind_ != StopKind::Limit)                           \
                trapCycleBudget();                                      \
            return RunStatus::CycleLimit;                               \
        }                                                               \
        d = &fetchDecoded();                                            \
        ++fusedInlineSteps_;                                            \
    } while (0)

    // Likely-target boundary (switch_on_term heads): the constituent
    // always transfers control through its dispatch table, so fetch
    // the dynamic target unconditionally; the handler then tests
    // whether it is the expected opcode before running it inline.
#define KCM_FUSE_NEXT_ANY()                                             \
    do {                                                                \
        finishStep(*d);                                                 \
        if (solutionReady_ || haltFailed_ || halted_) [[unlikely]]      \
            goto l_stopped;                                             \
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {       \
            if (stopKind_ != StopKind::Limit)                           \
                trapCycleBudget();                                      \
            return RunStatus::CycleLimit;                               \
        }                                                               \
        d = &fetchDecoded();                                            \
    } while (0)

    KCM_DISPATCH();

  l_halt:             opHalt(*d);           KCM_NEXT();
  l_noop:                                   KCM_NEXT();
  l_jump:             opJump(*d);           KCM_NEXT();
  l_call:             opCall(*d);           KCM_NEXT();
  l_execute:          opExecute(*d);        KCM_NEXT();
  l_proceed:          opProceed(*d);        KCM_NEXT();
  l_allocate:         opAllocate(*d);       KCM_NEXT();
  l_deallocate:       opDeallocate(*d);     KCM_NEXT();
  l_fail:             fail();               KCM_NEXT();
  l_index:            execIndex(*d);        KCM_NEXT();
  l_get_variable_x:   opGetVariableX(*d);   KCM_NEXT();
  l_get_variable_y:   opGetVariableY(*d);   KCM_NEXT();
  l_get_value_x:      opGetValueX(*d);      KCM_NEXT();
  l_get_value_y:      opGetValueY(*d);      KCM_NEXT();
  l_get_constant:     opGetConstant(*d);    KCM_NEXT();
  l_get_list:         opGetList(*d);        KCM_NEXT();
  l_get_structure:    opGetStructure(*d);   KCM_NEXT();
  l_put_variable_x:   opPutVariableX(*d);   KCM_NEXT();
  l_put_variable_y:   opPutVariableY(*d);   KCM_NEXT();
  l_put_value_x:      opPutValueX(*d);      KCM_NEXT();
  l_put_value_y:      opPutValueY(*d);      KCM_NEXT();
  l_put_unsafe_value: opPutUnsafeValue(*d); KCM_NEXT();
  l_put_constant:     opPutConstant(*d);    KCM_NEXT();
  l_put_nil:          opPutNil(*d);         KCM_NEXT();
  l_put_list:         opPutList(*d);        KCM_NEXT();
  l_put_structure:    opPutStructure(*d);   KCM_NEXT();
  l_unify:            execUnifyClass(*d);   KCM_NEXT();
  l_arith:            execArith(*d);        KCM_NEXT();
  l_escape:           execEscape(*d);       KCM_NEXT();
  l_move2:            opMove2(*d);          KCM_NEXT();
  l_load:             opLoad(*d);           KCM_NEXT();
  l_store:            opStore(*d);          KCM_NEXT();
  l_load_imm:         opLoadImm(*d);        KCM_NEXT();
  l_swap_tv:          opSwapTV(*d);         KCM_NEXT();
  l_bad:              opBadInstruction(*d); // noreturn

    // Superinstruction handlers, generated from the catalog. Each
    // constituent runs through its statically selected opcode
    // handler (execOne) with the full boundary between them.
#define KCM_FUSED_PAIR_(nm, A, B)                                       \
  l_f_##nm:                                                             \
    ++fusedDispatches_;                                                 \
    execOne<Opcode::A>(*d);                                             \
    KCM_FUSE_NEXT();                                                    \
    execOne<Opcode::B>(*d);                                             \
    KCM_NEXT();

#define KCM_FUSED_TRIPLE_(nm, A, B, C)                                  \
  l_f_##nm:                                                             \
    ++fusedDispatches_;                                                 \
    execOne<Opcode::A>(*d);                                             \
    KCM_FUSE_NEXT();                                                    \
    execOne<Opcode::B>(*d);                                             \
    KCM_FUSE_NEXT();                                                    \
    execOne<Opcode::C>(*d);                                             \
    KCM_NEXT();

#define KCM_FUSED_JUMP_(nm, A, B)                                       \
  l_f_##nm:                                                             \
    ++fusedDispatches_;                                                 \
    execOne<Opcode::A>(*d);                                             \
    KCM_FUSE_NEXT_ANY();                                                \
    if (d->op != static_cast<uint8_t>(Opcode::B)) [[unlikely]]          \
        goto *table[d->tok];                                            \
    ++fusedInlineSteps_;                                                \
    execOne<Opcode::B>(*d);                                             \
    KCM_NEXT();

    KCM_FUSION_CATALOG(KCM_FUSED_PAIR_, KCM_FUSED_TRIPLE_,
                       KCM_FUSED_JUMP_)

#undef KCM_FUSED_PAIR_
#undef KCM_FUSED_TRIPLE_
#undef KCM_FUSED_JUMP_
#undef KCM_DISPATCH
#undef KCM_NEXT
#undef KCM_FUSE_NEXT
#undef KCM_FUSE_NEXT_ANY

  l_stopped:
    if (solutionReady_) {
        solutionReady_ = false;
        return RunStatus::SolutionFound;
    }
    if (haltFailed_)
        return RunStatus::Failed;
    return RunStatus::Halted;

#else // no computed goto: switch loop over the predecoded image

    while (true) {
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {
            if (stopKind_ != StopKind::Limit)
                trapCycleBudget();
            return RunStatus::CycleLimit;
        }
        const DecodedInstr *d = &fetchDecoded();
        // A fused head executes its whole sequence off this one
        // dispatch; remaining counts the constituents still owed.
        unsigned remaining = 1;
        if (d->tok >= numOpcodeTokens) [[unlikely]] {
            remaining = fusionCatalog()[d->tok - numOpcodeTokens].length;
            ++fusedDispatches_;
        }
        for (;;) {
            execInstr(*d);
            finishStep(*d);
            if (solutionReady_ || haltFailed_ || halted_) [[unlikely]]
                break;
            if (--remaining == 0 || p_ != expectedNextP_)
                break;
            if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {
                if (stopKind_ != StopKind::Limit)
                    trapCycleBudget();
                return RunStatus::CycleLimit;
            }
            d = &fetchDecoded();
            ++fusedInlineSteps_;
        }
        if (solutionReady_) {
            solutionReady_ = false;
            return RunStatus::SolutionFound;
        }
        if (haltFailed_)
            return RunStatus::Failed;
        if (halted_)
            return RunStatus::Halted;
    }

#endif
}

} // namespace kcm
