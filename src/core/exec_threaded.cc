/**
 * @file
 * The token-threaded run loop over the predecoded image.
 *
 * Under GCC/Clang each opcode token indexes a computed-goto label
 * table and every handler tail re-dispatches directly (classic
 * token threading, as in B-Prolog's TOAM emulator loop); elsewhere
 * a plain switch loop is used. Either way the per-step work is
 * fetchDecoded() + the shared opcode handler + finishStep() — the
 * exact sequence the oracle step() performs — so cycles, instruction
 * counts and cache statistics cannot diverge between the paths.
 */

#include "core/exec_ops.hh"

#include "core/machine.hh"

namespace kcm
{

// The label table below is written in Opcode declaration order;
// anchor a few positions so a reordered enum fails to compile
// instead of dispatching the wrong handler.
static_assert(static_cast<int>(Opcode::FailOp) == 8);
static_assert(static_cast<int>(Opcode::SwitchOnTerm) == 19);
static_assert(static_cast<int>(Opcode::GetVariableX) == 22);
static_assert(static_cast<int>(Opcode::PutVariableX) == 30);
static_assert(static_cast<int>(Opcode::UnifyVariableX) == 39);
static_assert(static_cast<int>(Opcode::NativeAdd) == 49);
static_assert(static_cast<int>(Opcode::Escape) == 61);
static_assert(static_cast<int>(Opcode::SwapTV) == 66);
static_assert(static_cast<int>(Opcode::NumOpcodes) == 67);

RunStatus
Machine::runFast()
{
#if defined(__GNUC__) || defined(__clang__)

    // Token-threaded dispatch. One table entry per opcode plus the
    // invalid-word token; grouped opcodes (indexing, unify class,
    // arithmetic) share a label and re-dispatch inside their
    // microcode unit, exactly as the oracle switch does.
    static const void *const table[numOpcodeTokens] = {
        &&l_halt, &&l_noop, &&l_jump, &&l_call, &&l_execute,
        &&l_proceed, &&l_allocate, &&l_deallocate, &&l_fail,
        // choice points / indexing
        &&l_index, &&l_index, &&l_index, &&l_index, &&l_index,
        &&l_index, &&l_index, &&l_index, &&l_index, &&l_index,
        &&l_index, &&l_index, &&l_index,
        // get
        &&l_get_variable_x, &&l_get_variable_y, &&l_get_value_x,
        &&l_get_value_y, &&l_get_constant, &&l_get_constant,
        &&l_get_list, &&l_get_structure,
        // put
        &&l_put_variable_x, &&l_put_variable_y, &&l_put_value_x,
        &&l_put_value_y, &&l_put_unsafe_value, &&l_put_constant,
        &&l_put_nil, &&l_put_list, &&l_put_structure,
        // unify class
        &&l_unify, &&l_unify, &&l_unify, &&l_unify, &&l_unify,
        &&l_unify, &&l_unify, &&l_unify, &&l_unify, &&l_unify,
        // arithmetic + comparisons
        &&l_arith, &&l_arith, &&l_arith, &&l_arith, &&l_arith,
        &&l_arith, &&l_arith, &&l_arith, &&l_arith, &&l_arith,
        &&l_arith, &&l_arith,
        &&l_escape,
        // data movement
        &&l_move2, &&l_load, &&l_store, &&l_load_imm, &&l_swap_tv,
        // invalid-word token
        &&l_bad,
    };

    const DecodedInstr *d;

    // Per-step prologue: cycle-stop check (maxCycles or the
    // governor's budget — trapCycleBudget throws the Abort trap to
    // the run-loop boundary in run()), then fetch + dispatch.
#define KCM_DISPATCH()                                                  \
    do {                                                                \
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {       \
            if (stopKind_ != StopKind::Limit)                           \
                trapCycleBudget();                                      \
            return RunStatus::CycleLimit;                               \
        }                                                               \
        d = &fetchDecoded();                                            \
        goto *table[d->op];                                             \
    } while (0)

    // Per-step epilogue: accounting, stop-flag test (the run() exit
    // order: solution, halt-failed, halted), then the next step.
#define KCM_NEXT()                                                      \
    do {                                                                \
        finishStep(*d);                                                 \
        if (solutionReady_ || haltFailed_ || halted_) [[unlikely]]      \
            goto l_stopped;                                             \
        KCM_DISPATCH();                                                 \
    } while (0)

    KCM_DISPATCH();

  l_halt:             opHalt(*d);           KCM_NEXT();
  l_noop:                                   KCM_NEXT();
  l_jump:             opJump(*d);           KCM_NEXT();
  l_call:             opCall(*d);           KCM_NEXT();
  l_execute:          opExecute(*d);        KCM_NEXT();
  l_proceed:          opProceed(*d);        KCM_NEXT();
  l_allocate:         opAllocate(*d);       KCM_NEXT();
  l_deallocate:       opDeallocate(*d);     KCM_NEXT();
  l_fail:             fail();               KCM_NEXT();
  l_index:            execIndex(*d);        KCM_NEXT();
  l_get_variable_x:   opGetVariableX(*d);   KCM_NEXT();
  l_get_variable_y:   opGetVariableY(*d);   KCM_NEXT();
  l_get_value_x:      opGetValueX(*d);      KCM_NEXT();
  l_get_value_y:      opGetValueY(*d);      KCM_NEXT();
  l_get_constant:     opGetConstant(*d);    KCM_NEXT();
  l_get_list:         opGetList(*d);        KCM_NEXT();
  l_get_structure:    opGetStructure(*d);   KCM_NEXT();
  l_put_variable_x:   opPutVariableX(*d);   KCM_NEXT();
  l_put_variable_y:   opPutVariableY(*d);   KCM_NEXT();
  l_put_value_x:      opPutValueX(*d);      KCM_NEXT();
  l_put_value_y:      opPutValueY(*d);      KCM_NEXT();
  l_put_unsafe_value: opPutUnsafeValue(*d); KCM_NEXT();
  l_put_constant:     opPutConstant(*d);    KCM_NEXT();
  l_put_nil:          opPutNil(*d);         KCM_NEXT();
  l_put_list:         opPutList(*d);        KCM_NEXT();
  l_put_structure:    opPutStructure(*d);   KCM_NEXT();
  l_unify:            execUnifyClass(*d);   KCM_NEXT();
  l_arith:            execArith(*d);        KCM_NEXT();
  l_escape:           execEscape(*d);       KCM_NEXT();
  l_move2:            opMove2(*d);          KCM_NEXT();
  l_load:             opLoad(*d);           KCM_NEXT();
  l_store:            opStore(*d);          KCM_NEXT();
  l_load_imm:         opLoadImm(*d);        KCM_NEXT();
  l_swap_tv:          opSwapTV(*d);         KCM_NEXT();
  l_bad:              opBadInstruction(*d); // noreturn

#undef KCM_DISPATCH
#undef KCM_NEXT

  l_stopped:
    if (solutionReady_) {
        solutionReady_ = false;
        return RunStatus::SolutionFound;
    }
    if (haltFailed_)
        return RunStatus::Failed;
    return RunStatus::Halted;

#else // no computed goto: switch loop over the predecoded image

    while (true) {
        if (stopCycles_ && cycles_ >= stopCycles_) [[unlikely]] {
            if (stopKind_ != StopKind::Limit)
                trapCycleBudget();
            return RunStatus::CycleLimit;
        }
        const DecodedInstr &instr = fetchDecoded();
        execInstr(instr);
        finishStep(instr);
        if (solutionReady_) {
            solutionReady_ = false;
            return RunStatus::SolutionFound;
        }
        if (haltFailed_)
            return RunStatus::Failed;
        if (halted_)
            return RunStatus::Halted;
    }

#endif
}

} // namespace kcm
