#include "core/predecode.hh"

#include <algorithm>

#include "core/profiler.hh"

namespace kcm
{

namespace
{

/** Words occupied by the instruction at @p d, including any dispatch
 *  table that follows it (the only multi-word instructions, §4.1). */
size_t
instrWords(const DecodedInstr &d)
{
    if (d.op == invalidOpcodeToken)
        return 1;
    switch (d.opcode()) {
      case Opcode::SwitchOnTerm:
        return 1 + opcodeInfo(Opcode::SwitchOnTerm).fixedExtraWords;
      case Opcode::SwitchOnConstant:
      case Opcode::SwitchOnStructure:
        // n key/target pairs plus the trailing miss word.
        return 2 + 2 * size_t(d.value);
      default:
        return 1;
    }
}

} // namespace

void
predecodeImage(const std::vector<uint64_t> &words,
               const FusionConfig &fusion, std::vector<DecodedInstr> &out)
{
    out.clear();
    out.reserve(words.size());
    for (uint64_t raw : words)
        out.push_back(decodeInstr(raw));

    const auto &catalog = fusionCatalog();
    // Candidate entries in match-priority order: Static takes the
    // whole catalog in declaration order (triples listed before their
    // pair prefixes, so the first match is the longest); Profiled
    // takes the selected entries in selection order, which
    // selectFusedSequences has already sorted by dispatches saved —
    // this is what resolves competing likely-target entries for the
    // same head opcode in favour of the measured-hotter successor.
    std::vector<uint16_t> order;
    switch (fusion.mode) {
      case FusionConfig::Mode::Off:
        return;
      case FusionConfig::Mode::Static:
        order.resize(numFusedSeqs);
        for (unsigned s = 0; s < numFusedSeqs; ++s)
            order[s] = uint16_t(s);
        break;
      case FusionConfig::Mode::Profiled:
        for (uint16_t index : fusion.sequences) {
            if (index < numFusedSeqs)
                order.push_back(index);
        }
        break;
    }
    if (order.empty())
        return;

    // Peephole over instruction boundaries (switch tables are data and
    // are stepped over, never matched). Only the head's dispatch token
    // is rewritten — constituent entries stay exactly as decoded, so a
    // jump, failure or snapshot restore landing mid-sequence executes
    // the tail unfused.
    for (size_t i = 0; i < out.size(); i += instrWords(out[i])) {
        for (uint16_t s : order) {
            const FusedSeq &seq = catalog[s];
            if (out[i].op != static_cast<uint8_t>(seq.ops[0]))
                continue;
            if (!seq.likelyTarget) {
                // Sequential constituents: every one present and at
                // the statically expected next address.
                if (i + seq.length > out.size())
                    continue;
                bool match = true;
                for (unsigned j = 1; j < seq.length && match; ++j)
                    match = out[i + j].op ==
                            static_cast<uint8_t>(seq.ops[j]);
                if (!match)
                    continue;
            }
            out[i].tok = fusedToken(s);
            break;
        }
    }
}

std::vector<uint64_t>
fusedHeadCounts(const std::vector<DecodedInstr> &decoded)
{
    std::vector<uint64_t> counts(numFusedSeqs, 0);
    for (const DecodedInstr &d : decoded) {
        if (d.tok >= numOpcodeTokens)
            counts[d.tok - numOpcodeTokens]++;
    }
    return counts;
}

std::vector<uint16_t>
selectFusedSequences(const Profiler &profiler, size_t top_k)
{
    const auto &catalog = fusionCatalog();
    std::vector<std::pair<uint64_t, uint16_t>> scored;
    for (unsigned s = 0; s < numFusedSeqs; ++s) {
        const FusedSeq &seq = catalog[s];
        uint64_t count =
            seq.length == 3
                ? profiler.tripleCount(seq.ops[0], seq.ops[1], seq.ops[2])
                : profiler.pairCount(seq.ops[0], seq.ops[1]);
        // Score by dispatches saved, so a triple outranks the pair it
        // contains (same dynamic count, twice the saving) and the
        // predecode peephole — which matches in selection order —
        // tries it first.
        uint64_t score = count * (seq.length - 1);
        if (score)
            scored.emplace_back(score, uint16_t(s));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    if (scored.size() > top_k)
        scored.resize(top_k);
    std::vector<uint16_t> out;
    out.reserve(scored.size());
    for (const auto &[score, index] : scored)
        out.push_back(index);
    return out;
}

} // namespace kcm
