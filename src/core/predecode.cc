#include "core/predecode.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/profiler.hh"

namespace kcm
{

namespace
{

/** Words occupied by the instruction at @p d, including any dispatch
 *  table that follows it (the only multi-word instructions, §4.1). */
size_t
instrWords(const DecodedInstr &d)
{
    if (d.op == invalidOpcodeToken)
        return 1;
    switch (d.opcode()) {
      case Opcode::SwitchOnTerm:
        return 1 + opcodeInfo(Opcode::SwitchOnTerm).fixedExtraWords;
      case Opcode::SwitchOnConstant:
      case Opcode::SwitchOnStructure:
        // n key/target pairs plus the trailing miss word.
        return 2 + 2 * size_t(d.value);
      default:
        return 1;
    }
}

} // namespace

void
predecodeImage(const std::vector<uint64_t> &words,
               const FusionConfig &fusion, std::vector<DecodedInstr> &out)
{
    out.clear();
    out.reserve(words.size());
    for (uint64_t raw : words)
        out.push_back(decodeInstr(raw));

    const auto &catalog = fusionCatalog();
    // Candidate entries in match-priority order: Static takes the
    // whole catalog in declaration order (triples listed before their
    // pair prefixes, so the first match is the longest); Profiled
    // takes the selected entries in selection order, which
    // selectFusedSequences has already sorted by dispatches saved —
    // this is what resolves competing likely-target entries for the
    // same head opcode in favour of the measured-hotter successor.
    std::vector<uint16_t> order;
    switch (fusion.mode) {
      case FusionConfig::Mode::Off:
        return;
      case FusionConfig::Mode::Static:
        order.resize(numFusedSeqs);
        for (unsigned s = 0; s < numFusedSeqs; ++s)
            order[s] = uint16_t(s);
        break;
      case FusionConfig::Mode::Profiled:
        for (uint16_t index : fusion.sequences) {
            if (index < numFusedSeqs)
                order.push_back(index);
        }
        break;
    }
    if (order.empty())
        return;

    // Peephole over instruction boundaries (switch tables are data and
    // are stepped over, never matched). Only the head's dispatch token
    // is rewritten — constituent entries stay exactly as decoded, so a
    // jump, failure or snapshot restore landing mid-sequence executes
    // the tail unfused.
    for (size_t i = 0; i < out.size(); i += instrWords(out[i])) {
        for (uint16_t s : order) {
            const FusedSeq &seq = catalog[s];
            if (out[i].op != static_cast<uint8_t>(seq.ops[0]))
                continue;
            if (!seq.likelyTarget) {
                // Sequential constituents: every one present and at
                // the statically expected next address.
                if (i + seq.length > out.size())
                    continue;
                bool match = true;
                for (unsigned j = 1; j < seq.length && match; ++j)
                    match = out[i + j].op ==
                            static_cast<uint8_t>(seq.ops[j]);
                if (!match)
                    continue;
            }
            out[i].tok = fusedToken(s);
            break;
        }
    }
}

std::vector<uint64_t>
fusedHeadCounts(const std::vector<DecodedInstr> &decoded)
{
    std::vector<uint64_t> counts(numFusedSeqs, 0);
    for (const DecodedInstr &d : decoded) {
        if (d.tok >= numOpcodeTokens)
            counts[d.tok - numOpcodeTokens]++;
    }
    return counts;
}

namespace
{

/** Shared ranking core: @p count_of yields the dynamic count of one
 *  catalog sequence; the rest is scoring, ordering and truncation. */
template <typename CountOf>
std::vector<uint16_t>
selectFromCounts(CountOf &&count_of, size_t top_k)
{
    const auto &catalog = fusionCatalog();
    std::vector<std::pair<uint64_t, uint16_t>> scored;
    for (unsigned s = 0; s < numFusedSeqs; ++s) {
        const FusedSeq &seq = catalog[s];
        uint64_t count = count_of(seq);
        // Score by dispatches saved, so a triple outranks the pair it
        // contains (same dynamic count, twice the saving) and the
        // predecode peephole — which matches in selection order —
        // tries it first.
        uint64_t score = count * (seq.length - 1);
        if (score)
            scored.emplace_back(score, uint16_t(s));
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    if (scored.size() > top_k)
        scored.resize(top_k);
    std::vector<uint16_t> out;
    out.reserve(scored.size());
    for (const auto &[score, index] : scored)
        out.push_back(index);
    return out;
}

uint64_t
saturatingAdd(uint64_t a, uint64_t b)
{
    uint64_t s = a + b;
    return s < a ? std::numeric_limits<uint64_t>::max() : s;
}

} // namespace

std::vector<uint16_t>
selectFusedSequences(const Profiler &profiler, size_t top_k)
{
    return selectFromCounts(
        [&](const FusedSeq &seq) {
            return seq.length == 3
                       ? profiler.tripleCount(seq.ops[0], seq.ops[1],
                                              seq.ops[2])
                       : profiler.pairCount(seq.ops[0], seq.ops[1]);
        },
        top_k);
}

std::vector<uint16_t>
selectFusedSequences(const SequenceProfile &profile, size_t top_k)
{
    return selectFromCounts(
        [&](const FusedSeq &seq) {
            return seq.length == 3
                       ? profile.tripleCount(seq.ops[0], seq.ops[1],
                                             seq.ops[2])
                       : profile.pairCount(seq.ops[0], seq.ops[1]);
        },
        top_k);
}

bool
SequenceProfile::empty() const
{
    auto allZero = [](const std::vector<uint64_t> &v) {
        return std::all_of(v.begin(), v.end(),
                           [](uint64_t c) { return c == 0; });
    };
    return allZero(pairs) && allZero(triples);
}

uint64_t
SequenceProfile::pairCount(Opcode a, Opcode b) const
{
    if (pairs.empty())
        return 0;
    return pairs[size_t(a) * numOpcodeTokens + size_t(b)];
}

uint64_t
SequenceProfile::tripleCount(Opcode a, Opcode b, Opcode c) const
{
    if (triples.empty())
        return 0;
    return triples[(size_t(a) * numOpcodeTokens + size_t(b)) *
                       numOpcodeTokens +
                   size_t(c)];
}

void
SequenceProfile::merge(const SequenceProfile &other)
{
    auto mergeInto = [](std::vector<uint64_t> &dst,
                        const std::vector<uint64_t> &src, size_t full) {
        if (src.empty())
            return;
        if (dst.empty())
            dst.assign(full, 0);
        for (size_t i = 0; i < full; ++i)
            dst[i] = saturatingAdd(dst[i], src[i]);
    };
    constexpr size_t n = numOpcodeTokens;
    mergeInto(pairs, other.pairs, n * n);
    mergeInto(triples, other.triples, n * n * n);
}

SequenceProfile
sequenceProfileOf(const Profiler &profiler)
{
    SequenceProfile p;
    if (!profiler.sequencesEnabled())
        return p;
    constexpr size_t n = numOpcodeTokens;
    p.pairs.assign(n * n, 0);
    p.triples.assign(n * n * n, 0);
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = 0; b < n; ++b) {
            p.pairs[a * n + b] =
                profiler.pairCount(Opcode(a), Opcode(b));
            for (size_t c = 0; c < n; ++c) {
                p.triples[(a * n + b) * n + c] =
                    profiler.tripleCount(Opcode(a), Opcode(b),
                                         Opcode(c));
            }
        }
    }
    return p;
}

std::string
saveSequenceProfile(const SequenceProfile &profile)
{
    constexpr size_t n = numOpcodeTokens;
    std::ostringstream os;
    os << "kcm-seqprofile 1 " << n << "\n";
    for (size_t i = 0; i < profile.pairs.size(); ++i) {
        if (!profile.pairs[i])
            continue;
        os << "pair " << i / n << " " << i % n << " "
           << profile.pairs[i] << "\n";
    }
    for (size_t i = 0; i < profile.triples.size(); ++i) {
        if (!profile.triples[i])
            continue;
        os << "triple " << i / (n * n) << " " << (i / n) % n << " "
           << i % n << " " << profile.triples[i] << "\n";
    }
    return os.str();
}

SequenceProfile
loadSequenceProfile(const std::string &text)
{
    constexpr size_t n = numOpcodeTokens;
    std::istringstream is(text);
    std::string magic;
    unsigned version = 0;
    size_t tokens = 0;
    if (!(is >> magic >> version >> tokens) ||
        magic != "kcm-seqprofile")
        throw std::runtime_error(
            "sequence profile: bad header (expected "
            "\"kcm-seqprofile <version> <tokens>\")");
    if (version != 1)
        throw std::runtime_error(
            "sequence profile: unsupported version " +
            std::to_string(version));
    if (tokens != n)
        throw std::runtime_error(
            "sequence profile: opcode token count mismatch (file " +
            std::to_string(tokens) + ", build " + std::to_string(n) +
            ") — re-profile with this build");

    SequenceProfile p;
    p.pairs.assign(n * n, 0);
    p.triples.assign(n * n * n, 0);
    auto token = [&](uint64_t v, const char *what) -> size_t {
        if (v >= n)
            throw std::runtime_error(
                std::string("sequence profile: ") + what +
                " token out of range: " + std::to_string(v));
        return size_t(v);
    };
    std::string kind;
    size_t line = 1;
    while (is >> kind) {
        ++line;
        uint64_t a = 0, b = 0, c = 0, count = 0;
        if (kind == "pair") {
            if (!(is >> a >> b >> count))
                throw std::runtime_error(
                    "sequence profile: malformed pair record at line " +
                    std::to_string(line));
            p.pairs[token(a, "pair") * n + token(b, "pair")] =
                saturatingAdd(
                    p.pairs[token(a, "pair") * n + token(b, "pair")],
                    count);
        } else if (kind == "triple") {
            if (!(is >> a >> b >> c >> count))
                throw std::runtime_error(
                    "sequence profile: malformed triple record at "
                    "line " +
                    std::to_string(line));
            size_t idx = (token(a, "triple") * n + token(b, "triple")) *
                             n +
                         token(c, "triple");
            p.triples[idx] = saturatingAdd(p.triples[idx], count);
        } else {
            throw std::runtime_error(
                "sequence profile: unknown record \"" + kind +
                "\" at line " + std::to_string(line));
        }
    }
    return p;
}

} // namespace kcm
