/**
 * @file
 * Global-stack garbage collection.
 *
 * The KCM word format reserves GC/mark bits (bits 63..56, manipulable
 * through the TVM, §3.1.1), and the zone-check unit was designed so
 * that stack-limit monitoring "can be used to trigger garbage
 * collection" (§3.2.3). The paper left the collector itself to the
 * full SEPIA system; this file implements it: a sliding mark-compact
 * collector over the global stack that preserves cell order (so the
 * heap-boundary fields saved in choice points remain meaningful).
 *
 * Roots are the argument registers, the environment chains (current
 * and those saved in choice points), the saved argument registers of
 * every choice point, and the targets of trail entries (a cell that
 * backtracking will unbind must survive). The mark phase sets the
 * words' GC bits in place — exactly what the hardware bits are for.
 */

#include <set>
#include <vector>

#include "base/logging.hh"
#include "core/machine.hh"

namespace kcm
{

namespace
{

constexpr uint8_t markBit = 0x01;

/** Fields of a choice point record (mirrors machine.cc). */
namespace cpfield
{
constexpr unsigned prevB = 0;
constexpr unsigned alt = 1;
constexpr unsigned e = 2;
constexpr unsigned b0 = 4;
constexpr unsigned h = 5;
constexpr unsigned lt = 7;
constexpr unsigned arity = 8;
constexpr unsigned args = 9;
} // namespace cpfield

} // namespace

uint64_t
Machine::collectGarbage()
{
    const DataLayout &layout = mem_->layout();
    const Addr base = layout.globalStart;
    const Addr top = h_;
    if (top <= base)
        return 0;
    const size_t heap_words = top - base;

    auto peek = [&](Addr a) { return mem_->peekData(a); };
    auto poke = [&](Addr a, Word w) { mem_->pokeData(a, w); };

    auto in_heap = [&](Word w) {
        return w.isDataAddress() && w.zone() == Zone::Global &&
               w.addr() >= base && w.addr() < top;
    };

    // ---------------------------------------------------------- roots

    // Word locations (data addresses) whose contents must be both
    // traced and updated.
    std::vector<Addr> root_cells;
    // Machine/X registers are traced and updated separately.

    std::set<Addr> visited_envs;
    auto add_env_chain = [&](Addr e) {
        while (e && visited_envs.insert(e).second) {
            unsigned n = envSizeOf(e);
            for (unsigned y = 0; y < n; ++y)
                root_cells.push_back(e + 2 + y);
            Word ce = peek(e);
            if (!ce.isDataPtr() || ce.addr() == e)
                break;
            e = ce.addr();
        }
    };

    add_env_chain(e_);

    // Choice point chain: saved args, saved environments.
    std::set<Addr> visited_cps;
    Addr b = b_;
    while (visited_cps.insert(b).second) {
        Word arity = peek(b + cpfield::arity);
        uint32_t n = static_cast<uint32_t>(arity.intValue());
        for (uint32_t i = 0; i < n; ++i)
            root_cells.push_back(b + cpfield::args + i);
        add_env_chain(peek(b + cpfield::e).addr());
        Word prev = peek(b + cpfield::prevB);
        if (prev.addr() == b)
            break;
        b = prev.addr();
    }

    // Trail entries: the entry word itself names a cell that a future
    // unwind will write to — that cell must survive (and the entry
    // must be relocated).
    for (Addr t = layout.trailStart; t < tr_; ++t)
        root_cells.push_back(t);

    // ----------------------------------------------------------- mark

    std::vector<bool> marked(heap_words, false);
    std::vector<Addr> worklist;

    auto mark_cell = [&](Addr a) {
        if (a < base || a >= top)
            return;
        if (!marked[a - base]) {
            marked[a - base] = true;
            worklist.push_back(a);
        }
    };

    auto mark_from_word = [&](Word w) {
        if (!in_heap(w))
            return;
        switch (w.tag()) {
          case Tag::Ref:
          case Tag::DataPtr:
            mark_cell(w.addr());
            break;
          case Tag::List:
            mark_cell(w.addr());
            mark_cell(w.addr() + 1);
            break;
          case Tag::Struct: {
            Addr f = w.addr();
            mark_cell(f);
            Word functor = peek(f);
            for (uint32_t i = 1; i <= functor.functorArity(); ++i)
                mark_cell(f + i);
            break;
          }
          default:
            break;
        }
    };

    for (const auto &reg : x_)
        mark_from_word(reg);
    for (Addr cell : root_cells) {
        Word w = peek(cell);
        // Trail entries for heap cells: mark the target cell itself.
        if (cell >= layout.trailStart && cell < tr_) {
            if (in_heap(w))
                mark_cell(w.addr());
            continue;
        }
        mark_from_word(w);
    }

    while (!worklist.empty()) {
        Addr a = worklist.back();
        worklist.pop_back();
        Word w = peek(a);
        // Reflect the mark in the word's GC bits, as the hardware
        // mark phase would.
        poke(a, w.withGcBits(w.gcBits() | markBit));
        mark_from_word(w);
    }

    // ------------------------------------------------- relocation map

    // Order-preserving slide: newAddr(a) = base + #live cells below a.
    std::vector<Addr> prefix(heap_words + 1, 0);
    for (size_t i = 0; i < heap_words; ++i)
        prefix[i + 1] = prefix[i] + (marked[i] ? 1 : 0);
    const uint64_t live = prefix[heap_words];
    const uint64_t freed = heap_words - live;

    auto new_addr = [&](Addr a) -> Addr {
        if (a < base)
            return a;
        if (a >= top)
            return base + static_cast<Addr>(live) + (a - top);
        return base + prefix[a - base];
    };

    // Registers may legally point AT or just beyond the current top
    // mid-structure-build (put_list/put_structure publish the address
    // before the unify_* writes fill the cells); new_addr maps that
    // region onto the new top.
    auto relocate_word = [&](Word w) -> Word {
        if (!(w.isDataAddress() && w.zone() == Zone::Global &&
              w.addr() >= base)) {
            return w;
        }
        return Word::make(w.tag(), w.zone(), new_addr(w.addr()))
            .withGcBits(0);
    };

    // ---------------------------------------------------------- slide

    for (size_t i = 0; i < heap_words; ++i) {
        if (!marked[i])
            continue;
        Addr from = base + static_cast<Addr>(i);
        Word w = peek(from).withGcBits(0);
        poke(base + prefix[i], relocate_word(w));
    }

    // -------------------------------------------------- update roots

    for (auto &reg : x_)
        reg = relocate_word(reg);

    for (Addr cell : root_cells)
        poke(cell, relocate_word(peek(cell)));

    // Heap-boundary fields inside choice points.
    visited_cps.clear();
    b = b_;
    while (visited_cps.insert(b).second) {
        Word h = peek(b + cpfield::h);
        poke(b + cpfield::h,
             Word::makeDataPtr(Zone::Global, new_addr(h.addr())));
        Word prev = peek(b + cpfield::prevB);
        if (prev.addr() == b)
            break;
        b = prev.addr();
    }

    // Machine registers holding heap addresses.
    h_ = new_addr(h_);
    hb_ = new_addr(hb_);
    s_ = new_addr(s_);
    shadowH_ = new_addr(shadowH_);

    // Cost model: the collector touches every live cell twice (mark +
    // copy) and scans the dead ones once.
    cycles_ += 2 * live + freed;
    ++gcRuns;
    gcWordsReclaimed += freed;
    return freed;
}

} // namespace kcm
