/**
 * @file
 * Instruction semantics: the microcoded execution unit. Dispatch on
 * the combination of operand types is modelled after the MWAC
 * (§3.1.4): type analysis costs no extra test cycles.
 *
 * execInstr is the switch-dispatch (oracle) entry point; the bodies
 * of the simple opcodes live in exec_ops.hh so the token-threaded
 * core (exec_threaded.cc) executes the very same code.
 */

#include "core/exec_ops.hh"

#include "base/logging.hh"
#include "core/machine.hh"
#include "isa/disasm.hh"

namespace kcm
{

using exec_detail::yAddr;

void
Machine::execInstr(const DecodedInstr &instr)
{
    switch (instr.opcode()) {
      // ------------------------------------------------------ control
      case Opcode::Halt:       opHalt(instr); break;
      case Opcode::Noop:       break;
      case Opcode::Jump:       opJump(instr); break;
      case Opcode::Call:       opCall(instr); break;
      case Opcode::Execute:    opExecute(instr); break;
      case Opcode::Proceed:    opProceed(instr); break;
      case Opcode::Allocate:   opAllocate(instr); break;
      case Opcode::Deallocate: opDeallocate(instr); break;
      case Opcode::FailOp:     fail(); break;

      // ------------------------------------- choice points / indexing
      case Opcode::TryMeElse:
      case Opcode::RetryMeElse:
      case Opcode::TrustMe:
      case Opcode::Try:
      case Opcode::Retry:
      case Opcode::Trust:
      case Opcode::Neck:
      case Opcode::Cut:
      case Opcode::GetLevel:
      case Opcode::CutY:
      case Opcode::SwitchOnTerm:
      case Opcode::SwitchOnConstant:
      case Opcode::SwitchOnStructure:
        execIndex(instr);
        break;

      // ------------------------------------------------------ get/put
      case Opcode::GetVariableX:   opGetVariableX(instr); break;
      case Opcode::GetVariableY:   opGetVariableY(instr); break;
      case Opcode::GetValueX:      opGetValueX(instr); break;
      case Opcode::GetValueY:      opGetValueY(instr); break;
      case Opcode::GetConstant:
      case Opcode::GetNil:         opGetConstant(instr); break;
      case Opcode::GetList:        opGetList(instr); break;
      case Opcode::GetStructure:   opGetStructure(instr); break;
      case Opcode::PutVariableX:   opPutVariableX(instr); break;
      case Opcode::PutVariableY:   opPutVariableY(instr); break;
      case Opcode::PutValueX:      opPutValueX(instr); break;
      case Opcode::PutValueY:      opPutValueY(instr); break;
      case Opcode::PutUnsafeValue: opPutUnsafeValue(instr); break;
      case Opcode::PutConstant:    opPutConstant(instr); break;
      case Opcode::PutNil:         opPutNil(instr); break;
      case Opcode::PutList:        opPutList(instr); break;
      case Opcode::PutStructure:   opPutStructure(instr); break;

      // -------------------------------------------------------- unify
      case Opcode::UnifyVariableX:
      case Opcode::UnifyVariableY:
      case Opcode::UnifyValueX:
      case Opcode::UnifyValueY:
      case Opcode::UnifyLocalValueX:
      case Opcode::UnifyLocalValueY:
      case Opcode::UnifyConstant:
      case Opcode::UnifyNil:
      case Opcode::UnifyList:
      case Opcode::UnifyVoid:
        execUnifyClass(instr);
        break;

      // -------------------------------------------------- arithmetic
      case Opcode::NativeAdd:
      case Opcode::NativeSub:
      case Opcode::NativeMul:
      case Opcode::NativeDiv:
      case Opcode::NativeMod:
      case Opcode::NativeNeg:
      case Opcode::CmpLt:
      case Opcode::CmpGt:
      case Opcode::CmpLe:
      case Opcode::CmpGe:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        execArith(instr);
        break;

      case Opcode::Escape:
        execEscape(instr);
        break;

      // ---------------------------------------------- data movement
      case Opcode::Move2:   opMove2(instr); break;
      case Opcode::LoadImm: opLoadImm(instr); break;
      case Opcode::SwapTV:  opSwapTV(instr); break;
      case Opcode::Load:    opLoad(instr); break;
      case Opcode::Store:   opStore(instr); break;

      default:
        opBadInstruction(instr);
    }
}

void
Machine::execUnifyClass(const DecodedInstr &instr)
{
    // The read/write mode flag is taken into account at decode time
    // (§2.5): no test cycles.
    switch (instr.opcode()) {
      case Opcode::UnifyVariableX:
        if (writeMode_) {
            x_[instr.r1] = newHeapVar();
        } else {
            x_[instr.r1] = nextSubterm();
        }
        break;
      case Opcode::UnifyVariableY: {
        Word v = writeMode_ ? newHeapVar() : nextSubterm();
        writeData(Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1)), v);
        ++cycles_;
        break;
      }
      case Opcode::UnifyValueX:
      case Opcode::UnifyLocalValueX: {
        if (writeMode_) {
            Word w = deref(x_[instr.r1]);
            if (w.isRef() && w.zone() == Zone::Local) {
                // Keep the global stack free of local references.
                w = globalize(w);
            }
            x_[instr.r1] = w;
            pushHeapCell(w);
        } else {
            if (!unify(x_[instr.r1], nextSubterm()))
                fail();
        }
        break;
      }
      case Opcode::UnifyValueY:
      case Opcode::UnifyLocalValueY: {
        Word y = readData(
            Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1)));
        ++cycles_;
        if (writeMode_) {
            Word w = deref(y);
            if (w.isRef() && w.zone() == Zone::Local)
                w = globalize(w);
            pushHeapCell(w);
        } else {
            if (!unify(y, nextSubterm()))
                fail();
        }
        break;
      }
      case Opcode::UnifyConstant:
      case Opcode::UnifyNil: {
        Word want = instr.opcode() == Opcode::UnifyNil ? Word::makeNil()
                                                       : instr.constant;
        if (writeMode_) {
            pushHeapCell(want);
        } else {
            Word w = deref(nextSubterm());
            if (w.isRef()) {
                bind(w, want);
            } else if (w.tag() != want.tag() ||
                       w.value() != want.value()) {
                fail();
            }
        }
        break;
      }
      case Opcode::UnifyList: {
        // Statically-known list chains cost two instructions per cell
        // (§4.1): this instruction continues the chain.
        if (writeMode_) {
            // The next cons pair starts right after this cell.
            pushHeapCell(Word::makeList(Zone::Global, h_ + 1));
        } else {
            Word w = deref(nextSubterm());
            if (w.isRef()) {
                bind(w, Word::makeList(Zone::Global, h_));
                writeMode_ = true;
            } else if (w.isList()) {
                s_ = w.addr();
            } else {
                fail();
            }
        }
        break;
      }
      case Opcode::UnifyVoid: {
        unsigned n = instr.r1;
        if (writeMode_) {
            for (unsigned i = 0; i < n; ++i)
                newHeapVar();
            cycles_ += n > 0 ? n - 1 : 0;
        } else {
            s_ += n;
        }
        break;
      }
      default:
        panic("execUnifyClass: bad opcode");
    }
}

Word
Machine::nextSubterm()
{
    Word w = readData(Word::makeDataPtr(Zone::Global, s_));
    ++s_;
    return w;
}

void
Machine::execArith(const DecodedInstr &instr)
{
    Word a = deref(x_[instr.r1]);
    bool is_cmp = false;
    Word b;
    switch (instr.opcode()) {
      case Opcode::NativeNeg:
        b = Word::makeInt(0);
        break;
      default:
        b = deref(x_[instr.r2]);
        break;
    }

    auto numeric = [](Word w) { return w.isInt() || w.isFloat(); };
    if (!numeric(a) || !numeric(b)) {
        fail();
        return;
    }

    bool use_float = a.isFloat() || b.isFloat();
    Word result;
    bool cond = false;

    if (use_float) {
        float fa = a.isFloat() ? a.floatValue() : float(a.intValue());
        float fb = b.isFloat() ? b.floatValue() : float(b.intValue());
        // FPU latencies (§3.1.1; §4.2 notes floating multiply/divide
        // beat the integer path).
        switch (instr.opcode()) {
          case Opcode::NativeAdd:
          case Opcode::NativeSub:
            cycles_ += 2; // 3 total
            break;
          case Opcode::NativeMul:
            cycles_ += 3; // 4 total
            break;
          case Opcode::NativeDiv:
            cycles_ += 6; // 7 total
            break;
          default:
            break;
        }
        switch (instr.opcode()) {
          case Opcode::NativeAdd: result = Word::makeFloat(fa + fb); break;
          case Opcode::NativeSub: result = Word::makeFloat(fa - fb); break;
          case Opcode::NativeMul: result = Word::makeFloat(fa * fb); break;
          case Opcode::NativeDiv:
            if (fb == 0) {
                fail();
                return;
            }
            result = Word::makeFloat(fa / fb);
            break;
          case Opcode::NativeMod:
            fail();
            return;
          case Opcode::NativeNeg: result = Word::makeFloat(-fa); break;
          case Opcode::CmpLt: is_cmp = true; cond = fa < fb; break;
          case Opcode::CmpGt: is_cmp = true; cond = fa > fb; break;
          case Opcode::CmpLe: is_cmp = true; cond = fa <= fb; break;
          case Opcode::CmpGe: is_cmp = true; cond = fa >= fb; break;
          case Opcode::CmpEq: is_cmp = true; cond = fa == fb; break;
          case Opcode::CmpNe: is_cmp = true; cond = fa != fb; break;
          default: panic("execArith: bad opcode");
        }
    } else {
        int64_t ia = a.intValue();
        int64_t ib = b.intValue();
        int64_t r = 0;
        // Integer multiply and divide are the multi-cycle exceptions
        // of §3.1.1 (sequential shift-add/subtract microcode).
        switch (instr.opcode()) {
          case Opcode::NativeMul:
            cycles_ += 5; // 6 total
            break;
          case Opcode::NativeDiv:
          case Opcode::NativeMod:
            cycles_ += 11; // 12 total
            break;
          default:
            break;
        }
        switch (instr.opcode()) {
          case Opcode::NativeAdd: r = ia + ib; break;
          case Opcode::NativeSub: r = ia - ib; break;
          case Opcode::NativeMul: r = ia * ib; break;
          case Opcode::NativeDiv:
            if (ib == 0) {
                fail();
                return;
            }
            r = ia / ib;
            break;
          case Opcode::NativeMod:
            if (ib == 0) {
                fail();
                return;
            }
            r = ia % ib;
            break;
          case Opcode::NativeNeg: r = -ia; break;
          case Opcode::CmpLt: is_cmp = true; cond = ia < ib; break;
          case Opcode::CmpGt: is_cmp = true; cond = ia > ib; break;
          case Opcode::CmpLe: is_cmp = true; cond = ia <= ib; break;
          case Opcode::CmpGe: is_cmp = true; cond = ia >= ib; break;
          case Opcode::CmpEq: is_cmp = true; cond = ia == ib; break;
          case Opcode::CmpNe: is_cmp = true; cond = ia != ib; break;
          default: panic("execArith: bad opcode");
        }
        result = Word::makeInt(static_cast<int32_t>(r));
    }

    if (is_cmp) {
        prefetch_.onConditional(!cond);
        if (!cond) {
            cycles_ += 3; // taken conditional branch (§3.1.3)
            fail();
        }
        return;
    }
    x_[instr.r3] = result;
}

} // namespace kcm
