/**
 * @file
 * Instruction semantics: the microcoded execution unit. Dispatch on
 * the combination of operand types is modelled after the MWAC
 * (§3.1.4): type analysis costs no extra test cycles.
 */

#include <algorithm>

#include "base/logging.hh"
#include "core/machine.hh"
#include "isa/disasm.hh"

namespace kcm
{

namespace
{

/** Env slot address of Y register @p y under environment @p e. */
constexpr Addr
yAddr(Addr e, Reg y)
{
    return e + 2 + y;
}

} // namespace

void
Machine::execInstr(Instr instr)
{
    switch (instr.opcode()) {
      // ------------------------------------------------------ control
      case Opcode::Halt:
        if (instr.value() == 0)
            halted_ = true;
        else
            haltFailed_ = true;
        break;
      case Opcode::Noop:
        break;
      case Opcode::Jump:
        nextP_ = instr.value();
        break;
      case Opcode::Call:
        doCall(instr.value(), false);
        break;
      case Opcode::Execute:
        doCall(instr.value(), true);
        break;
      case Opcode::Proceed:
        nextP_ = cpCont_;
        break;
      case Opcode::Allocate: {
        // The new environment goes above both the current local top
        // and the region protected by the current choice point (after
        // a deallocate, LT may sit below frames that backtracking will
        // revive — the split-stack analogue of the WAM's
        // E := max(E, B) rule).
        Addr new_e = std::max(lt_, lb_);
        writeData(Word::makeDataPtr(Zone::Local, new_e),
                  Word::makeDataPtr(Zone::Local, e_));
        writeData(Word::makeDataPtr(Zone::Local, new_e + 1),
                  Word::makeCodePtr(cpCont_));
        e_ = new_e;
        lt_ = new_e + 2 + instr.r1();
        envSizes_[new_e] = instr.r1(); // GC debug info (host side)
        ++cycles_; // two stack writes
        ++envAllocs;
        break;
      }
      case Opcode::Deallocate: {
        cpCont_ =
            readData(Word::makeDataPtr(Zone::Local, e_ + 1)).addr();
        Addr old_e = e_;
        Word ce = readData(Word::makeDataPtr(Zone::Local, e_));
        if (ce.zone() != Zone::Local)
            throw MachineTrap(TrapKind::ZoneViolation,
                              cat("DEALLOC corrupt CE at E=0x", std::hex,
                                  e_, " ce=", ce.toString()));
        e_ = ce.addr();
        lt_ = old_e;
        ++cycles_; // two stack reads
        break;
      }
      case Opcode::FailOp:
        fail();
        break;

      // ------------------------------------- choice points / indexing
      case Opcode::TryMeElse:
      case Opcode::RetryMeElse:
      case Opcode::TrustMe:
      case Opcode::Try:
      case Opcode::Retry:
      case Opcode::Trust:
      case Opcode::Neck:
      case Opcode::Cut:
      case Opcode::GetLevel:
      case Opcode::CutY:
      case Opcode::SwitchOnTerm:
      case Opcode::SwitchOnConstant:
      case Opcode::SwitchOnStructure:
        execIndex(instr);
        break;

      // ------------------------------------------------------ get/put
      case Opcode::GetVariableX:
        x_[instr.r1()] = x_[instr.r2()];
        if (!config_.dualPortRegisterFile)
            ++cycles_;
        break;
      case Opcode::GetVariableY:
        writeData(Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1())),
                  x_[instr.r2()]);
        break;
      case Opcode::GetValueX:
        if (!unify(x_[instr.r1()], x_[instr.r2()]))
            fail();
        break;
      case Opcode::GetValueY: {
        Word y = readData(
            Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1())));
        if (!unify(y, x_[instr.r2()]))
            fail();
        break;
      }
      case Opcode::GetConstant:
      case Opcode::GetNil: {
        Word want = instr.opcode() == Opcode::GetNil ? Word::makeNil()
                                                     : instr.constant();
        Word w = deref(x_[instr.r2()]);
        if (w.isRef()) {
            bind(w, want);
        } else if (w.tag() != want.tag() || w.value() != want.value()) {
            fail();
        }
        break;
      }
      case Opcode::GetList: {
        Word w = deref(x_[instr.r2()]);
        if (w.isRef()) {
            bind(w, Word::makeList(Zone::Global, h_));
            writeMode_ = true;
        } else if (w.isList()) {
            s_ = w.addr();
            writeMode_ = false;
        } else {
            fail();
        }
        break;
      }
      case Opcode::GetStructure: {
        Word f = instr.constant();
        Word w = deref(x_[instr.r2()]);
        if (w.isRef()) {
            bind(w, Word::makeStruct(Zone::Global, h_));
            pushHeapCell(f);
            writeMode_ = true;
        } else if (w.isStruct()) {
            Word actual =
                readData(Word::makeDataPtr(w.zone(), w.addr()));
            ++cycles_;
            if (actual.raw() != f.raw()) {
                fail();
                break;
            }
            s_ = w.addr() + 1;
            writeMode_ = false;
        } else {
            fail();
        }
        break;
      }

      case Opcode::PutVariableX: {
        Word v = newHeapVar();
        x_[instr.r1()] = v;
        x_[instr.r2()] = v;
        break;
      }
      case Opcode::PutVariableY: {
        Addr a = yAddr(e_, instr.r1());
        Word v = Word::makeRef(Zone::Local, a);
        writeData(v, v);
        x_[instr.r2()] = v;
        break;
      }
      case Opcode::PutValueX:
        x_[instr.r2()] = x_[instr.r1()];
        if (!config_.dualPortRegisterFile)
            ++cycles_;
        break;
      case Opcode::PutValueY:
        x_[instr.r2()] = readData(
            Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1())));
        break;
      case Opcode::PutUnsafeValue: {
        Word w = deref(readData(
            Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1()))));
        if (w.isRef() && w.zone() == Zone::Local && w.addr() >= e_) {
            // Unbound variable in the environment being discarded:
            // globalize it.
            x_[instr.r2()] = globalize(w);
        } else {
            x_[instr.r2()] = w;
        }
        break;
      }
      case Opcode::PutConstant:
        x_[instr.r2()] = instr.constant();
        break;
      case Opcode::PutNil:
        x_[instr.r2()] = Word::makeNil();
        break;
      case Opcode::PutList:
        x_[instr.r2()] = Word::makeList(Zone::Global, h_);
        writeMode_ = true;
        break;
      case Opcode::PutStructure:
        x_[instr.r2()] = Word::makeStruct(Zone::Global, h_);
        pushHeapCell(instr.constant());
        writeMode_ = true;
        break;

      // -------------------------------------------------------- unify
      case Opcode::UnifyVariableX:
      case Opcode::UnifyVariableY:
      case Opcode::UnifyValueX:
      case Opcode::UnifyValueY:
      case Opcode::UnifyLocalValueX:
      case Opcode::UnifyLocalValueY:
      case Opcode::UnifyConstant:
      case Opcode::UnifyNil:
      case Opcode::UnifyList:
      case Opcode::UnifyVoid:
        execUnifyClass(instr);
        break;

      // -------------------------------------------------- arithmetic
      case Opcode::NativeAdd:
      case Opcode::NativeSub:
      case Opcode::NativeMul:
      case Opcode::NativeDiv:
      case Opcode::NativeMod:
      case Opcode::NativeNeg:
      case Opcode::CmpLt:
      case Opcode::CmpGt:
      case Opcode::CmpLe:
      case Opcode::CmpGe:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        execArith(instr);
        break;

      case Opcode::Escape:
        execEscape(instr);
        break;

      // ---------------------------------------------- data movement
      case Opcode::Move2:
        x_[instr.r3()] = x_[instr.r1()];
        x_[instr.r4()] = x_[instr.r2()];
        if (!config_.dualPortRegisterFile)
            ++cycles_; // two moves need two file cycles
        break;
      case Opcode::LoadImm:
        x_[instr.r1()] = instr.constant();
        break;
      case Opcode::SwapTV:
        x_[instr.r3()] = x_[instr.r1()].swapped();
        break;
      case Opcode::Load: {
        // Xr3 := mem[Xr1 + offset]; Xr2 := Xr1 + offset (§3.1.2).
        // Pointers materialized by load_imm carry no zone (the
        // instruction format has no zone field); re-derive it from
        // the layout, as the assembler's address calculator does.
        Word base = x_[instr.r1()];
        Addr a = base.addr() + instr.offset();
        Zone zone = base.zone() == Zone::None ? zoneOf(a) : base.zone();
        Word addr_word = Word::make(base.tag(), zone, a);
        x_[instr.r2()] = addr_word;
        x_[instr.r3()] = readData(addr_word);
        break;
      }
      case Opcode::Store: {
        Word base = x_[instr.r1()];
        Addr a = base.addr() + instr.offset();
        Zone zone = base.zone() == Zone::None ? zoneOf(a) : base.zone();
        Word addr_word = Word::make(base.tag(), zone, a);
        x_[instr.r2()] = addr_word;
        writeData(addr_word, x_[instr.r3()]);
        break;
      }

      default:
        throw MachineTrap(TrapKind::BadInstruction,
                          cat("undecodable opcode at 0x", std::hex, p_));
    }
}

void
Machine::execUnifyClass(Instr instr)
{
    // The read/write mode flag is taken into account at decode time
    // (§2.5): no test cycles.
    switch (instr.opcode()) {
      case Opcode::UnifyVariableX:
        if (writeMode_) {
            x_[instr.r1()] = newHeapVar();
        } else {
            x_[instr.r1()] = nextSubterm();
        }
        break;
      case Opcode::UnifyVariableY: {
        Word v = writeMode_ ? newHeapVar() : nextSubterm();
        writeData(Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1())), v);
        ++cycles_;
        break;
      }
      case Opcode::UnifyValueX:
      case Opcode::UnifyLocalValueX: {
        if (writeMode_) {
            Word w = deref(x_[instr.r1()]);
            if (w.isRef() && w.zone() == Zone::Local) {
                // Keep the global stack free of local references.
                w = globalize(w);
            }
            x_[instr.r1()] = w;
            pushHeapCell(w);
        } else {
            if (!unify(x_[instr.r1()], nextSubterm()))
                fail();
        }
        break;
      }
      case Opcode::UnifyValueY:
      case Opcode::UnifyLocalValueY: {
        Word y = readData(
            Word::makeDataPtr(Zone::Local, yAddr(e_, instr.r1())));
        ++cycles_;
        if (writeMode_) {
            Word w = deref(y);
            if (w.isRef() && w.zone() == Zone::Local)
                w = globalize(w);
            pushHeapCell(w);
        } else {
            if (!unify(y, nextSubterm()))
                fail();
        }
        break;
      }
      case Opcode::UnifyConstant:
      case Opcode::UnifyNil: {
        Word want = instr.opcode() == Opcode::UnifyNil ? Word::makeNil()
                                                       : instr.constant();
        if (writeMode_) {
            pushHeapCell(want);
        } else {
            Word w = deref(nextSubterm());
            if (w.isRef()) {
                bind(w, want);
            } else if (w.tag() != want.tag() ||
                       w.value() != want.value()) {
                fail();
            }
        }
        break;
      }
      case Opcode::UnifyList: {
        // Statically-known list chains cost two instructions per cell
        // (§4.1): this instruction continues the chain.
        if (writeMode_) {
            // The next cons pair starts right after this cell.
            pushHeapCell(Word::makeList(Zone::Global, h_ + 1));
        } else {
            Word w = deref(nextSubterm());
            if (w.isRef()) {
                bind(w, Word::makeList(Zone::Global, h_));
                writeMode_ = true;
            } else if (w.isList()) {
                s_ = w.addr();
            } else {
                fail();
            }
        }
        break;
      }
      case Opcode::UnifyVoid: {
        unsigned n = instr.r1();
        if (writeMode_) {
            for (unsigned i = 0; i < n; ++i)
                newHeapVar();
            cycles_ += n > 0 ? n - 1 : 0;
        } else {
            s_ += n;
        }
        break;
      }
      default:
        panic("execUnifyClass: bad opcode");
    }
}

Word
Machine::nextSubterm()
{
    Word w = readData(Word::makeDataPtr(Zone::Global, s_));
    ++s_;
    return w;
}

void
Machine::execArith(Instr instr)
{
    Word a = deref(x_[instr.r1()]);
    bool is_cmp = false;
    Word b;
    switch (instr.opcode()) {
      case Opcode::NativeNeg:
        b = Word::makeInt(0);
        break;
      default:
        b = deref(x_[instr.r2()]);
        break;
    }

    auto numeric = [](Word w) { return w.isInt() || w.isFloat(); };
    if (!numeric(a) || !numeric(b)) {
        fail();
        return;
    }

    bool use_float = a.isFloat() || b.isFloat();
    Word result;
    bool cond = false;

    if (use_float) {
        float fa = a.isFloat() ? a.floatValue() : float(a.intValue());
        float fb = b.isFloat() ? b.floatValue() : float(b.intValue());
        // FPU latencies (§3.1.1; §4.2 notes floating multiply/divide
        // beat the integer path).
        switch (instr.opcode()) {
          case Opcode::NativeAdd:
          case Opcode::NativeSub:
            cycles_ += 2; // 3 total
            break;
          case Opcode::NativeMul:
            cycles_ += 3; // 4 total
            break;
          case Opcode::NativeDiv:
            cycles_ += 6; // 7 total
            break;
          default:
            break;
        }
        switch (instr.opcode()) {
          case Opcode::NativeAdd: result = Word::makeFloat(fa + fb); break;
          case Opcode::NativeSub: result = Word::makeFloat(fa - fb); break;
          case Opcode::NativeMul: result = Word::makeFloat(fa * fb); break;
          case Opcode::NativeDiv:
            if (fb == 0) {
                fail();
                return;
            }
            result = Word::makeFloat(fa / fb);
            break;
          case Opcode::NativeMod:
            fail();
            return;
          case Opcode::NativeNeg: result = Word::makeFloat(-fa); break;
          case Opcode::CmpLt: is_cmp = true; cond = fa < fb; break;
          case Opcode::CmpGt: is_cmp = true; cond = fa > fb; break;
          case Opcode::CmpLe: is_cmp = true; cond = fa <= fb; break;
          case Opcode::CmpGe: is_cmp = true; cond = fa >= fb; break;
          case Opcode::CmpEq: is_cmp = true; cond = fa == fb; break;
          case Opcode::CmpNe: is_cmp = true; cond = fa != fb; break;
          default: panic("execArith: bad opcode");
        }
    } else {
        int64_t ia = a.intValue();
        int64_t ib = b.intValue();
        int64_t r = 0;
        // Integer multiply and divide are the multi-cycle exceptions
        // of §3.1.1 (sequential shift-add/subtract microcode).
        switch (instr.opcode()) {
          case Opcode::NativeMul:
            cycles_ += 5; // 6 total
            break;
          case Opcode::NativeDiv:
          case Opcode::NativeMod:
            cycles_ += 11; // 12 total
            break;
          default:
            break;
        }
        switch (instr.opcode()) {
          case Opcode::NativeAdd: r = ia + ib; break;
          case Opcode::NativeSub: r = ia - ib; break;
          case Opcode::NativeMul: r = ia * ib; break;
          case Opcode::NativeDiv:
            if (ib == 0) {
                fail();
                return;
            }
            r = ia / ib;
            break;
          case Opcode::NativeMod:
            if (ib == 0) {
                fail();
                return;
            }
            r = ia % ib;
            break;
          case Opcode::NativeNeg: r = -ia; break;
          case Opcode::CmpLt: is_cmp = true; cond = ia < ib; break;
          case Opcode::CmpGt: is_cmp = true; cond = ia > ib; break;
          case Opcode::CmpLe: is_cmp = true; cond = ia <= ib; break;
          case Opcode::CmpGe: is_cmp = true; cond = ia >= ib; break;
          case Opcode::CmpEq: is_cmp = true; cond = ia == ib; break;
          case Opcode::CmpNe: is_cmp = true; cond = ia != ib; break;
          default: panic("execArith: bad opcode");
        }
        result = Word::makeInt(static_cast<int32_t>(r));
    }

    if (is_cmp) {
        prefetch_.onConditional(!cond);
        if (!cond) {
            cycles_ += 3; // taken conditional branch (§3.1.3)
            fail();
        }
        return;
    }
    x_[instr.r3()] = result;
}

} // namespace kcm
