/**
 * @file
 * Deterministic machine checkpoints.
 *
 * takeSnapshot() serializes the complete architectural and
 * micro-architectural state of a Machine — register file, state
 * registers, shallow-backtracking shadows, every memory word, page
 * table, both cache arrays (tags, data, dirty bits), zone limits,
 * prefetch pipeline, governor state and every statistics counter —
 * into a self-contained byte image. restoreSnapshot() loads that image
 * into a Machine built with the same MachineConfig; continuing
 * execution from the restore point produces bit-identical simulated
 * metrics (cycles, instructions, inferences, cache hits, ...) to an
 * uninterrupted run.
 *
 * The byte image is a sectioned container ("KCMSNAP2"): code image,
 * processor state and memory system are separate sections, each
 * length-prefixed and FNV-1a-checksummed. restoreSnapshot() validates
 * the whole container — structure, checksums, memory geometry —
 * before mutating the target, so a truncated or bit-flipped blob is
 * rejected with a diagnostic and the target machine is left exactly
 * as it was (no partial restore).
 *
 * Scope and caveats:
 *  - Take snapshots at a run boundary (between run()/nextSolution()
 *    calls, or after a trap): that is an instruction boundary, the
 *    granularity at which the simulator is deterministic.
 *  - Snapshots are process-local: tagged words embed atom ids, which
 *    are interned per process. Restoring in the same process is exact;
 *    a snapshot written to disk is only portable to a process that
 *    interns the same atoms in the same order.
 *  - The target machine must use the same MachineConfig as the source
 *    (same timing model, quotas and fault plan); the predecoded image
 *    is rebuilt from the embedded code image per the target's
 *    dispatch-core setting.
 */

#ifndef KCM_CORE_SNAPSHOT_HH
#define KCM_CORE_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace kcm
{

class Machine;

/** An opaque machine checkpoint (a self-contained byte image). */
struct Snapshot
{
    std::vector<uint8_t> bytes;
};

/** Serialize the complete state of @p machine. */
Snapshot takeSnapshot(Machine &machine);

/** Load @p snapshot into @p machine (same MachineConfig as the
 *  source). Fatal on a corrupt or truncated image. */
void restoreSnapshot(Machine &machine, const Snapshot &snapshot);

/**
 * Structural validation only: parse the KCMSNAP2 container and verify
 * every section length and checksum without touching any machine.
 * Returns false (and fills @p why when non-null) on a truncated or
 * bit-flipped image. This is the cheap re-validation a snapshot cache
 * runs before handing a template to a worker: a corrupt entry is
 * detected here, evicted and recompiled instead of ever being served.
 */
bool validateSnapshot(const Snapshot &snapshot, std::string *why = nullptr);

} // namespace kcm

#endif // KCM_CORE_SNAPSHOT_HH
