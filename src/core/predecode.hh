/**
 * @file
 * Shared predecode pass for the fast core: raw code words →
 * DecodedInstr vector, plus the superinstruction fusion peephole
 * (isa/fusion.hh) and the profile-guided sequence selector.
 *
 * Both Machine::load() and snapshot restore build the predecoded
 * image through predecodeImage(), so a machine restored from a
 * KCMSNAP2 snapshot fuses exactly per its own FusionConfig — the
 * snapshot carries machine state only, and fused and unfused
 * predecodes are interchangeable mid-run (the peephole rewrites only
 * the dispatch token of a sequence head; every constituent entry is
 * untouched, so control arriving mid-sequence executes unfused).
 */

#ifndef KCM_CORE_PREDECODE_HH
#define KCM_CORE_PREDECODE_HH

#include <cstdint>
#include <vector>

#include "core/machine_config.hh"
#include "isa/decoded.hh"
#include "isa/fusion.hh"

namespace kcm
{

class Profiler;

/**
 * Decode @p words into @p out (index i ↔ code address base + i) and
 * rewrite the dispatch tokens of fused-sequence heads per @p fusion.
 */
void predecodeImage(const std::vector<uint64_t> &words,
                    const FusionConfig &fusion,
                    std::vector<DecodedInstr> &out);

/** Fused heads per catalog entry in a predecoded image (index ==
 *  catalog index) — coverage reporting for tests and benches. */
std::vector<uint64_t>
fusedHeadCounts(const std::vector<DecodedInstr> &decoded);

/**
 * Profile-guided selection: rank the catalog by the profiler's
 * dynamic pair/triple histogram and return the indices of the top
 * @p top_k entries that were actually observed.
 */
std::vector<uint16_t> selectFusedSequences(const Profiler &profiler,
                                           size_t top_k);

} // namespace kcm

#endif // KCM_CORE_PREDECODE_HH
