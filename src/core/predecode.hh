/**
 * @file
 * Shared predecode pass for the fast core: raw code words →
 * DecodedInstr vector, plus the superinstruction fusion peephole
 * (isa/fusion.hh) and the profile-guided sequence selector.
 *
 * Both Machine::load() and snapshot restore build the predecoded
 * image through predecodeImage(), so a machine restored from a
 * KCMSNAP2 snapshot fuses exactly per its own FusionConfig — the
 * snapshot carries machine state only, and fused and unfused
 * predecodes are interchangeable mid-run (the peephole rewrites only
 * the dispatch token of a sequence head; every constituent entry is
 * untouched, so control arriving mid-sequence executes unfused).
 */

#ifndef KCM_CORE_PREDECODE_HH
#define KCM_CORE_PREDECODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "isa/decoded.hh"
#include "isa/fusion.hh"

namespace kcm
{

class Profiler;

/**
 * Decode @p words into @p out (index i ↔ code address base + i) and
 * rewrite the dispatch tokens of fused-sequence heads per @p fusion.
 */
void predecodeImage(const std::vector<uint64_t> &words,
                    const FusionConfig &fusion,
                    std::vector<DecodedInstr> &out);

/** Fused heads per catalog entry in a predecoded image (index ==
 *  catalog index) — coverage reporting for tests and benches. */
std::vector<uint64_t>
fusedHeadCounts(const std::vector<DecodedInstr> &decoded);

/**
 * A persistable dynamic opcode pair/triple histogram — the input of
 * profile-guided selection, decoupled from a live Profiler so one
 * profiling run can seed fusion for many later runs (the bench
 * harness persists it via --profile-out and reloads it with
 * --profile-in instead of repeating the per-benchmark pre-pass).
 */
struct SequenceProfile
{
    /** Dense histograms: pairs[a * numOpcodeTokens + b] and
     *  triples[(a * numOpcodeTokens + b) * numOpcodeTokens + c].
     *  Empty vectors mean "nothing observed yet". */
    std::vector<uint64_t> pairs;
    std::vector<uint64_t> triples;

    bool empty() const;
    uint64_t pairCount(Opcode a, Opcode b) const;
    uint64_t tripleCount(Opcode a, Opcode b, Opcode c) const;

    /** Accumulate @p other into this profile (saturating add). */
    void merge(const SequenceProfile &other);
};

/** Snapshot a profiler's sequence-monitor histograms. Returns an
 *  empty profile if the monitor was never enabled. */
SequenceProfile sequenceProfileOf(const Profiler &profiler);

/**
 * Profile-guided selection: rank the catalog by the profiler's
 * dynamic pair/triple histogram and return the indices of the top
 * @p top_k entries that were actually observed.
 */
std::vector<uint16_t> selectFusedSequences(const Profiler &profiler,
                                           size_t top_k);

/** Same selection over a persisted profile. */
std::vector<uint16_t> selectFusedSequences(const SequenceProfile &profile,
                                           size_t top_k);

/**
 * Render @p profile in the sparse "kcm-seqprofile" text format:
 *
 *   kcm-seqprofile 1 <numOpcodeTokens>
 *   pair <a> <b> <count>
 *   triple <a> <b> <c> <count>
 *
 * Zero counts are omitted; tokens are numeric (enum values), so the
 * format is stable as long as the opcode enumeration is.
 */
std::string saveSequenceProfile(const SequenceProfile &profile);

/** Parse the text format. Throws std::runtime_error on a malformed
 *  header or record, an out-of-range token, or a token-count mismatch
 *  (a profile from a different opcode enumeration must not silently
 *  mis-seed the selector). */
SequenceProfile loadSequenceProfile(const std::string &text);

} // namespace kcm

#endif // KCM_CORE_PREDECODE_HH
