/**
 * @file
 * Execution profiler — the "monitors (at microcode, macrocode, and
 * Prolog levels)" of the paper's software environment (§4).
 *
 * The macrocode monitor is an opcode histogram; the Prolog-level
 * monitor counts invocations per predicate (resolved through the
 * loaded image's symbol table). An optional sequence monitor counts
 * dynamically adjacent opcode pairs and triples — the input of the
 * profile-guided superinstruction selector (core/predecode.hh).
 *
 * Everything on the record() hot path is flat-array indexing: the
 * predicate map is resolved at attach() time into a dense entry→index
 * table, so profiling mode itself does not distort the measured
 * instruction mix (no ordered-map lookups per call instruction).
 */

#ifndef KCM_CORE_PROFILER_HH
#define KCM_CORE_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/code_image.hh"
#include "isa/decoded.hh"
#include "isa/opcodes.hh"

namespace kcm
{

class Profiler
{
  public:
    /** Prepare the predicate tables from a loaded image. */
    void attach(const CodeImage &image);

    /** Turn the opcode pair/triple sequence monitor on or off
     *  (allocates the histograms lazily; off by default). */
    void enableSequences(bool on);
    bool sequencesEnabled() const { return sequences_; }

    /** Record one executed instruction. */
    void
    record(Opcode op, Addr target_of_call = 0)
    {
        opcodeCounts_[static_cast<size_t>(op)]++;
        if (target_of_call) {
            // Dense entry→predicate table built by attach(): one
            // bounds check and two array reads, no map lookup.
            size_t idx = size_t(target_of_call) - entryBase_;
            if (idx < entryIndex_.size()) {
                int32_t pred = entryIndex_[idx];
                if (pred >= 0)
                    predicateCounts_[size_t(pred)]++;
            }
        }
        if (sequences_) {
            uint8_t tok = static_cast<uint8_t>(op);
            if (hasPrev_) {
                pairCounts_[size_t(prev1_) * numOpcodeTokens + tok]++;
                if (hasPrev2_) {
                    tripleCounts_[(size_t(prev2_) * numOpcodeTokens +
                                   prev1_) *
                                      numOpcodeTokens +
                                  tok]++;
                }
            }
            prev2_ = prev1_;
            hasPrev2_ = hasPrev_;
            prev1_ = tok;
            hasPrev_ = true;
        }
    }

    void reset();

    /** Opcode histogram, most frequent first. */
    std::vector<std::pair<Opcode, uint64_t>> opcodeHistogram() const;

    /** Per-predicate invocation counts, most frequent first. */
    std::vector<std::pair<std::string, uint64_t>> predicateProfile() const;

    /** Dynamic successor-pair count (0 unless sequences enabled). */
    uint64_t
    pairCount(Opcode a, Opcode b) const
    {
        if (pairCounts_.empty())
            return 0;
        return pairCounts_[size_t(a) * numOpcodeTokens + size_t(b)];
    }

    /** Dynamic triple count (0 unless sequences enabled). */
    uint64_t
    tripleCount(Opcode a, Opcode b, Opcode c) const
    {
        if (tripleCounts_.empty())
            return 0;
        return tripleCounts_[(size_t(a) * numOpcodeTokens + size_t(b)) *
                                 numOpcodeTokens +
                             size_t(c)];
    }

    /** Most frequent dynamic pairs, descending. */
    std::vector<std::pair<std::array<Opcode, 2>, uint64_t>>
    topPairs(size_t n) const;

    /** Most frequent dynamic triples, descending. */
    std::vector<std::pair<std::array<Opcode, 3>, uint64_t>>
    topTriples(size_t n) const;

    /** Formatted report of the enabled monitors. */
    std::string report(size_t top = 16) const;

    uint64_t
    totalInstructions() const
    {
        uint64_t total = 0;
        for (uint64_t c : opcodeCounts_)
            total += c;
        return total;
    }

  private:
    /** Sized for every dispatchable token, including the invalid-word
     *  token, so a fetch of a data word cannot index out of range. */
    uint64_t opcodeCounts_[numOpcodeTokens] = {};

    // Predicate monitor: dense entry→index table over the image's
    // code-address span, plus parallel name/count vectors.
    Addr entryBase_ = 0;
    std::vector<int32_t> entryIndex_;
    std::vector<std::string> predicateNames_;
    std::vector<uint64_t> predicateCounts_;

    // Sequence monitor.
    bool sequences_ = false;
    std::vector<uint64_t> pairCounts_;   ///< numOpcodeTokens^2
    std::vector<uint64_t> tripleCounts_; ///< numOpcodeTokens^3
    uint8_t prev1_ = 0, prev2_ = 0;
    bool hasPrev_ = false, hasPrev2_ = false;
};

} // namespace kcm

#endif // KCM_CORE_PROFILER_HH
