/**
 * @file
 * Execution profiler — the "monitors (at microcode, macrocode, and
 * Prolog levels)" of the paper's software environment (§4).
 *
 * The macrocode monitor is an opcode histogram; the Prolog-level
 * monitor counts invocations per predicate (resolved through the
 * loaded image's symbol table).
 */

#ifndef KCM_CORE_PROFILER_HH
#define KCM_CORE_PROFILER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/code_image.hh"
#include "isa/opcodes.hh"

namespace kcm
{

class Profiler
{
  public:
    /** Prepare the predicate map from a loaded image. */
    void attach(const CodeImage &image);

    /** Record one executed instruction. */
    void
    record(Opcode op, Addr target_of_call = 0)
    {
        opcodeCounts_[static_cast<size_t>(op)]++;
        if (target_of_call) {
            auto it = entryToPredicate_.find(target_of_call);
            if (it != entryToPredicate_.end())
                predicateCalls_[it->second]++;
        }
    }

    void reset();

    /** Opcode histogram, most frequent first. */
    std::vector<std::pair<Opcode, uint64_t>> opcodeHistogram() const;

    /** Per-predicate invocation counts, most frequent first. */
    std::vector<std::pair<std::string, uint64_t>> predicateProfile() const;

    /** Formatted report of both monitors. */
    std::string report(size_t top = 16) const;

    uint64_t
    totalInstructions() const
    {
        uint64_t total = 0;
        for (uint64_t c : opcodeCounts_)
            total += c;
        return total;
    }

  private:
    uint64_t opcodeCounts_[static_cast<size_t>(Opcode::NumOpcodes)] = {};
    std::map<Addr, std::string> entryToPredicate_;
    std::map<std::string, uint64_t> predicateCalls_;
};

} // namespace kcm

#endif // KCM_CORE_PROFILER_HH
