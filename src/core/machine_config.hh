/**
 * @file
 * Machine configuration: feature toggles for ablation studies plus the
 * memory-system configuration.
 */

#ifndef KCM_CORE_MACHINE_CONFIG_HH
#define KCM_CORE_MACHINE_CONFIG_HH

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "db/clause_store.hh"
#include "mem/fault_plan.hh"
#include "mem/mem_system.hh"

namespace kcm
{

/** Clock period of the prototype: 80 ns (§3). */
constexpr double cycleSeconds = 80e-9;

/**
 * Per-query resource limits, modelled on the §3.2.3 firmware's trap
 * handling: stack zones start at a quota and are grown by "firmware"
 * (charged a documented cycle cost) on StackOverflow traps up to a
 * ceiling; a cycle budget aborts a runaway query as a recoverable
 * Abort trap. Everything defaults to off, in which case the governor
 * adds no work to the execution loop (the soft-limit compare replaces
 * the old hard-limit compare one for one, and the budget check folds
 * into the pre-existing maxCycles test).
 */
struct ResourceGovernor
{
    /**
     * Per-query cycle budget (0 = unlimited). Unlike maxCycles —
     * which returns the informational RunStatus::CycleLimit —
     * exhausting the budget takes a TrapKind::Abort trap
     * (RunStatus::Trapped): a structured resource error. The trap is
     * taken at an instruction boundary, so raising the budget
     * (setCycleBudget) and calling resume() continues the query
     * exactly where it stopped.
     */
    uint64_t cycleBudget = 0;

    // Per-zone memory quotas in words (0 = whole zone, no quota).
    uint64_t globalQuotaWords = 0;  ///< global stack (heap)
    uint64_t localQuotaWords = 0;   ///< local (environment) stack
    uint64_t controlQuotaWords = 0; ///< choice-point stack
    uint64_t trailQuotaWords = 0;   ///< trail

    /** Serve StackOverflow traps by growing the faulting zone's
     *  quota (firmware behaviour). Off: the first quota crossing
     *  surfaces as RunStatus::Trapped. */
    bool growStacks = true;

    /** Words added to a stack zone per firmware growth. */
    uint64_t growthStepWords = 4096;

    /** Ceiling on a grown zone, as words from the zone start
     *  (0 = the zone's hard end). Growth past the ceiling fails and
     *  the overflow surfaces as RunStatus::Trapped. */
    uint64_t zoneCeilingWords = 0;

    /** Cycle cost charged per firmware stack growth (trap entry,
     *  zone-register update, return — documented in DESIGN.md). */
    unsigned stackGrowCycles = 50;

    /**
     * Aggregate resident-byte ceiling across the four data zones
     * (global, local, control, trail), accounted at zone-growth
     * boundaries (0 = unlimited). When set, every zone without an
     * explicit quota starts at a small initial quota so growth
     * boundaries exist, and a firmware growth that would push the
     * summed zone footprint past the ceiling raises
     * TrapKind::MemoryBudget — a catchable resource_error(memory).
     */
    uint64_t memoryBudgetBytes = 0;

    /** Whether any quota or budget is configured. */
    bool
    active() const
    {
        return cycleBudget || globalQuotaWords || localQuotaWords ||
               controlQuotaWords || trailQuotaWords ||
               memoryBudgetBytes;
    }
};

/**
 * Superinstruction fusion in the predecoded fast core (isa/fusion.hh).
 * Fusion rewrites the dispatch token at the head of a recognized hot
 * sequence so the threaded core executes it with one dispatch; it is
 * purely a host-side routing change — simulated cycles, memory
 * traffic and trap semantics stay bit-identical, and KCMSNAP2
 * snapshots (which serialize machine state, not predecode state) are
 * portable across any fusion mode.
 */
struct FusionConfig
{
    enum class Mode : uint8_t
    {
        Off,      ///< plain one-token-per-instruction predecode
        Static,   ///< fuse every catalog sequence found in the image
        /** Fuse only the catalog entries listed in @ref sequences —
         *  chosen from a profiling run's opcode pair/triple
         *  histogram (the bench harness's --fusion profiled pass). */
        Profiled,
    };

    /** Defaults from the KCM_FUSION environment variable ("off"
     *  disables, anything else / unset = Static), read once — the CI
     *  matrix leg uses KCM_FUSION=off to keep the unfused predecode
     *  path exercised by the full test suite. */
    static Mode
    defaultMode()
    {
        static const Mode mode = [] {
            const char *env = std::getenv("KCM_FUSION");
            if (env && (!std::strcmp(env, "off") || !std::strcmp(env, "0")))
                return Mode::Off;
            return Mode::Static;
        }();
        return mode;
    }

    Mode mode = defaultMode();

    /** Catalog indices enabled in Profiled mode (ignored otherwise). */
    std::vector<uint16_t> sequences;
};

struct MachineConfig
{
    MemSystemConfig mem;

    /** Superinstruction fusion in the fast core (no effect on the
     *  oracle, which predecodes nothing). */
    FusionConfig fusion;

    /** Per-query resource limits (all off by default). */
    ResourceGovernor governor;

    /** Dynamic clause database: first-argument index ablations plus
     *  the simulated lookup/update cost model (db/clause_store.hh).
     *  Part of the config so the warm-image cache keys on it. */
    db::DynDbConfig dyndb;

    /** Deterministic fault-injection script (empty by default);
     *  applied at instruction boundaries by both execution cores. */
    FaultPlan faultPlan;

    /**
     * Delay choice point creation until the neck (§3.1.5). When off,
     * try_me_else/try push a full choice point immediately — the
     * standard-WAM baseline for the shallow-backtracking ablation.
     */
    bool shallowBacktracking = true;

    /** Charge cache-miss penalties to the cycle count (off = ideal
     *  memory, for separating engine effects from memory effects). */
    bool timeMemory = true;

    /**
     * Host-fast execution core: predecode the linked image into a
     * flat vector of DecodedInstr after load() and drive execution
     * from it with token-threaded dispatch (computed goto under
     * GCC/Clang). Purely a host-side optimization — the simulated
     * machine still fetches every word through the code cache and
     * prefetch pipeline, so cycles, instruction counts and cache
     * statistics are bit-identical to the decode-per-step oracle
     * path (off = the oracle, kept as the differential-testing
     * reference). Predecoding assumes the code image is static; the
     * incremental-compilation writeCode path requires the oracle.
     */
    bool fastDispatch = true;

    /** Stop the machine after this many cycles (0 = unlimited). */
    uint64_t maxCycles = 0;

    /** Capture write/1 output into a string instead of stdout. */
    bool captureOutput = true;

    /** Enable the instruction/predicate profiler (small host-side
     *  overhead; no effect on simulated cycles). */
    bool profile = false;

    /** With profile: also collect the opcode pair/triple sequence
     *  histogram that drives profile-guided fusion selection
     *  (core/predecode.hh). Allocates a few MB of host memory. */
    bool profileSequences = false;

    /** Collect global-stack garbage automatically when usage exceeds
     *  this many words (0 = never collect automatically). */
    uint64_t gcThresholdWords = 0;

    // --- specialized-unit ablations (§5: "the influence of each
    // specialized unit (trail, dereferencing, RAC, double port
    // register file...)") ---

    /** Dereference hardware: the data cache starts reference
     *  following speculatively, one reference per cycle (§3.1.4).
     *  Off: every step costs two cycles (request + read). */
    bool fastDereference = true;

    /** Trail unit: the three comparators run in parallel with
     *  dereferencing (§3.1.5). Off: every binding pays 2 cycles for
     *  the boundary comparisons. */
    bool parallelTrailCheck = true;

    /** RAC register-block moves: choice point save/restore streams
     *  one register per cycle (§3.1.5). Off: 2 cycles per word. */
    bool racBlockMoves = true;

    /** Dual-ported register file + four-address format: register
     *  moves and the second result port are free (§3.1.1). Off:
     *  get/put register moves cost an extra cycle. */
    bool dualPortRegisterFile = true;

    /** Cycles charged per choice point inspected while a thrown ball
     *  unwinds to its catch/3 marker: one control-stack read of the
     *  alt field plus the marker comparator, overlapped with the trail
     *  comparators (DESIGN.md "Exceptions on the backtracking
     *  hardware"). The marker frame's own restore is charged the
     *  ordinary RAC block-move cost on top. */
    unsigned catchUnwindCycles = 2;
};

} // namespace kcm

#endif // KCM_CORE_MACHINE_CONFIG_HH
