/**
 * @file
 * Choice point management (with the delayed-creation shallow
 * backtracking scheme of §3.1.5) and the clause-indexing switch
 * instructions.
 */

#include "base/logging.hh"
#include "core/machine.hh"

namespace kcm
{

void
Machine::execIndex(const DecodedInstr &instr)
{
    switch (instr.opcode()) {
      case Opcode::TryMeElse:
      case Opcode::Try: {
        Addr alt;
        Addr clause;
        if (instr.opcode() == Opcode::Try) {
            alt = nextP_; // the following retry/trust instruction
            clause = instr.value;
        } else {
            alt = instr.value;
            clause = nextP_;
        }
        uint32_t arity = instr.r1;
        if (config_.shallowBacktracking) {
            // Delay the choice point: save three state registers into
            // shadow registers (§3.1.5).
            shallowFlag_ = true;
            cpFlag_ = false;
            shadowH_ = h_;
            shadowTR_ = tr_;
            shadowCP_ = cpCont_;
            pendingAlt_ = alt;
            pendingArity_ = arity;
        } else {
            // Standard WAM: push the full choice point now.
            pushChoicePoint(alt, arity, h_, tr_, cpCont_);
            cpFlag_ = true;
            shallowFlag_ = true;
        }
        nextP_ = clause;
        break;
      }

      case Opcode::RetryMeElse:
      case Opcode::Retry: {
        Addr alt;
        Addr clause;
        if (instr.opcode() == Opcode::Retry) {
            alt = nextP_;
            clause = instr.value;
        } else {
            alt = instr.value;
            clause = nextP_;
        }
        if (cpFlag_) {
            // Deep mode: update the existing choice point's
            // alternative.
            writeData(Word::makeDataPtr(Zone::Control, b_ + 1),
                      Word::makeCodePtr(alt));
            ++cycles_;
        } else {
            pendingAlt_ = alt;
        }
        shallowFlag_ = true;
        nextP_ = clause;
        break;
      }

      case Opcode::TrustMe:
      case Opcode::Trust: {
        if (cpFlag_) {
            // Pop the choice point: B := B.prev.
            Word prev = readData(
                Word::makeDataPtr(Zone::Control, b_ + 0));
            ++cycles_;
            cutTo(prev.addr()); // also reloads HB/LB from the new B
        }
        shallowFlag_ = false;
        cpFlag_ = false;
        if (instr.opcode() == Opcode::Trust)
            nextP_ = instr.value;
        break;
      }

      case Opcode::Neck: {
        if (config_.shallowBacktracking && shallowFlag_) {
            if (!cpFlag_) {
                pushChoicePoint(pendingAlt_, pendingArity_, shadowH_,
                                shadowTR_, shadowCP_);
                cpFlag_ = true;
            }
        }
        shallowFlag_ = false;
        break;
      }

      case Opcode::Cut:
        cutTo(b0_);
        break;

      case Opcode::GetLevel:
        writeData(Word::makeDataPtr(Zone::Local, e_ + 2 + instr.r1),
                  Word::makeDataPtr(Zone::Control, b0_));
        break;

      case Opcode::CutY: {
        Word level = readData(
            Word::makeDataPtr(Zone::Local, e_ + 2 + instr.r1));
        ++cycles_;
        cutTo(level.addr());
        break;
      }

      case Opcode::SwitchOnTerm: {
        Word w = deref(x_[0]);
        unsigned idx;
        switch (w.tag()) {
          case Tag::Ref:
            idx = 0;
            break;
          case Tag::Nil:
          case Tag::Atom:
          case Tag::Int:
          case Tag::Float:
            idx = 1;
            break;
          case Tag::List:
            idx = 2;
            break;
          case Tag::Struct:
            idx = 3;
            break;
          default:
            fail();
            return;
        }
        // The MWAC computes the dispatch entry in parallel with the
        // branch (§3.1.4): the table access costs no extra cycle.
        uint64_t target = mem_->fetchCode(p_ + 1 + idx, penalty_);
        nextP_ = Word(target).addr();
        break;
      }

      case Opcode::SwitchOnConstant: {
        Word w = deref(x_[0]);
        unsigned n = instr.value;
        Addr miss = Word(mem_->fetchCode(p_ + 1 + 2 * n, penalty_)).addr();
        nextP_ = miss;
        for (unsigned i = 0; i < n; ++i) {
            Word key(mem_->fetchCode(p_ + 1 + 2 * i, penalty_));
            ++cycles_;
            if (key.raw() == w.raw()) {
                nextP_ = Word(mem_->fetchCode(p_ + 2 + 2 * i, penalty_))
                             .addr();
                break;
            }
        }
        break;
      }

      case Opcode::SwitchOnStructure: {
        Word w = deref(x_[0]);
        if (!w.isStruct()) {
            fail();
            return;
        }
        Word f = readData(Word::makeDataPtr(w.zone(), w.addr()));
        ++cycles_;
        unsigned n = instr.value;
        Addr miss = Word(mem_->fetchCode(p_ + 1 + 2 * n, penalty_)).addr();
        nextP_ = miss;
        for (unsigned i = 0; i < n; ++i) {
            Word key(mem_->fetchCode(p_ + 1 + 2 * i, penalty_));
            ++cycles_;
            if (key.raw() == f.raw()) {
                nextP_ = Word(mem_->fetchCode(p_ + 2 + 2 * i, penalty_))
                             .addr();
                break;
            }
        }
        break;
      }

      default:
        panic("execIndex: bad opcode");
    }
}

} // namespace kcm
