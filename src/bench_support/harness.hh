/**
 * @file
 * Benchmark harness: compiles and runs PLM-suite programs on the
 * simulated KCM under the paper's measurement conventions, and
 * formats the result tables.
 */

#ifndef KCM_BENCH_SUPPORT_HARNESS_HH
#define KCM_BENCH_SUPPORT_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bench_support/plm_suite.hh"
#include "kcm/kcm.hh"

namespace kcm
{

/** Measurements of one benchmark run on the simulated KCM. */
struct BenchRun
{
    std::string name;
    bool success = false;

    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t inferences = 0;
    double ms = 0;
    double klips = 0;

    // Engine events.
    uint64_t choicePointsCreated = 0;
    uint64_t choicePointsAvoided = 0;
    uint64_t shallowFails = 0;
    uint64_t deepFails = 0;
    uint64_t trailPushes = 0;

    // Memory behaviour.
    uint64_t dataReads = 0;
    uint64_t dataWrites = 0;
    double dcacheHitRatio = 1.0;
    double icacheHitRatio = 1.0;
    uint64_t memoryWords = 0; ///< physical traffic (words moved)

    // Static sizes of the program predicates (library excluded).
    size_t staticInstructions = 0;
    size_t staticWords = 0;
};

/**
 * Run one PLM benchmark.
 * @param pure use the Table 3 form (I/O removed); otherwise the
 *        Table 2 form with write/nl compiled as unit clauses.
 */
BenchRun runPlmBenchmark(const PlmBenchmark &bench, bool pure,
                         const KcmOptions &base_options = {});

/** Run every benchmark of the suite. */
std::vector<BenchRun> runPlmSuite(bool pure,
                                  const KcmOptions &base_options = {});

// --- table formatting ---

/** Simple fixed-width table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Render with a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers for table cells. */
std::string cellInt(uint64_t v);
std::string cellFixed(double v, int digits);
std::string cellRatio(double v);

} // namespace kcm

#endif // KCM_BENCH_SUPPORT_HARNESS_HH
