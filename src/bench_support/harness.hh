/**
 * @file
 * Benchmark harness: compiles and runs PLM-suite programs on the
 * simulated KCM under the paper's measurement conventions, and
 * formats the result tables.
 */

#ifndef KCM_BENCH_SUPPORT_HARNESS_HH
#define KCM_BENCH_SUPPORT_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "bench_support/plm_suite.hh"
#include "core/predecode.hh"
#include "kcm/kcm.hh"

namespace kcm
{

/** Measurements of one benchmark run on the simulated KCM. */
struct BenchRun
{
    std::string name;
    bool success = false;

    // Crash isolation: a benchmark that traps, times out or throws is
    // recorded here as a failed run while the rest of a (possibly
    // parallel) suite completes normally.
    std::string failure;   ///< empty on success; structured diagnosis
    bool trapped = false;  ///< machine trap (failure holds the TrapInfo)
    bool timedOut = false; ///< wall-clock watchdog expired

    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t inferences = 0;
    double ms = 0;
    double klips = 0;

    // Engine events.
    uint64_t choicePointsCreated = 0;
    uint64_t choicePointsAvoided = 0;
    uint64_t shallowFails = 0;
    uint64_t deepFails = 0;
    uint64_t trailPushes = 0;

    // Memory behaviour.
    uint64_t dataReads = 0;
    uint64_t dataWrites = 0;
    double dcacheHitRatio = 1.0;
    double icacheHitRatio = 1.0;
    uint64_t memoryWords = 0; ///< physical traffic (words moved)

    // Static sizes of the program predicates (library excluded).
    size_t staticInstructions = 0;
    size_t staticWords = 0;

    // Host-side throughput of the simulator itself (wall time of the
    // execution phase: machine setup + warm-up + measured run).
    double hostSeconds = 0;
    double simCyclesPerHostSecond = 0;

    // Dispatch behaviour of the fast core (host-side; equal to
    // instructions when fusion is off or on the oracle).
    uint64_t dispatches = 0;      ///< host dispatch operations
    uint64_t fusedDispatches = 0; ///< fused-sequence heads executed

    // Robustness counters (nonzero only under supervision —
    // runPreparedResilient — when recovery actually happened).
    unsigned retries = 0;          ///< checkpoint restores
    unsigned restarts = 0;         ///< fresh-machine restarts
    uint64_t checkpoints = 0;      ///< snapshots taken
    uint64_t checkpointBytes = 0;  ///< total snapshot bytes
    uint64_t recoveryCycles = 0;   ///< simulated cycles lost to recovery
};

/**
 * A compiled-and-linked benchmark, ready to execute. Compilation
 * interns atoms (and switch-table layouts depend on interning order),
 * so preparation always happens on one thread, in suite order; the
 * execution phase shares nothing and can run anywhere.
 */
struct PreparedBenchmark
{
    std::string name;
    CodeImage image;
    MachineConfig machine;
};

/**
 * Compile one PLM benchmark (the serial phase).
 * @param pure use the Table 3 form (I/O removed); otherwise the
 *        Table 2 form with write/nl compiled as unit clauses.
 * @param profile_out when non-null and profiled fusion runs its
 *        per-benchmark pre-pass, the pre-pass's pair/triple histogram
 *        is merged into *profile_out (--profile-out persistence). To
 *        seed fusion from a persisted profile instead of the pre-pass
 *        (--profile-in), set base_options.machine.fusion.sequences =
 *        selectFusedSequences(profile, k) before calling — a
 *        non-empty selection skips the pre-pass entirely.
 */
PreparedBenchmark preparePlmBenchmark(const PlmBenchmark &bench, bool pure,
                                      const KcmOptions &base_options = {},
                                      SequenceProfile *profile_out = nullptr);

/**
 * Execute a prepared benchmark on a fresh Machine (thread-safe).
 * Never throws: traps, resource exhaustion and harness errors are
 * recorded in the returned BenchRun's failure fields.
 *
 * @param watchdog_seconds wall-clock limit for the execution phase
 *        (0 = none). Enforced by running the machine in cycle-budget
 *        slices and sampling the host clock at each Abort/resume
 *        boundary, which leaves the simulated metrics untouched.
 */
BenchRun runPrepared(const PreparedBenchmark &prep,
                     double watchdog_seconds = 0);

/**
 * Execute a prepared benchmark under service supervision
 * (service::Session): periodic snapshot checkpoints every
 * @p checkpoint_every_mcycles simulated megacycles, restore + retry
 * on traps up to @p max_retries, full-restart escalation when a
 * checkpoint re-traps. The simulated measurements are those of the
 * final attempt; the BenchRun robustness counters record the recovery
 * work. Runs cold (single attempt protocol, not the paper's
 * best-of-4) — meant for resilience measurements, not Table 2/3.
 */
BenchRun runPreparedResilient(const PreparedBenchmark &prep,
                              uint64_t checkpoint_every_mcycles,
                              unsigned max_retries,
                              double watchdog_seconds = 0);

/** Compile and run one PLM benchmark (prepare + runPrepared). */
BenchRun runPlmBenchmark(const PlmBenchmark &bench, bool pure,
                         const KcmOptions &base_options = {},
                         double watchdog_seconds = 0,
                         SequenceProfile *profile_out = nullptr);

/**
 * Run the named benchmarks. Results come back in the order of
 * @p names regardless of completion order. @p jobs > 1 compiles
 * everything serially up front, then executes on a pool of that many
 * threads (one independent Machine per benchmark); jobs <= 1 is
 * exactly the sequential compile-run-compile-run loop. A benchmark
 * that traps or exceeds @p watchdog_seconds is recorded as failed
 * (BenchRun::failure) without disturbing the other benchmarks.
 */
std::vector<BenchRun> runPlmBenchmarks(const std::vector<std::string> &names,
                                       bool pure,
                                       const KcmOptions &base_options = {},
                                       unsigned jobs = 1,
                                       double watchdog_seconds = 0);

/** Run every benchmark of the suite (name order). */
std::vector<BenchRun> runPlmSuite(bool pure,
                                  const KcmOptions &base_options = {},
                                  unsigned jobs = 1,
                                  double watchdog_seconds = 0);

/** Parse a --jobs N argument list for the bench drivers: returns
 *  hardware_concurrency by default, N after "--jobs N". */
unsigned benchJobsFromArgs(int argc, char **argv);

/** Parse a --timeout SECONDS argument for the bench drivers: the
 *  per-benchmark wall-clock watchdog (0 = off, the default). */
double benchWatchdogFromArgs(int argc, char **argv);

/** Parse --profile-in FILE for the bench drivers: a persisted
 *  sequence profile that seeds profiled fusion instead of the
 *  per-benchmark pre-pass (empty string when absent). */
std::string benchProfileInFromArgs(int argc, char **argv);

/** Parse --profile-out FILE for the bench drivers: where to persist
 *  the accumulated pre-pass histogram (empty string when absent). */
std::string benchProfileOutFromArgs(int argc, char **argv);

/** Load a persisted sequence profile. Fatal (with a diagnostic naming
 *  the file) on an unreadable file or a malformed/mismatched
 *  profile. */
SequenceProfile loadSequenceProfileFile(const std::string &path);

/** Persist @p profile to @p path in the text format. Fatal on an
 *  unwritable path. */
void saveSequenceProfileFile(const std::string &path,
                             const SequenceProfile &profile);

/** Exit code for drivers whose run ended in traps/timeouts (kept
 *  distinct from 1, the metrics-mismatch code). */
constexpr int benchTrapExitCode = 2;

/** Driver exit code for a finished suite: benchTrapExitCode when any
 *  run failed (trap, timeout, compile error), else 0. */
int benchExitCode(const std::vector<BenchRun> &runs);

// --- table formatting ---

/** Simple fixed-width table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);
    /** Render with a separator under the header. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers for table cells. */
std::string cellInt(uint64_t v);
std::string cellFixed(double v, int digits);
std::string cellRatio(double v);

} // namespace kcm

#endif // KCM_BENCH_SUPPORT_HARNESS_HH
