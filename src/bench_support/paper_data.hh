/**
 * @file
 * The published numbers of the paper's evaluation section — the
 * comparison columns of Tables 1-4. These play the same role as in
 * the paper itself: the PLM figures come from Dobry et al. [4], the
 * SPUR figures from Borriello et al. [2], the QUINTUS timings from
 * the authors' own measurements on a SUN3/280, and the Table 4 peak
 * figures from each machine's publications.
 */

#ifndef KCM_BENCH_SUPPORT_PAPER_DATA_HH
#define KCM_BENCH_SUPPORT_PAPER_DATA_HH

#include <optional>
#include <string>
#include <vector>

namespace kcm
{

/** Table 1 row: published static code sizes plus KCM's own. */
struct Table1Row
{
    std::string program;
    int plmInstr;
    int plmBytes;
    int spurInstr;
    int spurBytes;
    int kcmInstrPaper; ///< the paper's measured KCM instruction count
    int kcmWordsPaper;
    int kcmBytesPaper;
};

/** Table 2 row: PLM vs KCM timings (I/O as unit clauses). */
struct Table2Row
{
    std::string program;
    int inferences;    ///< the paper's inference count
    double plmMs;
    int plmKlips;
    double kcmMsPaper;
    int kcmKlipsPaper;
};

/** Table 3 row: QUINTUS vs KCM (I/O removed; holes = too small). */
struct Table3Row
{
    std::string program;
    int inferences;
    std::optional<double> quintusMs;
    std::optional<int> quintusKlips;
    double kcmMsPaper;
    int kcmKlipsPaper;
};

/** Table 4 row: peak Klips of dedicated Prolog machines. */
struct Table4Row
{
    std::string machine;
    std::string builder;
    std::optional<int> concatKlips; ///< con1-like peak
    std::optional<int> nrevKlips;   ///< nrev1-like peak
    int wordBits;
    std::string comment;
};

const std::vector<Table1Row> &paperTable1();
const std::vector<Table2Row> &paperTable2();
const std::vector<Table3Row> &paperTable3();
const std::vector<Table4Row> &paperTable4();

} // namespace kcm

#endif // KCM_BENCH_SUPPORT_PAPER_DATA_HH
