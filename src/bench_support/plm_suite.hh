/**
 * @file
 * The PLM benchmark suite (§4): the programs gathered by the PLM team
 * at U.C. Berkeley, an extension of D.H.D. Warren's benchmark set.
 *
 * The original sources are reconstructed from the published
 * descriptions of the Warren/PLM suite. Each benchmark carries two
 * queries: the Table 2 form (I/O included, compiled as unit clauses)
 * and the Table 3 form (I/O removed — the starred programs of the
 * paper). The assert/retract benchmark of the original suite is
 * omitted, exactly as in the paper.
 */

#ifndef KCM_BENCH_SUPPORT_PLM_SUITE_HH
#define KCM_BENCH_SUPPORT_PLM_SUITE_HH

#include <string>
#include <vector>

namespace kcm
{

struct PlmBenchmark
{
    std::string name;
    std::string program;  ///< Prolog source
    std::string queryIo;  ///< Table 2 query (with I/O)
    std::string queryPure; ///< Table 3 query (I/O stripped)
    /** Alternative source for the pure run (hanoi strips the inform
     *  calls from the program itself); empty = same as program. */
    std::string programPure;

    const std::string &
    pureProgram() const
    {
        return programPure.empty() ? program : programPure;
    }
};

/** All fourteen programs of §4. */
const std::vector<PlmBenchmark> &plmSuite();

/** Lookup by name; fatal if unknown. */
const PlmBenchmark &plmBenchmark(const std::string &name);

} // namespace kcm

#endif // KCM_BENCH_SUPPORT_PLM_SUITE_HH
