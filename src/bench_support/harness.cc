#include "bench_support/harness.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace kcm
{

BenchRun
runPlmBenchmark(const PlmBenchmark &bench, bool pure,
                const KcmOptions &base_options)
{
    KcmOptions options = base_options;
    // Table 2 convention: write/1 and nl/0 compiled as unit clauses so
    // that a call costs exactly the 5-cycle call/return pair (§4.2).
    options.compiler.ioAsUnitClauses = !pure;
    options.maxSolutions = 1;

    KcmSystem system(options);
    system.consult(pure ? bench.pureProgram() : bench.program);
    CodeImage image =
        system.compileOnly(pure ? bench.queryPure : bench.queryIo);

    // The paper's protocol: "the figure given here is the best figure
    // obtained on 4 successive runs on a quiet system". A warm-up run
    // loads the caches; the measured run re-executes warm.
    Machine machine(options.machine);
    machine.load(image);
    machine.run(); // warm-up (cold caches)
    machine.load(image, /*cold_caches=*/false);
    machine.resetMeasurement();
    RunStatus status = machine.run();

    BenchRun run;
    run.name = bench.name;
    run.success = status == RunStatus::SolutionFound;
    run.cycles = machine.cycles();
    run.instructions = machine.instructions();
    run.inferences = machine.inferences();
    run.ms = machine.seconds() * 1e3;
    run.klips = machine.klips();
    run.choicePointsCreated = machine.choicePointsCreated.value();
    run.choicePointsAvoided = machine.choicePointsAvoided.value();
    run.shallowFails = machine.shallowFails.value();
    run.deepFails = machine.deepFails.value();
    run.trailPushes = machine.trailPushes.value();

    DataCache &dcache = machine.mem().dataCache();
    run.dataReads = dcache.readHits.value() + dcache.readMisses.value();
    run.dataWrites = dcache.writeHits.value() + dcache.writeMisses.value();
    run.dcacheHitRatio = dcache.hitRatio();
    run.icacheHitRatio = machine.mem().codeCache().hitRatio();
    run.memoryWords = machine.mem().memory().readWords.value() +
                      machine.mem().memory().writtenWords.value();

    machine.image().programSize(run.staticInstructions, run.staticWords);
    return run;
}

std::vector<BenchRun>
runPlmSuite(bool pure, const KcmOptions &base_options)
{
    std::vector<BenchRun> runs;
    for (const auto &bench : plmSuite())
        runs.push_back(runPlmBenchmark(bench, pure, base_options));
    return runs;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row has wrong cell count");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << (i ? "  " : "");
            os << (i == 0 ? padRight(cells[i], widths[i])
                          : padLeft(cells[i], widths[i]));
        }
        os << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w;
    os << std::string(total + 2 * (widths.size() - 1), '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
cellInt(uint64_t v)
{
    return std::to_string(v);
}

std::string
cellFixed(double v, int digits)
{
    return fixed(v, digits);
}

std::string
cellRatio(double v)
{
    return fixed(v, 2);
}

} // namespace kcm
