#include "bench_support/harness.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/predecode.hh"
#include "service/session.hh"

namespace kcm
{

PreparedBenchmark
preparePlmBenchmark(const PlmBenchmark &bench, bool pure,
                    const KcmOptions &base_options,
                    SequenceProfile *profile_out)
{
    KcmOptions options = base_options;
    // Table 2 convention: write/1 and nl/0 compiled as unit clauses so
    // that a call costs exactly the 5-cycle call/return pair (§4.2).
    options.compiler.ioAsUnitClauses = !pure;
    options.maxSolutions = 1;

    KcmSystem system(options);
    system.consult(pure ? bench.pureProgram() : bench.program);

    PreparedBenchmark prep;
    prep.name = bench.name;
    prep.image = system.compileOnly(pure ? bench.queryPure : bench.queryIo);
    prep.machine = options.machine;

    if (prep.machine.fusion.mode == FusionConfig::Mode::Profiled &&
        prep.machine.fusion.sequences.empty()) {
        // Profile-guided fusion: run the prepared image once unfused
        // with the sequence monitor and select the hottest catalog
        // sequences. The profiling run is part of preparation — the
        // measured execution phase sees only the fused machine.
        MachineConfig prof = prep.machine;
        prof.fusion.mode = FusionConfig::Mode::Off;
        prof.profile = true;
        prof.profileSequences = true;
        Machine machine(prof);
        machine.load(prep.image);
        machine.run();
        prep.machine.fusion.sequences =
            selectFusedSequences(machine.profiler(), 12);
        if (profile_out)
            profile_out->merge(sequenceProfileOf(machine.profiler()));
    }
    return prep;
}

namespace
{

/** Simulated cycles per watchdog slice: large enough that re-arming
 *  is invisible in host time, small enough that the wall clock is
 *  sampled several times per second even on a slow host. */
constexpr uint64_t watchdogSliceCycles = 4'000'000;

/**
 * Run to the next real stop under the wall-clock watchdog. The
 * machine executes in host-side slices (Machine::setSliceStop): at
 * each slice boundary a resumable Abort returns control, the host
 * clock is sampled, and resume() re-enters exactly where the slice
 * stopped. Slice stops are pure host machinery — never delivered to
 * the program as a resource_error ball, never counted in trapsTaken —
 * so slicing leaves every simulated metric bit-identical to an
 * unsliced run, and a governor cycle budget configured by the caller
 * keeps its exact meaning (reaching it reports the genuine Abort
 * instead of resuming).
 */
RunStatus
runWatched(Machine &machine, double watchdog_seconds,
           std::chrono::steady_clock::time_point host_start, bool &timed_out)
{
    if (watchdog_seconds <= 0)
        return machine.run();

    bool first = true;
    for (;;) {
        machine.setSliceStop(machine.cycles() + watchdogSliceCycles);
        RunStatus status = first ? machine.run() : machine.resume();
        first = false;
        if (status != RunStatus::Trapped || !machine.sliceExpired()) {
            machine.setSliceStop(0);
            return status; // a real stop (or the caller's own budget)
        }
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - host_start)
                             .count();
        if (elapsed > watchdog_seconds) {
            timed_out = true;
            machine.setSliceStop(0);
            return status;
        }
    }
}

/** Copy a finished machine's measurements into the BenchRun. */
void fillBenchRun(BenchRun &run, Machine &machine, RunStatus status);

} // namespace

BenchRun
runPrepared(const PreparedBenchmark &prep, double watchdog_seconds)
{
    BenchRun run;
    run.name = prep.name;

    auto host_start = std::chrono::steady_clock::now();
    try {
        // The paper's protocol: "the figure given here is the best
        // figure obtained on 4 successive runs on a quiet system". A
        // warm-up run loads the caches; the measured run re-executes
        // warm.
        Machine machine(prep.machine);
        bool timed_out = false;

        machine.load(prep.image);
        RunStatus status = runWatched(machine, watchdog_seconds,
                                      host_start,
                                      timed_out); // warm-up (cold caches)
        if (!timed_out && status != RunStatus::Trapped) {
            machine.load(prep.image, /*cold_caches=*/false);
            machine.resetMeasurement();
            status = runWatched(machine, watchdog_seconds, host_start,
                                timed_out);
        }

        fillBenchRun(run, machine, status);
        if (timed_out) {
            run.success = false;
            run.timedOut = true;
            run.failure =
                cat("timeout: wall clock exceeded ",
                    fixed(watchdog_seconds, 1), "s after ",
                    machine.cycles(), " simulated cycles");
        } else if (status == RunStatus::Trapped) {
            run.success = false;
            run.trapped = true;
            run.failure = trapDiagnosis(machine.lastTrap());
        }
    } catch (const std::exception &err) {
        // Crash isolation: never let a benchmark take down the
        // harness (or a parallel worker thread).
        run.success = false;
        run.failure = cat("exception: ", err.what());
    }

    run.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    run.simCyclesPerHostSecond =
        run.hostSeconds > 0 ? double(run.cycles) / run.hostSeconds : 0;
    return run;
}

namespace
{

void
fillBenchRun(BenchRun &run, Machine &machine, RunStatus status)
{
    run.success = status == RunStatus::SolutionFound;
    run.cycles = machine.cycles();
    run.instructions = machine.instructions();
    run.inferences = machine.inferences();
    run.ms = machine.seconds() * 1e3;
    run.klips = machine.klips();
    run.choicePointsCreated = machine.choicePointsCreated.value();
    run.choicePointsAvoided = machine.choicePointsAvoided.value();
    run.shallowFails = machine.shallowFails.value();
    run.deepFails = machine.deepFails.value();
    run.trailPushes = machine.trailPushes.value();
    run.dispatches = machine.dispatches();
    run.fusedDispatches = machine.fusedDispatches();

    DataCache &dcache = machine.mem().dataCache();
    run.dataReads = dcache.readHits.value() + dcache.readMisses.value();
    run.dataWrites = dcache.writeHits.value() + dcache.writeMisses.value();
    run.dcacheHitRatio = dcache.hitRatio();
    run.icacheHitRatio = machine.mem().codeCache().hitRatio();
    run.memoryWords = machine.mem().memory().readWords.value() +
                      machine.mem().memory().writtenWords.value();

    machine.image().programSize(run.staticInstructions, run.staticWords);
}

} // namespace

BenchRun
runPreparedResilient(const PreparedBenchmark &prep,
                     uint64_t checkpoint_every_mcycles,
                     unsigned max_retries, double watchdog_seconds)
{
    BenchRun run;
    run.name = prep.name;

    auto host_start = std::chrono::steady_clock::now();
    try {
        service::SessionOptions options;
        options.machine = prep.machine;
        options.checkpointEveryMcycles = checkpoint_every_mcycles;
        options.maxRetries = max_retries;
        options.deadlineMs = watchdog_seconds > 0
                                 ? uint64_t(watchdog_seconds * 1000)
                                 : 0;
        options.maxSolutions = 1;

        service::Session session(prep.image, options);
        service::QueryOutcome outcome = session.run();

        run.cycles = outcome.cycles;
        run.instructions = outcome.instructions;
        run.inferences = outcome.inferences;
        run.ms = double(outcome.cycles) * cycleSeconds * 1e3;
        run.klips = outcome.cycles
                        ? double(outcome.inferences) /
                              (double(outcome.cycles) * cycleSeconds) /
                              1e3
                        : 0;
        run.retries = outcome.counters.retries;
        run.restarts = outcome.counters.restarts;
        run.checkpoints = outcome.counters.checkpoints;
        run.checkpointBytes = outcome.counters.checkpointBytes;
        run.recoveryCycles = outcome.counters.recoveryCycles;

        if (outcome.status == service::QueryStatus::Completed) {
            run.success = outcome.success && outcome.error.empty();
            if (!outcome.error.empty())
                run.failure = outcome.error;
        } else {
            run.success = false;
            run.failure = outcome.failure.classification;
            run.timedOut =
                outcome.failure.classification == "deadline_exceeded";
            run.trapped = !run.timedOut;
        }
    } catch (const std::exception &err) {
        run.success = false;
        run.failure = cat("exception: ", err.what());
    }

    run.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();
    run.simCyclesPerHostSecond =
        run.hostSeconds > 0 ? double(run.cycles) / run.hostSeconds : 0;
    return run;
}

int
benchExitCode(const std::vector<BenchRun> &runs)
{
    for (const BenchRun &run : runs) {
        if (!run.success || !run.failure.empty())
            return benchTrapExitCode;
    }
    return 0;
}

BenchRun
runPlmBenchmark(const PlmBenchmark &bench, bool pure,
                const KcmOptions &base_options, double watchdog_seconds,
                SequenceProfile *profile_out)
{
    try {
        return runPrepared(preparePlmBenchmark(bench, pure, base_options,
                                               profile_out),
                           watchdog_seconds);
    } catch (const std::exception &err) {
        BenchRun run;
        run.name = bench.name;
        run.failure = cat("compile error: ", err.what());
        return run;
    }
}

std::vector<BenchRun>
runPlmBenchmarks(const std::vector<std::string> &names, bool pure,
                 const KcmOptions &base_options, unsigned jobs,
                 double watchdog_seconds)
{
    std::vector<BenchRun> runs(names.size());

    if (jobs <= 1) {
        // The sequential harness, unchanged: compile and run each
        // benchmark in turn.
        for (size_t i = 0; i < names.size(); ++i)
            runs[i] = runPlmBenchmark(plmBenchmark(names[i]), pure,
                                      base_options, watchdog_seconds);
        return runs;
    }

    // Parallel mode. Compilation stays serial and in request order:
    // AtomIds depend on interning order and switch-table layouts
    // depend on AtomIds, so compiling on one thread keeps the
    // generated code — and therefore every simulated cycle count —
    // deterministic. The execution phase shares nothing (one Machine,
    // one memory system per benchmark) and fans out across the pool;
    // results land in the slot of their name, so the output order
    // never depends on completion order.
    std::vector<PreparedBenchmark> prepared(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        try {
            prepared[i] =
                preparePlmBenchmark(plmBenchmark(names[i]), pure,
                                    base_options);
        } catch (const std::exception &err) {
            // A benchmark that fails to compile is recorded as a
            // failed run; the rest of the suite proceeds.
            runs[i].name = names[i];
            runs[i].failure = cat("compile error: ", err.what());
        }
    }

    std::atomic<size_t> next{0};
    auto worker = [&]() {
        while (true) {
            size_t i = next.fetch_add(1);
            if (i >= prepared.size())
                return;
            if (!runs[i].failure.empty())
                continue; // compile already failed
            runs[i] = runPrepared(prepared[i], watchdog_seconds);
        }
    };

    unsigned n_threads =
        std::min<size_t>(jobs, prepared.size() ? prepared.size() : 1);
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return runs;
}

std::vector<BenchRun>
runPlmSuite(bool pure, const KcmOptions &base_options, unsigned jobs,
            double watchdog_seconds)
{
    std::vector<std::string> names;
    for (const auto &bench : plmSuite())
        names.push_back(bench.name);
    return runPlmBenchmarks(names, pure, base_options, jobs,
                            watchdog_seconds);
}

unsigned
benchJobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            return static_cast<unsigned>(
                std::max(1L, std::strtol(argv[i + 1], nullptr, 10)));
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

double
benchWatchdogFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--timeout") == 0)
            return std::max(0.0, std::strtod(argv[i + 1], nullptr));
    }
    return 0;
}

namespace
{

std::string
stringArg(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    }
    return "";
}

} // namespace

std::string
benchProfileInFromArgs(int argc, char **argv)
{
    return stringArg(argc, argv, "--profile-in");
}

std::string
benchProfileOutFromArgs(int argc, char **argv)
{
    return stringArg(argc, argv, "--profile-out");
}

SequenceProfile
loadSequenceProfileFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open sequence profile ", path);
    std::ostringstream os;
    os << in.rdbuf();
    try {
        return loadSequenceProfile(os.str());
    } catch (const std::exception &err) {
        fatal(path, ": ", err.what());
    }
}

void
saveSequenceProfileFile(const std::string &path,
                        const SequenceProfile &profile)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write sequence profile ", path);
    out << saveSequenceProfile(profile);
    if (!out)
        fatal("write failed for sequence profile ", path);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row has wrong cell count");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << (i ? "  " : "");
            os << (i == 0 ? padRight(cells[i], widths[i])
                          : padLeft(cells[i], widths[i]));
        }
        os << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w;
    os << std::string(total + 2 * (widths.size() - 1), '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
cellInt(uint64_t v)
{
    return std::to_string(v);
}

std::string
cellFixed(double v, int digits)
{
    return fixed(v, digits);
}

std::string
cellRatio(double v)
{
    return fixed(v, 2);
}

} // namespace kcm
