#include "bench_support/harness.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace kcm
{

PreparedBenchmark
preparePlmBenchmark(const PlmBenchmark &bench, bool pure,
                    const KcmOptions &base_options)
{
    KcmOptions options = base_options;
    // Table 2 convention: write/1 and nl/0 compiled as unit clauses so
    // that a call costs exactly the 5-cycle call/return pair (§4.2).
    options.compiler.ioAsUnitClauses = !pure;
    options.maxSolutions = 1;

    KcmSystem system(options);
    system.consult(pure ? bench.pureProgram() : bench.program);

    PreparedBenchmark prep;
    prep.name = bench.name;
    prep.image = system.compileOnly(pure ? bench.queryPure : bench.queryIo);
    prep.machine = options.machine;
    return prep;
}

BenchRun
runPrepared(const PreparedBenchmark &prep)
{
    auto host_start = std::chrono::steady_clock::now();

    // The paper's protocol: "the figure given here is the best figure
    // obtained on 4 successive runs on a quiet system". A warm-up run
    // loads the caches; the measured run re-executes warm.
    Machine machine(prep.machine);
    machine.load(prep.image);
    machine.run(); // warm-up (cold caches)
    machine.load(prep.image, /*cold_caches=*/false);
    machine.resetMeasurement();
    RunStatus status = machine.run();

    double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      host_start)
            .count();

    BenchRun run;
    run.name = prep.name;
    run.success = status == RunStatus::SolutionFound;
    run.cycles = machine.cycles();
    run.instructions = machine.instructions();
    run.inferences = machine.inferences();
    run.ms = machine.seconds() * 1e3;
    run.klips = machine.klips();
    run.choicePointsCreated = machine.choicePointsCreated.value();
    run.choicePointsAvoided = machine.choicePointsAvoided.value();
    run.shallowFails = machine.shallowFails.value();
    run.deepFails = machine.deepFails.value();
    run.trailPushes = machine.trailPushes.value();

    DataCache &dcache = machine.mem().dataCache();
    run.dataReads = dcache.readHits.value() + dcache.readMisses.value();
    run.dataWrites = dcache.writeHits.value() + dcache.writeMisses.value();
    run.dcacheHitRatio = dcache.hitRatio();
    run.icacheHitRatio = machine.mem().codeCache().hitRatio();
    run.memoryWords = machine.mem().memory().readWords.value() +
                      machine.mem().memory().writtenWords.value();

    machine.image().programSize(run.staticInstructions, run.staticWords);

    run.hostSeconds = host_seconds;
    run.simCyclesPerHostSecond =
        host_seconds > 0 ? double(run.cycles) / host_seconds : 0;
    return run;
}

BenchRun
runPlmBenchmark(const PlmBenchmark &bench, bool pure,
                const KcmOptions &base_options)
{
    return runPrepared(preparePlmBenchmark(bench, pure, base_options));
}

std::vector<BenchRun>
runPlmBenchmarks(const std::vector<std::string> &names, bool pure,
                 const KcmOptions &base_options, unsigned jobs)
{
    std::vector<BenchRun> runs(names.size());

    if (jobs <= 1) {
        // The sequential harness, unchanged: compile and run each
        // benchmark in turn.
        for (size_t i = 0; i < names.size(); ++i)
            runs[i] =
                runPlmBenchmark(plmBenchmark(names[i]), pure, base_options);
        return runs;
    }

    // Parallel mode. Compilation stays serial and in request order:
    // AtomIds depend on interning order and switch-table layouts
    // depend on AtomIds, so compiling on one thread keeps the
    // generated code — and therefore every simulated cycle count —
    // deterministic. The execution phase shares nothing (one Machine,
    // one memory system per benchmark) and fans out across the pool;
    // results land in the slot of their name, so the output order
    // never depends on completion order.
    std::vector<PreparedBenchmark> prepared;
    prepared.reserve(names.size());
    for (const auto &name : names)
        prepared.push_back(
            preparePlmBenchmark(plmBenchmark(name), pure, base_options));

    std::atomic<size_t> next{0};
    auto worker = [&]() {
        while (true) {
            size_t i = next.fetch_add(1);
            if (i >= prepared.size())
                return;
            runs[i] = runPrepared(prepared[i]);
        }
    };

    unsigned n_threads =
        std::min<size_t>(jobs, prepared.size() ? prepared.size() : 1);
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return runs;
}

std::vector<BenchRun>
runPlmSuite(bool pure, const KcmOptions &base_options, unsigned jobs)
{
    std::vector<std::string> names;
    for (const auto &bench : plmSuite())
        names.push_back(bench.name);
    return runPlmBenchmarks(names, pure, base_options, jobs);
}

unsigned
benchJobsFromArgs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            return static_cast<unsigned>(
                std::max(1L, std::strtol(argv[i + 1], nullptr, 10)));
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("table row has wrong cell count");
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i)
        widths[i] = headers_[i].size();
    for (const auto &row : rows_) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i) {
            os << (i ? "  " : "");
            os << (i == 0 ? padRight(cells[i], widths[i])
                          : padLeft(cells[i], widths[i]));
        }
        os << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w;
    os << std::string(total + 2 * (widths.size() - 1), '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
cellInt(uint64_t v)
{
    return std::to_string(v);
}

std::string
cellFixed(double v, int digits)
{
    return fixed(v, digits);
}

std::string
cellRatio(double v)
{
    return fixed(v, 2);
}

} // namespace kcm
