#include "bench_support/json_report.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace kcm
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

std::string
benchRunsJson(const std::string &label, const std::vector<BenchRun> &runs,
              unsigned jobs, double host_wall_seconds)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"label\": \"" << jsonEscape(label) << "\",\n";
    os << "  \"jobs\": " << jobs << ",\n";
    os << "  \"hostWallSeconds\": " << jsonDouble(host_wall_seconds)
       << ",\n";
    os << "  \"benchmarks\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
        const BenchRun &r = runs[i];
        os << "    {";
        os << "\"name\": \"" << jsonEscape(r.name) << "\", ";
        os << "\"success\": " << (r.success ? "true" : "false") << ", ";
        if (!r.failure.empty()) {
            os << "\"failure\": \"" << jsonEscape(r.failure) << "\", ";
            os << "\"trapped\": " << (r.trapped ? "true" : "false")
               << ", ";
            os << "\"timedOut\": " << (r.timedOut ? "true" : "false")
               << ", ";
        }
        os << "\"cycles\": " << r.cycles << ", ";
        os << "\"instructions\": " << r.instructions << ", ";
        os << "\"inferences\": " << r.inferences << ", ";
        os << "\"simMs\": " << jsonDouble(r.ms) << ", ";
        os << "\"klips\": " << jsonDouble(r.klips) << ", ";
        os << "\"dcacheHitRatio\": " << jsonDouble(r.dcacheHitRatio)
           << ", ";
        os << "\"icacheHitRatio\": " << jsonDouble(r.icacheHitRatio)
           << ", ";
        os << "\"retries\": " << r.retries << ", ";
        os << "\"restarts\": " << r.restarts << ", ";
        os << "\"checkpoints\": " << r.checkpoints << ", ";
        os << "\"checkpointBytes\": " << r.checkpointBytes << ", ";
        os << "\"recoveryCycles\": " << r.recoveryCycles << ", ";
        os << "\"dispatches\": " << r.dispatches << ", ";
        os << "\"fusedDispatches\": " << r.fusedDispatches << ", ";
        os << "\"hostSeconds\": " << jsonDouble(r.hostSeconds) << ", ";
        os << "\"simCyclesPerHostSecond\": "
           << jsonDouble(r.simCyclesPerHostSecond);
        os << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

std::string
benchOutputPath(const std::string &filename)
{
    if (filename.find('/') != std::string::npos)
        return filename; // explicit path: the caller decided
    const char *dir = std::getenv("KCM_BENCH_DIR");
    if (!dir || !*dir)
        return filename;
    std::string path = dir;
    if (path.back() != '/')
        path += '/';
    return path + filename;
}

void
writeBenchJson(const std::string &path, const std::string &label,
               const std::vector<BenchRun> &runs, unsigned jobs,
               double host_wall_seconds)
{
    std::string resolved = benchOutputPath(path);
    std::FILE *f = std::fopen(resolved.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     resolved.c_str());
        return;
    }
    std::string text = benchRunsJson(label, runs, jobs, host_wall_seconds);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace kcm
