#include "bench_support/paper_data.hh"

namespace kcm
{

const std::vector<Table1Row> &
paperTable1()
{
    static const std::vector<Table1Row> rows = {
        // program    PLM i/B    SPUR i/B     KCM i/w/B (paper)
        {"con1",      28,  87,   414,  1656,   33,  31,  248},
        {"con6",      32, 106,   430,  1720,   39,  41,  328},
        {"divide10", 213, 661,  3988, 15952,  214, 234, 1872},
        {"hanoi",     52, 183,   385,  1540,   56,  59,  472},
        {"log10",    207, 625,  4040, 16160,  198, 208, 1664},
        {"mutest",   141, 468,  1703,  6812,  162, 172, 1376},
        {"nrev1",     71, 260,   761,  3044,   64,  70,  560},
        {"ops8",     205, 633,  3804, 15216,  206, 216, 1728},
        {"palin25",  178, 565,  2556, 10224,  230, 240, 1920},
        {"pri2",     132, 383,  1933,  7732,  141, 151, 1208},
        {"qs4",      121, 456,  1230,  4920,  184, 192, 1536},
        {"queens",   242, 723,  3636, 14544,  212, 224, 1792},
        {"query",    273, 1138, 3942, 15768,  305, 357, 2856},
        {"times10",  213, 661,  3988, 15952,  214, 224, 1792},
    };
    return rows;
}

const std::vector<Table2Row> &
paperTable2()
{
    static const std::vector<Table2Row> rows = {
        // program   inf    PLM ms/Klips   KCM ms/Klips (paper)
        {"con1",        6,  0.023, 261,  0.007, 857},
        {"con6",       42,  0.137, 307,  0.059, 712},
        {"divide10",   22,  0.380,  58,  0.091, 242},
        {"hanoi",    1787,  7.323, 244,  2.795, 639},
        {"log10",      14,  0.109, 128,  0.039, 359},
        {"mutest",   1365, 12.407, 110,  4.644, 294},
        {"nrev1",     499,  2.660, 188,  0.650, 768},
        {"ops8",       20,  0.214,  93,  0.059, 339},
        {"palin25",   325,  3.152, 103,  1.221, 266},
        {"pri2",     1235, 10.000, 124,  5.240, 236},
        {"qs4",       612,  4.854, 126,  1.316, 465},
        {"queens",    687,  4.222, 163,  1.205, 570},
        {"query",    2893, 17.342, 167, 12.610, 229},
        {"times10",    22,  0.330,  67,  0.082, 268},
    };
    return rows;
}

const std::vector<Table3Row> &
paperTable3()
{
    static const std::vector<Table3Row> rows = {
        // program    inf   QUINTUS ms/Klips     KCM ms/Klips (paper)
        {"con1",        4, std::nullopt, std::nullopt,  0.006, 666},
        {"con6",       12, std::nullopt, std::nullopt,  0.046, 261},
        {"divide10",   20, std::nullopt, std::nullopt,  0.090, 222},
        {"hanoi",     767, 11.600, 66,                  1.264, 607},
        {"log10",      12, std::nullopt, std::nullopt,  0.039, 308},
        {"mutest",   1365, 41.500, 33,                  4.644, 294},
        {"nrev1",     497,  3.300, 151,                 0.649, 766},
        {"ops8",       18, std::nullopt, std::nullopt,  0.058, 310},
        {"palin25",   323,  9.330, 35,                  1.220, 265},
        {"pri2",     1233, 30.500, 40,                  5.239, 235},
        {"qs4",       610, 11.000, 55,                  1.315, 464},
        {"queens",    657,  9.010, 73,                  1.182, 556},
        {"query",    2888, 128.170, 23,                12.605, 229},
        {"times10",    20, std::nullopt, std::nullopt,  0.081, 247},
    };
    return rows;
}

const std::vector<Table4Row> &
paperTable4()
{
    static const std::vector<Table4Row> rows = {
        {"CHI-II", "NEC C&C", 490, std::nullopt, 40,
         "Back-end - multi-processing"},
        {"DLM-1", "BAe", 800, std::nullopt, 38,
         "Back-end - physical memory"},
        {"IPP", "Hitachi", 1360, 1197, 32,
         "Integrated in super-mini (ECL)"},
        {"AIP", "Toshiba", std::nullopt, 620, 32, "Back-end"},
        {"KCM", "ECRC", 833, 760, 64, "Back-end"},
        {"PSI-II", "ICOT", 400, 320, 40,
         "Stand-alone - multi-processing"},
        {"X-1", "Xenologic", 400, std::nullopt, 32, "SUN co-processor"},
    };
    return rows;
}

} // namespace kcm
