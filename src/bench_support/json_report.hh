/**
 * @file
 * BENCH_*.json emission: a machine-readable record of each benchmark
 * driver's simulated results plus the host-side throughput of the
 * simulator itself, so the perf trajectory of the codebase can be
 * tracked commit over commit.
 */

#ifndef KCM_BENCH_SUPPORT_JSON_REPORT_HH
#define KCM_BENCH_SUPPORT_JSON_REPORT_HH

#include <string>
#include <vector>

#include "bench_support/harness.hh"

namespace kcm
{

/** Render @p runs as a JSON document. @p label names the driver
 *  (e.g. "table2"); @p jobs and @p host_wall_seconds describe the
 *  harness configuration and total wall time of the run phase. */
std::string benchRunsJson(const std::string &label,
                          const std::vector<BenchRun> &runs, unsigned jobs,
                          double host_wall_seconds);

/**
 * Resolve where a BENCH_*.json report lands: $KCM_BENCH_DIR/<filename>
 * when the environment variable is set (CI exports it so every
 * driver's report collects in one stable directory for artifact
 * upload), else <filename> in the working directory as before. A
 * @p filename that is already an explicit path (contains '/') is
 * returned untouched — a user's --json override always wins.
 */
std::string benchOutputPath(const std::string &filename);

/** Write benchRunsJson to benchOutputPath(@p path) (logs a warning on
 *  failure rather than aborting a benchmark that already ran). */
void writeBenchJson(const std::string &path, const std::string &label,
                    const std::vector<BenchRun> &runs, unsigned jobs,
                    double host_wall_seconds);

} // namespace kcm

#endif // KCM_BENCH_SUPPORT_JSON_REPORT_HH
