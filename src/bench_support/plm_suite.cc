#include "bench_support/plm_suite.hh"

#include "base/logging.hh"

namespace kcm
{

namespace
{

// Shared auxiliary sources.

const char *concatSource = R"PL(
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
)PL";

const char *derivSource = R"PL(
d(U+V, X, DU+DV) :- !, d(U, X, DU), d(V, X, DV).
d(U-V, X, DU-DV) :- !, d(U, X, DU), d(V, X, DV).
d(U*V, X, DU*V+U*DV) :- !, d(U, X, DU), d(V, X, DV).
d(U/V, X, (DU*V-U*DV)/(V*V)) :- !, d(U, X, DU), d(V, X, DV).
d(pow(U,N), X, DU*N*pow(U,N1)) :- !, integer(N), N1 is N-1, d(U, X, DU).
d(-U, X, -DU) :- !, d(U, X, DU).
d(exp(U), X, exp(U)*DU) :- !, d(U, X, DU).
d(log(U), X, DU/U) :- !, d(U, X, DU).
d(X, X, 1) :- !.
d(_, _, 0).
)PL";

const char *hanoiSource = R"PL(
hanoi(N) :- move(N, left, center, right).
move(0, _, _, _) :- !.
move(N, A, B, C) :-
    M is N-1, move(M, A, C, B), inform(A, B), move(M, C, B, A).
inform(A, B) :- write(A), write(B), nl.
)PL";

const char *hanoiPureSource = R"PL(
hanoi(N) :- move(N, left, center, right).
move(0, _, _, _) :- !.
move(N, A, B, C) :-
    M is N-1, move(M, A, C, B), move(M, C, B, A).
)PL";

const char *muSource = R"PL(
theorem(_, [m,i]).
theorem(Depth, R) :-
    Depth > 0, D is Depth-1, theorem(D, S), rule(S, R).
rule(S, R) :- rule1(S, R).
rule(S, R) :- rule2(S, R).
rule(S, R) :- rule3(S, R).
rule(S, R) :- rule4(S, R).
rule1(S, R) :- append(X, [i], S), append(X, [i,u], R).
rule2([m|T], [m|R]) :- append(T, T, R).
rule3(S, R) :- append(X, [i,i,i|T], S), append(X, [u|T], R).
rule4(S, R) :- append(X, [u,u|T], S), append(X, T, R).
append([], X, X).
append([A|B], X, [A|Y]) :- append(B, X, Y).
)PL";

const char *nrevSource = R"PL(
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
list30([1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,
        21,22,23,24,25,26,27,28,29,30]).
)PL";

// A palindrome recognizer in the Warren style: a list is a palindrome
// if it naive-reverses onto itself.
const char *palin25Source = R"PL(
palin25(L) :- nrev(L, L).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), concat(RT, [H], R).
concat([], L, L).
concat([H|T], L, [H|R]) :- concat(T, L, R).
list25([a,b,c,d,e,f,g,h,i,j,k,l,m,l,k,j,i,h,g,f,e,d,c,b,a]).
)PL";

const char *pri2Source = R"PL(
primes(Limit, Ps) :- integers(2, Limit, Is), sift(Is, Ps).
integers(Low, High, [Low|Rest]) :-
    Low =< High, !, M is Low+1, integers(M, High, Rest).
integers(_, _, []).
sift([], []).
sift([I|Is], [I|Ps]) :- remove(I, Is, New), sift(New, Ps).
remove(_, [], []).
remove(P, [I|Is], Nis) :- I mod P =:= 0, !, remove(P, Is, Nis).
remove(P, [I|Is], [I|Nis]) :- remove(P, Is, Nis).
)PL";

const char *qs4Source = R"PL(
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).
qsort([], R, R).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).
partition([], _, [], []).
list50([27,74,17,33,94,18,46,83,65,2,
        32,53,28,85,99,47,28,82,6,11,
        55,29,39,81,90,37,10,0,66,51,
        7,21,85,27,31,63,75,4,95,99,
        11,28,61,74,18,92,40,53,59,8]).
)PL";

// The classic Warren 8-queens: place queens one by one, rejecting
// attacked squares by negation as failure.
const char *queensSource = R"PL(
queens(N, Qs) :- range(1, N, Ns), queens(Ns, [], Qs).
queens([], Qs, Qs).
queens(UnplacedQs, SafeQs, Qs) :-
    selectq(UnplacedQs, UnplacedQs1, Q),
    \+ attack(Q, SafeQs),
    queens(UnplacedQs1, [Q|SafeQs], Qs).
attack(X, Xs) :- attack(X, 1, Xs).
attack(X, N, [Y|_]) :- X =:= Y + N.
attack(X, N, [Y|_]) :- X =:= Y - N.
attack(X, N, [_|Ys]) :- N1 is N + 1, attack(X, N1, Ys).
selectq([X|Xs], Xs, X).
selectq([Y|Ys], [Y|Zs], X) :- selectq(Ys, Zs, X).
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
)PL";

const char *querySource = R"PL(
query([C1, D1, C2, D2]) :-
    density(C1, D1), density(C2, D2),
    D1 > D2,
    T1 is 20 * D1, T2 is 21 * D2, T1 < T2.
density(C, D) :- pop(C, P), area(C, A), D is P * 100 // A.
pop(china,      8250).    area(china,      3380).
pop(india,      5863).    area(india,      1139).
pop(ussr,       2521).    area(ussr,       8708).
pop(usa,        2119).    area(usa,        3609).
pop(indonesia,  1276).    area(indonesia,   570).
pop(japan,      1097).    area(japan,       148).
pop(brazil,     1042).    area(brazil,     3288).
pop(bangladesh,  750).    area(bangladesh,   55).
pop(pakistan,    682).    area(pakistan,    311).
pop(w_germany,   620).    area(w_germany,    96).
pop(nigeria,     613).    area(nigeria,     373).
pop(mexico,      581).    area(mexico,      764).
pop(uk,          559).    area(uk,           86).
pop(italy,       554).    area(italy,       116).
pop(france,      525).    area(france,      213).
pop(philippines, 415).    area(philippines, 90).
pop(thailand,    410).    area(thailand,    200).
pop(turkey,      383).    area(turkey,      296).
pop(egypt,       364).    area(egypt,       386).
pop(spain,       352).    area(spain,       190).
pop(poland,      337).    area(poland,      121).
pop(s_korea,     335).    area(s_korea,      37).
pop(iran,        320).    area(iran,        628).
pop(ethiopia,    272).    area(ethiopia,    350).
pop(argentina,   251).    area(argentina,  1080).
)PL";

std::vector<PlmBenchmark>
buildSuite()
{
    std::vector<PlmBenchmark> suite;

    suite.push_back({"con1", concatSource,
                     "concat([a,b,c], [d,e], L), write(L), nl",
                     "concat([a,b,c], [d,e], _)", ""});

    // Nondeterministic concatenation: enumerate every split of a
    // five-element list by failure-driven backtracking.
    suite.push_back({"con6", concatSource,
                     "(concat(X, Y, [a,b,c,d,e]), write(X), write(Y), nl, fail ; "
         "true)",
                     "(concat(_, _, [a,b,c,d,e]), fail ; true)", ""});

    suite.push_back({"divide10", derivSource,
                     "d(((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x, x, D), write(D), nl",
                     "d(((((((((x/x)/x)/x)/x)/x)/x)/x)/x)/x, x, _)", ""});

    suite.push_back({"hanoi", hanoiSource, "hanoi(8)", "hanoi(8)",
                     hanoiPureSource});

    suite.push_back({"log10", derivSource,
                     "d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, D), "
         "write(D), nl",
                     "d(log(log(log(log(log(log(log(log(log(log(x)))))))))), x, _)", ""});

    suite.push_back({"mutest", muSource,
                     "theorem(5, [m,u,i,i,u]), write(yes), nl",
                     "theorem(5, [m,u,i,i,u])", ""});

    suite.push_back({"nrev1", nrevSource,
                     "list30(L), nrev(L, R), write(R), nl",
                     "list30(L), nrev(L, _)", ""});

    suite.push_back({"ops8", derivSource,
                     "d((x+1) * ((pow(x,2)+2) * (pow(x,3)+3)), x, D), write(D), nl",
                     "d((x+1) * ((pow(x,2)+2) * (pow(x,3)+3)), x, _)", ""});

    suite.push_back({"palin25", palin25Source,
                     "list25(L), palin25(L), write(L), nl",
                     "list25(L), palin25(L)", ""});

    suite.push_back({"pri2", pri2Source,
                     "primes(98, Ps), write(Ps), nl",
                     "primes(98, _)", ""});

    suite.push_back({"qs4", qs4Source,
                     "list50(L), qsort(L, R, []), write(R), nl",
                     "list50(L), qsort(L, _, [])", ""});

    suite.push_back({"queens", queensSource,
                     "queens(8, Qs), write(Qs), nl",
                     "queens(8, _)", ""});

    suite.push_back({"query", querySource,
                     "(query(S), write(S), nl, fail ; true)",
                     "(query(_), fail ; true)", ""});

    suite.push_back({"times10", derivSource,
                     "d(((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x, x, D), write(D), nl",
                     "d(((((((((x*x)*x)*x)*x)*x)*x)*x)*x)*x, x, _)", ""});

    return suite;
}

} // namespace

const std::vector<PlmBenchmark> &
plmSuite()
{
    static const std::vector<PlmBenchmark> suite = buildSuite();
    return suite;
}

const PlmBenchmark &
plmBenchmark(const std::string &name)
{
    for (const auto &bench : plmSuite()) {
        if (bench.name == name)
            return bench;
    }
    fatal("unknown PLM benchmark: ", name);
}

} // namespace kcm
