#include "kcm/stdlib.hh"

namespace kcm
{

const std::string &
standardLibrarySource()
{
    static const std::string source = R"PL(
% ---- list predicates ----
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, [X|_]) :- !.
memberchk(X, [_|T]) :- memberchk(X, T).

length(L, N) :- length_(L, 0, N).
length_([], N, N).
length_([_|T], A, N) :- A1 is A + 1, length_(T, A1, N).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], A, A).
reverse_([H|T], A, R) :- reverse_(T, [H|A], R).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

nth1(1, [X|_], X) :- !.
nth1(N, [_|T], X) :- N > 1, M is N - 1, nth1(M, T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X) :- !.
max_list([H|T], M) :- max_list(T, M1), (H >= M1 -> M = H ; M = M1).

min_list([X], X) :- !.
min_list([H|T], M) :- min_list(T, M1), (H =< M1 -> M = H ; M = M1).

msort_(L, S) :- msort_quick(L, S, []).
msort_quick([X|L], R, R0) :-
    msort_part(L, X, L1, L2),
    msort_quick(L2, R1, R0),
    msort_quick(L1, R, [X|R1]).
msort_quick([], R, R).
msort_part([X|L], Y, [X|L1], L2) :- X =< Y, !, msort_part(L, Y, L1, L2).
msort_part([X|L], Y, L1, [X|L2]) :- msort_part(L, Y, L1, L2).
msort_part([], _, [], []).

% ---- arithmetic helpers ----
between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

succ_(X, Y) :- Y is X + 1.
plus_(A, B, C) :- C is A + B.

% ---- control ----
once(G) :- call(G), !.
ignore(G) :- call(G), !.
ignore(_).

not(G) :- \+ G.

forall_fail(G) :- call(G), fail.
forall_fail(_).
)PL";
    return source;
}

} // namespace kcm
