#include "kcm/kcm.hh"

#include <set>

#include "base/logging.hh"
#include "db/clause_store.hh"
#include "kcm/stdlib.hh"
#include "prolog/parser.hh"
#include "prolog/writer.hh"

namespace kcm
{

KcmSystem::KcmSystem(const KcmOptions &options) : options_(options) {}

KcmSystem::~KcmSystem() = default;

void
KcmSystem::consult(const std::string &source)
{
    sources_.emplace_back(source, false);
}

void
KcmSystem::consultLibrary(const std::string &source)
{
    sources_.emplace_back(source, true);
}

void
KcmSystem::consultStandardLibrary()
{
    consultLibrary(standardLibrarySource());
}

std::vector<TermRef>
KcmSystem::parseFactFile(const std::string &source,
                         const std::string &origin)
{
    // Validate the whole file before anything is used, so a malformed
    // clause can never leave a partial preload behind.
    OperatorTable ops;
    Parser parser(source, ops);
    ReadClause read;
    std::vector<TermRef> facts;
    size_t clause_no = 0;
    auto readNext = [&]() {
        // A raw tokenizer/parser error names only its line; re-throw
        // with the file so "--db-facts foo.pl" failures always read
        // "foo.pl: <parser diagnostic>".
        try {
            return parser.readClause(read);
        } catch (const FatalError &err) {
            std::string why = err.what();
            if (why.rfind("fatal: ", 0) == 0)
                why.erase(0, 7);
            fatal(origin, ": ", why);
        }
    };
    while (readNext()) {
        ++clause_no;
        const TermRef &term = read.term;
        auto reject = [&](const char *why) {
            fatal(origin, ": clause ", clause_no, " ", why, ": ",
                  writeTermQuoted(term));
        };
        if (term->isVar())
            reject("is unbound");
        if (term->isStruct() && term->arity() <= 2) {
            const std::string &name = atomText(term->functorName());
            if (name == ":-" || name == "?-")
                reject("is a rule or directive, not a fact");
        }
        if (!term->isAtom() && !term->isStruct())
            reject("is not a callable fact");
        Functor f = term->functor();
        if (f.arity > db::maxDynamicArity)
            reject("exceeds the dynamic-predicate arity limit");
        facts.push_back(term);
    }
    return facts;
}

std::string
KcmSystem::factDeclarations(const std::vector<TermRef> &facts)
{
    OperatorTable ops;
    WriteOptions canonical;
    canonical.quoted = true;
    canonical.ignoreOps = true;
    std::set<Functor> preds;
    for (const TermRef &fact : facts)
        preds.insert(fact->functor());
    std::string text;
    for (const Functor &f : preds) {
        text += ":- dynamic(" +
                writeTerm(Term::makeStruct(
                              "/", {Term::makeAtom(f.name),
                                    Term::makeInt(int64_t(f.arity))}),
                          ops, canonical) +
                ").\n";
    }
    return text;
}

void
KcmSystem::preloadFacts(const std::string &source,
                        const std::string &origin)
{
    std::vector<TermRef> facts = parseFactFile(source, origin);

    // Re-render canonically (quoted, ignore-ops) and route through
    // consult(): the compiler declares the predicates dynamic and
    // carries the facts in the image's dynamic-init section, so every
    // query's machine — and any baseline under differential test fed
    // the same text — seeds an identical store.
    OperatorTable ops;
    WriteOptions canonical;
    canonical.quoted = true;
    canonical.ignoreOps = true;
    std::string text = factDeclarations(facts);
    for (const TermRef &fact : facts)
        text += writeTerm(fact, ops, canonical) + ".\n";
    consult(text);
}

CodeImage
KcmSystem::compileOnly(const std::string &goal)
{
    Compiler compiler(options_.compiler);
    for (const auto &[text, library] : sources_) {
        if (library)
            compiler.addLibrary(text);
        else
            compiler.addProgram(text);
    }
    if (!goal.empty())
        compiler.setQuery(goal);
    return compiler.compile();
}

QueryResult
KcmSystem::query(const std::string &goal)
{
    if (goal.empty())
        fatal("empty query");
    CodeImage image = compileOnly(goal);

    machine_ = std::make_unique<Machine>(options_.machine);
    machine_->load(image);

    QueryResult result;
    result.solutions = machine_->solutions(
        options_.maxSolutions == 0 ? SIZE_MAX : options_.maxSolutions);
    result.success = !result.solutions.empty();
    result.halted = machine_->halted();
    if (machine_->trapped()) {
        result.trapped = true;
        result.trap = machine_->lastTrap();
        result.error = trapDiagnosis(result.trap);
    }
    result.output = machine_->output();
    result.cycles = machine_->cycles();
    result.instructions = machine_->instructions();
    result.inferences = machine_->inferences();
    result.seconds = machine_->seconds();
    result.klips = machine_->klips();
    result.residentBytes = machine_->residentZoneBytes();
    return result;
}

QueryResult
KcmSystem::query(const std::string &goal,
                 const std::function<bool()> &interrupted,
                 uint64_t poll_slice_cycles)
{
    if (goal.empty())
        fatal("empty query");
    CodeImage image = compileOnly(goal);

    machine_ = std::make_unique<Machine>(options_.machine);
    machine_->load(image);

    QueryResult result;
    const size_t max_solutions =
        options_.maxSolutions == 0 ? SIZE_MAX : options_.maxSolutions;
    auto poll = [&] { return interrupted && interrupted(); };

    // The same collection loop as Machine::solutions(), interleaved
    // with host slice stops so a signal is honoured at the next
    // instruction boundary instead of after the run.
    enum class Mode { Run, Next, Resume };
    Mode mode = Mode::Run;
    while (!result.interrupted) {
        if (poll_slice_cycles)
            machine_->setSliceStop(machine_->cycles() +
                                   poll_slice_cycles);
        RunStatus status;
        switch (mode) {
          case Mode::Run: status = machine_->run(); break;
          case Mode::Next: status = machine_->nextSolution(); break;
          case Mode::Resume: status = machine_->resume(); break;
        }
        if (status == RunStatus::SolutionFound) {
            result.solutions.push_back(machine_->lastSolution());
            if (result.solutions.size() >= max_solutions)
                break;
            result.interrupted = poll();
            mode = Mode::Next;
            continue;
        }
        if (status != RunStatus::Trapped)
            break;
        if (!machine_->sliceExpired()) {
            // A genuine trap, reported exactly as the plain overload.
            result.trapped = true;
            result.trap = machine_->lastTrap();
            result.error = trapDiagnosis(result.trap);
            break;
        }
        result.interrupted = poll();
        mode = Mode::Resume;
    }
    machine_->setSliceStop(0);

    result.success = !result.solutions.empty();
    result.halted = machine_->halted();
    result.output = machine_->output();
    result.cycles = machine_->cycles();
    result.instructions = machine_->instructions();
    result.inferences = machine_->inferences();
    result.seconds = machine_->seconds();
    result.klips = machine_->klips();
    result.residentBytes = machine_->residentZoneBytes();
    return result;
}

Machine &
KcmSystem::machine()
{
    if (!machine_)
        fatal("no query has been run yet");
    return *machine_;
}

} // namespace kcm
