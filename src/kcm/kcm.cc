#include "kcm/kcm.hh"

#include "base/logging.hh"
#include "kcm/stdlib.hh"

namespace kcm
{

KcmSystem::KcmSystem(const KcmOptions &options) : options_(options) {}

KcmSystem::~KcmSystem() = default;

void
KcmSystem::consult(const std::string &source)
{
    sources_.emplace_back(source, false);
}

void
KcmSystem::consultLibrary(const std::string &source)
{
    sources_.emplace_back(source, true);
}

void
KcmSystem::consultStandardLibrary()
{
    consultLibrary(standardLibrarySource());
}

CodeImage
KcmSystem::compileOnly(const std::string &goal)
{
    Compiler compiler(options_.compiler);
    for (const auto &[text, library] : sources_) {
        if (library)
            compiler.addLibrary(text);
        else
            compiler.addProgram(text);
    }
    if (!goal.empty())
        compiler.setQuery(goal);
    return compiler.compile();
}

QueryResult
KcmSystem::query(const std::string &goal)
{
    if (goal.empty())
        fatal("empty query");
    CodeImage image = compileOnly(goal);

    machine_ = std::make_unique<Machine>(options_.machine);
    machine_->load(image);

    QueryResult result;
    result.solutions = machine_->solutions(
        options_.maxSolutions == 0 ? SIZE_MAX : options_.maxSolutions);
    result.success = !result.solutions.empty();
    result.halted = machine_->halted();
    if (machine_->trapped()) {
        result.trapped = true;
        result.trap = machine_->lastTrap();
        result.error = trapDiagnosis(result.trap);
    }
    result.output = machine_->output();
    result.cycles = machine_->cycles();
    result.instructions = machine_->instructions();
    result.inferences = machine_->inferences();
    result.seconds = machine_->seconds();
    result.klips = machine_->klips();
    return result;
}

Machine &
KcmSystem::machine()
{
    if (!machine_)
        fatal("no query has been run yet");
    return *machine_;
}

} // namespace kcm
