/**
 * @file
 * A small Prolog standard library (list and control predicates) in the
 * spirit of the SEPIA environment the KCM software stack provided.
 * Written in Prolog and compiled like any user code, but marked as
 * library so it never pollutes static-size measurements.
 */

#ifndef KCM_KCM_STDLIB_HH
#define KCM_KCM_STDLIB_HH

#include <string>

namespace kcm
{

/** Prolog source of the standard library. */
const std::string &standardLibrarySource();

} // namespace kcm

#endif // KCM_KCM_STDLIB_HH
