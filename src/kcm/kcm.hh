/**
 * @file
 * KcmSystem: the public API of the KCM reproduction.
 *
 * Mirrors the system environment of Fig. 1: the host compiles, links
 * and downloads Prolog programs; KCM executes them; the host serves
 * I/O. Typical use:
 *
 * @code
 *   kcm::KcmSystem system;
 *   system.consult("append([],L,L). "
 *                  "append([H|T],L,[H|R]) :- append(T,L,R).");
 *   auto result = system.query("append([1,2],[3],X)");
 *   // result.solutions[0].toString() == "X = [1,2,3]"
 *   // result.cycles, result.seconds, result.klips, result.inferences
 * @endcode
 */

#ifndef KCM_KCM_HH
#define KCM_KCM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.hh"
#include "core/machine.hh"

namespace kcm
{

/** Everything a query run produces. */
struct QueryResult
{
    bool success = false;             ///< at least one solution
    std::vector<Solution> solutions;  ///< collected solutions
    std::string output;               ///< captured write/1 output

    /** True when the program executed halt/0 (the run stopped without
     *  exhausting alternatives). */
    bool halted = false;

    /** True when the interruptible query() overload stopped early
     *  because its poll callback asked for it (SIGINT/SIGTERM in the
     *  drivers); the collected solutions are a valid partial result. */
    bool interrupted = false;

    /** True when the run ended in a machine trap instead of a normal
     *  halt/fail; @ref trap then holds the structured report. */
    bool trapped = false;
    TrapInfo trap;
    /**
     * Structured diagnosis, empty on a clean run — always a valid,
     * re-readable Prolog term: "resource_error(<kind>)" for governor
     * exhaustion (cycle budget, stack ceiling) that no catch/3
     * intercepted, "unhandled_exception(<ball>)" for an uncaught
     * throw/1, "machine_trap(<kind>)" for everything else.
     */
    std::string error;

    // Measurements of the run (first solution unless all requested).
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t inferences = 0;
    double seconds = 0;
    double klips = 0;
    /** Governed data-zone footprint at the end of the run (the
     *  quantity ResourceGovernor::memoryBudgetBytes bounds). */
    uint64_t residentBytes = 0;
};

struct KcmOptions
{
    CompilerOptions compiler;
    MachineConfig machine;
    /** Collect at most this many solutions (default: first only;
     *  0 = all solutions). */
    size_t maxSolutions = 1;
};

/**
 * A complete KCM installation: compiler + machine. Each query is
 * compiled together with the consulted program (static linking) and
 * downloaded to a freshly reset machine, as the paper's benchmark
 * flow did.
 */
class KcmSystem
{
  public:
    explicit KcmSystem(const KcmOptions &options = {});
    ~KcmSystem();

    /** Add program text (clauses and directives). */
    void consult(const std::string &source);

    /** Add runtime-library text (excluded from static code sizes). */
    void consultLibrary(const std::string &source);

    /** Consult the bundled standard library (append/3, member/2,
     *  length/2, between/3, once/1, ... — see kcm/stdlib.hh). */
    void consultStandardLibrary();

    /**
     * Preload a fact file into the dynamic clause store (the
     * `--db-facts` path of kcm_run/kcm_serverd). Every clause must be
     * a plain fact — an atom or a compound of arity ≤
     * db::maxDynamicArity, no `:-` rules, no directives; the facts'
     * predicates are implicitly declared dynamic and the store is
     * seeded in file order when a query's machine loads. A malformed
     * clause (unreadable syntax, a rule, a non-callable term, or an
     * over-arity head) aborts with a fatal diagnostic naming @p origin
     * and the offending clause — nothing is partially loaded.
     */
    void preloadFacts(const std::string &source,
                      const std::string &origin = "db-facts");

    /**
     * The validation half of preloadFacts(): parse @p source and
     * return the validated facts in file order, enforcing the same
     * facts-only rules (and the same all-or-nothing fatal diagnostics
     * naming @p origin). Used directly by the durable-database server
     * path, which seeds a journaled store once instead of carrying the
     * facts in every compiled image.
     */
    static std::vector<TermRef> parseFactFile(const std::string &source,
                                              const std::string &origin);

    /**
     * Canonical `:- dynamic(name/arity).` declaration text for the
     * predicate set of @p facts (sorted, deduplicated). In durable
     * mode the server consults only these declarations — the compiled
     * image keeps its dynamic-dispatch stubs while the facts
     * themselves live in the journaled store.
     */
    static std::string factDeclarations(const std::vector<TermRef> &facts);

    /** Compile and run a query; collects up to maxSolutions. */
    QueryResult query(const std::string &goal);

    /**
     * Interruptible variant: runs the query in host slices of
     * @p poll_slice_cycles simulated cycles and calls @p interrupted
     * between slices (and between solutions); when it returns true the
     * run stops at that instruction boundary with the solutions
     * collected so far and QueryResult::interrupted set. Slice stops
     * are pure host machinery, so all simulated metrics are
     * bit-identical to the plain overload.
     */
    QueryResult query(const std::string &goal,
                      const std::function<bool()> &interrupted,
                      uint64_t poll_slice_cycles = 4'000'000);

    /** Compile the current program plus @p goal without running. */
    CodeImage compileOnly(const std::string &goal);

    /** The machine used by the last query (valid until the next). */
    Machine &machine();

    const KcmOptions &options() const { return options_; }

  private:
    KcmOptions options_;
    std::vector<std::pair<std::string, bool>> sources_; // (text, library)
    std::unique_ptr<Machine> machine_;
};

} // namespace kcm

#endif // KCM_KCM_HH
