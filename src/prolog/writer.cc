#include "prolog/writer.hh"

#include <sstream>

#include "base/logging.hh"
#include "prolog/lexer.hh"

namespace kcm
{

namespace
{

class Writer
{
  public:
    Writer(const OperatorTable &ops, const WriteOptions &options)
        : ops_(ops), options_(options)
    {
    }

    std::string
    render(const TermRef &t)
    {
        write(t, 1200, 0);
        return os_.str();
    }

  private:
    void
    writeAtomText(AtomId atom)
    {
        const std::string &text = atomText(atom);
        if (options_.quoted && atomNeedsQuotes(text)) {
            os_ << '\'';
            for (char c : text) {
                if (c == '\'' || c == '\\')
                    os_ << '\\';
                os_ << c;
            }
            os_ << '\'';
        } else {
            os_ << text;
        }
    }

    void
    write(const TermRef &t, int max_prec, int depth)
    {
        if (options_.maxDepth && depth > options_.maxDepth) {
            os_ << "...";
            return;
        }
        switch (t->kind()) {
          case TermKind::Var:
            os_ << "_" << t->varId();
            return;
          case TermKind::Int:
            os_ << t->intValue();
            return;
          case TermKind::Float: {
            std::ostringstream fs;
            fs << t->floatValue();
            std::string s = fs.str();
            if (s.find('.') == std::string::npos &&
                s.find('e') == std::string::npos &&
                s.find("inf") == std::string::npos &&
                s.find("nan") == std::string::npos) {
                s += ".0";
            }
            os_ << s;
            return;
          }
          case TermKind::Atom:
            writeAtomText(t->atom());
            return;
          case TermKind::Struct:
            break;
        }

        // Lists.
        if (t->isCons() && !options_.ignoreOps) {
            os_ << '[';
            TermRef node = t;
            bool first = true;
            while (node->isCons()) {
                if (!first)
                    os_ << ',';
                write(node->arg(0), 999, depth + 1);
                first = false;
                node = node->arg(1);
            }
            if (!node->isNil()) {
                os_ << '|';
                write(node, 999, depth + 1);
            }
            os_ << ']';
            return;
        }

        // Curly braces.
        if (!options_.ignoreOps && t->arity() == 1 &&
            t->functorName() == AtomTable::instance().curly) {
            os_ << '{';
            write(t->arg(0), 1200, depth + 1);
            os_ << '}';
            return;
        }

        // Operators.
        if (!options_.ignoreOps) {
            if (t->arity() == 2) {
                auto infix = ops_.infix(t->functorName());
                if (infix) {
                    int p = infix->priority;
                    int lp = infix->type == OpType::YFX ? p : p - 1;
                    int rp = infix->type == OpType::XFY ? p : p - 1;
                    bool parens = p > max_prec;
                    if (parens)
                        os_ << '(';
                    write(t->arg(0), lp, depth + 1);
                    const std::string &name = atomText(t->functorName());
                    if (name == ",")
                        os_ << name;
                    else
                        os_ << ' ' << name << ' ';
                    write(t->arg(1), rp, depth + 1);
                    if (parens)
                        os_ << ')';
                    return;
                }
            }
            if (t->arity() == 1) {
                auto prefix = ops_.prefix(t->functorName());
                if (prefix) {
                    int p = prefix->priority;
                    int ap = prefix->type == OpType::FY ? p : p - 1;
                    bool parens = p > max_prec;
                    if (parens)
                        os_ << '(';
                    writeAtomText(t->functorName());
                    const std::string &name = atomText(t->functorName());
                    if (isalpha((unsigned char)name[0]) ||
                        name == "-" || name == "+" || name == ":-" ||
                        name == "?-" || name == "\\+") {
                        os_ << ' ';
                    }
                    write(t->arg(0), ap, depth + 1);
                    if (parens)
                        os_ << ')';
                    return;
                }
            }
        }

        // Plain functional notation.
        writeAtomText(t->functorName());
        os_ << '(';
        for (uint32_t i = 0; i < t->arity(); ++i) {
            if (i)
                os_ << ',';
            write(t->arg(i), 999, depth + 1);
        }
        os_ << ')';
    }

    const OperatorTable &ops_;
    const WriteOptions &options_;
    std::ostringstream os_;
};

} // namespace

std::string
writeTerm(const TermRef &t, const OperatorTable &ops,
          const WriteOptions &options)
{
    Writer writer(ops, options);
    return writer.render(t);
}

std::string
writeTerm(const TermRef &t)
{
    static OperatorTable default_ops;
    return writeTerm(t, default_ops, WriteOptions{});
}

std::string
writeTermQuoted(const TermRef &t)
{
    static OperatorTable default_ops;
    WriteOptions options;
    options.quoted = true;
    return writeTerm(t, default_ops, options);
}

} // namespace kcm
