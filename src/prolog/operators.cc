#include "prolog/operators.hh"

#include "base/logging.hh"

namespace kcm
{

OperatorTable::OperatorTable()
{
    struct Std
    {
        int priority;
        OpType type;
        const char *name;
    };
    static const Std standard[] = {
        {1200, OpType::XFX, ":-"},
        {1200, OpType::XFX, "-->"},
        {1200, OpType::FX, ":-"},
        {1200, OpType::FX, "?-"},
        {1100, OpType::XFY, ";"},
        {1050, OpType::XFY, "->"},
        {1000, OpType::XFY, ","},
        {900, OpType::FY, "\\+"},
        {700, OpType::XFX, "="},
        {700, OpType::XFX, "\\="},
        {700, OpType::XFX, "=="},
        {700, OpType::XFX, "\\=="},
        {700, OpType::XFX, "@<"},
        {700, OpType::XFX, "@>"},
        {700, OpType::XFX, "@=<"},
        {700, OpType::XFX, "@>="},
        {700, OpType::XFX, "=.."},
        {700, OpType::XFX, "is"},
        {700, OpType::XFX, "=:="},
        {700, OpType::XFX, "=\\="},
        {700, OpType::XFX, "<"},
        {700, OpType::XFX, ">"},
        {700, OpType::XFX, "=<"},
        {700, OpType::XFX, ">="},
        {500, OpType::YFX, "+"},
        {500, OpType::YFX, "-"},
        {500, OpType::YFX, "/\\"},
        {500, OpType::YFX, "\\/"},
        {500, OpType::YFX, "xor"},
        {400, OpType::YFX, "*"},
        {400, OpType::YFX, "/"},
        {400, OpType::YFX, "//"},
        {400, OpType::YFX, "mod"},
        {400, OpType::YFX, "rem"},
        {400, OpType::YFX, "<<"},
        {400, OpType::YFX, ">>"},
        {200, OpType::XFX, "**"},
        {200, OpType::XFY, "^"},
        {200, OpType::FY, "-"},
        {200, OpType::FY, "+"},
        {200, OpType::FY, "\\"},
        {100, OpType::YFX, "."},
        {1, OpType::FX, "$"},
    };
    for (const auto &op : standard)
        define(op.priority, op.type, internAtom(op.name));
}

void
OperatorTable::define(int priority, OpType type, AtomId name)
{
    auto *table = isPrefixOp(type) ? &prefix_
                : isInfixOp(type) ? &infix_
                : &postfix_;
    if (priority == 0)
        table->erase(name);
    else
        (*table)[name] = OpDef{priority, type};
}

std::optional<OpDef>
OperatorTable::prefix(AtomId name) const
{
    auto it = prefix_.find(name);
    if (it == prefix_.end())
        return std::nullopt;
    return it->second;
}

std::optional<OpDef>
OperatorTable::infix(AtomId name) const
{
    auto it = infix_.find(name);
    if (it == infix_.end())
        return std::nullopt;
    return it->second;
}

std::optional<OpDef>
OperatorTable::postfix(AtomId name) const
{
    auto it = postfix_.find(name);
    if (it == postfix_.end())
        return std::nullopt;
    return it->second;
}

bool
OperatorTable::isOperator(AtomId name) const
{
    return prefix_.count(name) || infix_.count(name) || postfix_.count(name);
}

std::optional<OpType>
OperatorTable::parseType(const std::string &text)
{
    if (text == "xfx")
        return OpType::XFX;
    if (text == "xfy")
        return OpType::XFY;
    if (text == "yfx")
        return OpType::YFX;
    if (text == "fy")
        return OpType::FY;
    if (text == "fx")
        return OpType::FX;
    if (text == "xf")
        return OpType::XF;
    if (text == "yf")
        return OpType::YF;
    return std::nullopt;
}

} // namespace kcm
