/**
 * @file
 * Prolog tokenizer.
 *
 * Produces the standard Prolog token stream: names (atoms), variables,
 * numbers, strings, punctuation, and the clause-terminating full stop.
 * Layout (whitespace/comments) is consumed but the "no layout before"
 * property of a token is preserved, which the reader needs to tell
 * functor application f( from an operator followed by a parenthesis.
 */

#ifndef KCM_PROLOG_LEXER_HH
#define KCM_PROLOG_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace kcm
{

enum class TokenKind
{
    Atom,     ///< unquoted / quoted / symbolic name
    Variable, ///< uppercase or _ initial
    Int,
    Float,
    String,   ///< "..." — expands to a code list in the reader
    Punct,    ///< one of ( ) [ ] { } , |
    End,      ///< the clause-terminating '. '
    Eof,
};

struct Token
{
    TokenKind kind = TokenKind::Eof;
    std::string text;      ///< name / variable / punct / string body
    int64_t intValue = 0;  ///< Int
    double floatValue = 0; ///< Float
    bool layoutBefore = true; ///< whitespace or comment preceded this token
    int line = 0;

    bool isPunct(const char *p) const
    {
        return kind == TokenKind::Punct && text == p;
    }
    bool isAtom(const char *a) const
    {
        return kind == TokenKind::Atom && text == a;
    }
};

/**
 * One-pass tokenizer over a complete source string.
 *
 * Throws FatalError (via fatal()) on malformed input such as an
 * unterminated quoted atom, with the line number in the message.
 */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Tokenize the whole input (trailing Eof token included). */
    std::vector<Token> tokenize();

  private:
    Token next();
    /** Consume whitespace and comments; returns true if any was seen. */
    bool skipLayout();
    Token lexName();
    Token lexQuoted(char quote);
    Token lexNumber();
    Token lexSymbolic();

    char peek(size_t ahead = 0) const;
    char get();
    bool eof() const { return pos_ >= src_.size(); }

    [[noreturn]] void error(const std::string &msg) const;

    std::string src_;
    size_t pos_ = 0;
    int line_ = 1;
};

/** True if @p text would need quotes to read back as an atom. */
bool atomNeedsQuotes(const std::string &text);

} // namespace kcm

#endif // KCM_PROLOG_LEXER_HH
