#include "prolog/atom_table.hh"

#include <mutex>

#include "base/logging.hh"

namespace kcm
{

AtomTable::AtomTable()
{
    nil = intern("[]");
    dot = intern(".");
    comma = intern(",");
    neck = intern(":-");
    curly = intern("{}");
    trueAtom = intern("true");
    failAtom = intern("fail");
    cutAtom = intern("!");
    semicolon = intern(";");
    arrow = intern("->");
    minus = intern("-");
    plus = intern("+");
    emptyBlock = curly;
}

AtomTable &
AtomTable::instance()
{
    static AtomTable table;
    return table;
}

AtomId
AtomTable::intern(const std::string &text)
{
    {
        std::shared_lock lock(mutex_);
        auto it = ids_.find(text);
        if (it != ids_.end())
            return it->second;
    }
    std::unique_lock lock(mutex_);
    auto it = ids_.find(text); // raced with another interner?
    if (it != ids_.end())
        return it->second;
    AtomId id = static_cast<AtomId>(texts_.size());
    texts_.push_back(text);
    ids_.emplace(text, id);
    return id;
}

const std::string &
AtomTable::text(AtomId id) const
{
    std::shared_lock lock(mutex_);
    if (id >= texts_.size())
        panic("atom id out of range: ", id);
    return texts_[id];
}

size_t
AtomTable::size() const
{
    std::shared_lock lock(mutex_);
    return texts_.size();
}

AtomId
internAtom(const std::string &text)
{
    return AtomTable::instance().intern(text);
}

const std::string &
atomText(AtomId id)
{
    return AtomTable::instance().text(id);
}

std::string
atomTextSafe(AtomId id)
{
    if (id >= AtomTable::instance().size())
        return "atom#" + std::to_string(id);
    return AtomTable::instance().text(id);
}

} // namespace kcm
