/**
 * @file
 * Prolog operator table.
 *
 * Carries the standard (Edinburgh) operator set used by the reader and
 * the writer. User programs can extend it via op/3 directives.
 */

#ifndef KCM_PROLOG_OPERATORS_HH
#define KCM_PROLOG_OPERATORS_HH

#include <optional>
#include <string>
#include <unordered_map>

#include "prolog/atom_table.hh"

namespace kcm
{

/** Operator fixity classes. */
enum class OpType
{
    XFX,
    XFY,
    YFX,
    FY,
    FX,
    XF,
    YF,
};

struct OpDef
{
    int priority = 0;
    OpType type = OpType::XFX;
};

/** True for prefix fixities. */
inline bool
isPrefixOp(OpType t)
{
    return t == OpType::FY || t == OpType::FX;
}

/** True for infix fixities. */
inline bool
isInfixOp(OpType t)
{
    return t == OpType::XFX || t == OpType::XFY || t == OpType::YFX;
}

/** True for postfix fixities. */
inline bool
isPostfixOp(OpType t)
{
    return t == OpType::XF || t == OpType::YF;
}

/**
 * Mutable operator table, preloaded with the standard operators.
 */
class OperatorTable
{
  public:
    OperatorTable();

    /** Define (or redefine) an operator; priority 0 removes it. */
    void define(int priority, OpType type, AtomId name);

    /** Lookup the prefix definition of @p name, if any. */
    std::optional<OpDef> prefix(AtomId name) const;
    /** Lookup the infix definition of @p name, if any. */
    std::optional<OpDef> infix(AtomId name) const;
    /** Lookup the postfix definition of @p name, if any. */
    std::optional<OpDef> postfix(AtomId name) const;

    /** True if @p name has any operator definition. */
    bool isOperator(AtomId name) const;

    /** Parse "xfx" etc. into an OpType. */
    static std::optional<OpType> parseType(const std::string &text);

  private:
    std::unordered_map<AtomId, OpDef> prefix_;
    std::unordered_map<AtomId, OpDef> infix_;
    std::unordered_map<AtomId, OpDef> postfix_;
};

} // namespace kcm

#endif // KCM_PROLOG_OPERATORS_HH
