/**
 * @file
 * Interned atom and functor names.
 *
 * Every symbol that flows through the system — atom constants, functor
 * names, predicate names — is interned once and referred to by a dense
 * 32-bit AtomId. The id doubles as the value part of an ATOM-tagged
 * KCM data word, so interning is shared between the front end and the
 * simulated machine (the paper's host and KCM share symbol tables the
 * same way, §2.1).
 */

#ifndef KCM_PROLOG_ATOM_TABLE_HH
#define KCM_PROLOG_ATOM_TABLE_HH

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <unordered_map>

namespace kcm
{

using AtomId = uint32_t;

/** A predicate / structure identifier: name plus arity. */
struct Functor
{
    AtomId name = 0;
    uint32_t arity = 0;

    bool
    operator==(const Functor &other) const
    {
        return name == other.name && arity == other.arity;
    }

    bool
    operator<(const Functor &other) const
    {
        if (name != other.name)
            return name < other.name;
        return arity < other.arity;
    }
};

struct FunctorHash
{
    size_t
    operator()(const Functor &f) const
    {
        return std::hash<uint64_t>()((uint64_t(f.name) << 32) | f.arity);
    }
};

/**
 * Global intern table mapping atom text to dense ids and back.
 *
 * A process-wide singleton is used so that terms, compiled code and
 * machine words can exchange AtomIds freely. The table is thread-safe
 * (machines running concurrently in the benchmark harness intern
 * atoms at runtime), but note that ids depend on interning ORDER:
 * anything whose output embeds ids in data structures — switch-table
 * layouts, most visibly — must still compile on one thread if
 * determinism is required.
 */
class AtomTable
{
  public:
    /** The process-wide table. */
    static AtomTable &instance();

    /** Intern @p text, returning its stable id. */
    AtomId intern(const std::string &text);

    /** Reverse lookup. The reference stays valid forever (atoms are
     *  never removed and the deque never relocates elements). */
    const std::string &text(AtomId id) const;

    /** Number of interned atoms. */
    size_t size() const;

    // Pre-interned atoms used throughout the system.
    AtomId nil;      ///< []
    AtomId dot;      ///< '.' (list cons functor)
    AtomId comma;    ///< ','
    AtomId neck;     ///< ':-'
    AtomId curly;    ///< '{}'
    AtomId trueAtom; ///< true
    AtomId failAtom; ///< fail
    AtomId cutAtom;  ///< !
    AtomId semicolon; ///< ';'
    AtomId arrow;    ///< '->'
    AtomId minus;    ///< '-'
    AtomId plus;     ///< '+'
    AtomId emptyBlock; ///< '{}'/1 wrapper functor name (same atom as curly)

    AtomTable();

  private:
    mutable std::shared_mutex mutex_;
    std::unordered_map<std::string, AtomId> ids_;
    /** Deque, not vector: growth must not move existing strings,
     *  since text() hands out long-lived references. */
    std::deque<std::string> texts_;
};

/** Shorthand: intern @p text in the global table. */
AtomId internAtom(const std::string &text);

/** Shorthand: text of @p id from the global table. */
const std::string &atomText(AtomId id);

/** Like atomText, but renders unknown ids as "atom#N" instead of
 *  panicking (for disassembling arbitrary bit patterns). */
std::string atomTextSafe(AtomId id);

} // namespace kcm

#endif // KCM_PROLOG_ATOM_TABLE_HH
