/**
 * @file
 * Prolog reader: operator-precedence parsing of clause terms.
 */

#ifndef KCM_PROLOG_PARSER_HH
#define KCM_PROLOG_PARSER_HH

#include <map>
#include <string>
#include <vector>

#include "prolog/lexer.hh"
#include "prolog/operators.hh"
#include "prolog/term.hh"

namespace kcm
{

/** One clause read from source, with its named variables. */
struct ReadClause
{
    TermRef term;
    /** Source variable name -> the shared Var node, in order. */
    std::vector<std::pair<std::string, TermRef>> varNames;
};

/**
 * Reads a sequence of clause terms from one source string.
 *
 * op/3 directives are applied to the operator table as they are read,
 * so they affect the parsing of subsequent clauses — and they are also
 * returned to the caller like any other term.
 */
class Parser
{
  public:
    Parser(std::string source, OperatorTable &ops);

    /** Read the next clause; returns false at end of input. */
    bool readClause(ReadClause &out);

    /** Read every clause in the input. */
    std::vector<ReadClause> readAll();

  private:
    TermRef parseTerm(int max_prec, int &prec_out);
    TermRef parsePrimary(int max_prec, int &prec_out);
    TermRef parseArgList(const std::string &functor_name);
    TermRef parseList();
    TermRef parseCurly();
    TermRef variableNode(const std::string &name);
    /** True if the upcoming token can begin a term. */
    bool tokenStartsTerm() const;

    const Token &peek(size_t ahead = 0) const;
    const Token &advance();
    void expectPunct(const char *p);
    [[noreturn]] void error(const std::string &msg) const;

    void maybeApplyOpDirective(const TermRef &clause);

    OperatorTable &ops_;
    std::vector<Token> tokens_;
    size_t pos_ = 0;
    std::map<std::string, TermRef> clauseVars_;
    std::vector<std::pair<std::string, TermRef>> varOrder_;
};

/** Convenience: parse a single term (no trailing '.') from text. */
TermRef parseTermText(const std::string &text, OperatorTable &ops);

/** Convenience: parse with a default operator table. */
TermRef parseTermText(const std::string &text);

/** Convenience: parse a whole program with a default operator table. */
std::vector<ReadClause> parseProgramText(const std::string &text);

} // namespace kcm

#endif // KCM_PROLOG_PARSER_HH
