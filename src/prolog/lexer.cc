#include "prolog/lexer.hh"

#include <cctype>
#include <cstdlib>

#include "base/logging.hh"

namespace kcm
{

namespace
{

bool
isSymbolChar(char c)
{
    return std::string("+-*/\\^<>=~:.?@#&$").find(c) != std::string::npos;
}

bool
isAlnumChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

} // namespace

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

char
Lexer::peek(size_t ahead) const
{
    if (pos_ + ahead >= src_.size())
        return '\0';
    return src_[pos_ + ahead];
}

char
Lexer::get()
{
    char c = peek();
    ++pos_;
    if (c == '\n')
        ++line_;
    return c;
}

void
Lexer::error(const std::string &msg) const
{
    fatal("lexer: line ", line_, ": ", msg);
}

bool
Lexer::skipLayout()
{
    bool any = false;
    while (!eof()) {
        char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            get();
            any = true;
        } else if (c == '%') {
            while (!eof() && peek() != '\n')
                get();
            any = true;
        } else if (c == '/' && peek(1) == '*') {
            get();
            get();
            while (!eof() && !(peek() == '*' && peek(1) == '/'))
                get();
            if (eof())
                error("unterminated block comment");
            get();
            get();
            any = true;
        } else {
            break;
        }
    }
    return any;
}

std::vector<Token>
Lexer::tokenize()
{
    std::vector<Token> out;
    while (true) {
        Token t = next();
        out.push_back(t);
        if (t.kind == TokenKind::Eof)
            return out;
    }
}

Token
Lexer::next()
{
    bool layout = skipLayout();
    Token t;
    t.layoutBefore = layout || pos_ == 0;
    t.line = line_;
    if (eof()) {
        t.kind = TokenKind::Eof;
        return t;
    }

    char c = peek();

    // Full stop: '.' followed by layout or EOF.
    if (c == '.') {
        char after = peek(1);
        if (after == '\0' || std::isspace(static_cast<unsigned char>(after))
            || after == '%') {
            get();
            t.kind = TokenKind::End;
            t.text = ".";
            return t;
        }
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
        Token num = lexNumber();
        num.layoutBefore = t.layoutBefore;
        num.line = t.line;
        return num;
    }

    if (std::islower(static_cast<unsigned char>(c))) {
        Token name = lexName();
        name.layoutBefore = t.layoutBefore;
        name.line = t.line;
        return name;
    }

    if (std::isupper(static_cast<unsigned char>(c)) || c == '_') {
        std::string text;
        while (!eof() && isAlnumChar(peek()))
            text += get();
        t.kind = TokenKind::Variable;
        t.text = text;
        return t;
    }

    if (c == '\'') {
        Token q = lexQuoted('\'');
        q.layoutBefore = t.layoutBefore;
        q.line = t.line;
        q.kind = TokenKind::Atom;
        return q;
    }

    if (c == '"') {
        Token q = lexQuoted('"');
        q.layoutBefore = t.layoutBefore;
        q.line = t.line;
        q.kind = TokenKind::String;
        return q;
    }

    if (c == '(' || c == ')' || c == '[' || c == ']' || c == '{' ||
        c == '}' || c == ',' || c == '|') {
        get();
        t.kind = TokenKind::Punct;
        t.text = std::string(1, c);
        // ',' and '|' double as atoms in operator position; the reader
        // handles that from the Punct form.
        return t;
    }

    if (c == '!' || c == ';') {
        get();
        t.kind = TokenKind::Atom;
        t.text = std::string(1, c);
        return t;
    }

    if (isSymbolChar(c)) {
        Token s = lexSymbolic();
        s.layoutBefore = t.layoutBefore;
        s.line = t.line;
        return s;
    }

    error(cat("unexpected character '", std::string(1, c), "'"));
}

Token
Lexer::lexName()
{
    Token t;
    t.kind = TokenKind::Atom;
    while (!eof() && isAlnumChar(peek()))
        t.text += get();
    return t;
}

Token
Lexer::lexSymbolic()
{
    Token t;
    t.kind = TokenKind::Atom;
    while (!eof() && isSymbolChar(peek()))
        t.text += get();
    return t;
}

Token
Lexer::lexQuoted(char quote)
{
    Token t;
    get(); // opening quote
    while (true) {
        if (eof())
            error("unterminated quoted token");
        char c = get();
        if (c == quote) {
            if (peek() == quote) {
                get();
                t.text += quote;
                continue;
            }
            return t;
        }
        if (c == '\\') {
            if (eof())
                error("unterminated escape");
            char e = get();
            switch (e) {
              case 'n': t.text += '\n'; break;
              case 't': t.text += '\t'; break;
              case 'r': t.text += '\r'; break;
              case 'a': t.text += '\a'; break;
              case 'b': t.text += '\b'; break;
              case 'f': t.text += '\f'; break;
              case 'v': t.text += '\v'; break;
              case '\\': t.text += '\\'; break;
              case '\'': t.text += '\''; break;
              case '"': t.text += '"'; break;
              case '\n': break; // line continuation
              default:
                error(cat("unknown escape \\", std::string(1, e)));
            }
            continue;
        }
        t.text += c;
    }
}

Token
Lexer::lexNumber()
{
    Token t;
    t.kind = TokenKind::Int;

    // 0'c (character code), 0x / 0o / 0b radix forms.
    if (peek() == '0' && peek(1) == '\'') {
        get();
        get();
        char c = get();
        if (c == '\\') {
            char e = get();
            switch (e) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case '\\': c = '\\'; break;
              case '\'': c = '\''; break;
              default: error("unknown character escape in 0' literal");
            }
        }
        t.intValue = static_cast<unsigned char>(c);
        return t;
    }
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'o' ||
                          peek(1) == 'b')) {
        get();
        char radix_char = get();
        int radix = radix_char == 'x' ? 16 : radix_char == 'o' ? 8 : 2;
        std::string digits;
        while (!eof() &&
               std::isalnum(static_cast<unsigned char>(peek()))) {
            digits += get();
        }
        if (digits.empty())
            error("missing digits after radix prefix");
        t.intValue = std::strtoll(digits.c_str(), nullptr, radix);
        return t;
    }

    std::string digits;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        digits += get();

    // Float: digits '.' digits with optional exponent.
    if (peek() == '.' &&
        std::isdigit(static_cast<unsigned char>(peek(1)))) {
        digits += get();
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            digits += get();
        if (peek() == 'e' || peek() == 'E') {
            digits += get();
            if (peek() == '+' || peek() == '-')
                digits += get();
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                digits += get();
            }
        }
        t.kind = TokenKind::Float;
        t.floatValue = std::strtod(digits.c_str(), nullptr);
        return t;
    }
    if ((peek() == 'e' || peek() == 'E') &&
        (std::isdigit(static_cast<unsigned char>(peek(1))) ||
         ((peek(1) == '+' || peek(1) == '-') &&
          std::isdigit(static_cast<unsigned char>(peek(2)))))) {
        digits += get();
        if (peek() == '+' || peek() == '-')
            digits += get();
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            digits += get();
        t.kind = TokenKind::Float;
        t.floatValue = std::strtod(digits.c_str(), nullptr);
        return t;
    }

    t.intValue = std::strtoll(digits.c_str(), nullptr, 10);
    return t;
}

bool
atomNeedsQuotes(const std::string &text)
{
    if (text.empty())
        return true;
    if (text == "[]" || text == "{}" || text == "!" || text == ";")
        return false;
    // ',' and '.' conflict with argument separators / the full stop.
    if (text == "," || text == ".")
        return true;
    char first = text[0];
    if (std::islower(static_cast<unsigned char>(first))) {
        for (char c : text) {
            if (!isAlnumChar(c))
                return true;
        }
        return false;
    }
    if (isSymbolChar(first)) {
        for (char c : text) {
            if (!isSymbolChar(c))
                return true;
        }
        return false;
    }
    return true;
}

} // namespace kcm
