/**
 * @file
 * Term output: canonical and operator-aware printing.
 */

#ifndef KCM_PROLOG_WRITER_HH
#define KCM_PROLOG_WRITER_HH

#include <string>

#include "prolog/operators.hh"
#include "prolog/term.hh"

namespace kcm
{

struct WriteOptions
{
    bool quoted = false;      ///< quote atoms that need it (writeq)
    bool ignoreOps = false;   ///< canonical functional notation
    int maxDepth = 0;         ///< 0 = unlimited
};

/** Render @p t using the operator table @p ops. */
std::string writeTerm(const TermRef &t, const OperatorTable &ops,
                      const WriteOptions &options = {});

/** Render with a default operator table and default options. */
std::string writeTerm(const TermRef &t);

/** Render in writeq style (quoted) with a default operator table. */
std::string writeTermQuoted(const TermRef &t);

} // namespace kcm

#endif // KCM_PROLOG_WRITER_HH
