#include "prolog/parser.hh"

#include "base/logging.hh"

namespace kcm
{

Parser::Parser(std::string source, OperatorTable &ops) : ops_(ops)
{
    Lexer lexer(std::move(source));
    tokens_ = lexer.tokenize();
}

const Token &
Parser::peek(size_t ahead) const
{
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size())
        idx = tokens_.size() - 1; // Eof token
    return tokens_[idx];
}

const Token &
Parser::advance()
{
    const Token &t = peek();
    if (pos_ < tokens_.size() - 1)
        ++pos_;
    return t;
}

void
Parser::expectPunct(const char *p)
{
    if (!peek().isPunct(p))
        error(cat("expected '", p, "'"));
    advance();
}

void
Parser::error(const std::string &msg) const
{
    fatal("parser: line ", peek().line, ": ", msg, " (at token '",
          peek().text, "')");
}

TermRef
Parser::variableNode(const std::string &name)
{
    if (name == "_") {
        auto v = Term::makeVar("_");
        return v;
    }
    auto it = clauseVars_.find(name);
    if (it != clauseVars_.end())
        return it->second;
    auto v = Term::makeVar(name);
    clauseVars_.emplace(name, v);
    varOrder_.emplace_back(name, v);
    return v;
}

bool
Parser::readClause(ReadClause &out)
{
    clauseVars_.clear();
    varOrder_.clear();
    if (peek().kind == TokenKind::Eof)
        return false;
    int prec = 0;
    TermRef term = parseTerm(1200, prec);
    if (peek().kind != TokenKind::End)
        error("expected '.' at end of clause");
    advance();
    maybeApplyOpDirective(term);
    out.term = term;
    out.varNames = varOrder_;
    return true;
}

std::vector<ReadClause>
Parser::readAll()
{
    std::vector<ReadClause> out;
    ReadClause clause;
    while (readClause(clause))
        out.push_back(clause);
    return out;
}

void
Parser::maybeApplyOpDirective(const TermRef &clause)
{
    if (!clause->isStruct() || clause->arity() != 1)
        return;
    const std::string &outer = atomText(clause->functorName());
    if (outer != ":-" && outer != "?-")
        return;
    const TermRef &goal = clause->arg(0);
    if (!goal->isStruct() || goal->arity() != 3 ||
        atomText(goal->functorName()) != "op") {
        return;
    }
    const TermRef &prio = goal->arg(0);
    const TermRef &type = goal->arg(1);
    const TermRef &name = goal->arg(2);
    if (!prio->isInt() || !type->isAtom())
        return;
    auto op_type = OperatorTable::parseType(atomText(type->atom()));
    if (!op_type)
        return;
    auto apply = [&](const TermRef &n) {
        if (n->isAtom()) {
            ops_.define(static_cast<int>(prio->intValue()), *op_type,
                        n->atom());
        }
    };
    if (name->isAtom()) {
        apply(name);
    } else {
        // A list of operator names.
        TermRef node = name;
        while (node->isCons()) {
            apply(node->arg(0));
            node = node->arg(1);
        }
    }
}

bool
Parser::tokenStartsTerm() const
{
    const Token &t = peek();
    switch (t.kind) {
      case TokenKind::Int:
      case TokenKind::Float:
      case TokenKind::Variable:
      case TokenKind::Atom:
      case TokenKind::String:
        return true;
      case TokenKind::Punct:
        return t.text == "(" || t.text == "[" || t.text == "{";
      default:
        return false;
    }
}

TermRef
Parser::parseTerm(int max_prec, int &prec_out)
{
    int left_prec = 0;
    TermRef left = parsePrimary(max_prec, left_prec);

    while (true) {
        const Token &t = peek();
        std::string op_text;
        if (t.kind == TokenKind::Atom) {
            op_text = t.text;
        } else if (t.kind == TokenKind::Punct &&
                   (t.text == "," || t.text == "|")) {
            op_text = t.text == "|" ? ";" : t.text;
        } else {
            break;
        }
        AtomId op_atom = internAtom(op_text);

        auto infix = ops_.infix(op_atom);
        auto postfix = ops_.postfix(op_atom);
        if (infix) {
            int p = infix->priority;
            int left_max = infix->type == OpType::YFX ? p : p - 1;
            int right_max = infix->type == OpType::XFY ? p : p - 1;
            if (p <= max_prec && left_prec <= left_max) {
                advance();
                int rp = 0;
                TermRef right = parseTerm(right_max, rp);
                left = Term::makeStruct(op_atom, {left, right});
                left_prec = p;
                continue;
            }
        }
        if (postfix) {
            int p = postfix->priority;
            int left_max = postfix->type == OpType::YF ? p : p - 1;
            if (p <= max_prec && left_prec <= left_max) {
                advance();
                left = Term::makeStruct(op_atom, {left});
                left_prec = p;
                continue;
            }
        }
        break;
    }
    prec_out = left_prec;
    return left;
}

TermRef
Parser::parsePrimary(int max_prec, int &prec_out)
{
    const Token &t = peek();
    prec_out = 0;

    switch (t.kind) {
      case TokenKind::Int: {
        advance();
        return Term::makeInt(t.intValue);
      }
      case TokenKind::Float: {
        advance();
        return Term::makeFloat(t.floatValue);
      }
      case TokenKind::Variable: {
        advance();
        return variableNode(t.text);
      }
      case TokenKind::String: {
        advance();
        std::vector<TermRef> codes;
        for (unsigned char c : t.text)
            codes.push_back(Term::makeInt(c));
        return Term::makeList(codes);
      }
      case TokenKind::Punct: {
        if (t.text == "(") {
            advance();
            int p = 0;
            TermRef inner = parseTerm(1200, p);
            expectPunct(")");
            return inner;
        }
        if (t.text == "[") {
            advance();
            return parseList();
        }
        if (t.text == "{") {
            advance();
            return parseCurly();
        }
        error("unexpected punctuation");
      }
      case TokenKind::Atom:
        break;
      default:
        error("unexpected token");
    }

    // Atom cases: functor application, prefix operator, plain atom.
    std::string name = t.text;
    advance();

    // Functor application: '(' with no layout in between.
    if (peek().isPunct("(") && !peek().layoutBefore)
        return parseArgList(name);

    AtomId name_atom = internAtom(name);
    auto prefix = ops_.prefix(name_atom);

    // Negative numeric literal: '-' immediately followed by a number
    // with no intervening layout (ISO reading; "- 1" is -(1)).
    if (name == "-" && !peek().layoutBefore &&
        (peek().kind == TokenKind::Int ||
         peek().kind == TokenKind::Float)) {
        const Token &num = advance();
        if (num.kind == TokenKind::Int)
            return Term::makeInt(-num.intValue);
        return Term::makeFloat(-num.floatValue);
    }

    if (prefix && prefix->priority <= max_prec && tokenStartsTerm()) {
        // Don't treat "op Infix ..." as prefix application when the
        // next atom is purely an infix operator (e.g. "- =" is odd
        // input anyway); the common case is fine.
        bool operand_is_bare_infix = false;
        if (peek().kind == TokenKind::Atom) {
            AtomId next_atom = internAtom(peek().text);
            if (ops_.infix(next_atom) && !ops_.prefix(next_atom) &&
                !peek(1).isPunct("(")) {
                operand_is_bare_infix = true;
            }
        }
        if (!operand_is_bare_infix) {
            int arg_max = prefix->type == OpType::FY ? prefix->priority
                                                     : prefix->priority - 1;
            int p = 0;
            TermRef operand = parseTerm(arg_max, p);
            prec_out = prefix->priority;
            return Term::makeStruct(name_atom, {operand});
        }
    }

    // Plain atom (possibly an operator used as an operand).
    if (ops_.isOperator(name_atom))
        prec_out = 1201 <= max_prec ? 0 : 0;
    return Term::makeAtom(name_atom);
}

TermRef
Parser::parseArgList(const std::string &functor_name)
{
    expectPunct("(");
    std::vector<TermRef> args;
    while (true) {
        int p = 0;
        args.push_back(parseTerm(999, p));
        if (peek().isPunct(",")) {
            advance();
            continue;
        }
        break;
    }
    expectPunct(")");
    return Term::makeStruct(internAtom(functor_name), std::move(args));
}

TermRef
Parser::parseList()
{
    if (peek().isPunct("]")) {
        advance();
        return Term::makeAtom(AtomTable::instance().nil);
    }
    std::vector<TermRef> items;
    TermRef tail;
    while (true) {
        int p = 0;
        items.push_back(parseTerm(999, p));
        if (peek().isPunct(",")) {
            advance();
            continue;
        }
        if (peek().isPunct("|")) {
            advance();
            int tp = 0;
            tail = parseTerm(999, tp);
        }
        break;
    }
    expectPunct("]");
    return Term::makeList(items, tail);
}

TermRef
Parser::parseCurly()
{
    if (peek().isPunct("}")) {
        advance();
        return Term::makeAtom(AtomTable::instance().curly);
    }
    int p = 0;
    TermRef inner = parseTerm(1200, p);
    expectPunct("}");
    return Term::makeStruct(AtomTable::instance().curly, {inner});
}

TermRef
parseTermText(const std::string &text, OperatorTable &ops)
{
    Parser parser(text + " .", ops);
    ReadClause clause;
    if (!parser.readClause(clause))
        fatal("parseTermText: empty input");
    return clause.term;
}

TermRef
parseTermText(const std::string &text)
{
    OperatorTable ops;
    return parseTermText(text, ops);
}

std::vector<ReadClause>
parseProgramText(const std::string &text)
{
    OperatorTable ops;
    Parser parser(text, ops);
    return parser.readAll();
}

} // namespace kcm
